"""Integration tests for the Database façade."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.errors import CatalogError, JoinError
from repro.storage.pager import FilePager


class TestDdl:
    def test_create_and_drop_table(self):
        db = Database()
        db.create_table("t", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")])
        assert db.catalog.has_table("t")
        db.drop_table("t")
        assert not db.catalog.has_table("t")
        with pytest.raises(CatalogError):
            db.table("t")

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", [("id", "NUMBER")])
        with pytest.raises(CatalogError):
            db.create_table("T", [("id", "NUMBER")])

    def test_index_requires_table(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.create_spatial_index("idx", "missing", "geom")

    def test_index_metadata_recorded(self, random_rects):
        db = Database()
        load_geometries(db, "t", random_rects(20, seed=1))
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE", fanout=16)
        meta = db.catalog.index("t_idx")
        assert meta.index_kind == "RTREE"
        assert meta.table_name == "t"
        assert meta.parameters["fanout"] == 16
        assert meta.index_table_name == "t_idx_idxtab"

    def test_drop_index(self, random_rects):
        db = Database()
        load_geometries(db, "t", random_rects(10, seed=2))
        db.create_spatial_index("t_idx", "t", "geom")
        db.drop_index("t_idx")
        with pytest.raises(CatalogError):
            db.spatial_index("t_idx")


class TestQueryPaths:
    def test_select_rowids_through_index(self, indexed_db):
        window = Geometry.rectangle(10, 10, 40, 40)
        rowids = list(indexed_db.select_rowids("shapes", "geom", "SDO_RELATE", (window, "ANYINTERACT")))
        from repro.geometry.predicates import intersects

        expected = sorted(
            rid for rid, row in indexed_db.table("shapes").scan()
            if intersects(row[1], window)
        )
        assert sorted(rowids) == expected

    def test_join_requires_rtree(self, random_rects):
        db = Database()
        load_geometries(db, "t", random_rects(10, seed=3))
        db.create_spatial_index("t_q", "t", "geom", kind="QUADTREE", tiling_level=4)
        with pytest.raises(JoinError):
            db.spatial_join("t", "geom", "t", "geom")

    def test_join_requires_index(self, random_rects):
        db = Database()
        load_geometries(db, "t", random_rects(10, seed=4))
        with pytest.raises(CatalogError):
            db.spatial_join("t", "geom", "t", "geom")


class TestFileBacked:
    def test_database_on_file_pager(self, tmp_path, random_rects):
        pager = FilePager(str(tmp_path / "db.pages"))
        db = Database(pager=pager)
        geoms = random_rects(30, seed=5)
        load_geometries(db, "t", geoms)
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        result = db.spatial_join("t", "geom", "t", "geom")
        assert len(result.pairs) >= 30  # identity pairs at least
        db.pool.flush()
        pager.flush()
        pager.close()

    def test_rows_survive_buffer_invalidation(self, random_rects):
        db = Database(buffer_capacity=4)  # tiny cache: constant eviction
        geoms = random_rects(40, seed=6)
        table = load_geometries(db, "t", geoms)
        db.pool.invalidate()
        rows = [row for _rid, row in table.scan()]
        assert len(rows) == 40
        assert rows[7][1] == geoms[7]
