"""Unit + property tests for interior rectangle approximations."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.geometry import Geometry
from repro.geometry.interior import interior_rectangle
from repro.geometry.predicates import contains


class TestBasics:
    def test_rectangle_interior_is_nearly_itself(self):
        rect = Geometry.rectangle(0, 0, 10, 6)
        inner = interior_rectangle(rect)
        assert not inner.is_empty
        assert inner.area > 0.9 * 60.0
        assert contains(rect, Geometry.from_mbr(inner))

    def test_point_and_line_have_no_interior(self):
        assert interior_rectangle(Geometry.point(1, 1)).is_empty
        assert interior_rectangle(Geometry.linestring([(0, 0), (5, 5)])).is_empty

    def test_lshape_interior_avoids_the_notch(self):
        lshape = Geometry.polygon(
            [(0, 0), (10, 0), (10, 4), (4, 4), (4, 10), (0, 10)]
        )
        inner = interior_rectangle(lshape)
        assert not inner.is_empty
        assert contains(lshape, Geometry.from_mbr(inner))

    def test_donut_interior_respects_hole(self):
        donut = Geometry.polygon(
            [(0, 0), (20, 0), (20, 20), (0, 20)],
            holes=[[(8, 8), (8, 12), (12, 12), (12, 8)]],
        )
        inner = interior_rectangle(donut)
        if not inner.is_empty:
            assert contains(donut, Geometry.from_mbr(inner))

    def test_multipolygon_uses_largest_part(self):
        mp = Geometry.multipolygon(
            [
                ([(0, 0), (1, 0), (1, 1), (0, 1)], []),
                ([(10, 10), (20, 10), (20, 20), (10, 20)], []),
            ]
        )
        inner = interior_rectangle(mp)
        assert not inner.is_empty
        assert inner.min_x >= 10  # inside the big part


class TestSoundness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_interior_rect_always_inside(self, seed):
        from repro.datasets.random_geom import radial_polygon

        rng = random.Random(seed)
        poly = radial_polygon(
            rng,
            rng.uniform(-50, 50),
            rng.uniform(-50, 50),
            rng.uniform(1, 20),
            rng.randint(5, 60),
            irregularity=rng.uniform(0.0, 0.6),
        )
        inner = interior_rectangle(poly)
        if not inner.is_empty:
            assert contains(poly, Geometry.from_mbr(inner))

    @given(st.integers(3, 12), st.floats(1.0, 30.0))
    @settings(max_examples=40, deadline=None)
    def test_regular_polygon_interior_nonempty(self, sides, radius):
        from repro.datasets.random_geom import regular_polygon

        poly = regular_polygon(0, 0, radius, sides)
        inner = interior_rectangle(poly)
        assert not inner.is_empty
        assert inner.area > 0.2 * poly.area


class TestFastAcceptInJoin:
    def test_interior_join_results_identical(self, random_rects):
        from repro import Database
        from repro.datasets import load_geometries
        from repro.core.parallel_join import spatial_join

        db = Database()
        load_geometries(db, "t", random_rects(120, seed=101))
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        table = db.table("t")
        tree = db.spatial_index("t_idx").tree
        plain = spatial_join(table, "geom", tree, table, "geom", tree)
        fast = spatial_join(
            table, "geom", tree, table, "geom", tree, use_interior=True
        )
        assert sorted(plain.pairs) == sorted(fast.pairs)

    def test_fast_accepts_occur_on_rectangles(self, random_rects):
        from repro import Database
        from repro.datasets import load_geometries
        from repro.engine.parallel import WorkerContext
        from repro.engine.table_function import collect
        from repro.core.spatial_join import SpatialJoinFunction

        db = Database()
        load_geometries(db, "t", random_rects(100, seed=102))
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        fn = SpatialJoinFunction(
            db.table("t"), "geom", db.spatial_index("t_idx").tree,
            db.table("t"), "geom", db.spatial_index("t_idx").tree,
            use_interior=True,
        )
        collect(fn, WorkerContext(0))
        # Self-pairs alone guarantee overlapping interiors.
        assert fn._filter.fast_accepts >= 100

    def test_interior_disabled_for_distance_predicates(self, random_rects):
        from repro import Database
        from repro.datasets import load_geometries
        from repro.core.secondary_filter import JoinPredicate, SecondaryFilter

        db = Database()
        load_geometries(db, "t", random_rects(10, seed=103))
        f = SecondaryFilter(
            db.table("t"), "geom", db.table("t"), "geom",
            JoinPredicate(distance=2.0), use_interior=True,
        )
        assert not f.use_interior
