"""Unit tests for GeoJSON I/O."""

import json

import pytest

from repro.errors import GeometryError
from repro.geometry.geojson import (
    from_geojson,
    from_geojson_str,
    to_geojson,
    to_geojson_str,
)
from repro.geometry.geometry import Geometry, GeometryType


SQUARE = [(0, 0), (4, 0), (4, 4), (0, 4)]
HOLE = [(1, 1), (1, 3), (3, 3), (3, 1)]


class TestEncode:
    def test_point(self):
        obj = to_geojson(Geometry.point(1, 2))
        assert obj == {"type": "Point", "coordinates": [1.0, 2.0]}

    def test_polygon_rings_closed(self):
        obj = to_geojson(Geometry.polygon(SQUARE, holes=[HOLE]))
        assert obj["type"] == "Polygon"
        for ring in obj["coordinates"]:
            assert ring[0] == ring[-1]
        assert len(obj["coordinates"]) == 2

    def test_str_form_is_valid_json(self):
        text = to_geojson_str(Geometry.linestring([(0, 0), (1, 1)]))
        parsed = json.loads(text)
        assert parsed["type"] == "LineString"


class TestDecode:
    def test_feature_unwrapped(self):
        obj = {
            "type": "Feature",
            "properties": {"name": "x"},
            "geometry": {"type": "Point", "coordinates": [3, 4]},
        }
        geom = from_geojson(obj)
        assert geom == Geometry.point(3, 4)

    def test_feature_collection(self):
        obj = {
            "type": "FeatureCollection",
            "features": [
                {"type": "Feature", "geometry": {"type": "Point", "coordinates": [0, 0]}},
                {"type": "Feature", "geometry": {"type": "Point", "coordinates": [1, 1]}},
            ],
        }
        geom = from_geojson(obj)
        assert geom.geom_type is GeometryType.COLLECTION
        assert len(geom.parts) == 2

    def test_errors(self):
        with pytest.raises(GeometryError):
            from_geojson({"type": "Point"})
        with pytest.raises(GeometryError):
            from_geojson({"coordinates": [1, 2]})
        with pytest.raises(GeometryError):
            from_geojson({"type": "Hypercube", "coordinates": []})
        with pytest.raises(GeometryError):
            from_geojson_str("not json {")
        with pytest.raises(GeometryError):
            from_geojson({"type": "Feature", "geometry": None})


class TestRoundTrip:
    @pytest.mark.parametrize(
        "geom",
        [
            Geometry.point(1.5, -2.5),
            Geometry.linestring([(0, 0), (1, 1), (2, 0)]),
            Geometry.polygon(SQUARE),
            Geometry.polygon(SQUARE, holes=[HOLE]),
            Geometry.multipoint([(0, 0), (1, 2)]),
            Geometry.multilinestring([[(0, 0), (1, 1)], [(2, 2), (3, 3)]]),
            Geometry.multipolygon([(SQUARE, [HOLE])]),
            Geometry.collection([Geometry.point(0, 0), Geometry.polygon(SQUARE)]),
        ],
    )
    def test_roundtrip(self, geom):
        assert from_geojson(to_geojson(geom)) == geom

    def test_roundtrip_through_text(self):
        geom = Geometry.polygon(SQUARE, holes=[HOLE])
        assert from_geojson_str(to_geojson_str(geom)) == geom

    def test_wkt_geojson_agree(self):
        from repro.geometry.wkt import from_wkt

        wkt_geom = from_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
        gj_geom = from_geojson(
            {"type": "Polygon", "coordinates": [[[0, 0], [4, 0], [4, 4], [0, 4], [0, 0]]]}
        )
        assert wkt_geom == gj_geom
