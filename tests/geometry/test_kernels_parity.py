"""Parity suite: batch kernels must agree with the scalar engine, bit for bit.

The kernels module ships two backends (``numpy`` and ``python``) behind one
API, and the whole refinement pipeline leans on them being interchangeable:
swapping ``REPRO_KERNELS`` must never change a join result, a tessellation,
or a window-query answer.  This suite drives both backends over thousands of
seeded-random cases — plus the degenerate shapes that break naive vector
rewrites (collinear edges, shared vertices, zero-length segments, boundary
points) — and asserts exact equality against the scalar predicates, not
approximate agreement.
"""

import math
import random
from array import array

import pytest

from repro.errors import GeometryError
from repro.geometry import kernels
from repro.geometry.distance import distance, within_distance
from repro.geometry.geometry import Geometry
from repro.geometry.mbr import MBR
from repro.geometry.predicates import contains, intersects, touches
from repro.geometry.segments import segment_segment_distance, segments_intersect
from repro.index.quadtree.codes import TileGrid
from repro.core.secondary_filter import JoinPredicate

BACKENDS = ("numpy", "python")


# ----------------------------------------------------------------------
# Seeded generators.  Coordinates snap to a coarse half-integer grid so
# shared edges, shared vertices and exact-touch configurations occur
# constantly instead of almost never.
# ----------------------------------------------------------------------
def _grid(rng, lo=-6, hi=6):
    return rng.randrange(lo * 2, hi * 2 + 1) / 2.0


def _convex_polygon(rng):
    cx, cy = _grid(rng), _grid(rng)
    r_x = rng.uniform(0.5, 3.0)
    r_y = rng.uniform(0.5, 3.0)
    n = rng.randrange(3, 9)
    phase = rng.uniform(0, 2 * math.pi)
    pts = [
        (cx + r_x * math.cos(phase + 2 * math.pi * k / n),
         cy + r_y * math.sin(phase + 2 * math.pi * k / n))
        for k in range(n)
    ]
    return Geometry.polygon(pts)


def _star_polygon(rng):
    cx, cy = _grid(rng), _grid(rng)
    n = rng.randrange(4, 8)
    pts = []
    for k in range(2 * n):
        r = rng.uniform(1.5, 3.0) if k % 2 == 0 else rng.uniform(0.4, 1.2)
        t = math.pi * k / n
        pts.append((cx + r * math.cos(t), cy + r * math.sin(t)))
    return Geometry.polygon(pts)


def _holed_polygon(rng):
    cx, cy = _grid(rng), _grid(rng)
    outer = [(cx - 3, cy - 3), (cx + 3, cy - 3), (cx + 3, cy + 3), (cx - 3, cy + 3)]
    hole = [(cx - 1, cy - 1), (cx + 1, cy - 1), (cx + 1, cy + 1), (cx - 1, cy + 1)]
    return Geometry.polygon(outer, holes=[hole])


def _rectangle(rng):
    x0, y0 = _grid(rng), _grid(rng)
    return Geometry.rectangle(x0, y0, x0 + rng.randrange(1, 5), y0 + rng.randrange(1, 5))


def _linestring(rng):
    n = rng.randrange(2, 6)
    return Geometry.linestring([(_grid(rng), _grid(rng)) for _ in range(n)])


def _multipoint(rng):
    n = rng.randrange(1, 5)
    return Geometry.multipoint([(_grid(rng), _grid(rng)) for _ in range(n)])


def _point(rng):
    return Geometry.point(_grid(rng), _grid(rng))


_MAKERS = (
    _convex_polygon, _star_polygon, _holed_polygon,
    _rectangle, _rectangle, _linestring, _multipoint, _point,
)


def geometry_pool(seed, n):
    rng = random.Random(seed)
    return [_MAKERS[i % len(_MAKERS)](rng) for i in range(n)]


def random_edges(rng, n):
    """Random segments, seeded with degenerates: ~1 in 5 is zero-length and
    grid snapping makes collinear / shared-endpoint pairs common."""
    out = []
    for _ in range(n):
        x0, y0 = _grid(rng), _grid(rng)
        if rng.random() < 0.2:
            out.append((x0, y0, x0, y0))  # zero-length
        else:
            out.append((x0, y0, _grid(rng), _grid(rng)))
    return out


# ----------------------------------------------------------------------
# Predicate parity: 40x40 = 1600 ordered pairs per predicate, each
# checked on both backends against the scalar engine.
# ----------------------------------------------------------------------
POOL = geometry_pool(seed=20030642, n=40)


class TestPredicateParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_intersects_bulk(self, backend):
        with kernels.use_backend(backend):
            for g1 in POOL:
                got = kernels.intersects_batch(g1, POOL)
                assert got == [intersects(g1, g2) for g2 in POOL]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_contains_bulk(self, backend):
        with kernels.use_backend(backend):
            for g1 in POOL:
                got = kernels.contains_batch(g1, POOL)
                assert got == [contains(g1, g2) for g2 in POOL]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_touches_bulk(self, backend):
        with kernels.use_backend(backend):
            for g1 in POOL:
                got = kernels.touches_batch(g1, POOL)
                assert got == [touches(g1, g2) for g2 in POOL]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_distance_bulk_bit_identical(self, backend):
        with kernels.use_backend(backend):
            for g1 in POOL[::2]:
                got = kernels.distance_batch(g1, POOL)
                ref = [distance(g1, g2) for g2 in POOL]
                assert got == ref  # exact float equality, not approx

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dist", [0.25, 1.0, 3.0])
    def test_within_distance_bulk(self, backend, dist):
        with kernels.use_backend(backend):
            for g1 in POOL[::4]:
                got = kernels.within_distance_batch(g1, POOL, dist)
                assert got == [within_distance(g1, g2, dist) for g2 in POOL]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "mask,dist", [("ANYINTERACT", 0.0), ("INTERSECT", 0.0), ("ANYINTERACT", 0.8)]
    )
    def test_evaluate_predicate_batch(self, backend, mask, dist):
        pred = JoinPredicate(mask=mask, distance=dist)
        with kernels.use_backend(backend):
            for g1 in POOL[::4]:
                got = kernels.evaluate_predicate_batch(g1, POOL, mask, dist)
                if got is None:  # backend may decline a mask; never wrong, just absent
                    continue
                assert got == [pred.evaluate(g1, g2) for g2 in POOL]

    def test_unsupported_mask_returns_none_not_garbage(self):
        got = kernels.evaluate_predicate_batch(POOL[0], POOL, "EQUAL", 0.0)
        assert got is None or got == [
            JoinPredicate(mask="EQUAL").evaluate(POOL[0], g) for g in POOL
        ]


# ----------------------------------------------------------------------
# Segment kernels.
# ----------------------------------------------------------------------
class TestSegmentKernelParity:
    def _edge_sets(self):
        rng = random.Random(77)
        return random_edges(rng, 36), random_edges(rng, 36)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_segments_intersect_matrix(self, backend):
        ea, eb = self._edge_sets()  # 36x36 = 1296 pairs
        with kernels.use_backend(backend):
            got = kernels.segments_intersect_batch(ea, eb)
        for i, (ax0, ay0, ax1, ay1) in enumerate(ea):
            for j, (bx0, by0, bx1, by1) in enumerate(eb):
                ref = segments_intersect(
                    (ax0, ay0), (ax1, ay1), (bx0, by0), (bx1, by1)
                )
                assert got[i][j] == ref, (ea[i], eb[j])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_segment_distance_matrix_bit_identical(self, backend):
        ea, eb = self._edge_sets()
        with kernels.use_backend(backend):
            got = kernels.pairwise_segment_distance_batch(ea, eb)
        for i, (ax0, ay0, ax1, ay1) in enumerate(ea):
            for j, (bx0, by0, bx1, by1) in enumerate(eb):
                ref = segment_segment_distance(
                    (ax0, ay0), (ax1, ay1), (bx0, by0), (bx1, by1)
                )
                assert got[i][j] == ref, (ea[i], eb[j])

    @pytest.mark.parametrize(
        "a,b,c,d",
        [
            # collinear overlap
            ((0, 0), (4, 0), (2, 0), (6, 0)),
            # collinear, disjoint
            ((0, 0), (1, 0), (2, 0), (3, 0)),
            # shared endpoint only
            ((0, 0), (2, 2), (2, 2), (4, 0)),
            # zero-length on a segment interior
            ((0, 0), (4, 4), (2, 2), (2, 2)),
            # zero-length off the segment
            ((0, 0), (4, 4), (5, 0), (5, 0)),
            # both zero-length, coincident
            ((1, 1), (1, 1), (1, 1), (1, 1)),
            # both zero-length, distinct
            ((1, 1), (1, 1), (2, 2), (2, 2)),
            # T-junction: endpoint on interior
            ((0, 0), (4, 0), (2, 0), (2, 3)),
        ],
    )
    def test_degenerate_segments(self, a, b, c, d):
        ea = [(a[0], a[1], b[0], b[1])]
        eb = [(c[0], c[1], d[0], d[1])]
        ref_hit = segments_intersect(a, b, c, d)
        ref_dist = segment_segment_distance(a, b, c, d)
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                assert kernels.segments_intersect_batch(ea, eb)[0][0] == ref_hit
                assert kernels.pairwise_segment_distance_batch(ea, eb)[0][0] == ref_dist


# ----------------------------------------------------------------------
# Point-in-polygon.
# ----------------------------------------------------------------------
class TestPointInPolygonParity:
    def _cases(self):
        rng = random.Random(4242)
        polys = [
            _convex_polygon(rng), _star_polygon(rng), _holed_polygon(rng),
            _rectangle(rng), _linestring(rng), _multipoint(rng),
        ]
        for poly in polys:
            pts = [(_grid(rng), _grid(rng)) for _ in range(160)]
            # Degenerate probes: every vertex and every edge midpoint of the
            # geometry itself (boundary hits, not near-misses).
            for part in poly.simple_parts():
                verts = list(part.vertices())
                pts.extend(verts)
                for (x0, y0), (x1, y1) in zip(verts, verts[1:]):
                    pts.append(((x0 + x1) / 2.0, (y0 + y1) / 2.0))
            yield poly, pts

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_contains_point_parity(self, backend):
        total = 0
        with kernels.use_backend(backend):
            for poly, pts in self._cases():
                got = kernels.points_in_polygon_batch(pts, poly)
                ref = [poly.contains_point(x, y) for x, y in pts]
                assert got == ref
                total += len(pts)
        assert total >= 1000


# ----------------------------------------------------------------------
# MBR kernels, over plain lists and array('d') (the R-tree node layout).
# ----------------------------------------------------------------------
class TestMbrKernelParity:
    def _coords(self, rng, n, typed):
        xs0 = [_grid(rng) for _ in range(n)]
        ys0 = [_grid(rng) for _ in range(n)]
        xs1 = [x + rng.randrange(0, 4) for x in xs0]
        ys1 = [y + rng.randrange(0, 4) for y in ys0]
        if typed:
            return (array("d", xs0), array("d", ys0), array("d", xs1), array("d", ys1))
        return xs0, ys0, xs1, ys1

    @pytest.mark.parametrize("typed", [False, True])
    @pytest.mark.parametrize("dist", [0.0, 0.7])
    def test_mbr_intersects_batch_matches_mbr_class(self, typed, dist):
        rng = random.Random(99)
        coords = self._coords(rng, 200, typed)
        box = (-2.0, -2.0, 3.5, 1.0)
        box_mbr = MBR(*box)
        ref = []
        for x0, y0, x1, y1 in zip(*coords):
            m = MBR(x0, y0, x1, y1)
            if dist == 0.0:
                ref.append(m.intersects(box_mbr))
            else:
                ref.append(m.intersects(box_mbr.expand(dist)))
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                got = kernels.mbr_intersects_batch(*coords, box, distance=dist)
            assert got == ref

    @pytest.mark.parametrize("typed", [False, True])
    @pytest.mark.parametrize("dist", [0.0, 0.7])
    @pytest.mark.parametrize("exact", [False, True])
    def test_mbr_filter_indices_parity_and_truth(self, typed, dist, exact):
        rng = random.Random(1234)
        coords = self._coords(rng, 200, typed)
        box = (-1.5, -3.0, 2.0, 2.5)
        results = {}
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                results[backend] = kernels.mbr_filter_indices(
                    coords, box, distance=dist, exact=exact
                )
        assert results["numpy"] == results["python"]
        if exact:
            # Exact refinement must match the true (squared) MBR gap test.
            bx0, by0, bx1, by1 = box
            ref = []
            for i, (x0, y0, x1, y1) in enumerate(zip(*coords)):
                dx = max(bx0 - x1, x0 - bx1, 0.0)
                dy = max(by0 - y1, y0 - by1, 0.0)
                if dx * dx + dy * dy <= dist * dist:
                    ref.append(i)
            assert results["numpy"] == ref

    def test_exact_is_subset_of_expanded(self):
        rng = random.Random(5)
        coords = self._coords(rng, 150, typed=True)
        box = (0.0, 0.0, 1.0, 1.0)
        loose = set(kernels.mbr_filter_indices(coords, box, distance=1.3))
        tight = set(kernels.mbr_filter_indices(coords, box, distance=1.3, exact=True))
        assert tight <= loose


# ----------------------------------------------------------------------
# Tile classification (tessellation frontier).
# ----------------------------------------------------------------------
class TestClassifyTilesParity:
    def _quads(self, domain, max_level):
        grid = TileGrid(domain, max_level)
        out = []
        for level in range(max_level + 1):
            for ix in range(1 << level):
                for iy in range(1 << level):
                    out.append(grid.quadrant_mbr(level, ix, iy))
        return out

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_backend_parity_and_ground_truth(self, seed):
        rng = random.Random(seed)
        geom = (_star_polygon, _holed_polygon, _linestring, _convex_polygon)[
            seed % 4
        ](rng)
        polygonal = geom.geom_type.name.startswith("POLYGON") or any(
            p.geom_type.name == "POLYGON" for p in geom.simple_parts()
        )
        quads = self._quads(MBR(-8, -8, 8, 8), max_level=3)
        codes = {}
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                codes[backend] = kernels.classify_tiles(geom, quads, polygonal)
        assert codes["numpy"] == codes["python"]
        for quad, code in zip(quads, codes["numpy"]):
            rect = Geometry.rectangle(quad.min_x, quad.min_y, quad.max_x, quad.max_y)
            if code == kernels.TILE_OUTSIDE_MBR:
                assert not geom.mbr.intersects(quad)
            elif code == kernels.TILE_OUTSIDE:
                assert not intersects(geom, rect)
            elif code == kernels.TILE_INTERIOR:
                assert polygonal and contains(geom, rect)
            else:
                assert code == kernels.TILE_BOUNDARY
                assert intersects(geom, rect)
                if polygonal:
                    assert not contains(geom, rect)

    def test_degenerate_quadrant_falls_back(self):
        g = _convex_polygon(random.Random(8))
        quads = [MBR(0.0, 0.0, 0.0, 2.0), MBR(1.0, 1.0, 1.0, 1.0)]  # zero width/area
        ref = None
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                got = kernels.classify_tiles(g, quads, polygonal=True)
            if ref is None:
                ref = got
            assert got == ref


# ----------------------------------------------------------------------
# Degenerate whole-geometry cases, every predicate, both backends.
# ----------------------------------------------------------------------
DEGENERATE_PAIRS = [
    # identical polygons
    (Geometry.rectangle(0, 0, 2, 2), Geometry.rectangle(0, 0, 2, 2)),
    # shared edge
    (Geometry.rectangle(0, 0, 2, 2), Geometry.rectangle(2, 0, 4, 2)),
    # shared vertex only
    (Geometry.rectangle(0, 0, 2, 2), Geometry.rectangle(2, 2, 4, 4)),
    # polygon vs its own vertex
    (Geometry.rectangle(0, 0, 2, 2), Geometry.point(0, 0)),
    # polygon vs point on edge interior
    (Geometry.rectangle(0, 0, 2, 2), Geometry.point(1, 0)),
    # polygon vs interior point
    (Geometry.rectangle(0, 0, 2, 2), Geometry.point(1, 1)),
    # point in the hole of a holed polygon
    (_holed_polygon(random.Random(0)), _point(random.Random(0))),
    # collinear linestrings
    (Geometry.linestring([(0, 0), (4, 0)]), Geometry.linestring([(2, 0), (6, 0)])),
    # crossing linestrings
    (Geometry.linestring([(0, 0), (2, 2)]), Geometry.linestring([(0, 2), (2, 0)])),
    # coincident points
    (Geometry.point(1, 1), Geometry.point(1, 1)),
    # distinct points
    (Geometry.point(1, 1), Geometry.point(3, 1)),
    # multipoint straddling a boundary
    (Geometry.rectangle(0, 0, 2, 2), Geometry.multipoint([(0, 0), (1, 1), (5, 5)])),
]


class TestDegenerateGeometryParity:
    @pytest.mark.parametrize("g1,g2", DEGENERATE_PAIRS)
    def test_all_predicates_both_backends(self, g1, g2):
        ref = (
            intersects(g1, g2),
            contains(g1, g2),
            touches(g1, g2),
            distance(g1, g2),
            within_distance(g1, g2, 0.5),
        )
        for backend in BACKENDS:
            with kernels.use_backend(backend):
                got = (
                    kernels.intersects_batch(g1, [g2])[0],
                    kernels.contains_batch(g1, [g2])[0],
                    kernels.touches_batch(g1, [g2])[0],
                    kernels.distance_batch(g1, [g2])[0],
                    kernels.within_distance_batch(g1, [g2], 0.5)[0],
                )
            assert got == ref, backend


# ----------------------------------------------------------------------
# Backend selection plumbing.
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_available_backends(self):
        assert set(kernels.available_backends()) == {"numpy", "python"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(GeometryError):
            kernels.set_backend("fortran")

    def test_use_backend_restores_on_exit(self):
        before = kernels.get_backend()
        other = "python" if before == "numpy" else "numpy"
        with kernels.use_backend(other):
            assert kernels.get_backend() == other
        assert kernels.get_backend() == before

    def test_use_backend_restores_on_error(self):
        before = kernels.get_backend()
        with pytest.raises(RuntimeError):
            with kernels.use_backend("python"):
                raise RuntimeError("boom")
        assert kernels.get_backend() == before
