"""Property-based tests for the geometry engine (hypothesis)."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.distance import distance, within_distance
from repro.geometry.geometry import Geometry
from repro.geometry.mbr import MBR, mbr_of_points
from repro.geometry.predicates import contains, intersects
from repro.geometry.sdo import from_sdo, to_sdo
from repro.geometry.wkt import from_wkt, to_wkt

coord = st.floats(
    min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
)


@st.composite
def mbrs(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return MBR(x1, y1, x2, y2)


@st.composite
def convex_polygons(draw):
    """Random convex polygons via points on an ellipse (always valid)."""
    cx, cy = draw(coord), draw(coord)
    rx = draw(st.floats(min_value=0.5, max_value=50))
    ry = draw(st.floats(min_value=0.5, max_value=50))
    n = draw(st.integers(min_value=3, max_value=12))
    phase = draw(st.floats(min_value=0, max_value=2 * math.pi))
    pts = [
        (
            cx + rx * math.cos(phase + 2 * math.pi * k / n),
            cy + ry * math.sin(phase + 2 * math.pi * k / n),
        )
        for k in range(n)
    ]
    return Geometry.polygon(pts)


class TestMbrProperties:
    @given(mbrs(), mbrs())
    def test_intersects_is_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(mbrs(), mbrs())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(mbrs(), mbrs())
    def test_distance_symmetric_and_zero_iff_intersect(self, a, b):
        d1, d2 = a.distance(b), b.distance(a)
        assert d1 == d2
        assert (d1 == 0.0) == a.intersects(b)

    @given(mbrs(), mbrs())
    def test_intersection_contained_in_both(self, a, b):
        i = a.intersection(b)
        if not i.is_empty:
            assert a.contains(i) and b.contains(i)

    @given(mbrs())
    def test_quadrants_partition_area(self, m):
        assume(m.area > 1e-9)
        quads = m.quadrants()
        assert sum(q.area for q in quads) == pytest_approx(m.area)

    @given(mbrs(), st.floats(min_value=0, max_value=100))
    def test_expand_monotone(self, m, margin):
        assert m.expand(margin).contains(m)

    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=20))
    def test_mbr_of_points_covers_all(self, pts):
        m = mbr_of_points(pts)
        for x, y in pts:
            assert m.contains_point(x, y)


class TestPredicateProperties:
    @given(convex_polygons(), convex_polygons())
    @settings(max_examples=50, deadline=None)
    def test_intersects_symmetric(self, a, b):
        assert intersects(a, b) == intersects(b, a)

    @given(convex_polygons(), convex_polygons())
    @settings(max_examples=50, deadline=None)
    def test_intersects_implies_mbr_intersects(self, a, b):
        if intersects(a, b):
            assert a.mbr.intersects(b.mbr)

    @given(convex_polygons())
    @settings(max_examples=50, deadline=None)
    def test_self_relations(self, g):
        assert intersects(g, g)
        assert contains(g, g)
        assert distance(g, g) == 0.0

    @given(convex_polygons(), convex_polygons())
    @settings(max_examples=50, deadline=None)
    def test_contains_implies_intersects(self, a, b):
        if contains(a, b):
            assert intersects(a, b)


class TestDistanceProperties:
    @given(convex_polygons(), convex_polygons())
    @settings(max_examples=50, deadline=None)
    def test_distance_consistent_with_intersects(self, a, b):
        d = distance(a, b)
        assert d >= 0.0
        if intersects(a, b):
            assert d == 0.0
        else:
            assert d > 0.0

    @given(convex_polygons(), convex_polygons())
    @settings(max_examples=50, deadline=None)
    def test_mbr_distance_is_lower_bound(self, a, b):
        assert a.mbr.distance(b.mbr) <= distance(a, b) + 1e-9

    @given(convex_polygons(), convex_polygons(), st.floats(min_value=0.01, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_within_distance_matches_distance(self, a, b, d):
        exact = distance(a, b)
        assume(abs(exact - d) > 1e-6)  # avoid knife-edge float comparisons
        assert within_distance(a, b, d) == (exact <= d)


class TestCodecProperties:
    @given(convex_polygons())
    @settings(max_examples=50, deadline=None)
    def test_sdo_roundtrip(self, g):
        assert from_sdo(to_sdo(g)) == g

    @given(convex_polygons())
    @settings(max_examples=50, deadline=None)
    def test_wkt_roundtrip_geometry_equivalent(self, g):
        back = from_wkt(to_wkt(g))
        assert back.num_vertices == g.num_vertices
        assert back.mbr.min_x == pytest_approx(g.mbr.min_x)
        assert back.area == pytest_approx(g.area)

    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=10))
    def test_multipoint_sdo_roundtrip(self, pts):
        g = Geometry.multipoint(pts)
        assert from_sdo(to_sdo(g)) == g


def pytest_approx(value, rel=1e-9, abs_tol=1e-9):
    import pytest

    return pytest.approx(value, rel=rel, abs=abs_tol)
