"""Unit tests for exact geometry distance / within-distance."""

import math

import pytest

from repro.geometry.distance import distance, within_distance
from repro.geometry.geometry import Geometry


def square(x, y, s=2.0):
    return Geometry.rectangle(x, y, x + s, y + s)


class TestDistance:
    def test_intersecting_is_zero(self):
        assert distance(square(0, 0), square(1, 1)) == 0.0

    def test_containment_is_zero(self):
        assert distance(square(0, 0, 10), square(3, 3, 1)) == 0.0

    def test_parallel_edges(self):
        assert distance(square(0, 0), square(5, 0)) == pytest.approx(3.0)

    def test_diagonal(self):
        d = distance(square(0, 0), square(5, 6))
        assert d == pytest.approx(math.hypot(3, 4))

    def test_point_to_polygon(self):
        assert distance(Geometry.point(5, 1), square(0, 0)) == pytest.approx(3.0)

    def test_point_to_point(self):
        assert distance(Geometry.point(0, 0), Geometry.point(3, 4)) == 5.0

    def test_line_to_polygon(self):
        line = Geometry.linestring([(0, 5), (2, 5)])
        assert distance(line, square(0, 0)) == pytest.approx(3.0)

    def test_symmetry(self):
        a, b = square(0, 0), square(7, 3)
        assert distance(a, b) == pytest.approx(distance(b, a))


class TestWithinDistance:
    def test_zero_distance_means_intersect(self):
        assert within_distance(square(0, 0), square(1, 1), 0.0)
        assert not within_distance(square(0, 0), square(5, 0), 0.0)

    def test_threshold_inclusive(self):
        assert within_distance(square(0, 0), square(5, 0), 3.0)
        assert not within_distance(square(0, 0), square(5, 0), 2.9)

    def test_negative_distance_is_false(self):
        assert not within_distance(square(0, 0), square(0, 0), -1.0)

    def test_mbr_prefilter_agrees_with_exact(self):
        # Shapes whose MBRs are close but whose boundaries are farther:
        # a thin diagonal-ish polygon vs a square.
        tri = Geometry.polygon([(0, 0), (10, 10), (10, 10.1), (0, 0.1)])
        target = square(8, 0, 1)
        exact = distance(tri, target)
        for d in (exact - 0.05, exact + 0.05):
            assert within_distance(tri, target, d) == (exact <= d)
