"""Unit tests for the SDO_GEOMETRY codec."""

import pytest

from repro.errors import SdoCodecError
from repro.geometry.geometry import Geometry
from repro.geometry.sdo import SdoGeometry, from_sdo, to_sdo


SQUARE = [(0, 0), (4, 0), (4, 4), (0, 4)]
HOLE = [(1, 1), (1, 3), (3, 3), (3, 1)]


class TestEncode:
    def test_point(self):
        sdo = to_sdo(Geometry.point(1, 2))
        assert sdo.gtype == 2001
        assert sdo.elem_info == (1, 1, 1)
        assert sdo.ordinates == (1.0, 2.0)

    def test_linestring(self):
        sdo = to_sdo(Geometry.linestring([(0, 0), (1, 1), (2, 0)]))
        assert sdo.gtype == 2002
        assert sdo.elem_info == (1, 2, 1)
        assert len(sdo.ordinates) == 6

    def test_polygon_closes_ring(self):
        sdo = to_sdo(Geometry.polygon(SQUARE))
        assert sdo.gtype == 2003
        assert sdo.elem_info == (1, 1003, 1)
        # 4 vertices + explicit closure = 5 coordinate pairs
        assert len(sdo.ordinates) == 10
        assert sdo.ordinates[:2] == sdo.ordinates[-2:]

    def test_polygon_with_hole_elem_info(self):
        sdo = to_sdo(Geometry.polygon(SQUARE, holes=[HOLE]))
        triplets = [sdo.elem_info[i : i + 3] for i in range(0, len(sdo.elem_info), 3)]
        assert triplets[0][1] == 1003
        assert triplets[1][1] == 2003

    def test_multipolygon(self):
        mp = Geometry.multipolygon(
            [(SQUARE, []), ([(10, 10), (12, 10), (12, 12), (10, 12)], [])]
        )
        sdo = to_sdo(mp)
        assert sdo.gtype == 2007
        assert len(sdo.elem_info) == 6


class TestRoundTrip:
    @pytest.mark.parametrize(
        "geom",
        [
            Geometry.point(3.5, -2.25),
            Geometry.linestring([(0, 0), (5, 5), (10, 0)]),
            Geometry.polygon(SQUARE),
            Geometry.polygon(SQUARE, holes=[HOLE]),
            Geometry.multipoint([(0, 0), (1, 2), (3, 4)]),
            Geometry.multilinestring([[(0, 0), (1, 1)], [(2, 2), (3, 3), (4, 2)]]),
            Geometry.multipolygon(
                [(SQUARE, [HOLE]), ([(10, 10), (12, 10), (12, 12), (10, 12)], [])]
            ),
        ],
    )
    def test_roundtrip_preserves_geometry(self, geom):
        assert from_sdo(to_sdo(geom)) == geom


class TestDecodeValidation:
    def test_rectangle_interpretation(self):
        sdo = SdoGeometry(2003, (1, 1003, 3), (0, 0, 4, 4))
        geom = from_sdo(sdo)
        assert geom.area == 16.0

    def test_bad_elem_info_length(self):
        with pytest.raises(SdoCodecError):
            SdoGeometry(2003, (1, 1003), (0, 0, 4, 4))

    def test_odd_ordinates(self):
        with pytest.raises(SdoCodecError):
            SdoGeometry(2002, (1, 2, 1), (0, 0, 1))

    def test_point_needs_two_ordinates(self):
        with pytest.raises(SdoCodecError):
            from_sdo(SdoGeometry(2001, (1, 1, 1), (0, 0, 1, 1)))

    def test_interior_before_exterior_rejected(self):
        sdo = SdoGeometry(2003, (1, 2003, 1), (0, 0, 0, 1, 1, 1, 1, 0, 0, 0))
        with pytest.raises(SdoCodecError):
            from_sdo(sdo)

    def test_unknown_gtype(self):
        with pytest.raises(SdoCodecError):
            from_sdo(SdoGeometry(2999, (1, 1, 1), (0, 0)))

    def test_bad_offsets(self):
        with pytest.raises(SdoCodecError):
            SdoGeometry(2003, (99, 1003, 1), (0, 0, 1, 0, 1, 1)).elements()
