"""Unit tests for the Geometry object model."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.geometry import Geometry, GeometryType, Ring


SQUARE = [(0, 0), (4, 0), (4, 4), (0, 4)]
HOLE = [(1, 1), (1, 3), (3, 3), (3, 1)]  # CW


class TestRing:
    def test_implicit_closure_normalisation(self):
        ring = Ring([(0, 0), (2, 0), (2, 2), (0, 0)])
        assert len(ring) == 3

    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Ring([(0, 0), (1, 1)])

    def test_signed_area_ccw_positive(self):
        assert Ring(SQUARE).signed_area == 16.0

    def test_signed_area_cw_negative(self):
        assert Ring(list(reversed(SQUARE))).signed_area == -16.0

    def test_oriented(self):
        cw = Ring(list(reversed(SQUARE)))
        assert cw.oriented(ccw=True).is_ccw
        assert not cw.oriented(ccw=False).is_ccw

    def test_contains_point_interior_boundary_exterior(self):
        ring = Ring(SQUARE)
        assert ring.contains_point(2, 2)
        assert ring.contains_point(0, 2)  # edge
        assert ring.contains_point(4, 4)  # vertex
        assert not ring.contains_point(5, 2)

    def test_contains_point_concave(self):
        # L-shaped ring: the notch is outside.
        ring = Ring([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
        assert ring.contains_point(1, 3)
        assert not ring.contains_point(3, 3)

    def test_is_convex(self):
        assert Ring(SQUARE).is_convex()
        assert not Ring([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)]).is_convex()

    def test_mbr(self):
        assert Ring(SQUARE).mbr.as_tuple() == (0, 0, 4, 4)


class TestPointAndLine:
    def test_point(self):
        p = Geometry.point(3, 4)
        assert p.geom_type is GeometryType.POINT
        assert p.mbr.as_tuple() == (3, 4, 3, 4)
        assert p.num_vertices == 1
        assert p.area == 0.0

    def test_point_rejects_nan(self):
        with pytest.raises(GeometryError):
            Geometry.point(float("nan"), 0)

    def test_linestring(self):
        ls = Geometry.linestring([(0, 0), (3, 4), (3, 8)])
        assert ls.geom_type is GeometryType.LINESTRING
        assert ls.length == pytest.approx(9.0)
        assert ls.num_vertices == 3
        assert ls.mbr.as_tuple() == (0, 0, 3, 8)

    def test_linestring_needs_two_points(self):
        with pytest.raises(GeometryError):
            Geometry.linestring([(1, 1)])

    def test_contains_point_on_line(self):
        ls = Geometry.linestring([(0, 0), (4, 0)])
        assert ls.contains_point(2, 0)
        assert not ls.contains_point(2, 1)


class TestPolygon:
    def test_simple_polygon(self):
        poly = Geometry.polygon(SQUARE)
        assert poly.geom_type is GeometryType.POLYGON
        assert poly.area == 16.0
        assert poly.length == 16.0
        assert poly.exterior.is_ccw

    def test_orientation_normalised(self):
        poly = Geometry.polygon(list(reversed(SQUARE)), holes=[list(reversed(HOLE))])
        assert poly.exterior.is_ccw
        assert not poly.holes[0].is_ccw

    def test_polygon_with_hole_area(self):
        poly = Geometry.polygon(SQUARE, holes=[HOLE])
        assert poly.area == 16.0 - 4.0

    def test_hole_outside_rejected(self):
        with pytest.raises(GeometryError):
            Geometry.polygon(SQUARE, holes=[[(10, 10), (11, 10), (11, 11)]])

    def test_contains_point_respects_holes(self):
        poly = Geometry.polygon(SQUARE, holes=[HOLE])
        assert poly.contains_point(0.5, 0.5)
        assert not poly.contains_point(2, 2)  # inside the hole
        assert poly.contains_point(1, 1)  # on the hole boundary
        assert poly.contains_point(0, 0)  # on the exterior boundary

    def test_rectangle_factory(self):
        rect = Geometry.rectangle(0, 0, 2, 3)
        assert rect.area == 6.0
        with pytest.raises(GeometryError):
            Geometry.rectangle(2, 0, 0, 3)

    def test_from_mbr(self):
        from repro.geometry.mbr import MBR

        assert Geometry.from_mbr(MBR(0, 0, 2, 2)).geom_type is GeometryType.POLYGON
        assert Geometry.from_mbr(MBR(1, 1, 1, 1)).geom_type is GeometryType.POINT
        assert Geometry.from_mbr(MBR(0, 1, 4, 1)).geom_type is GeometryType.LINESTRING


class TestMultiGeometries:
    def test_multipoint(self):
        mp = Geometry.multipoint([(0, 0), (1, 1), (2, 2)])
        assert mp.geom_type is GeometryType.MULTIPOINT
        assert mp.num_vertices == 3
        assert len(list(mp.simple_parts())) == 3

    def test_multipolygon_area(self):
        mp = Geometry.multipolygon(
            [(SQUARE, []), ([(10, 10), (12, 10), (12, 12), (10, 12)], [])]
        )
        assert mp.area == 16.0 + 4.0
        assert mp.mbr.as_tuple() == (0, 0, 12, 12)

    def test_collection_mixed(self):
        c = Geometry.collection([Geometry.point(0, 0), Geometry.polygon(SQUARE)])
        assert c.geom_type is GeometryType.COLLECTION
        assert c.area == 16.0
        assert len(list(c.simple_parts())) == 2

    def test_empty_multi_rejected(self):
        with pytest.raises(GeometryError):
            Geometry.multipoint([])
        with pytest.raises(GeometryError):
            Geometry.collection([])


class TestDecomposition:
    def test_boundary_edges_polygon_with_hole(self):
        poly = Geometry.polygon(SQUARE, holes=[HOLE])
        edges = list(poly.boundary_edges())
        assert len(edges) == 8  # 4 exterior + 4 hole

    def test_vertices_iteration(self):
        poly = Geometry.polygon(SQUARE, holes=[HOLE])
        assert len(list(poly.vertices())) == 8

    def test_equality_and_hash(self):
        a = Geometry.polygon(SQUARE)
        b = Geometry.polygon(SQUARE)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Geometry.polygon(HOLE)
