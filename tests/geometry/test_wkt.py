"""Unit tests for WKT parsing and serialisation."""

import pytest

from repro.errors import WktError
from repro.geometry.geometry import Geometry, GeometryType
from repro.geometry.wkt import from_wkt, to_wkt


class TestParse:
    def test_point(self):
        g = from_wkt("POINT (3 4)")
        assert g.geom_type is GeometryType.POINT
        assert g.coords == ((3.0, 4.0),)

    def test_case_insensitive_tag(self):
        assert from_wkt("point (1 2)").geom_type is GeometryType.POINT

    def test_scientific_notation(self):
        g = from_wkt("POINT (1e2 -2.5E-1)")
        assert g.coords == ((100.0, -0.25),)

    def test_linestring(self):
        g = from_wkt("LINESTRING (0 0, 1 1, 2 0)")
        assert g.num_vertices == 3

    def test_polygon_with_hole(self):
        g = from_wkt(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 2 4, 4 4, 4 2, 2 2))"
        )
        assert g.geom_type is GeometryType.POLYGON
        assert len(g.holes) == 1
        assert g.area == 100.0 - 4.0

    def test_multipoint_both_syntaxes(self):
        a = from_wkt("MULTIPOINT (1 2, 3 4)")
        b = from_wkt("MULTIPOINT ((1 2), (3 4))")
        assert a == b

    def test_multipolygon(self):
        g = from_wkt(
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))"
        )
        assert g.geom_type is GeometryType.MULTIPOLYGON
        assert len(g.parts) == 2

    def test_geometrycollection(self):
        g = from_wkt("GEOMETRYCOLLECTION (POINT (1 1), LINESTRING (0 0, 1 1))")
        assert g.geom_type is GeometryType.COLLECTION
        assert len(g.parts) == 2

    def test_errors(self):
        with pytest.raises(WktError):
            from_wkt("POINT 1 2")
        with pytest.raises(WktError):
            from_wkt("POINT (1 2) garbage")
        with pytest.raises(WktError):
            from_wkt("TRIANGLE ((0 0, 1 0, 0 1, 0 0))")
        with pytest.raises(WktError):
            from_wkt("POINT (1 2")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "wkt",
        [
            "POINT (3 4)",
            "LINESTRING (0 0, 1 1, 2 0)",
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 2 4, 4 4, 4 2, 2 2))",
            "MULTIPOINT ((1 2), (3 4))",
            "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))",
            "GEOMETRYCOLLECTION (POINT (1 1), POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0)))",
        ],
    )
    def test_geometry_survives_roundtrip(self, wkt):
        geom = from_wkt(wkt)
        assert from_wkt(to_wkt(geom)) == geom

    def test_canonical_output(self):
        assert to_wkt(from_wkt("point(1 2)")) == "POINT (1 2)"

    def test_float_formatting(self):
        assert to_wkt(Geometry.point(1.5, 2)) == "POINT (1.5 2)"
