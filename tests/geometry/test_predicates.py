"""Unit tests for the exact topological predicates."""

import pytest

from repro.errors import OperatorError
from repro.geometry.geometry import Geometry
from repro.geometry.predicates import (
    contains,
    disjoint,
    equals,
    inside,
    intersects,
    relate,
    touches,
)


def square(x, y, s=2.0):
    return Geometry.rectangle(x, y, x + s, y + s)


class TestIntersects:
    def test_overlapping_polygons(self):
        assert intersects(square(0, 0), square(1, 1))

    def test_disjoint_polygons(self):
        assert not intersects(square(0, 0), square(5, 5))

    def test_edge_adjacent_polygons(self):
        assert intersects(square(0, 0), square(2, 0))

    def test_corner_touching_polygons(self):
        assert intersects(square(0, 0), square(2, 2))

    def test_containment_counts_as_intersection(self):
        assert intersects(square(0, 0, 10), square(2, 2, 1))
        assert intersects(square(2, 2, 1), square(0, 0, 10))

    def test_point_in_polygon(self):
        assert intersects(Geometry.point(1, 1), square(0, 0))
        assert not intersects(Geometry.point(9, 9), square(0, 0))

    def test_point_point(self):
        assert intersects(Geometry.point(1, 1), Geometry.point(1, 1))
        assert not intersects(Geometry.point(1, 1), Geometry.point(1, 2))

    def test_line_crosses_polygon(self):
        line = Geometry.linestring([(-1, 1), (3, 1)])
        assert intersects(line, square(0, 0))

    def test_line_fully_inside_polygon(self):
        line = Geometry.linestring([(0.5, 0.5), (1.5, 1.5)])
        assert intersects(line, square(0, 0))
        assert intersects(square(0, 0), line)

    def test_line_line(self):
        a = Geometry.linestring([(0, 0), (2, 2)])
        b = Geometry.linestring([(0, 2), (2, 0)])
        c = Geometry.linestring([(5, 5), (6, 6)])
        assert intersects(a, b)
        assert not intersects(a, c)

    def test_hole_blocks_intersection(self):
        donut = Geometry.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (2, 8), (8, 8), (8, 2)]],
        )
        inner = square(4, 4, 1)  # entirely inside the hole
        assert not intersects(donut, inner)
        crossing = square(1, 1, 3)  # straddles the hole boundary
        assert intersects(donut, crossing)

    def test_multipolygon_parts(self):
        mp = Geometry.multipolygon(
            [([(0, 0), (1, 0), (1, 1), (0, 1)], []), ([(5, 5), (6, 5), (6, 6), (5, 6)], [])]
        )
        assert intersects(mp, square(5.5, 5.5, 0.2))
        assert not intersects(mp, square(3, 3, 0.5))


class TestContainsInside:
    def test_proper_containment(self):
        assert contains(square(0, 0, 10), square(2, 2, 2))
        assert inside(square(2, 2, 2), square(0, 0, 10))

    def test_not_contained_when_overlapping(self):
        assert not contains(square(0, 0, 4), square(2, 2, 4))

    def test_boundary_contact_allowed(self):
        # COVERS semantics: shared edges still count as containment.
        assert contains(square(0, 0, 4), square(0, 0, 2))

    def test_hole_breaks_containment(self):
        donut = Geometry.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (4, 6), (6, 6), (6, 4)]],
        )
        assert not contains(donut, square(4.4, 4.4, 1.0))
        assert contains(donut, square(1, 1, 2))

    def test_point_containment(self):
        assert contains(square(0, 0), Geometry.point(1, 1))
        assert not contains(square(0, 0), Geometry.point(5, 5))

    def test_line_containment(self):
        assert contains(square(0, 0, 4), Geometry.linestring([(1, 1), (3, 3)]))
        assert not contains(square(0, 0, 4), Geometry.linestring([(1, 1), (9, 9)]))


class TestTouchesEqualsDisjoint:
    def test_edge_touch(self):
        assert touches(square(0, 0), square(2, 0))

    def test_corner_touch(self):
        assert touches(square(0, 0), square(2, 2))

    def test_overlap_is_not_touch(self):
        assert not touches(square(0, 0), square(1, 1))

    def test_disjoint_is_not_touch(self):
        assert not touches(square(0, 0), square(5, 5))

    def test_equals_ignores_vertex_rotation(self):
        a = Geometry.polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Geometry.polygon([(2, 0), (2, 2), (0, 2), (0, 0)])
        assert equals(a, b)

    def test_equals_differs(self):
        assert not equals(square(0, 0), square(0, 0, 3))

    def test_disjoint(self):
        assert disjoint(square(0, 0), square(5, 5))
        assert not disjoint(square(0, 0), square(1, 1))


class TestRelateMasks:
    def test_anyinteract(self):
        assert relate(square(0, 0), square(1, 1), "ANYINTERACT")
        assert relate(square(0, 0), square(1, 1), "intersect")

    def test_mask_union(self):
        # TOUCH fails but INSIDE holds for the second mask member.
        assert relate(square(2, 2, 2), square(0, 0, 10), "TOUCH+INSIDE")

    def test_unknown_mask(self):
        with pytest.raises(OperatorError):
            relate(square(0, 0), square(1, 1), "FROBNICATE")

    def test_disjoint_mask(self):
        assert relate(square(0, 0), square(9, 9), "DISJOINT")
