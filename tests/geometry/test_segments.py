"""Unit tests for planar segment primitives."""

import math

import pytest

from repro.geometry.segments import (
    on_segment,
    orientation,
    point_segment_distance,
    segment_intersection_point,
    segment_segment_distance,
    segments_intersect,
)


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation((0, 0), (1, 0), (1, 1)) == 1

    def test_clockwise(self):
        assert orientation((0, 0), (1, 1), (1, 0)) == -1

    def test_collinear(self):
        assert orientation((0, 0), (1, 1), (2, 2)) == 0

    def test_near_collinear_with_large_coordinates(self):
        # Tolerance scales with magnitude: these should still read collinear.
        assert orientation((1e6, 1e6), (2e6, 2e6), (3e6, 3e6)) == 0


class TestOnSegment:
    def test_midpoint(self):
        assert on_segment((1, 1), (0, 0), (2, 2))

    def test_endpoint(self):
        assert on_segment((0, 0), (0, 0), (2, 2))

    def test_collinear_but_outside(self):
        assert not on_segment((3, 3), (0, 0), (2, 2))

    def test_off_line(self):
        assert not on_segment((1, 0), (0, 0), (2, 2))


class TestSegmentsIntersect:
    def test_proper_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_shared_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_t_junction(self):
        assert segments_intersect((0, 0), (2, 0), (1, -1), (1, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_parallel_non_collinear(self):
        assert not segments_intersect((0, 0), (2, 0), (0, 1), (2, 1))


class TestIntersectionPoint:
    def test_simple_cross(self):
        p = segment_intersection_point((0, 0), (2, 2), (0, 2), (2, 0))
        assert p == pytest.approx((1, 1))

    def test_parallel_returns_none(self):
        assert segment_intersection_point((0, 0), (1, 0), (0, 1), (1, 1)) is None

    def test_lines_cross_outside_segments(self):
        assert segment_intersection_point((0, 0), (1, 1), (3, 0), (4, -1)) is None

    def test_endpoint_touch(self):
        p = segment_intersection_point((0, 0), (1, 1), (1, 1), (2, 0))
        assert p == pytest.approx((1, 1))


class TestDistances:
    def test_point_to_segment_perpendicular(self):
        assert point_segment_distance((1, 1), (0, 0), (2, 0)) == 1.0

    def test_point_to_segment_beyond_endpoint(self):
        assert point_segment_distance((4, 0), (0, 0), (2, 0)) == 2.0

    def test_point_to_degenerate_segment(self):
        assert point_segment_distance((3, 4), (0, 0), (0, 0)) == 5.0

    def test_segment_distance_intersecting_is_zero(self):
        assert segment_segment_distance((0, 0), (2, 2), (0, 2), (2, 0)) == 0.0

    def test_segment_distance_parallel(self):
        assert segment_segment_distance((0, 0), (2, 0), (0, 3), (2, 3)) == 3.0

    def test_segment_distance_skew(self):
        d = segment_segment_distance((0, 0), (1, 0), (3, 1), (3, 4))
        assert d == pytest.approx(math.hypot(2, 1))
