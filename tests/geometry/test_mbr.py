"""Unit tests for MBR algebra."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.mbr import EMPTY_MBR, MBR, mbr_of_points, union_all


class TestConstruction:
    def test_basic_properties(self):
        m = MBR(0, 1, 4, 7)
        assert m.width == 4
        assert m.height == 6
        assert m.area == 24
        assert m.perimeter == 20
        assert m.center == (2.0, 4.0)

    def test_degenerate_point_mbr_is_valid(self):
        m = MBR(3, 3, 3, 3)
        assert m.area == 0
        assert not m.is_empty

    def test_inverted_bounds_rejected(self):
        with pytest.raises(GeometryError):
            MBR(5, 0, 1, 2)
        with pytest.raises(GeometryError):
            MBR(0, 5, 2, 1)

    def test_empty_sentinel(self):
        assert EMPTY_MBR.is_empty
        assert EMPTY_MBR.area == 0.0
        assert EMPTY_MBR.width == 0.0
        with pytest.raises(GeometryError):
            _ = EMPTY_MBR.center

    def test_as_tuple_and_corners(self):
        m = MBR(1, 2, 3, 4)
        assert m.as_tuple() == (1, 2, 3, 4)
        assert list(m.corners()) == [(1, 2), (3, 2), (3, 4), (1, 4)]


class TestPredicates:
    def test_overlapping(self):
        assert MBR(0, 0, 4, 4).intersects(MBR(2, 2, 6, 6))

    def test_edge_touch_counts_as_intersection(self):
        assert MBR(0, 0, 2, 2).intersects(MBR(2, 0, 4, 2))

    def test_corner_touch_counts(self):
        assert MBR(0, 0, 2, 2).intersects(MBR(2, 2, 4, 4))

    def test_disjoint(self):
        assert not MBR(0, 0, 1, 1).intersects(MBR(2, 2, 3, 3))

    def test_empty_never_intersects(self):
        assert not EMPTY_MBR.intersects(MBR(0, 0, 1, 1))
        assert not MBR(0, 0, 1, 1).intersects(EMPTY_MBR)

    def test_contains(self):
        outer = MBR(0, 0, 10, 10)
        assert outer.contains(MBR(2, 2, 5, 5))
        assert outer.contains(outer)
        assert not MBR(2, 2, 5, 5).contains(outer)

    def test_contains_point(self):
        m = MBR(0, 0, 2, 2)
        assert m.contains_point(1, 1)
        assert m.contains_point(0, 0)  # boundary inclusive
        assert not m.contains_point(3, 1)

    def test_within_distance(self):
        a = MBR(0, 0, 1, 1)
        b = MBR(3, 0, 4, 1)
        assert a.within_distance(b, 2.0)
        assert not a.within_distance(b, 1.9)


class TestMeasures:
    def test_distance_overlapping_is_zero(self):
        assert MBR(0, 0, 4, 4).distance(MBR(2, 2, 6, 6)) == 0.0

    def test_distance_horizontal(self):
        assert MBR(0, 0, 1, 1).distance(MBR(3, 0, 4, 1)) == 2.0

    def test_distance_diagonal(self):
        d = MBR(0, 0, 1, 1).distance(MBR(4, 5, 6, 7))
        assert d == pytest.approx(math.hypot(3, 4))

    def test_distance_to_point(self):
        m = MBR(0, 0, 2, 2)
        assert m.distance_to_point(1, 1) == 0.0
        assert m.distance_to_point(5, 2) == 3.0

    def test_intersection_area(self):
        assert MBR(0, 0, 4, 4).intersection_area(MBR(2, 2, 6, 6)) == 4.0
        assert MBR(0, 0, 1, 1).intersection_area(MBR(5, 5, 6, 6)) == 0.0

    def test_enlargement(self):
        base = MBR(0, 0, 2, 2)
        assert base.enlargement(MBR(0, 0, 1, 1)) == 0.0
        assert base.enlargement(MBR(0, 0, 4, 2)) == 4.0


class TestConstructive:
    def test_union(self):
        u = MBR(0, 0, 1, 1).union(MBR(3, 4, 5, 6))
        assert u.as_tuple() == (0, 0, 5, 6)

    def test_union_with_empty_is_identity(self):
        m = MBR(1, 2, 3, 4)
        assert m.union(EMPTY_MBR) == m
        assert EMPTY_MBR.union(m) == m

    def test_intersection(self):
        i = MBR(0, 0, 4, 4).intersection(MBR(2, 2, 6, 6))
        assert i.as_tuple() == (2, 2, 4, 4)

    def test_intersection_disjoint_is_empty(self):
        assert MBR(0, 0, 1, 1).intersection(MBR(5, 5, 6, 6)).is_empty

    def test_expand(self):
        assert MBR(2, 2, 4, 4).expand(1).as_tuple() == (1, 1, 5, 5)
        assert EMPTY_MBR.expand(1).is_empty

    def test_quadrants_cover_and_partition(self):
        m = MBR(0, 0, 4, 4)
        quads = m.quadrants()
        assert len(quads) == 4
        assert union_all(quads) == m
        assert sum(q.area for q in quads) == pytest.approx(m.area)
        # SW, SE, NW, NE order
        assert quads[0].as_tuple() == (0, 0, 2, 2)
        assert quads[1].as_tuple() == (2, 0, 4, 2)
        assert quads[2].as_tuple() == (0, 2, 2, 4)
        assert quads[3].as_tuple() == (2, 2, 4, 4)


class TestHelpers:
    def test_mbr_of_points(self):
        m = mbr_of_points([(1, 5), (-2, 3), (4, 0)])
        assert m.as_tuple() == (-2, 0, 4, 5)

    def test_mbr_of_no_points_is_empty(self):
        assert mbr_of_points([]).is_empty

    def test_union_all_empty_list(self):
        assert union_all([]).is_empty
