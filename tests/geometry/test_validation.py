"""Unit tests for geometry validation."""

from repro.geometry.geometry import Geometry
from repro.geometry.validation import is_valid, validate


class TestValidGeometries:
    def test_simple_shapes_are_valid(self):
        assert is_valid(Geometry.point(1, 2))
        assert is_valid(Geometry.linestring([(0, 0), (1, 1)]))
        assert is_valid(Geometry.rectangle(0, 0, 2, 2))

    def test_polygon_with_hole_valid(self):
        poly = Geometry.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (2, 4), (4, 4), (4, 2)]],
        )
        assert validate(poly) == []


class TestInvalidGeometries:
    def test_bowtie_self_intersection(self):
        # Construct via internal representation (factories can't stop this
        # shape since each edge pair check is what validation is for).
        from repro.geometry.geometry import GeometryType, Ring

        bowtie = Geometry(
            GeometryType.POLYGON,
            exterior=Ring([(0, 0), (2, 2), (2, 0), (0, 2)]),
        )
        problems = validate(bowtie)
        assert any("self-intersect" in p for p in problems)

    def test_wrong_exterior_orientation_detected(self):
        from repro.geometry.geometry import GeometryType, Ring

        cw = Geometry(
            GeometryType.POLYGON,
            exterior=Ring([(0, 0), (0, 2), (2, 2), (2, 0)]),
        )
        problems = validate(cw)
        assert any("counter-clockwise" in p for p in problems)

    def test_repeated_consecutive_vertex_in_line(self):
        from repro.geometry.geometry import GeometryType

        line = Geometry(
            GeometryType.LINESTRING, coords=((0.0, 0.0), (0.0, 0.0), (1.0, 1.0))
        )
        problems = validate(line)
        assert any("repeated" in p for p in problems)

    def test_hole_vertex_outside_exterior(self):
        from repro.geometry.geometry import GeometryType, Ring

        poly = Geometry(
            GeometryType.POLYGON,
            exterior=Ring([(0, 0), (4, 0), (4, 4), (0, 4)]),
            holes=(Ring([(3, 3), (3, 6), (6, 6), (6, 3)]).oriented(ccw=False),),
        )
        problems = validate(poly)
        assert any("outside exterior" in p for p in problems)


class TestDatasetValidity:
    def test_generated_counties_valid(self, small_counties):
        for geom in small_counties[:40]:
            assert validate(geom) == []

    def test_generated_stars_valid(self, small_stars):
        for geom in small_stars[:40]:
            assert validate(geom) == []
