"""Sanity tests for the exception hierarchy."""

import pytest

import repro.errors as errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        exception_types = [
            getattr(errors, name)
            for name in dir(errors)
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), Exception)
        ]
        assert len(exception_types) > 15
        for exc_type in exception_types:
            assert issubclass(exc_type, errors.ReproError)

    def test_subsystem_groupings(self):
        assert issubclass(errors.WktError, errors.GeometryError)
        assert issubclass(errors.SdoCodecError, errors.GeometryError)
        assert issubclass(errors.PageError, errors.StorageError)
        assert issubclass(errors.RowIdError, errors.StorageError)
        assert issubclass(errors.BTreeError, errors.StorageError)
        assert issubclass(errors.SqlSyntaxError, errors.SqlError)
        assert issubclass(errors.SqlPlanError, errors.SqlError)
        assert issubclass(errors.SqlError, errors.EngineError)
        assert issubclass(errors.CursorError, errors.EngineError)
        assert issubclass(errors.TableFunctionError, errors.EngineError)

    def test_single_catch_all(self):
        """A caller can wrap the whole library with one except clause."""
        from repro import Database

        db = Database()
        with pytest.raises(errors.ReproError):
            db.table("missing")
        with pytest.raises(errors.ReproError):
            db.sql("not sql at all")
