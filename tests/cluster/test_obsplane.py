"""End-to-end observability on a live cluster: stitched traces reach the
client, the metrics plane scrapes cluster gauges, SLOs evaluate.

Real forked shard processes; tests keep the cluster small (2 shards,
few rows) so the suite stays fast.
"""

import random

import pytest

from repro import Geometry
from repro.cluster.local import LocalCluster
from repro.geometry.mbr import MBR
from repro.geometry.wkt import to_wkt
from repro.obs import trace
from repro.obs.trace import build_tree

BOX = MBR(0.0, 0.0, 100.0, 100.0)
FULL_WINDOW = "POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))"


def _rows(n=80, seed=11):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        x, y = rng.uniform(0, 95), rng.uniform(0, 95)
        rect = Geometry.rectangle(x, y, x + 2.0, y + 2.0)
        rows.append([i, to_wkt(rect)])
    return rows


@pytest.fixture
def traced_cluster():
    # enable() BEFORE start(): forked shards inherit the enabled tracer.
    trace.enable()
    cluster = LocalCluster(
        2,
        BOX,
        n_entries_hint=80,
        halo=2.0,
        replicated=True,  # so the replication-lag gauges have a source
        health_check=True,  # so the per-shard up/down gauges have a source
        obs_plane=True,
        obs_interval=0.05,
    )
    try:
        cluster.start()
        cluster.create_spatial_table("shapes")
        cluster.load("shapes", _rows())
        yield cluster
    finally:
        cluster.stop()
        trace.disable()


class TestDistributedTrace:
    def test_window_query_returns_stitched_tree(self, traced_cluster):
        with traced_cluster.client() as client:
            session = client.start(
                "window",
                {
                    "table": "shapes",
                    "column": "geom",
                    "operator": "SDO_FILTER",
                    "wkt": FULL_WINDOW,  # full domain: hits every shard
                },
            )
            assert session.trace_id is not None
            rows = session.all()
            stitched = client.trace(session.session_id)
        assert rows
        assert stitched["trace"] == session.trace_id
        names = {s["name"] for s in stitched["spans"]}
        assert "router.scatter" in names  # router-side span
        assert "server.session" in names  # shard-side spans, adopted
        shards = {
            s["tags"].get("shard")
            for s in stitched["spans"]
            if s["tags"].get("shard") is not None
        }
        assert shards == {0, 1}  # full-domain window fans out to both
        # One connected tree, rooted at the router's client session span.
        assert len(stitched["tree"]) == 1
        rebuilt = build_tree(stitched["spans"])
        assert len(rebuilt) == 1

    def test_trace_meter_sums_match_stats_charges(self, traced_cluster):
        """Charge identity end to end: the stitched trace's per-unit
        meter deltas never exceed what the shard meters actually
        charged — tracing attributes existing work, adds none."""
        with traced_cluster.client() as client:
            session = client.start(
                "window",
                {
                    "table": "shapes",
                    "column": "geom",
                    "operator": "SDO_FILTER",
                    "wkt": FULL_WINDOW,
                },
            )
            session.all()
            stitched = client.trace(session.session_id)
            stats = client.stats(raw=True)
        # Sum only the shard-side session roots: nested spans overlap
        # their parents' windows, so summing every span double-counts.
        span_units = {}
        for s in stitched["spans"]:
            if s["name"] != "server.session":
                continue
            for unit, n in (s.get("meter_delta") or {}).items():
                span_units[unit] = span_units.get(unit, 0.0) + n
        assert span_units  # the query charged work, spans captured it
        meter_units = {}
        for key, section in stats["shards"].items():
            if key == "router":
                continue
            for units in (section.get("meters") or {}).values():
                for unit, n in units.items():
                    meter_units[unit] = meter_units.get(unit, 0.0) + n
        for unit, n in span_units.items():
            assert n <= meter_units.get(unit, 0.0) + 1e-9


class TestClusterPlane:
    def test_plane_scrapes_cluster_gauges(self, traced_cluster):
        with traced_cluster.client() as client:
            client.start(
                "window",
                {
                    "table": "shapes",
                    "column": "geom",
                    "operator": "SDO_FILTER",
                    "wkt": FULL_WINDOW,
                },
            ).all()
        plane = traced_cluster.plane
        assert plane is not None
        plane.scrape_once()
        store = plane.store
        assert store.latest("cluster.scatter.fanout") is not None
        assert store.latest("cluster.replication.lag_seconds") is not None
        for shard in (0, 1):
            assert store.latest("cluster.health.up", {"shard": shard}) == 1.0
            assert store.latest("cluster.breaker.state", {"shard": shard}) == 0.0
        assert store.latest("server.requests_total") is not None
        assert plane.collector_errors == {}

    def test_slos_evaluate_and_export(self, traced_cluster):
        plane = traced_cluster.plane
        plane.scrape_once()
        burns = plane.engine.burn_rates()
        assert set(burns) == {"availability", "p99-latency", "replication-lag"}
        text = plane.prometheus_text()
        assert "repro_slo_objective" in text
        assert 'repro_slo_alert_firing{severity="page",slo="availability"} 0' in text

    def test_plane_off_by_default(self):
        with LocalCluster(2, BOX, n_entries_hint=8, halo=2.0) as cluster:
            assert cluster.plane is None
