"""Unit tests for the health plane: breaker state machine with a fake
clock, heartbeat escalation with an injected probe, and the failover
coordinator's exactly-once recovery dispatch."""

import time

import pytest

from repro.cluster.health import (
    CLOSED,
    DOWN,
    HALF_OPEN,
    OPEN,
    SUSPECT,
    UP,
    CircuitBreaker,
    FailoverCoordinator,
    HealthMonitor,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def test_closed_until_threshold_then_opens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1.0, clock=clock)
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # non-consecutive failures don't trip

    def test_cooldown_admits_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(0.99)
        assert not breaker.allow()
        clock.advance(0.02)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        assert not breaker.allow()

    def test_probe_success_recloses(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_rearms_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2
        # the cooldown restarts from the probe failure, not the first open
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.6)
        assert breaker.allow()

    def test_transitions_are_recorded(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_success()
        path = [(old, new) for _t, old, new in breaker.transitions]
        assert path == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_status_snapshot(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=0.5)
        breaker.record_failure()
        status = breaker.status()
        assert status["state"] == CLOSED
        assert status["failures"] == 1
        assert status["threshold"] == 2


class TestHealthMonitor:
    def _monitor(self, healthy, **kwargs):
        """Monitor over two fake shards; ``healthy`` is a mutable set."""
        kwargs.setdefault("suspect_after", 1)
        kwargs.setdefault("down_after", 3)
        return HealthMonitor(
            {0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2)},
            probe=lambda shard: shard in healthy,
            **kwargs,
        )

    def test_misses_escalate_suspect_then_down(self):
        healthy = {0, 1}
        monitor = self._monitor(healthy)
        monitor.poll_once()
        assert monitor.state_of(1) == UP
        healthy.discard(1)
        monitor.poll_once()
        assert monitor.state_of(1) == SUSPECT
        monitor.poll_once()
        assert monitor.state_of(1) == SUSPECT
        monitor.poll_once()
        assert monitor.state_of(1) == DOWN
        assert monitor.state_of(0) == UP  # the healthy shard is untouched

    def test_recovery_snaps_back_to_up(self):
        healthy = set()
        monitor = self._monitor(healthy)
        for _ in range(3):
            monitor.poll_once()
        assert monitor.state_of(0) == DOWN
        healthy.add(0)
        monitor.poll_once()
        assert monitor.state_of(0) == UP

    def test_subscribers_see_transitions(self):
        healthy = {0, 1}
        monitor = self._monitor(healthy)
        seen = []
        monitor.subscribe(lambda shard, old, new: seen.append((shard, old, new)))
        healthy.discard(0)
        for _ in range(3):
            monitor.poll_once()
        healthy.add(0)
        monitor.poll_once()
        assert (0, UP, SUSPECT) in seen
        assert (0, SUSPECT, DOWN) in seen
        assert (0, DOWN, UP) in seen
        assert not any(shard == 1 for shard, _o, _n in seen)

    def test_broken_subscriber_does_not_stop_heartbeats(self):
        healthy = {0, 1}
        monitor = self._monitor(healthy)

        def explode(shard, old, new):
            raise RuntimeError("boom")

        monitor.subscribe(explode)
        healthy.discard(0)
        for _ in range(3):
            monitor.poll_once()
        assert monitor.state_of(0) == DOWN

    def test_events_record_transitions_with_timestamps(self):
        healthy = {0, 1}
        monitor = self._monitor(healthy)
        healthy.discard(1)
        for _ in range(3):
            monitor.poll_once()
        kinds = [
            (e["shard"], e["old"], e["new"])
            for e in monitor.events
            if e["kind"] == "transition"
        ]
        assert kinds == [(1, UP, SUSPECT), (1, SUSPECT, DOWN)]
        assert all("t_mono" in e and "t_wall" in e for e in monitor.events)

    def test_status_view(self):
        healthy = {0}
        monitor = self._monitor(healthy)
        monitor.poll_once()
        status = monitor.status()
        assert status["0"]["state"] == UP
        assert status["1"]["state"] == SUSPECT
        assert status["1"]["misses"] == 1

    def test_down_after_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor({0: ("h", 1)}, suspect_after=3, down_after=1)

    def test_double_start_rejected(self):
        monitor = self._monitor({0, 1}, interval=0.01)
        monitor.start()
        try:
            with pytest.raises(RuntimeError):
                monitor.start()
        finally:
            monitor.stop()


class TestFailoverCoordinator:
    def _down(self, monitor, healthy, shard):
        healthy.discard(shard)
        for _ in range(3):
            monitor.poll_once()

    def test_action_runs_once_and_retargets_monitor(self):
        healthy = {0, 1}
        monitor = HealthMonitor(
            {0: ("127.0.0.1", 1), 1: ("127.0.0.1", 2)},
            probe=lambda shard: shard in healthy,
            suspect_after=1,
            down_after=3,
        )
        calls = []

        def recover(shard):
            calls.append(shard)
            healthy.add(shard)
            return ("127.0.0.1", 9999)

        coordinator = FailoverCoordinator(monitor, {1: recover})
        self._down(monitor, healthy, 1)
        assert coordinator.wait_idle(5.0)
        assert calls == [1]
        assert monitor.status()["1"]["address"] == ["127.0.0.1", 9999]
        kinds = [e["kind"] for e in coordinator.events]
        assert kinds == ["recovery_started", "recovery_done"]
        # retarget is logged on the monitor side too
        assert any(e["kind"] == "retarget" for e in monitor.events)

    def test_no_action_shard_logs_and_stays_down(self):
        healthy = {0}
        monitor = HealthMonitor(
            {0: ("127.0.0.1", 1)},
            probe=lambda shard: shard in healthy,
            suspect_after=1,
            down_after=2,
        )
        coordinator = FailoverCoordinator(monitor, {})
        self._down(monitor, healthy, 0)
        assert monitor.state_of(0) == DOWN
        assert [e["kind"] for e in coordinator.events] == ["no_action"]

    def test_failed_action_is_recorded(self):
        healthy = {0}
        monitor = HealthMonitor(
            {0: ("127.0.0.1", 1)},
            probe=lambda shard: shard in healthy,
            suspect_after=1,
            down_after=2,
        )

        def explode(shard):
            raise RuntimeError("promotion failed")

        coordinator = FailoverCoordinator(monitor, {0: explode})
        self._down(monitor, healthy, 0)
        assert coordinator.wait_idle(5.0)
        kinds = [e["kind"] for e in coordinator.events]
        assert kinds == ["recovery_started", "recovery_failed"]
        assert "promotion failed" in coordinator.events[-1]["error"]

    def test_second_down_while_recovering_is_coalesced(self):
        healthy = {0}
        started = []
        release = []

        def slow_recover(shard):
            started.append(shard)
            deadline = time.monotonic() + 5.0
            while not release and time.monotonic() < deadline:
                time.sleep(0.01)
            healthy.add(shard)
            return None

        monitor = HealthMonitor(
            {0: ("127.0.0.1", 1)},
            probe=lambda shard: shard in healthy,
            suspect_after=1,
            down_after=2,
        )
        coordinator = FailoverCoordinator(monitor, {0: slow_recover})
        self._down(monitor, healthy, 0)
        # flap: back up briefly, then down again while recovery is in flight
        healthy.add(0)
        monitor.poll_once()
        healthy.discard(0)
        for _ in range(2):
            monitor.poll_once()
        release.append(True)
        assert coordinator.wait_idle(5.0)
        assert started == [0]  # the in-flight recovery absorbed the flap
