"""Scatter-gather behavior: fan-out kinds, partial failure, stats rollup."""

import random

import pytest

from repro import Database, Geometry
from repro.cluster.local import LocalCluster
from repro.geometry.mbr import MBR
from repro.geometry.wkt import to_wkt
from repro.server.client import RemoteError
from repro.server.protocol import ERR_SHARD_FAILED

BOX = MBR(0.0, 0.0, 100.0, 100.0)
N_ROWS = 100


def make_rows(n=N_ROWS, seed=5):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        x, y = rng.uniform(0, 94), rng.uniform(0, 94)
        rect = Geometry.rectangle(
            x, y, x + rng.uniform(0.3, 3.0), y + rng.uniform(0.3, 3.0)
        )
        rows.append([i, to_wkt(rect)])
    return rows


def reference_db(rows):
    db = Database()
    db.sql("create table shapes (id number, geom sdo_geometry)")
    db.sql(
        "create index shapes_sidx on shapes(geom) "
        "indextype is spatial_index parameters ('kind=RTREE')"
    )
    for row_id, wkt in rows:
        db.sql(f"insert into shapes values ({row_id}, sdo_geometry('{wkt}'))")
    return db


@pytest.fixture(scope="module")
def fleet():
    rows = make_rows()
    ref = reference_db(rows)
    with LocalCluster(3, BOX, n_entries_hint=N_ROWS, halo=1.0) as cluster:
        cluster.create_spatial_table("shapes")
        cluster.load("shapes", rows)
        yield cluster, ref, rows
    ref.close()


class TestWindowFanOut:
    def test_matches_single_node(self, fleet):
        cluster, ref, _rows = fleet
        table = ref.table("shapes")
        win = Geometry.rectangle(20, 20, 55, 55)
        want = sorted(
            table.value(r, "id")
            for r in ref.select_rowids(
                "shapes", "geom", "SDO_RELATE", [win, "ANYINTERACT"]
            )
        )
        with cluster.client() as client:
            session = client.start(
                "window",
                {"table": "shapes", "column": "geom", "wkt": to_wkt(win)},
            )
            got = sorted(row[0] for row in session.rows(page=32))
        assert got == want
        assert len(got) == len(set(got)), "halo replicas leaked duplicates"

    def test_close_summary_reports_per_shard_rows(self, fleet):
        cluster, _ref, _rows = fleet
        win = Geometry.rectangle(0, 0, 100, 100)
        with cluster.client() as client:
            session = client.start(
                "window",
                {"table": "shapes", "column": "geom", "wkt": to_wkt(win)},
            )
            total = 0
            while not session.eof:
                rows, _ = session.fetch(64)
                total += len(rows)
            summary = session.close()
        assert total == N_ROWS
        assert sum(summary["rows_per_shard"].values()) == N_ROWS
        assert summary["failed_shards"] == []


class TestKnnMerge:
    def test_global_topk_exact(self, fleet):
        cluster, ref, _rows = fleet
        from repro.geometry.distance import distance as exact_distance

        from repro.geometry.wkt import from_wkt

        query = from_wkt("POINT (47 53)")
        index = ref.spatial_index_on("shapes", "geom")
        table = ref.table("shapes")
        want = sorted(
            (
                exact_distance(query, index.geometry_of(r)),
                table.value(r, "id"),
            )
            for r in ref.select_rowids("shapes", "geom", "SDO_NN", [query, 7])
        )
        with cluster.client() as client:
            session = client.start(
                "knn",
                {"table": "shapes", "column": "geom",
                 "wkt": "POINT (47 53)", "k": 7},
            )
            got = [(d, i) for i, d in session.rows(page=16)]
        assert len(got) == 7
        assert got == sorted(got), "merged stream not distance-ordered"
        assert [i for _, i in got] == [i for _, i in want]

    def test_k_larger_than_data(self, fleet):
        cluster, _ref, rows = fleet
        with cluster.client() as client:
            session = client.start(
                "knn",
                {"table": "shapes", "column": "geom",
                 "wkt": "POINT (50 50)", "k": len(rows) * 2},
            )
            got = session.all(page=64)
        ids = [row[0] for row in got]
        assert sorted(ids) == sorted(r[0] for r in rows)
        assert len(ids) == len(set(ids)), "replica dedup failed"


class TestSqlBroadcast:
    def test_select_comes_from_leader_only(self, fleet):
        cluster, _ref, _rows = fleet
        with cluster.client() as client:
            session = client.start(
                "sql", {"statement": "select count(*) from shapes"}
            )
            rows = session.all()
        # One result set (the leader's), not one per shard.
        assert len(rows) == 1

    def test_statement_batch_validated(self, fleet):
        cluster, _ref, _rows = fleet
        with cluster.client() as client:
            with pytest.raises(RemoteError):
                client.start("sql", {"statements": []})


class TestPut:
    def test_rows_validated(self, fleet):
        cluster, _ref, _rows = fleet
        with cluster.client() as client:
            with pytest.raises(RemoteError):
                client.request("put", table="shapes", rows=[[1]])
            with pytest.raises(RemoteError):
                client.request(
                    "put", table="shapes", rows=[[1, "NOT A WKT"]]
                )

    def test_topology_op(self, fleet):
        cluster, _ref, _rows = fleet
        with cluster.client() as client:
            topo = client.request("topology")
        assert topo["shards"] == 3
        assert topo["leader"] == 0
        assert topo["replicated"] is False
        assert topo["partitioner"]["shards"] == 3


class TestStatsRollup:
    def test_aggregate_covers_all_shards(self, fleet):
        cluster, _ref, _rows = fleet
        with cluster.client() as client:
            client.start(
                "window",
                {"table": "shapes", "column": "geom",
                 "wkt": "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"},
            ).all()
            stats = client.stats()
        assert set(stats["shards"]) == {"0", "1", "2", "router"}
        assert stats["queries"]["window"]["latency"]["count"] >= 3
        assert "topology" in stats
        # per-shard meters are visible for the simulated-cost rollup
        assert any(
            stats["shards"][k].get("meters") for k in ("0", "1", "2")
        )

    def test_prometheus_exposition_single_family(self, fleet):
        cluster, _ref, _rows = fleet
        with cluster.client() as client:
            text = client.metrics()
        assert text.count("# TYPE repro_sessions_active gauge") == 1
        assert "repro_requests_total" in text


class TestPartialFailure:
    """A dead shard fails typed, or is skipped under ``partial: true``."""

    @pytest.fixture()
    def wounded(self):
        rows = make_rows(60, seed=11)
        with LocalCluster(3, BOX, n_entries_hint=60, halo=1.0) as cluster:
            cluster.create_spatial_table("shapes")
            cluster.load("shapes", rows)
            cluster.procs[2].kill()
            yield cluster

    def test_shard_failure_is_typed(self, wounded):
        with wounded.client() as client:
            with pytest.raises(RemoteError) as excinfo:
                client.start(
                    "window",
                    {"table": "shapes", "column": "geom",
                     "wkt": "POLYGON ((0 0, 99 0, 99 99, 0 99, 0 0))"},
                ).all(page=32)
        assert excinfo.value.code == ERR_SHARD_FAILED

    def test_partial_opt_in_returns_survivors(self, wounded):
        with wounded.client() as client:
            session = client.start(
                "window",
                {"table": "shapes", "column": "geom",
                 "wkt": "POLYGON ((0 0, 99 0, 99 99, 0 99, 0 0))",
                 "partial": True},
            )
            rows = []
            while not session.eof:
                page, _ = session.fetch(32)
                rows.extend(page)
            summary = session.close()
        failed = [f["shard"] for f in summary["failed_shards"]]
        assert failed == [2]
        assert rows, "surviving shards returned nothing"
        assert set(summary["rows_per_shard"]) <= {"0", "1"}
