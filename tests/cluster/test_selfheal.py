"""The self-healing gate: seeded network chaos plus a SIGKILLed leader,
and the cluster must recover *unattended* — the health plane detects the
death, the coordinator promotes the WAL follower, and queries issued
during the failure window come back exact on both kernel backends.

``CHAOS_SEED`` parameterises the fault plan so the CI matrix can sweep
seeds; any value must pass (``NetFaultPlan.random`` never draws an
unrecoverable fault).
"""

import os
import random
import time
from collections import Counter

import pytest

from repro import Database, Geometry
from repro.cluster.chaos import NetFaultPlan
from repro.cluster.local import LocalCluster
from repro.cluster.router import RetryPolicy
from repro.geometry.kernels import available_backends, use_backend
from repro.geometry.mbr import MBR
from repro.geometry.wkt import to_wkt

SEED = int(os.environ.get("CHAOS_SEED", "1337"))
BOX = MBR(0.0, 0.0, 100.0, 100.0)
N_ROWS = 140
FULL_WINDOW = "POLYGON ((0 0, 99 0, 99 99, 0 99, 0 0))"


def make_rows(n=N_ROWS, seed=31):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        x, y = rng.uniform(0, 94), rng.uniform(0, 94)
        rect = Geometry.rectangle(
            x, y, x + rng.uniform(0.3, 4.0), y + rng.uniform(0.3, 4.0)
        )
        rows.append([i, to_wkt(rect)])
    return rows


def single_node_join(rows):
    db = Database()
    db.sql("create table shapes (id number, geom sdo_geometry)")
    db.sql(
        "create index shapes_sidx on shapes(geom) "
        "indextype is spatial_index parameters ('kind=RTREE')"
    )
    for row_id, wkt in rows:
        db.sql(f"insert into shapes values ({row_id}, sdo_geometry('{wkt}'))")
    table = db.table("shapes")
    result = db.spatial_join("shapes", "geom", "shapes", "geom")
    pairs = [
        (table.value(a, "id"), table.value(b, "id")) for a, b in result.pairs
    ]
    db.close()
    return pairs


def wait_for(condition, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(0.05)
    return False


@pytest.mark.parametrize("backend", available_backends())
def test_leader_kill_heals_unattended_with_exact_results(backend):
    rows = make_rows()
    with use_backend(backend):
        reference = Counter(single_node_join(rows))
        plan = NetFaultPlan(SEED)
        with LocalCluster(
            3,
            BOX,
            n_entries_hint=N_ROWS,
            halo=2.0,
            replicated=True,
            durable=True,
            auto_heal=True,
            chaos_plan=plan,
            health_kwargs=dict(
                interval=0.05, timeout=0.5, suspect_after=1, down_after=3
            ),
            retry=RetryPolicy(
                max_attempts=12, budget=64, backoff=0.05, backoff_cap=0.4
            ),
            breaker_threshold=1000,
            client_timeout=10.0,
        ) as cluster:
            cluster.create_spatial_table("shapes")
            totals = cluster.load("shapes", rows)
            assert totals["placed"] == N_ROWS  # every row below is ACKED

            # Arm the seeded random fault *now*, re-based onto the live
            # chunk counters: DDL and ingest are acked and out of the
            # blast radius, the failure window below takes the hit.
            fault = NetFaultPlan.random(SEED)
            for site, fire_at in fault.reset.items():
                plan.reset[site] = plan.chunk_calls.get(site, 0) + fire_at
            plan.latency.update(fault.latency)
            plan.drip.update(fault.drip)

            cluster.kill_leader()  # SIGKILL; nobody calls failover()

            # Queries issued while the leader is a corpse: the retry
            # layer must ride out the detection + promotion window.
            with cluster.client() as client:
                session = client.start(
                    "spatial_join",
                    {
                        "table_a": "shapes",
                        "column_a": "geom",
                        "table_b": "shapes",
                        "column_b": "geom",
                    },
                )
                during = Counter(
                    (a, b) for a, b in session.rows(page=128)
                )
            assert during == reference, (
                "join during the failure window diverged from the "
                "single-node reference"
            )

            # Zero acked-write loss: the promoted replica serves every
            # row the load was acknowledged for.
            with cluster.client() as client:
                session = client.start(
                    "window",
                    {
                        "table": "shapes",
                        "column": "geom",
                        "wkt": FULL_WINDOW,
                    },
                )
                got = sorted(row[0] for row in session.rows(page=256))
            assert got == sorted(r[0] for r in rows)

            # The recovery was automatic and exactly-once.
            assert wait_for(lambda: cluster._failed_over), (
                "health plane never promoted the follower"
            )
            if cluster.coordinator is not None:
                cluster.coordinator.wait_idle(10.0)
            assert cluster.router.resilience.get("failovers", 0) == 1
            kinds = [e["kind"] for e in cluster.resilience_events()]
            assert "failover_started" in kinds
            assert "failover_done" in kinds
