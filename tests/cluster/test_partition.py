"""Unit tests for the shard partitioners (no processes, no sockets)."""

import pytest

from repro.cluster.partition import ClusterError, GridPartitioner, HashPartitioner, stable_hash
from repro.geometry.mbr import MBR

BOX = MBR(0.0, 0.0, 100.0, 100.0)


def build(nshards, halo=0.0, n_entries=1000):
    return GridPartitioner.build(BOX, nshards, n_entries, halo)


class TestHashPartitioner:
    def test_deterministic_across_processes(self):
        # crc32 of repr, NOT builtin hash(): immune to PYTHONHASHSEED.
        assert stable_hash("shapes") == stable_hash("shapes")
        part = HashPartitioner(4)
        assert part.shard_of("k1") == HashPartitioner(4).shard_of("k1")
        assert 0 <= part.shard_of(12345) < 4

    def test_spreads_keys(self):
        part = HashPartitioner(4)
        hit = {part.shard_of(f"key-{i}") for i in range(200)}
        assert hit == {0, 1, 2, 3}


class TestTileOwnership:
    @pytest.mark.parametrize("nshards", [1, 2, 3, 4, 7])
    def test_owned_tiles_partition_the_grid(self, nshards):
        part = build(nshards)
        union = set()
        for shard in range(nshards):
            owned = part.owned_tiles(shard)
            assert owned, f"shard {shard} owns no tiles"
            assert not (union & owned), "overlapping ownership"
            union |= owned
        assert union == set(range(part.spec.tiles))

    @pytest.mark.parametrize("nshards", [1, 2, 3, 4, 7])
    def test_ownership_matches_shard_of_tile(self, nshards):
        part = build(nshards)
        for tile in range(part.spec.tiles):
            shard = part.shard_of_tile(tile)
            assert 0 <= shard < nshards
            assert tile in part.owned_tiles(shard)

    def test_grid_wide_enough_for_many_shards(self):
        # build() must widen the grid until every shard owns >= 1 tile,
        # even when the entry-count heuristic would pick a tiny grid.
        part = GridPartitioner.build(BOX, 8, 4, 0.0)
        assert part.spec.tiles >= 8


class TestPlacement:
    def test_primary_shard_owns_low_corner_tile(self):
        part = build(4)
        mbr = MBR(12.0, 34.0, 13.0, 35.0)
        primary = part.primary_shard(mbr)
        assert part.primary_tile(mbr) in part.owned_tiles(primary)

    def test_primary_shard_always_in_shards_for_mbr(self):
        part = build(4, halo=2.0)
        import random

        rng = random.Random(99)
        for _ in range(100):
            x, y = rng.uniform(0, 95), rng.uniform(0, 95)
            mbr = MBR(x, y, x + rng.uniform(0.1, 4.0), y + rng.uniform(0.1, 4.0))
            assert part.primary_shard(mbr) in part.shards_for_mbr(mbr)

    def test_shards_for_mbr_matches_brute_force(self):
        from repro.core.grid_partition import tile_range_of

        part = build(3, halo=2.0)
        import random

        rng = random.Random(7)
        for _ in range(100):
            x, y = rng.uniform(0, 95), rng.uniform(0, 95)
            mbr = MBR(x, y, x + rng.uniform(0.1, 4.0), y + rng.uniform(0.1, 4.0))
            ix0, ix1, iy0, iy1 = tile_range_of(part.spec, mbr, part.halo)
            want = {
                part.shard_of_tile(part.spec.tile_id(ix, iy))
                for ix in range(ix0, ix1 + 1)
                for iy in range(iy0, iy1 + 1)
            }
            assert set(part.shards_for_mbr(mbr)) == want

    def test_halo_zero_single_tile_point(self):
        part = build(4, halo=0.0)
        mbr = MBR(50.0, 50.0, 50.0, 50.0)
        shards = part.shards_for_mbr(mbr)
        assert part.primary_shard(mbr) in shards


class TestWire:
    def test_round_trip(self):
        part = build(4, halo=1.5)
        clone = GridPartitioner.from_wire(part.to_wire())
        assert clone.nshards == part.nshards
        assert clone.halo == part.halo
        assert clone.spec == part.spec
        assert clone.owned_tiles(2) == part.owned_tiles(2)

    def test_for_shard_carries_identity(self):
        part = build(3)
        local = GridPartitioner.from_wire(part.for_shard(1).to_wire())
        assert local.shard == 1
        assert local.owned_tiles() == part.owned_tiles(1)

    def test_bad_wire_rejected(self):
        with pytest.raises((KeyError, TypeError, ValueError)):
            GridPartitioner.from_wire({"shards": 2})


class TestBuildValidation:
    def test_zero_shards_rejected(self):
        with pytest.raises((ClusterError, ValueError)):
            GridPartitioner.build(BOX, 0, 100, 0.0)
