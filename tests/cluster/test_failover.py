"""Kill-the-leader chaos: SIGKILL the leader, promote, lose no acked write.

Every ``put`` the router acknowledged was follower-acked first (semi-sync),
so the promoted replica must contain each one — that is the contract this
suite holds the cluster to.  ``CHAOS_SEED`` randomises the kill point so
CI explores different WAL positions across runs.
"""

import os
import random

import pytest

from repro.cluster.local import LocalCluster
from repro.cluster.router import ShardFailed
from repro.geometry.mbr import MBR
from repro.server.client import RemoteError
from repro.server.protocol import ERR_SHARD_FAILED

BOX = MBR(0.0, 0.0, 100.0, 100.0)

SEED = int(os.environ.get("CHAOS_SEED", "1337"))


@pytest.fixture()
def replicated_cluster():
    with LocalCluster(
        2, BOX, n_entries_hint=200, halo=1.0, replicated=True
    ) as cluster:
        cluster.create_spatial_table("shapes")
        yield cluster


class TestKillTheLeader:
    def test_no_committed_write_lost(self, replicated_cluster):
        cluster = replicated_cluster
        rng = random.Random(SEED)
        kill_after = rng.randint(3, 12)  # batches before the kill

        acked = []
        batch_no = 0
        with cluster.client() as client:
            for batch_no in range(kill_after):
                base = batch_no * 10
                rows = [
                    [base + j, f"POINT ({rng.uniform(1, 99):.4f} "
                               f"{rng.uniform(1, 99):.4f})"]
                    for j in range(10)
                ]
                response = client.request("put", table="shapes", rows=rows)
                assert response["lsn"] is not None
                acked.extend(r[0] for r in rows)

        cluster.kill_leader()
        assert not cluster.procs[cluster.leader].alive

        # Writes against the dead leader fail typed, not silently.
        with cluster.client() as client:
            with pytest.raises((RemoteError, ShardFailed)) as excinfo:
                client.request(
                    "put", table="shapes", rows=[[99999, "POINT (50 50)"]]
                )
        if isinstance(excinfo.value, RemoteError):
            assert excinfo.value.code == ERR_SHARD_FAILED

        cluster.failover()

        # Every acknowledged row is present in the promoted replica.
        with cluster.client() as client:
            session = client.start(
                "window",
                {"table": "shapes", "column": "geom",
                 "wkt": "POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))"},
            )
            got = sorted(row[0] for row in session.rows(page=64))
        assert got == sorted(acked), (
            f"failover lost {set(acked) - set(got)} after "
            f"{batch_no + 1} acked batches (CHAOS_SEED={SEED})"
        )

    def test_cluster_serves_writes_after_failover(self, replicated_cluster):
        cluster = replicated_cluster
        with cluster.client() as client:
            client.request(
                "put", table="shapes",
                rows=[[i, f"POINT ({i} {i})"] for i in range(1, 6)],
            )
        cluster.kill_leader()
        cluster.failover()
        # The promoted node accepts new writes (unreplicated until a new
        # follower attaches — the router downgraded itself).
        with cluster.client() as client:
            response = client.request(
                "put", table="shapes",
                rows=[[100 + i, f"POINT ({20 + i} 30)"] for i in range(3)],
            )
            assert response["placed"] == 3
            topo = client.request("topology")
            assert topo["replicated"] is False
            session = client.start(
                "window",
                {"table": "shapes", "column": "geom",
                 "wkt": "POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))"},
            )
            ids = sorted(row[0] for row in session.rows(page=64))
        assert ids == sorted(list(range(1, 6)) + [100, 101, 102])
