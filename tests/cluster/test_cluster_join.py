"""Cross-shard spatial joins must be bit-identical to single-node runs.

The acceptance bar for the cluster subsystem: concatenating the shard
streams yields *exactly* the single-node ``Database.spatial_join`` result
— zero duplicates, exact multiplicity — for both intersect and
within-distance predicates, under both kernels backends.  Shards are
real forked processes reached over the wire; they inherit the parent's
kernels backend selection at fork time, so ``use_backend`` around the
cluster boot pins the whole fleet.
"""

import random
from collections import Counter

import pytest

from repro import Database, Geometry
from repro.cluster.local import LocalCluster
from repro.geometry.kernels import available_backends, use_backend
from repro.geometry.mbr import MBR
from repro.geometry.wkt import to_wkt

BOX = MBR(0.0, 0.0, 100.0, 100.0)
HALO = 2.0
N_ROWS = 140


def make_rows(n=N_ROWS, seed=31):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        x, y = rng.uniform(0, 94), rng.uniform(0, 94)
        rect = Geometry.rectangle(
            x, y, x + rng.uniform(0.3, 4.0), y + rng.uniform(0.3, 4.0)
        )
        rows.append([i, to_wkt(rect)])
    return rows


def single_node_pairs(rows, distance=0.0):
    db = Database()
    db.sql("create table shapes (id number, geom sdo_geometry)")
    db.sql(
        "create index shapes_sidx on shapes(geom) "
        "indextype is spatial_index parameters ('kind=RTREE')"
    )
    for row_id, wkt in rows:
        db.sql(f"insert into shapes values ({row_id}, sdo_geometry('{wkt}'))")
    table = db.table("shapes")
    result = db.spatial_join(
        "shapes", "geom", "shapes", "geom", distance=distance
    )
    pairs = [
        (table.value(a, "id"), table.value(b, "id")) for a, b in result.pairs
    ]
    db.close()
    return pairs


def cluster_join_pairs(cluster, distance=0.0):
    params = {
        "table_a": "shapes",
        "column_a": "geom",
        "table_b": "shapes",
        "column_b": "geom",
    }
    if distance:
        params["distance"] = distance
    with cluster.client() as client:
        session = client.start("spatial_join", params)
        return [(a, b) for a, b in session.rows(page=128)]


@pytest.fixture(scope="module", params=available_backends())
def fleet(request):
    """A 3-shard loaded cluster (+ the matching single-node references),
    one boot per kernels backend."""
    rows = make_rows()
    with use_backend(request.param):
        refs = {
            0.0: single_node_pairs(rows),
            1.5: single_node_pairs(rows, distance=1.5),
        }
        with LocalCluster(3, BOX, n_entries_hint=N_ROWS, halo=HALO) as cluster:
            cluster.create_spatial_table("shapes")
            cluster.load("shapes", rows)
            yield request.param, cluster, refs


class TestClusterJoinExactness:
    @pytest.mark.parametrize("distance", [0.0, 1.5])
    def test_bit_identical_to_single_node(self, fleet, distance):
        _backend, cluster, refs = fleet
        got = cluster_join_pairs(cluster, distance=distance)
        want = refs[distance]
        assert len(got) == len(want), "pair count diverged"
        # Multiset equality: zero duplicates AND exact multiplicity, not
        # just the same set of pairs.
        assert Counter(got) == Counter(want)

    def test_no_cross_shard_duplicates(self, fleet):
        _backend, cluster, refs = fleet
        got = cluster_join_pairs(cluster)
        counts = Counter(got)
        dupes = {pair: n for pair, n in counts.items() if n > 1}
        want_dupes = {
            pair: n for pair, n in Counter(refs[0.0]).items() if n > 1
        }
        assert dupes == want_dupes

    def test_every_shard_contributes(self, fleet):
        _backend, cluster, _refs = fleet
        with cluster.client() as client:
            session = client.start(
                "spatial_join",
                {"table_a": "shapes", "column_a": "geom",
                 "table_b": "shapes", "column_b": "geom"},
            )
            total = 0
            while not session.eof:
                rows, _ = session.fetch(128)
                total += len(rows)
            summary = session.close()
        per_shard = summary["rows_per_shard"]
        assert set(per_shard) == {"0", "1", "2"}
        assert sum(per_shard.values()) == total == len(_refs_total(_refs))

    def test_distance_beyond_halo_rejected(self, fleet):
        from repro.server.client import RemoteError

        _backend, cluster, _refs = fleet
        with cluster.client() as client:
            with pytest.raises(RemoteError) as excinfo:
                client.start(
                    "spatial_join",
                    {"table_a": "shapes", "column_a": "geom",
                     "table_b": "shapes", "column_b": "geom",
                     "distance": HALO * 10},
                )
        assert "halo" in str(excinfo.value)


def _refs_total(refs):
    return refs[0.0]
