"""Retry, resume, hedging, and partial-failure behavior of the
scatter-gather path under real shard death and slow links."""

import random
import threading
import time

import pytest

from repro import Geometry
from repro.cluster.chaos import NetFaultPlan
from repro.cluster.local import LocalCluster
from repro.cluster.router import RetryPolicy
from repro.geometry.mbr import MBR
from repro.geometry.wkt import to_wkt
from repro.server.client import RemoteError

BOX = MBR(0.0, 0.0, 100.0, 100.0)
FULL_WINDOW = "POLYGON ((0 0, 99 0, 99 99, 0 99, 0 0))"


def make_rows(n, seed):
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        x, y = rng.uniform(0, 94), rng.uniform(0, 94)
        rect = Geometry.rectangle(
            x, y, x + rng.uniform(0.3, 3.0), y + rng.uniform(0.3, 3.0)
        )
        rows.append([i, to_wkt(rect)])
    return rows


def window_params(**extra):
    params = {"table": "shapes", "column": "geom", "wkt": FULL_WINDOW}
    params.update(extra)
    return params


class TestSkipResume:
    def test_kill_and_restart_mid_stream_is_exactly_once(self):
        """A durable shard dies between pages; the re-scattered slice
        resumes after the rows already delivered — no dup, no gap."""
        rows = make_rows(80, seed=5)
        with LocalCluster(
            1,
            BOX,
            n_entries_hint=80,
            halo=1.0,
            durable=True,
            retry=RetryPolicy(max_attempts=6, budget=32, backoff=0.05),
            gather_page=8,
        ) as cluster:
            cluster.create_spatial_table("shapes")
            cluster.load("shapes", rows)
            with cluster.client() as client:
                session = client.start("window", window_params())
                first, eof = session.fetch(16)
                assert len(first) == 16 and not eof
                cluster.kill_shard(0)
                cluster.restart_shard(0)
                rest = []
                while not session.eof:
                    page, _ = session.fetch(16)
                    rest.extend(page)
                session.close()
            got = sorted(row[0] for row in first + rest)
            assert got == sorted(r[0] for r in rows)
            assert len(got) == len(set(got)), "resume duplicated rows"
            assert cluster.router.resilience.get("rescatters", 0) >= 1


class TestPartialSummaries:
    def test_shard_dying_between_pages_lands_in_close_summary(self):
        rows = make_rows(60, seed=9)
        with LocalCluster(
            2,
            BOX,
            n_entries_hint=60,
            halo=1.0,
            retry=RetryPolicy(max_attempts=2, budget=4, backoff=0.01),
            gather_page=8,
        ) as cluster:
            cluster.create_spatial_table("shapes")
            cluster.load("shapes", rows)
            with cluster.client() as client:
                session = client.start(
                    "window", window_params(partial=True)
                )
                got, _ = session.fetch(8)  # shard 0 is streaming fine
                cluster.kill_shard(1)
                while not session.eof:
                    page, _ = session.fetch(8)
                    got.extend(page)
                summary = session.close()
            failed = [f["shard"] for f in summary["failed_shards"]]
            assert failed == [1]
            # shard 0's slice arrived intact despite its peer dying
            assert got, "the surviving shard's rows were lost"
            assert summary["rows_per_shard"].get("0", 0) > 0
            assert len(got) == len({row[0] for row in got})

    def test_two_shards_dead_in_one_scatter(self):
        rows = make_rows(60, seed=13)
        with LocalCluster(
            3,
            BOX,
            n_entries_hint=60,
            halo=1.0,
            retry=RetryPolicy(max_attempts=2, budget=4, backoff=0.01),
        ) as cluster:
            cluster.create_spatial_table("shapes")
            cluster.load("shapes", rows)
            cluster.kill_shard(1)
            cluster.kill_shard(2)
            with cluster.client() as client:
                session = client.start(
                    "window", window_params(partial=True)
                )
                got = []
                while not session.eof:
                    page, _ = session.fetch(32)
                    got.extend(page)
                summary = session.close()
            failed = sorted(f["shard"] for f in summary["failed_shards"])
            assert failed == [1, 2]
            assert set(summary["rows_per_shard"]) <= {"0"}


class TestHedging:
    def test_slow_dripping_shard_is_hedged_not_waited_on(self):
        """A drip-fed link trips the hedge SLO; the hedge re-runs the
        slice on a fresh connection and the result stays exact."""
        rows = make_rows(40, seed=21)
        plan = NetFaultPlan(3)
        with LocalCluster(
            2,
            BOX,
            n_entries_hint=40,
            halo=1.0,
            chaos_plan=plan,
            retry=RetryPolicy(
                max_attempts=6, budget=50, backoff=0.02, hedge_ms=100
            ),
            gather_page=8,
        ) as cluster:
            cluster.create_spatial_table("shapes")
            cluster.load("shapes", rows)
            # Arm the drip only now: DDL and load traffic stays fast,
            # the query below hits a link feeding 16 bytes per 30 ms.
            plan.drip["shard0.down"] = (16, 0.03)
            healer = threading.Timer(0.4, plan.heal)
            healer.start()
            try:
                with cluster.client() as client:
                    session = client.start("window", window_params())
                    got = sorted(row[0] for row in session.rows(page=16))
            finally:
                healer.cancel()
                plan.heal()
            assert got == sorted(r[0] for r in rows)
            assert cluster.router.resilience.get("hedges", 0) >= 1


class TestDeadlineBoundsRetries:
    def test_retries_never_outlive_the_session_deadline(self):
        """With a dead shard and a generous retry policy, the session
        deadline cuts the retry loop short instead of letting backoff
        sleeps run the clock out."""
        rows = make_rows(30, seed=17)
        with LocalCluster(
            2,
            BOX,
            n_entries_hint=30,
            halo=1.0,
            retry=RetryPolicy(max_attempts=50, budget=100, backoff=0.2),
            breaker_threshold=1000,
        ) as cluster:
            cluster.create_spatial_table("shapes")
            cluster.load("shapes", rows)
            cluster.kill_shard(1)
            started = time.monotonic()
            with cluster.client() as client:
                with pytest.raises(RemoteError):
                    client.start(
                        "window", window_params(), deadline_ms=500
                    ).all(page=32)
            elapsed = time.monotonic() - started
            assert elapsed < 2.5, (
                f"deadline-bounded query took {elapsed:.2f}s — retries "
                "are sleeping past the session deadline"
            )
