"""WAL follower: bootstrap, tail, ack, idempotent replay, restart state."""

import json
import os

import pytest

from repro.cluster.local import LocalCluster, ShardProcess
from repro.cluster.replication import ReplicationError, WalFollower
from repro.engine.database import Database
from repro.geometry.mbr import MBR
from repro.server.client import QueryClient

BOX = MBR(0.0, 0.0, 100.0, 100.0)

DDL = [
    "create table pts (id number, geom sdo_geometry)",
    "create index pts_sidx on pts(geom) "
    "indextype is spatial_index parameters ('kind=RTREE')",
]


def _commit_batch(client, statements):
    """Run a durable statement batch on the leader; returns its LSN."""
    session = client.start("sql", {"statements": statements, "commit": True})
    lsn = session.extra["lsn"]
    session.close()
    return lsn


@pytest.fixture()
def leader(tmp_path):
    """A WAL-backed single-shard server process (no router, no follower)."""
    proc = ShardProcess(0, path=str(tmp_path / "leader.db")).start()
    try:
        yield proc, tmp_path
    finally:
        proc.stop()


class TestTailAndApply:
    def test_follower_reaches_committed_lsn(self, leader):
        proc, tmp_path = leader
        with QueryClient(port=proc.port, retries=5) as client:
            lsn = _commit_batch(client, list(DDL) + [
                "insert into pts values (1, sdo_geometry('POINT (10 10)'))",
                "insert into pts values (2, sdo_geometry('POINT (20 20)'))",
            ])
            follower = WalFollower(
                QueryClient(port=proc.port, retries=5),
                str(tmp_path / "replica.db"),
            )
            try:
                follower.wait_for(lsn, timeout=10.0)
                assert follower.applied_lsn >= lsn
                assert follower.commits_applied >= 1
            finally:
                follower.close()

    def test_replayed_segment_is_noop(self, leader):
        proc, tmp_path = leader
        with QueryClient(port=proc.port, retries=5) as client:
            lsn = _commit_batch(client, list(DDL) + [
                "insert into pts values (1, sdo_geometry('POINT (10 10)'))",
            ])
            follower = WalFollower(
                QueryClient(port=proc.port, retries=5),
                str(tmp_path / "replica.db"),
            )
            try:
                follower.wait_for(lsn, timeout=10.0)
                applied = follower.records_applied

                # Re-ship the whole log from LSN 0: every record is at or
                # below applied_lsn, so _apply must skip all of them.
                response = follower.client.request(
                    "wal.tail", after_lsn=0, max_records=128
                )
                if not response.get("reset"):
                    replayed = follower._apply(response["records"])
                    assert replayed == 0
                assert follower.records_applied == applied
                assert follower.applied_lsn == lsn
            finally:
                follower.close()

    def test_promoted_replica_serves_committed_rows(self, leader):
        proc, tmp_path = leader
        with QueryClient(port=proc.port, retries=5) as client:
            lsn = _commit_batch(client, list(DDL) + [
                f"insert into pts values ({i}, sdo_geometry('POINT ({i} {i})'))"
                for i in range(1, 8)
            ])
            follower = WalFollower(
                QueryClient(port=proc.port, retries=5),
                str(tmp_path / "replica.db"),
            )
            follower.wait_for(lsn, timeout=10.0)
        proc.kill()  # replica must not need the leader from here on
        path = follower.promote()
        db = Database.open(path, durability="wal")
        try:
            result = db.sql("select count(*) from pts")
            assert result.rows[0][0] == 7
        finally:
            db.close()


class TestRestartState:
    def test_applied_lsn_survives_restart(self, leader):
        proc, tmp_path = leader
        replica = str(tmp_path / "replica.db")
        with QueryClient(port=proc.port, retries=5) as client:
            lsn = _commit_batch(client, list(DDL) + [
                "insert into pts values (1, sdo_geometry('POINT (5 5)'))",
            ])
        follower = WalFollower(QueryClient(port=proc.port, retries=5), replica)
        follower.wait_for(lsn, timeout=10.0)
        follower.close()

        with open(replica + ".replstate", encoding="utf-8") as fh:
            assert json.load(fh)["applied_lsn"] == lsn

        # A restarted follower resumes from the sidecar, not a re-bootstrap.
        again = WalFollower(QueryClient(port=proc.port, retries=5), replica)
        try:
            assert again.applied_lsn == lsn
            assert again.poll() == 0  # nothing new to apply
        finally:
            again.close()


class TestSemiSyncCluster:
    def test_put_waits_for_follower_ack(self):
        with LocalCluster(
            2, BOX, n_entries_hint=50, halo=1.0, replicated=True
        ) as cluster:
            cluster.create_spatial_table("shapes")
            totals = cluster.load(
                "shapes",
                [[i, f"POINT ({i} {i})"] for i in range(1, 30)],
            )
            assert totals["lsn"] is not None
            # put() returned => the follower acked this LSN already.
            assert cluster.follower.applied_lsn >= totals["lsn"]
            with cluster.client() as client:
                topo = client.request("topology")
            assert topo["replicated"] is True
            assert topo["follower"]["applied_lsn"] >= totals["lsn"]
            assert topo["follower"]["error"] is None

    def test_wait_for_times_out_typed(self, leader):
        proc, tmp_path = leader
        with QueryClient(port=proc.port, retries=5) as client:
            _commit_batch(client, list(DDL))
        follower = WalFollower(
            QueryClient(port=proc.port, retries=5),
            str(tmp_path / "replica.db"),
        ).start()
        try:
            with pytest.raises(ReplicationError):
                follower.wait_for(10_000_000, timeout=0.3)
        finally:
            follower.close()
