"""Network fault injection: plan determinism, proxy behaviors, and the
WAL follower's reconnect-on-blip fix (exercised through a real reset)."""

import random
import socket
import threading
import time

import pytest

from repro.cluster.chaos import ChaosProxy, NetFaultPlan
from repro.cluster.local import LocalCluster
from repro.cluster.replication import WalFollower
from repro.geometry.mbr import MBR
from repro.server.client import QueryClient
from repro import Geometry
from repro.geometry.wkt import to_wkt

BOX = MBR(0.0, 0.0, 100.0, 100.0)


class EchoServer:
    """A minimal TCP echo peer the proxy tests relay through."""

    def __init__(self):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._closed = False
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self):
        while not self._closed:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _serve(self, conn):
        try:
            while True:
                data = conn.recv(65536)
                if not data:
                    return
                conn.sendall(data)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


@pytest.fixture()
def echo():
    server = EchoServer()
    yield server
    server.close()


def through_proxy(proxy, payload, timeout=5.0):
    with socket.create_connection(("127.0.0.1", proxy.port), timeout=timeout) as s:
        s.settimeout(timeout)
        s.sendall(payload)
        got = b""
        while len(got) < len(payload):
            chunk = s.recv(65536)
            if not chunk:
                break
            got += chunk
        return got


class TestNetFaultPlan:
    def test_random_is_deterministic_under_seed(self):
        for seed in (0, 1, 1337, 4242):
            a, b = NetFaultPlan.random(seed), NetFaultPlan.random(seed)
            assert (a.reset, a.latency, a.drip) == (b.reset, b.latency, b.drip)
            assert not a.partitioned_sites, "random plans must self-heal"

    def test_random_varies_across_seeds(self):
        configs = {
            (
                tuple(sorted(NetFaultPlan.random(s).reset.items())),
                tuple(sorted(NetFaultPlan.random(s).latency.items())),
                tuple(sorted(NetFaultPlan.random(s).drip.items())),
            )
            for s in range(32)
        }
        assert len(configs) > 8

    def test_site_lookup_precedence(self):
        plan = NetFaultPlan(
            0,
            latency={
                "shard0.down": (0.5, 0.0),
                "*.down": (0.25, 0.0),
                "*": (0.125, 0.0),
            },
        )
        assert plan._lookup(plan.latency, "shard0.down") == (0.5, 0.0)
        assert plan._lookup(plan.latency, "shard7.down") == (0.25, 0.0)
        assert plan._lookup(plan.latency, "shard7.up") == (0.125, 0.0)

    def test_reset_is_one_shot(self):
        plan = NetFaultPlan(3, reset={"x.up": 0})
        assert plan.on_chunk("x.up", 10).reset is True
        assert plan.on_chunk("x.up", 10).reset is False
        assert plan.resets_fired == ["x.up"]
        assert [e["kind"] for e in plan.events if e["kind"] == "reset"] == ["reset"]
        assert all(e["seed"] == 3 for e in plan.events)

    def test_heal_clears_persistent_faults_not_reset_history(self):
        plan = NetFaultPlan(
            0,
            reset={"a.up": 0},
            latency={"*": (0.1, 0.0)},
            drip={"a.down": (8, 0.01)},
            partition=("b.down",),
        )
        plan.on_chunk("a.up", 1)  # fire the reset
        plan.heal()
        assert not plan.latency and not plan.drip
        assert not plan.is_partitioned("b.down")
        assert plan.resets_fired == ["a.up"]  # one-shot stays fired


class TestChaosProxy:
    def test_clean_relay(self, echo):
        proxy = ChaosProxy("127.0.0.1", echo.port, NetFaultPlan(0), name="echo")
        try:
            assert through_proxy(proxy, b"hello world") == b"hello world"
        finally:
            proxy.close()

    def test_latency_injection(self, echo):
        plan = NetFaultPlan(0, latency={"*": (0.08, 0.0)})
        proxy = ChaosProxy("127.0.0.1", echo.port, plan, name="echo")
        try:
            t0 = time.monotonic()
            assert through_proxy(proxy, b"ping") == b"ping"
            # both directions pay the delay
            assert time.monotonic() - t0 >= 0.08
        finally:
            proxy.close()

    def test_reset_rsts_one_connection_then_heals(self, echo):
        plan = NetFaultPlan(0, reset={"echo.up": 0})
        proxy = ChaosProxy("127.0.0.1", echo.port, plan, name="echo")
        try:
            with socket.create_connection(("127.0.0.1", proxy.port)) as s:
                s.settimeout(2.0)
                s.sendall(b"doomed")
                try:
                    got = s.recv(64)
                except OSError:
                    got = b""
                assert got == b""  # connection was killed, nothing echoed
            # the reset was one-shot: the next connection relays cleanly
            assert through_proxy(proxy, b"alive again") == b"alive again"
        finally:
            proxy.close()

    def test_partition_black_holes_until_heal(self, echo):
        plan = NetFaultPlan(0, partition=("echo.down",))
        proxy = ChaosProxy("127.0.0.1", echo.port, plan, name="echo")
        try:
            with socket.create_connection(("127.0.0.1", proxy.port)) as s:
                s.sendall(b"held")
                s.settimeout(0.3)
                with pytest.raises(OSError):
                    s.recv(64)  # black hole: bytes are held, not dropped
                plan.heal("echo.down")
                s.settimeout(3.0)
                assert s.recv(64) == b"held"  # held bytes flow after heal
        finally:
            proxy.close()

    def test_drip_preserves_bytes(self, echo):
        plan = NetFaultPlan(0, drip={"echo.down": (3, 0.001)})
        proxy = ChaosProxy("127.0.0.1", echo.port, plan, name="echo")
        try:
            payload = bytes(range(256)) * 4
            assert through_proxy(proxy, payload) == payload
        finally:
            proxy.close()

    def test_retarget_moves_new_connections(self, echo):
        other = EchoServer()
        plan = NetFaultPlan(0)
        proxy = ChaosProxy("127.0.0.1", echo.port, plan, name="echo")
        try:
            assert through_proxy(proxy, b"first") == b"first"
            echo.close()
            proxy.retarget(other.port)
            assert through_proxy(proxy, b"second") == b"second"
            assert any(e["kind"] == "retarget" for e in plan.events)
        finally:
            proxy.close()
            other.close()


class TestQueryThroughChaos:
    """End-to-end: seeded faults on real shard links, results stay exact."""

    def _rows(self, n=60, seed=23):
        rng = random.Random(seed)
        rows = []
        for i in range(n):
            x, y = rng.uniform(0, 94), rng.uniform(0, 94)
            rect = Geometry.rectangle(
                x, y, x + rng.uniform(0.3, 3.0), y + rng.uniform(0.3, 3.0)
            )
            rows.append([i, to_wkt(rect)])
        return rows

    def test_window_exact_through_reset(self):
        from repro.cluster.router import RetryPolicy

        rows = self._rows()
        plan = NetFaultPlan(11)
        with LocalCluster(
            2,
            BOX,
            n_entries_hint=60,
            halo=1.0,
            chaos_plan=plan,
            retry=RetryPolicy(max_attempts=5, budget=16, backoff=0.02),
            gather_page=8,
        ) as cluster:
            cluster.create_spatial_table("shapes")
            cluster.load("shapes", rows)
            # Arm a reset on shard 1's server->router link *now*, so it
            # fires mid-stream during the window query below (counting
            # from the current chunk index keeps load/DDL traffic out of
            # the blast radius) and the gather must re-scatter that
            # shard's slice with skip-resume.
            plan.reset["shard1.down"] = plan.chunk_calls.get("shard1.down", 0) + 1
            with cluster.client() as client:
                session = client.start(
                    "window",
                    {
                        "table": "shapes",
                        "column": "geom",
                        "wkt": "POLYGON ((0 0, 99 0, 99 99, 0 99, 0 0))",
                    },
                )
                got = sorted(row[0] for row in session.rows(page=16))
            assert got == sorted(r[0] for r in rows)
            assert plan.resets_fired, "the scripted reset never fired"
            counters = cluster.router.resilience
            assert (
                counters.get("rescatters", 0) + counters.get("retries", 0) >= 1
            )


class TestFollowerReconnect:
    def test_follower_survives_connection_reset(self, tmp_path):
        rows = [
            [i, to_wkt(Geometry.rectangle(i, i, i + 1.0, i + 1.0))]
            for i in range(8)
        ]
        with LocalCluster(
            1, BOX, n_entries_hint=32, halo=0.5, replicated=True
        ) as cluster:
            cluster.create_spatial_table("shapes")
            cluster.load("shapes", rows[:4])
            plan = NetFaultPlan(7)
            proxy = ChaosProxy(
                "127.0.0.1", cluster.procs[0].port, plan, name="wal"
            )
            follower = WalFollower(
                QueryClient(port=proxy.port, retries=1, timeout=5.0),
                str(tmp_path / "replica.db"),
                poll_interval=0.01,
                reconnect_backoff=0.01,
            ).start()
            try:
                target = cluster.follower.applied_lsn
                self._wait(lambda: follower.applied_lsn >= target)
                # Cut the tail connection: next relayed chunk RSTs it.
                plan.reset["wal.down"] = plan.chunk_calls.get("wal.down", 0)
                self._wait(lambda: plan.resets_fired)
                cluster.load("shapes", rows[4:])
                target = cluster.follower.applied_lsn
                assert target > follower.applied_lsn or follower.applied_lsn >= target
                # The dead tail thread bug would stall here forever: the
                # fix reconnects and resumes from the .replstate LSN.
                self._wait(lambda: follower.applied_lsn >= target)
                assert follower.reconnects >= 1
                assert follower.error is None
                status = follower.status()
                assert status["tailing"] is True
                assert status["reconnects"] >= 1
            finally:
                follower.close()
                proxy.close()

    @staticmethod
    def _wait(cond, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if cond():
                return
            time.sleep(0.02)
        raise AssertionError("condition not reached within timeout")
