"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; these tests import each
one (scaled down where the module exposes size constants) and run its
``main()``.
"""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "city/river intersections" in out
        assert "Aton <- Green" in out

    def test_gis_county_analysis(self, capsys):
        module = load_example("gis_county_analysis")
        module.N_COUNTIES = 80  # scale down for test speed
        module.main()
        out = capsys.readouterr().out
        assert "adjacency pairs" in out
        assert "R-tree and quadtree agree" in out

    def test_star_catalog(self, capsys):
        module = load_example("star_catalog")
        module.N_STARS = 300
        module.main()
        out = capsys.readouterr().out
        assert "cross-match" in out
        assert "streamed the first" in out

    def test_parallel_index_build(self, capsys):
        module = load_example("parallel_index_build")
        module.N_POLYGONS = 200
        module.main()
        out = capsys.readouterr().out
        assert "quadtree (sim s)" in out
        assert "cost breakdown" in out

    def test_data_pipeline(self, capsys):
        load_example("data_pipeline").main()
        out = capsys.readouterr().out
        assert "ingested" in out
        assert "estimated rows" in out
        assert "matches original" in out
