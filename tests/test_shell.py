"""Unit tests for the interactive SQL shell."""

import io

from repro import Database
from repro.shell import format_result, repl, run_statement


class TestFormatResult:
    def test_rows_rendered_as_table(self):
        db = Database()
        db.sql("create table t (id number, name varchar)")
        db.sql("insert into t values (1, 'one')")
        text = format_result(db.sql("select id, name from t"))
        assert "ID" in text and "NAME" in text
        assert "one" in text
        assert "(1 row)" in text

    def test_message_passthrough(self):
        db = Database()
        text = format_result(db.sql("create table t (id number)"))
        assert text == "table t created"

    def test_null_rendering(self):
        db = Database()
        db.sql("create table t (id number, geom sdo_geometry)")
        db.table("t").insert((1, None))
        text = format_result(db.sql("select geom from t"))
        assert "NULL" in text


class TestRunStatement:
    def test_error_reported_not_raised(self):
        db = Database()
        out = run_statement(db, "select * from missing_table")
        assert out.startswith("ERROR:")

    def test_syntax_error_reported(self):
        db = Database()
        out = run_statement(db, "selekt things")
        assert out.startswith("ERROR:")


class TestRepl:
    def run_script(self, script: str):
        stdin = io.StringIO(script)
        stdout = io.StringIO()
        db = repl(stdin=stdin, stdout=stdout, interactive=False)
        return db, stdout.getvalue()

    def test_full_session(self):
        script = (
            "create table t (id number, geom sdo_geometry);\n"
            "insert into t values (1, sdo_geometry('POINT (1 2)'));\n"
            "select count(*) from t;\n"
            "quit\n"
        )
        db, out = self.run_script(script)
        assert "table t created" in out
        assert "1 row inserted" in out
        assert db.table("t").row_count == 1

    def test_multiline_statement(self):
        script = (
            "create table t\n"
            "  (id number);\n"
            "exit\n"
        )
        _db, out = self.run_script(script)
        assert "table t created" in out

    def test_errors_do_not_kill_session(self):
        script = (
            "bogus statement;\n"
            "create table t (id number);\n"
        )
        db, out = self.run_script(script)
        assert "ERROR:" in out
        assert db.catalog.has_table("t")
