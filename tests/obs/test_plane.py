"""Metrics store, SLO burn-rate engine and the scrape plane (no sockets).

Everything runs on an injected fake clock so retention, rollups and
burn-rate windows are exact, not timing-dependent.
"""

import pytest

from repro.obs.plane import (
    SLO,
    BurnWindow,
    MetricStore,
    ObservabilityPlane,
    SLOEngine,
    default_cluster_slos,
    series_key,
)


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


class TestMetricStore:
    def test_observe_and_latest(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        store.observe("qps", {"shard": 0}, 5.0)
        store.observe("qps", {"shard": 0}, 7.0)
        assert store.latest("qps", {"shard": 0}) == 7.0
        assert store.latest("qps", {"shard": 1}) is None
        # label values canonicalise to strings: int 0 == "0"
        assert store.latest("qps", {"shard": "0"}) == 7.0

    def test_series_key_label_order_irrelevant(self):
        assert series_key("m", {"a": 1, "b": 2}) == series_key(
            "m", {"b": 2, "a": 1}
        )

    def test_range_query_window(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        for i in range(5):
            store.observe("g", None, float(i))
            clock.advance(1.0)
        points = store.range_query("g", start=1001.0, end=1003.0)
        assert [v for _, v in points] == [1.0, 2.0, 3.0]

    def test_retention_evicts_old_points(self):
        clock = FakeClock()
        store = MetricStore(retention=10.0, clock=clock)
        store.observe("g", None, 1.0)
        clock.advance(11.0)
        store.observe("g", None, 2.0)
        assert [v for _, v in store.range_query("g")] == [2.0]

    def test_ring_buffer_bounds_points(self):
        store = MetricStore(max_points=4, clock=FakeClock())
        for i in range(10):
            store.observe("g", None, float(i))
        assert len(store.range_query("g")) == 4

    def test_rate_of_counter(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        for v in (0, 10, 20, 30):
            store.observe("c", None, float(v))
            clock.advance(1.0)
        assert store.rate("c", window=10.0) == pytest.approx(10.0)

    def test_rate_survives_counter_reset(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        # 0 -> 100, restart drops to 0, climbs to 40: increase = 140.
        for v in (0, 100, 0, 40):
            store.observe("c", None, float(v))
            clock.advance(1.0)
        assert store.increase("c", window=10.0) == pytest.approx(140.0)

    def test_rollups_downsample(self):
        clock = FakeClock()
        store = MetricStore(rollup_every=10.0, clock=clock)
        for i in range(25):
            store.observe("g", None, float(i))
            clock.advance(1.0)
        buckets = store.rollup_query("g")
        assert len(buckets) >= 2
        # (bucket_ts, min, max, mean, count) schema
        _, mn, mx, mean, count = buckets[0]
        assert count == 10
        assert mn == 0.0 and mx == 9.0
        assert mean == pytest.approx(4.5)

    def test_match_filters_series(self):
        store = MetricStore(clock=FakeClock())
        store.observe("up", {"shard": 0}, 1.0)
        store.observe("up", {"shard": 1}, 0.0)
        store.observe("other", {"shard": 0}, 1.0)
        assert len(store.match("up")) == 2
        assert store.match("up", shard=1) == [{"shard": "1"}]


#: compressed windows so a test drives hours of SRE-workbook burn logic
#: through seconds of fake time
FAST = (BurnWindow(5.0, 60.0, 10.0, "page"),)


def _availability_slo() -> SLO:
    return SLO(
        "avail",
        "availability",
        objective=0.99,
        total_metric="req.total",
        error_metric="req.errors",
    )


class TestSLOEngine:
    def _feed(self, store, clock, seconds, total_per_s, err_per_s):
        total = store.latest("req.total") or 0.0
        errors = store.latest("req.errors") or 0.0
        for _ in range(int(seconds)):
            total += total_per_s
            errors += err_per_s
            store.observe("req.total", None, total)
            store.observe("req.errors", None, errors)
            clock.advance(1.0)

    def test_no_data_does_not_fire(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        engine = SLOEngine(store, [_availability_slo()], windows=FAST, clock=clock)
        assert engine.evaluate() == []
        assert engine.burn_rates()["avail"] == {}

    def test_fires_when_both_windows_burn(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        engine = SLOEngine(store, [_availability_slo()], windows=FAST, clock=clock)
        # 50% errors against a 1% budget = burn 50 in BOTH windows.
        self._feed(store, clock, 70, total_per_s=10, err_per_s=5)
        transitions = engine.evaluate()
        assert [a.state for a in transitions] == ["firing"]
        alert = transitions[0]
        assert alert.slo == "avail" and alert.severity == "page"
        assert alert.burn_short >= 10.0 and alert.burn_long >= 10.0
        assert engine.firing()[0].slo == "avail"
        # Steady burn: already firing, no duplicate transition.
        assert engine.evaluate() == []

    def test_short_window_alone_does_not_fire(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        engine = SLOEngine(store, [_availability_slo()], windows=FAST, clock=clock)
        # A long clean history, then a 5s error spike: the short window
        # burns hot but the long window stays calm -> no page (this is
        # the point of multi-window alerts).
        self._feed(store, clock, 60, total_per_s=10, err_per_s=0)
        self._feed(store, clock, 5, total_per_s=10, err_per_s=5)
        assert engine.evaluate() == []

    def test_resolves_after_recovery(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        engine = SLOEngine(store, [_availability_slo()], windows=FAST, clock=clock)
        self._feed(store, clock, 70, total_per_s=10, err_per_s=5)
        assert engine.evaluate()[0].state == "firing"
        self._feed(store, clock, 70, total_per_s=10, err_per_s=0)
        transitions = engine.evaluate()
        assert [a.state for a in transitions] == ["resolved"]
        assert engine.firing() == []
        # Both transitions live in the typed log, in order.
        assert [a.state for a in engine.alerts] == ["firing", "resolved"]

    def test_time_scale_shrinks_windows(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        # Workbook page windows (300s/3600s) scaled down 100x -> 3s/36s.
        engine = SLOEngine(
            store, [_availability_slo()], time_scale=0.01, clock=clock
        )
        self._feed(store, clock, 40, total_per_s=10, err_per_s=5)
        states = {(a.slo, a.severity) for a in engine.evaluate()}
        assert ("avail", "page") in states

    def test_gauge_ceiling_slo(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        slo = SLO(
            "lag", "gauge_ceiling", objective=0.9,
            metric="lag_s", threshold=2.0,
        )
        engine = SLOEngine(store, [slo], windows=FAST, clock=clock)
        for _ in range(70):
            store.observe("lag_s", None, 5.0)  # always over the ceiling
            clock.advance(1.0)
        assert engine.evaluate()[0].state == "firing"

    def test_prometheus_exposition(self):
        clock = FakeClock()
        store = MetricStore(clock=clock)
        engine = SLOEngine(store, [_availability_slo()], windows=FAST, clock=clock)
        self._feed(store, clock, 70, total_per_s=10, err_per_s=5)
        engine.evaluate()
        from repro.obs.exporters import _Expo

        expo = _Expo()
        engine.prometheus_into(expo)
        text = expo.text()
        assert '# TYPE repro_slo_objective gauge' in text
        assert 'repro_slo_alert_firing{severity="page",slo="avail"} 1' in text
        assert 'repro_slo_alerts_total{severity="page",slo="avail"} 1' in text
        # Prometheus text lint: every non-comment line is name{...} value
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name and float(value) is not None


class TestObservabilityPlane:
    def test_scrape_runs_collectors_and_engine(self):
        clock = FakeClock()
        plane = ObservabilityPlane(
            slos=[_availability_slo()], windows=FAST, clock=clock
        )
        state = {"total": 0.0}

        def collector(store, now):
            state["total"] += 10.0
            store.observe("req.total", None, state["total"], now)
            store.observe("req.errors", None, state["total"] / 2.0, now)

        plane.add_collector(collector)
        for _ in range(70):
            plane.scrape_once()
            clock.advance(1.0)
        assert plane.scrapes == 70
        snap = plane.snapshot()
        assert snap["alerts_firing"][0]["slo"] == "avail"
        assert any(s["name"] == "req.total" for s in snap["series"])

    def test_broken_collector_counted_not_fatal(self):
        plane = ObservabilityPlane(clock=FakeClock())

        def broken(store, now):
            raise RuntimeError("collector bug")

        plane.add_collector(broken, name="bad")
        plane.add_collector(lambda store, now: store.observe("ok", None, 1.0, now))
        plane.scrape_once()
        plane.scrape_once()
        assert plane.collector_errors["bad"] == 2
        assert plane.store.latest("ok") == 1.0

    def test_snapshot_is_json_safe(self):
        import json

        plane = ObservabilityPlane(
            slos=default_cluster_slos(), clock=FakeClock()
        )
        plane.add_collector(
            lambda store, now: store.observe("g", {"shard": 1}, 2.5, now)
        )
        plane.scrape_once()
        parsed = json.loads(plane.snapshot_json())
        assert parsed["scrapes"] == 1
        assert {s["name"] for s in parsed["slos"]} == {
            "availability", "p99-latency", "replication-lag",
        }

    def test_prometheus_text_has_slo_family(self):
        plane = ObservabilityPlane(
            slos=default_cluster_slos(), clock=FakeClock()
        )
        assert "repro_slo_objective" in plane.prometheus_text()

    def test_background_thread_scrapes(self):
        import time as _time

        plane = ObservabilityPlane(interval=0.01)
        plane.add_collector(
            lambda store, now: store.observe("tick", None, 1.0, now)
        )
        plane.start()
        try:
            deadline = _time.monotonic() + 5.0
            while plane.scrapes == 0 and _time.monotonic() < deadline:
                _time.sleep(0.01)
        finally:
            plane.stop()
        assert plane.scrapes > 0
        assert plane.store.latest("tick") == 1.0
