"""Keep global tracer state hermetic per test.

The obs suite runs in CI both with ``REPRO_TRACE`` unset and set, so
tests that need a specific enablement state set it themselves; this
guard restores whatever the process-level state was afterwards.
"""

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _trace_state_guard():
    prev_enabled, prev_tracer = trace.ENABLED, trace._tracer
    yield
    trace.ENABLED, trace._tracer = prev_enabled, prev_tracer
