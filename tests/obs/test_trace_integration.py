"""End-to-end tracing acceptance: spatial joins under the tracer.

The headline guarantee: tracing only *reads* meters, so a traced join
charges exactly what an untraced one does — per worker and in total —
and the exported Chrome trace nests primary filter / secondary filter
(and, in parallel mode, per-worker partition task) spans correctly.
"""

import json
import math

import pytest

from repro import Database
from repro.datasets import load_geometries
from repro.obs import trace
from repro.obs.exporters import chrome_trace, write_chrome_trace


def _sum_meters(spans):
    """Exact order-independent per-kind sum of span meter deltas.

    ``math.fsum`` is correctly rounded regardless of association order,
    so two runs whose per-worker charges are the same multiset of floats
    sum to the *identical* float even though thread scheduling assigns
    partitions to workers in a different order each run.
    """
    per_kind = {}
    for s in spans:
        for kind, n in s.meter_delta.items():
            per_kind.setdefault(kind, []).append(n)
    return {kind: math.fsum(vals) for kind, vals in sorted(per_kind.items())}


def _sum_worker_meters(meters):
    """The same exact sum over a run's per-worker ``WorkMeter``s."""
    per_kind = {}
    for m in meters:
        for kind, n in m.counts.items():
            per_kind.setdefault(kind, []).append(n)
    return {kind: math.fsum(vals) for kind, vals in sorted(per_kind.items())}


@pytest.fixture
def join_db(random_rects):
    db = Database()
    load_geometries(db, "shapes", random_rects(80, seed=7))
    db.create_spatial_index(
        "shapes_ridx", "shapes", "geom", kind="RTREE", fanout=8
    )
    return db


class TestTracedJoinEquality:
    def test_serial_join_charges_identical_and_spans_nest(self, join_db):
        untraced = join_db.spatial_join("shapes", "geom", "shapes", "geom")
        baseline = _sum_worker_meters(untraced.run.worker_meters)

        with trace.tracing() as tracer:
            traced = join_db.spatial_join("shapes", "geom", "shapes", "geom")
        assert traced.pairs == untraced.pairs
        assert _sum_worker_meters(traced.run.worker_meters) == baseline

        # the task spans account for every charge of the run, exactly
        task_spans = tracer.find("executor.task")
        assert task_spans, "executor task span missing"
        assert _sum_meters(task_spans) == baseline

        primary = tracer.find("join.primary_filter")
        secondary = tracer.find("join.secondary_filter")
        assert primary and secondary
        fetch_ids = {s.span_id for s in tracer.find("join.fetch")}
        assert all(s.parent_id in fetch_ids for s in primary)
        assert all(s.parent_id in fetch_ids for s in secondary)

    def test_parallel_worker_spans_sum_exactly(self, join_db):
        # The simulated executor assigns partitions to workers
        # deterministically, so the per-worker spans of a traced run must
        # sum to the untraced run's totals EXACTLY (same floats, no
        # drift).  The real-thread/process executors claim tasks in
        # timing-dependent order, which permutes float association — they
        # are covered (to within association order) below.
        untraced = join_db.spatial_join(
            "shapes", "geom", "shapes", "geom", parallel=3
        )
        baseline = _sum_worker_meters(untraced.run.worker_meters)

        with trace.tracing() as tracer:
            traced = join_db.spatial_join(
                "shapes", "geom", "shapes", "geom", parallel=3
            )
        assert traced.pairs == untraced.pairs

        task_spans = tracer.find("executor.task")
        assert len(task_spans) >= 3
        assert {s.tags["worker"] for s in task_spans} == {0, 1, 2}
        assert _sum_meters(task_spans) == baseline

    @pytest.mark.parametrize("use_processes", [False, True])
    def test_real_executor_spans_cover_all_charges(
        self, join_db, use_processes
    ):
        kwargs = dict(parallel=3, use_threads=not use_processes,
                      use_processes=use_processes)
        untraced = join_db.spatial_join(
            "shapes", "geom", "shapes", "geom", **kwargs
        )
        baseline = _sum_worker_meters(untraced.run.worker_meters)

        with trace.tracing() as tracer:
            traced = join_db.spatial_join(
                "shapes", "geom", "shapes", "geom", **kwargs
            )
        assert traced.pairs == untraced.pairs

        summed = _sum_meters(tracer.find("executor.task"))
        assert set(summed) == set(baseline)
        for kind, total in baseline.items():
            if float(total).is_integer():
                assert summed[kind] == total, kind
            else:
                # task->worker claiming order varies run to run, which
                # permutes float association; the sums agree to the ulp
                assert summed[kind] == pytest.approx(total, rel=1e-12), kind

    def test_process_worker_spans_are_stitched(self, join_db):
        with trace.tracing() as tracer:
            join_db.spatial_join(
                "shapes", "geom", "shapes", "geom",
                parallel=2, use_processes=True,
            )
        task_spans = tracer.find("executor.task")
        workers = {s.tags.get("worker") for s in task_spans}
        assert len(workers) >= 2
        # child-process spans were re-rooted into this tracer's id space
        span_ids = {s.span_id for s in tracer.spans}
        for s in tracer.spans:
            if s.parent_id is not None:
                assert s.parent_id in span_ids


class TestChromeExport:
    def test_traced_join_chrome_trace_has_nested_filter_spans(
        self, join_db, tmp_path
    ):
        with trace.tracing() as tracer:
            join_db.spatial_join(
                "shapes", "geom", "shapes", "geom",
                parallel=2, use_threads=True,
            )
        path = write_chrome_trace(str(tmp_path / "join.json"), tracer)
        with open(path) as fh:
            doc = json.load(fh)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "join.primary_filter" in names
        assert "join.secondary_filter" in names
        assert "executor.task" in names

        # every complete event fits inside its parent's interval
        by_id = {
            e["args"]["span_id"]: e
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        eps = 1e-3  # µs rounding slack
        for e in by_id.values():
            parent = by_id.get(e["args"]["parent_id"])
            if parent is None or parent["pid"] != e["pid"]:
                continue
            assert parent["ts"] <= e["ts"] + eps
            assert (
                parent["ts"] + parent["dur"] + eps
                >= e["ts"] + e["dur"]
            )


class TestDisabledOverhead:
    def test_disabled_join_makes_no_tracer_and_identical_charges(
        self, join_db
    ):
        trace.disable()
        first = join_db.spatial_join("shapes", "geom", "shapes", "geom")
        second = join_db.spatial_join("shapes", "geom", "shapes", "geom")
        assert dict(first.run.combined_meter().counts) == dict(
            second.run.combined_meter().counts
        )
        assert trace.get_tracer() is None


class TestTessellationAndWalSpans:
    def test_tessellate_spans(self, random_rects):
        db = Database()
        load_geometries(db, "q", random_rects(30, seed=2))
        with trace.tracing() as tracer:
            db.create_spatial_index(
                "q_idx", "q", "geom", kind="QUADTREE", tiling_level=4
            )
        assert tracer.find("tessellate")
        assert tracer.find("tessellate.level")

    def test_wal_commit_span(self, tmp_path):
        with trace.tracing() as tracer:
            db = Database.open(str(tmp_path / "t.db"), durability="wal")
            db.sql("create table t (id number)")
            db.sql("insert into t values (1)")
            db.close()
        assert tracer.find("wal.commit")
        assert tracer.find("wal.checkpoint")
