"""Exporter tests: Chrome trace JSON, JSON-lines, rollups, Prometheus."""

import json

import pytest

from repro.engine.cost import DEFAULT_COST_MODEL, WorkMeter
from repro.obs import trace
from repro.obs.exporters import (
    aggregate_spans,
    chrome_trace,
    lint_prometheus,
    prometheus_text,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.server.metrics import ServerMetrics


@pytest.fixture
def sample_tracer():
    meter = WorkMeter()
    with trace.tracing() as tracer:
        with trace.span("outer", meter, query=1):
            meter.add("mbr_test", 4)
            trace.instant("tick", page=7)
            with trace.span("inner", meter):
                meter.add("result_row", 2)
    return tracer


class TestChromeTrace:
    def test_document_shape(self, sample_tracer):
        doc = chrome_trace(sample_tracer)
        assert doc["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in doc["traceEvents"]]
        assert "M" in phases and "X" in phases and "i" in phases

    def test_span_events_nest_by_timestamps(self, sample_tracer):
        doc = chrome_trace(sample_tracer)
        by_name = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_meter_and_simulated_seconds_in_args(self, sample_tracer):
        doc = chrome_trace(sample_tracer)
        outer = next(
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "outer"
        )
        # outer's delta covers both its own and the nested span's charges
        assert outer["args"]["meter"] == {"mbr_test": 4.0, "result_row": 2.0}
        expected = 4 * DEFAULT_COST_MODEL.cost_of(
            "mbr_test"
        ) + 2 * DEFAULT_COST_MODEL.cost_of("result_row")
        assert outer["args"]["simulated_seconds"] == pytest.approx(expected)

    def test_json_serialisable_and_writeable(self, sample_tracer, tmp_path):
        path = write_chrome_trace(
            str(tmp_path / "trace.json"), sample_tracer
        )
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["traceEvents"]

    def test_empty_source(self):
        assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


class TestJsonl:
    def test_one_object_per_span_plus_events(self, sample_tracer, tmp_path):
        path = write_jsonl(str(tmp_path / "spans.jsonl"), sample_tracer)
        with open(path) as fh:
            objects = [json.loads(line) for line in fh]
        names = {o.get("name") for o in objects}
        assert {"outer", "inner", "tick"} <= names
        kinds = [o.get("kind") for o in objects if "kind" in o]
        assert kinds == ["event"]

    def test_empty_is_empty_string(self):
        assert spans_to_jsonl([]) == ""


class TestAggregate:
    def test_rollup_sums_meters_and_counts(self, sample_tracer):
        rollup = aggregate_spans(sample_tracer.spans)
        assert rollup["outer"]["count"] == 1
        assert rollup["inner"]["meter"] == {"result_row": 2.0}
        assert rollup["inner"]["simulated_seconds"] == pytest.approx(
            2 * DEFAULT_COST_MODEL.cost_of("result_row")
        )


class TestPrometheus:
    def _snapshot(self):
        metrics = ServerMetrics()
        metrics.record_request("start", ok=True)
        metrics.record_request("fetch", ok=False)
        metrics.record_query("sql", 0.01, rows=5)
        meter = WorkMeter()
        meter.add("mbr_test", 3)
        metrics.merge_meter("sql", meter)
        metrics.bump_session("opened")
        return metrics.snapshot(active_sessions=1)

    def test_exposition_is_lint_clean(self):
        text = prometheus_text(
            self._snapshot(),
            kernel={
                "backend": "python",
                "calls": {"classify_tiles": 2},
                "items": {"classify_tiles": 9},
            },
        )
        assert lint_prometheus(text) == []
        assert 'repro_requests_total{op="start"} 1' in text
        assert 'repro_request_errors_total{op="fetch"} 1' in text
        assert 'repro_query_rows_total{kind="sql"} 5' in text
        assert 'repro_meter_units_total{kind="sql",unit="mbr_test"} 3' in text
        assert "repro_sessions_active 1" in text
        assert 'repro_kernel_calls_total{entry="classify_tiles"} 2' in text

    def test_storage_zeros_without_durability(self):
        # the snapshot must expose a stable zeroed storage schema even
        # when the database runs with durability="none"
        text = prometheus_text(ServerMetrics().snapshot())
        assert 'repro_storage_info{durability="none"} 1' in text
        assert 'repro_storage{stat="wal_bytes"} 0' in text
        assert 'repro_storage{stat="recovered_pages"} 0' in text
        assert lint_prometheus(text) == []

    def test_label_escaping(self):
        metrics = ServerMetrics()
        metrics.record_request('we"ird\\op', ok=True)
        text = prometheus_text(metrics.snapshot())
        assert lint_prometheus(text) == []


class TestLint:
    def test_valid_minimal_exposition(self):
        text = (
            "# HELP x_total things\n"
            "# TYPE x_total counter\n"
            'x_total{a="b"} 1\n'
            "x_total 2.5\n"
        )
        assert lint_prometheus(text) == []

    def test_missing_trailing_newline(self):
        errors = lint_prometheus("# TYPE x counter\nx 1")
        assert any("newline" in e for e in errors)

    def test_sample_without_type(self):
        errors = lint_prometheus("lonely_metric 1\n")
        assert any("no preceding TYPE" in e for e in errors)

    def test_bad_type_value(self):
        errors = lint_prometheus("# TYPE x weird\nx 1\n")
        assert any("bad TYPE" in e for e in errors)

    def test_duplicate_sample(self):
        text = "# TYPE x counter\nx 1\nx 2\n"
        errors = lint_prometheus(text)
        assert any("duplicate sample" in e for e in errors)

    def test_malformed_sample_line(self):
        errors = lint_prometheus("# TYPE x counter\nx one\n")
        assert any("malformed sample" in e for e in errors)

    def test_malformed_label_pair(self):
        errors = lint_prometheus('# TYPE x counter\nx{a=b} 1\n')
        assert any("malformed label pair" in e for e in errors)

    def test_histogram_suffixes_allowed(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 3\n'
            "h_sum 2.5\n"
            "h_count 3\n"
        )
        assert lint_prometheus(text) == []
