"""Unit tests for the span tracer: nesting, meters, sampling, adoption."""

import threading

import pytest

from repro.engine.cost import DEFAULT_COST_MODEL, WorkMeter
from repro.engine.parallel import WorkerContext
from repro.obs import trace


@pytest.fixture
def tracer():
    """A fresh enabled tracer, restored to prior state afterwards."""
    with trace.tracing() as t:
        yield t


class TestSpanBasics:
    def test_nesting_assigns_parent_ids(self, tracer):
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        names = [s.name for s in tracer.spans]
        assert names == ["inner", "outer"]  # children finish first

    def test_meter_delta_captures_charges(self, tracer):
        ctx = WorkerContext(worker_id=0, meter=WorkMeter())
        ctx.charge("mbr_test", 3)
        with trace.span("work", ctx):
            ctx.charge("mbr_test", 5)
            ctx.charge("result_row", 2)
        span = tracer.find("work")[0]
        assert span.meter_delta == {"mbr_test": 5.0, "result_row": 2.0}

    def test_simulated_seconds_matches_model(self, tracer):
        ctx = WorkerContext(worker_id=0, meter=WorkMeter())
        with trace.span("work", ctx):
            ctx.charge("mbr_test", 10)
        span = tracer.find("work")[0]
        expected = 10 * DEFAULT_COST_MODEL.cost_of("mbr_test")
        assert span.simulated_seconds(DEFAULT_COST_MODEL) == pytest.approx(
            expected
        )

    def test_span_never_charges_the_meter(self, tracer):
        ctx = WorkerContext(worker_id=0, meter=WorkMeter())
        with trace.span("a", ctx):
            with trace.span("b", ctx):
                pass
        assert ctx.meter.counts == {}

    def test_tags_and_set_tag(self, tracer):
        with trace.span("t", color="red") as sp:
            sp.set_tag("rows", 7)
        span = tracer.find("t")[0]
        assert span.tags == {"color": "red", "rows": 7}

    def test_exception_recorded_as_error_tag(self, tracer):
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("no")
        span = tracer.find("boom")[0]
        assert "ValueError" in span.tags["error"]

    def test_to_dict_round_trips_json(self, tracer):
        import json

        ctx = WorkerContext(worker_id=1, meter=WorkMeter())
        with trace.span("d", ctx, k="v"):
            ctx.charge("mbr_test", 1)
        payload = json.loads(json.dumps(tracer.find("d")[0].to_dict()))
        assert payload["name"] == "d"
        assert payload["tags"] == {"k": "v"}
        assert payload["meter_delta"] == {"mbr_test": 1.0}


class TestDisabledPath:
    def test_disabled_returns_shared_noop(self):
        trace.disable()
        sp = trace.span("anything")
        assert sp is trace.NOOP_SPAN
        with sp as inner:
            inner.set_tag("ignored", 1)  # must not raise
        assert sp.tags == {}
        assert sp.meter_delta == {}

    def test_disabled_instant_is_noop(self):
        trace.disable()
        trace.instant("nothing", x=1)  # must not raise, records nowhere
        assert trace.get_tracer() is None

    def test_disabled_current_span_is_none(self):
        trace.disable()
        assert trace.current_span() is None


class TestSampling:
    def test_every_other_root_trace_sampled(self):
        with trace.tracing(sample_every=2) as tracer:
            for i in range(4):
                with trace.span(f"root{i}"):
                    with trace.span(f"child{i}"):
                        pass
        names = sorted(s.name for s in tracer.spans)
        assert names == ["child0", "child2", "root0", "root2"]
        assert tracer.sampled_out_traces == 2

    def test_unsampled_children_follow_parent(self):
        with trace.tracing(sample_every=2) as tracer:
            with trace.span("kept"):
                pass
            with trace.span("dropped") as root:
                assert root.sampled is False
                with trace.span("dropped_child") as child:
                    assert child.sampled is False
        assert [s.name for s in tracer.spans] == ["kept"]


class TestEvents:
    def test_instant_attaches_to_current_span(self, tracer):
        with trace.span("holder"):
            trace.instant("tick", page=3)
        assert len(tracer.events) == 1
        assert tracer.events[0]["name"] == "tick"
        assert tracer.events[0]["tags"] == {"page": 3}

    def test_event_cap_counts_drops(self):
        with trace.tracing(max_events=2) as tracer:
            with trace.span("s"):
                for i in range(5):
                    trace.instant("e", i=i)
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 3


class TestThreads:
    def test_explicit_parent_crosses_threads(self, tracer):
        def worker(parent):
            with trace.span("thread_child", parent=parent):
                pass

        with trace.span("submitter") as parent:
            t = threading.Thread(target=worker, args=(parent,))
            t.start()
            t.join()
        child = tracer.find("thread_child")[0]
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id


class TestAdoption:
    def test_drain_and_adopt_reparents_spans(self):
        with trace.tracing() as remote:
            with trace.span("remote_root"):
                with trace.span("remote_child"):
                    pass
        shipped = remote.drain_serialized()
        assert remote.spans == []

        with trace.tracing() as local:
            with trace.span("local_parent") as parent:
                local.adopt(shipped, parent=parent)
        root = local.find("remote_root")[0]
        child = local.find("remote_child")[0]
        assert root.parent_id == parent.span_id
        assert root.trace_id == parent.trace_id
        assert child.parent_id == root.span_id

    def test_adopt_preserves_meter_and_tags(self):
        ctx = WorkerContext(worker_id=2, meter=WorkMeter())
        with trace.tracing() as remote:
            with trace.span("work", ctx, part=4):
                ctx.charge("mbr_test", 9)
        shipped = remote.drain_serialized()
        with trace.tracing() as local:
            local.adopt(shipped, worker=2)
        adopted = local.find("work")[0]
        assert adopted.meter_delta == {"mbr_test": 9.0}
        assert adopted.tags["part"] == 4
        assert adopted.tags["worker"] == 2


class TestEnvGating:
    def test_env_values(self, monkeypatch):
        for on in ("1", "on", "true", "yes"):
            monkeypatch.setenv("REPRO_TRACE", on)
            assert trace._env_enabled()
        for off in ("", "0", "false", "off", "no"):
            monkeypatch.setenv("REPRO_TRACE", off)
            assert not trace._env_enabled()
        monkeypatch.delenv("REPRO_TRACE")
        assert not trace._env_enabled()

    def test_env_sample(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "5")
        assert trace._env_sample() == 5
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "bogus")
        assert trace._env_sample() == 1
        monkeypatch.delenv("REPRO_TRACE_SAMPLE")
        assert trace._env_sample() == 1

    def test_enable_disable_round_trip(self):
        trace.disable()
        assert not trace.enabled()
        trace.enable()
        try:
            assert trace.enabled()
            assert trace.get_tracer() is not None
        finally:
            trace.disable()
        assert not trace.enabled()
