"""Cross-process trace context: wire ids, remote spans, adopt() stitching.

Multi-process flows are simulated with two :class:`Tracer` instances in
one process (the "router" and the "shard"); genuinely foreign processes
are simulated by doctoring the serialised spans' ``pid`` fields.
"""

import os

from repro.obs import trace
from repro.obs.trace import Tracer, build_tree


class TestWireCtx:
    def test_wire_ctx_shape(self):
        with trace.tracing() as tracer:
            with trace.span("root") as sp:
                ctx = trace.wire_ctx()
        assert ctx == {
            "trace": f"{os.getpid():x}-{sp.trace_id:x}",
            "span": sp.span_id,
            "pid": os.getpid(),
            "sampled": True,
        }
        # the minted wire id resolves back to the same local trace
        assert tracer.trace_for_wire(ctx["trace"]) == sp.trace_id

    def test_wire_ctx_none_when_disabled_or_idle(self):
        trace.disable()
        assert trace.wire_ctx() is None
        with trace.tracing():
            assert trace.wire_ctx() is None  # tracing on, but no open span

    def test_trace_for_wire_allocates_stably(self):
        tracer = Tracer()
        local = tracer.trace_for_wire("abc-7")
        assert tracer.trace_for_wire("abc-7") == local
        assert tracer.wire_id_of(local) == "abc-7"  # symmetric binding
        assert tracer.trace_for_wire("def-7") != local


class TestRemoteSpans:
    def _ctx(self, router, root):
        return {
            "trace": router.wire_id_of(root.trace_id),
            "span": root.span_id,
            "pid": os.getpid(),
            "sampled": root.sampled,
        }

    def test_remote_span_tags_and_trace_binding(self):
        router = Tracer()
        root = router.span("router.scatter").open()
        ctx = self._ctx(router, root)

        shard = Tracer()
        sess = shard.span("server.session", remote=ctx).open()
        assert sess.parent_id is None  # local root on the shard side
        assert sess.tags["_wire_parent"] == root.span_id
        assert sess.tags["_wire_parent_pid"] == os.getpid()
        # the shard's local trace is bound to the router's wire id
        assert shard.wire_id_of(sess.trace_id) == ctx["trace"]
        sess.finish()
        root.finish()

    def test_remote_sampled_false_propagates(self):
        router = Tracer()
        ctx = {"trace": "feed-1", "span": 1, "pid": 12345, "sampled": False}
        sp = router.span("server.session", remote=ctx).open()
        assert not sp.sampled
        sp.finish()
        assert router.spans == []  # unsampled spans are never recorded

    def test_drain_carries_wire_trace(self):
        router = Tracer()
        root = router.span("router.scatter").open()
        shard = Tracer()
        with shard.span("server.start", remote=self._ctx(router, root)):
            pass
        shipped = shard.drain_serialized()
        assert [d["wire_trace"] for d in shipped] == [
            router.wire_id_of(root.trace_id)
        ]
        root.finish()


class TestAdoptWire:
    def _ctx(self, router, root):
        return {
            "trace": router.wire_id_of(root.trace_id),
            "span": root.span_id,
            "pid": os.getpid(),
            "sampled": root.sampled,
        }

    def test_own_pid_wire_parent_pins_under_minting_span(self):
        """The router re-adopting spans whose wire parent IS its own span
        must attach them directly under it, in the original trace."""
        router = Tracer()
        root = router.span("router.scatter").open()

        shard = Tracer()
        sess = shard.span("server.session", remote=self._ctx(router, root)).open()
        with shard.span("server.fetch", parent=sess):
            pass
        sess.finish()

        router.adopt(shard.drain_serialized(), shard=3)
        root.finish()

        adopted_sess = router.find("server.session")[0]
        assert adopted_sess.parent_id == root.span_id  # unmapped local id
        assert adopted_sess.trace_id == root.trace_id
        assert adopted_sess.tags["shard"] == 3
        assert "_wire_parent" not in adopted_sess.tags  # consumed, not kept
        fetch = router.find("server.fetch")[0]
        assert fetch.parent_id == adopted_sess.span_id
        assert fetch.trace_id == root.trace_id
        # one tree: every span of the trace is reachable
        assert len(router.spans_for_trace(root.trace_id)) == 3

    def test_foreign_ids_stable_across_drain_batches(self):
        """A child drained before its parent reconnects when the parent
        arrives in a later batch — ids remap stably per (pid, span_id)."""
        remote = Tracer()
        root = remote.span("remote_root").open()
        remote.wire_id_of(root.trace_id)  # wire-bind so batches carry it
        with remote.span("early_child", parent=root):
            pass
        batch1 = remote.drain_serialized()
        with remote.span("late_child", parent=root):
            pass
        root.finish()
        batch2 = remote.drain_serialized()
        for d in batch1 + batch2:
            d["pid"] = 99999  # simulate a genuinely foreign process

        local = Tracer()
        local.adopt(batch1)
        local.adopt(batch2)
        early = local.find("early_child")[0]
        late = local.find("late_child")[0]
        adopted_root = local.find("remote_root")[0]
        assert early.parent_id == adopted_root.span_id
        assert late.parent_id == adopted_root.span_id
        assert early.trace_id == late.trace_id == adopted_root.trace_id
        assert early.pid == 99999  # origin pid preserved for display

    def test_unbound_orphans_reroot_at_parent(self):
        """Spans with no wire binding and an unseen parent (e.g. a stack
        inherited across fork) re-root at the adopt parent."""
        remote = Tracer()
        root = remote.span("lost_parent_root").open()
        with remote.span("orphan", parent=root):
            pass
        batch = remote.drain_serialized()  # root still open: not shipped
        for d in batch:
            d["pid"] = 99999

        local = Tracer()
        anchor = local.span("anchor").open()
        local.adopt(batch, parent=anchor)
        anchor.finish()
        orphan = local.find("orphan")[0]
        assert orphan.parent_id == anchor.span_id
        assert orphan.trace_id == anchor.trace_id
        root.finish()


class TestBuildTree:
    def _d(self, span_id, parent_id, start, name="s"):
        return {
            "name": name,
            "span_id": span_id,
            "parent_id": parent_id,
            "start_wall": start,
        }

    def test_nesting_and_time_sort(self):
        spans = [
            self._d(1, None, 10.0, "root"),
            self._d(3, 1, 30.0, "second"),
            self._d(2, 1, 20.0, "first"),
            self._d(4, 2, 25.0, "leaf"),
        ]
        roots = build_tree(spans)
        assert len(roots) == 1
        root = roots[0]
        assert root["span"]["name"] == "root"
        assert [c["span"]["name"] for c in root["children"]] == [
            "first",
            "second",
        ]
        assert root["children"][0]["children"][0]["span"]["name"] == "leaf"

    def test_missing_parent_becomes_root(self):
        roots = build_tree(
            [self._d(2, 99, 20.0, "dangling"), self._d(1, None, 10.0, "root")]
        )
        assert [r["span"]["name"] for r in roots] == ["root", "dangling"]

    def test_round_trip_through_real_tracer(self):
        with trace.tracing() as tracer:
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
        roots = build_tree([s.to_dict() for s in tracer.spans])
        assert len(roots) == 1
        assert roots[0]["span"]["name"] == "outer"
        assert roots[0]["children"][0]["span"]["name"] == "inner"
