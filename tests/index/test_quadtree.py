"""Unit tests for the linear quadtree domain index."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.errors import IndexTypeError, OperatorError
from repro.geometry.predicates import intersects


@pytest.fixture
def qdb(random_rects):
    db = Database()
    geoms = random_rects(120, seed=21)
    load_geometries(db, "shapes", geoms)
    index, _report = db.create_spatial_index(
        "shapes_qidx", "shapes", "geom", kind="QUADTREE", tiling_level=6
    )
    return db, index, geoms


class TestWindowQueries:
    def window(self):
        return Geometry.rectangle(25, 25, 50, 50)

    def test_anyinteract_matches_brute_force(self, qdb):
        db, index, _geoms = qdb
        window = self.window()
        expected = sorted(
            rid
            for rid, row in db.table("shapes").scan()
            if intersects(row[1], window)
        )
        got = sorted(index.fetch("SDO_RELATE", (window, "ANYINTERACT")))
        assert got == expected

    def test_filter_is_superset_of_exact(self, qdb):
        _db, index, _geoms = qdb
        window = self.window()
        exact = set(index.fetch("SDO_RELATE", (window, "ANYINTERACT")))
        primary = set(index.fetch("SDO_FILTER", (window,)))
        assert exact <= primary

    def test_within_distance(self, qdb):
        db, index, _geoms = qdb
        from repro.geometry.distance import within_distance

        probe = Geometry.rectangle(10, 10, 12, 12)
        expected = sorted(
            rid
            for rid, row in db.table("shapes").scan()
            if within_distance(row[1], probe, 8.0)
        )
        got = sorted(index.fetch("SDO_WITHIN_DISTANCE", (probe, 8.0)))
        assert got == expected

    def test_no_duplicates_across_tiles(self, qdb):
        _db, index, _geoms = qdb
        hits = list(index.fetch("SDO_RELATE", (Geometry.rectangle(0, 0, 100, 100), "ANYINTERACT")))
        assert len(hits) == len(set(hits))

    def test_unknown_operator_rejected(self, qdb):
        _db, index, _geoms = qdb
        with pytest.raises(OperatorError):
            list(index.fetch("SDO_WARP", (self.window(),)))

    def test_missing_query_geometry(self, qdb):
        _db, index, _geoms = qdb
        with pytest.raises(OperatorError):
            list(index.fetch("SDO_RELATE", ()))


class TestDml:
    def test_insert_then_query(self, qdb):
        db, index, _geoms = qdb
        table = db.table("shapes")
        before = index.tile_count()
        rid = table.insert((777, Geometry.rectangle(70, 70, 72, 72)))
        assert index.tile_count() > before
        hits = list(
            index.fetch("SDO_RELATE", (Geometry.rectangle(69, 69, 73, 73), "ANYINTERACT"))
        )
        assert rid in hits

    def test_delete_removes_tiles(self, qdb):
        db, index, _geoms = qdb
        table = db.table("shapes")
        rid = table.insert((888, Geometry.rectangle(80, 80, 82, 82)))
        count_with = index.tile_count()
        table.delete(rid)
        assert index.tile_count() < count_with
        hits = list(
            index.fetch("SDO_RELATE", (Geometry.rectangle(79, 79, 83, 83), "ANYINTERACT"))
        )
        assert rid not in hits

    def test_tiles_of_diagnostic(self, qdb):
        db, index, _geoms = qdb
        table = db.table("shapes")
        rid = table.insert((999, Geometry.rectangle(90, 90, 92, 92)))
        tiles = index.tiles_of(rid)
        assert tiles
        table.delete(rid)
        assert index.tiles_of(rid) == []


class TestAgreementWithRTree:
    def test_quadtree_and_rtree_answer_identically(self, indexed_db):
        db = indexed_db
        r_index = db.spatial_index("shapes_ridx")
        q_index = db.spatial_index("shapes_qidx")
        for window in (
            Geometry.rectangle(10, 10, 30, 30),
            Geometry.rectangle(0, 0, 5, 5),
            Geometry.rectangle(40, 60, 90, 95),
        ):
            r_hits = sorted(r_index.fetch("SDO_RELATE", (window, "ANYINTERACT")))
            q_hits = sorted(q_index.fetch("SDO_RELATE", (window, "ANYINTERACT")))
            assert r_hits == q_hits

    def test_metadata_recorded_in_catalog(self, indexed_db):
        meta = indexed_db.catalog.index("shapes_qidx")
        assert meta.index_kind == "QUADTREE"
        assert meta.parameters.get("tiling_level") == 6
        assert meta.index_table_name == "shapes_qidx_idxtab"
