"""Unit tests for the dynamic R-tree."""

import random

import pytest

from repro.errors import IndexBuildError
from repro.geometry.mbr import MBR
from repro.index.rtree.rtree import RTree
from repro.storage.heap import RowId


def rid(i):
    return RowId(i // 100, i % 100)


def random_mbrs(n, seed=0, extent=1000.0, size=10.0):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x, y = rng.uniform(0, extent), rng.uniform(0, extent)
        out.append(MBR(x, y, x + rng.uniform(0.1, size), y + rng.uniform(0.1, size)))
    return out


def brute_force(entries, query):
    return sorted(r for m, r in entries if m.intersects(query))


class TestInsertSearch:
    def test_empty_tree(self):
        t = RTree(fanout=4)
        assert len(t) == 0
        assert list(t.search(MBR(0, 0, 10, 10))) == []

    def test_single_entry(self):
        t = RTree(fanout=4)
        t.insert(MBR(1, 1, 2, 2), rid(0))
        assert len(t) == 1
        assert [r for _m, r in t.search(MBR(0, 0, 3, 3))] == [rid(0)]
        assert list(t.search(MBR(5, 5, 6, 6))) == []

    def test_search_matches_brute_force(self):
        mbrs = random_mbrs(300, seed=1)
        entries = [(m, rid(i)) for i, m in enumerate(mbrs)]
        t = RTree(fanout=8)
        for m, r in entries:
            t.insert(m, r)
        for qseed in range(5):
            q = random_mbrs(1, seed=100 + qseed, size=80)[0]
            got = sorted(r for _m, r in t.search(q))
            assert got == brute_force(entries, q)

    def test_splits_keep_invariants(self):
        t = RTree(fanout=4)
        for i, m in enumerate(random_mbrs(200, seed=2)):
            t.insert(m, rid(i))
            if i % 29 == 0:
                t.check_invariants()
        t.check_invariants()
        assert t.height >= 3

    def test_duplicate_mbrs_allowed(self):
        t = RTree(fanout=4)
        m = MBR(0, 0, 1, 1)
        for i in range(10):
            t.insert(m, rid(i))
        assert len(list(t.search(m))) == 10

    def test_empty_mbr_rejected(self):
        from repro.geometry.mbr import EMPTY_MBR

        t = RTree(fanout=4)
        with pytest.raises(IndexBuildError):
            t.insert(EMPTY_MBR, rid(0))

    def test_fanout_validation(self):
        with pytest.raises(IndexBuildError):
            RTree(fanout=3)


class TestDelete:
    def test_delete_present_entry(self):
        t = RTree(fanout=4)
        mbrs = random_mbrs(50, seed=3)
        for i, m in enumerate(mbrs):
            t.insert(m, rid(i))
        assert t.delete(mbrs[10], rid(10))
        assert len(t) == 49
        assert rid(10) not in [r for _m, r in t.search(mbrs[10])]
        t.check_invariants()

    def test_delete_absent_returns_false(self):
        t = RTree(fanout=4)
        t.insert(MBR(0, 0, 1, 1), rid(0))
        assert not t.delete(MBR(5, 5, 6, 6), rid(9))
        assert len(t) == 1

    def test_delete_everything(self):
        t = RTree(fanout=4)
        mbrs = random_mbrs(120, seed=4)
        for i, m in enumerate(mbrs):
            t.insert(m, rid(i))
        order = list(range(120))
        random.Random(5).shuffle(order)
        for count, i in enumerate(order):
            assert t.delete(mbrs[i], rid(i))
            if count % 17 == 0:
                t.check_invariants()
        assert len(t) == 0

    def test_interleaved_insert_delete_matches_model(self):
        t = RTree(fanout=5)
        model = {}
        rng = random.Random(6)
        pool = random_mbrs(80, seed=7)
        for step in range(400):
            i = rng.randrange(80)
            if i in model:
                assert t.delete(pool[i], rid(i))
                del model[i]
            else:
                t.insert(pool[i], rid(i))
                model[i] = pool[i]
        q = MBR(0, 0, 1000, 1000)
        assert sorted(r for _m, r in t.search(q)) == sorted(rid(i) for i in model)
        t.check_invariants()


class TestStructure:
    def test_leaf_entries_iterates_everything(self):
        t = RTree(fanout=4)
        mbrs = random_mbrs(60, seed=8)
        for i, m in enumerate(mbrs):
            t.insert(m, rid(i))
        assert sorted(r for _m, r in t.leaf_entries()) == sorted(rid(i) for i in range(60))

    def test_subtree_roots_levels(self):
        t = RTree(fanout=4)
        for i, m in enumerate(random_mbrs(100, seed=9)):
            t.insert(m, rid(i))
        assert t.subtree_roots(0) == [t.root]
        level1 = t.subtree_roots(1)
        assert len(level1) == len(t.root.entries)
        # all leaves ultimately reachable
        deep = t.subtree_roots(t.root.level)
        assert all(n.is_leaf for n in deep)
        # descending past the leaves stops at the leaves
        deeper = t.subtree_roots(t.root.level + 5)
        assert len(deeper) == len(deep)

    def test_search_within_expands_window(self):
        t = RTree(fanout=4)
        t.insert(MBR(10, 10, 11, 11), rid(0))
        q = MBR(0, 0, 5, 5)
        assert list(t.search_within(q, 4.0)) == []
        assert len(list(t.search_within(q, 7.0))) == 1

    def test_node_count_grows_with_size(self):
        t = RTree(fanout=4)
        for i, m in enumerate(random_mbrs(100, seed=10)):
            t.insert(m, rid(i))
        assert t.node_count() > 25  # at least the leaf layer

    def test_mbr_is_union_of_entries(self):
        t = RTree(fanout=4)
        mbrs = random_mbrs(40, seed=11)
        for i, m in enumerate(mbrs):
            t.insert(m, rid(i))
        total = t.mbr
        for m in mbrs:
            assert total.contains(m)
