"""Unit tests for quadtree index-table persistence."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.geometry.mbr import MBR
from repro.index.quadtree.persist import dump_quadtree, load_quadtree
from repro.index.quadtree.quadtree import QuadtreeIndex
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.pager import MemoryPager


DOMAIN = MBR(0, 0, 110, 110)


@pytest.fixture
def built_index(random_rects):
    db = Database()
    load_geometries(db, "t", random_rects(80, seed=141))
    index = QuadtreeIndex("t_q", db.table("t"), "geom", domain=DOMAIN, tiling_level=6)
    index.create()
    return db, index


def make_index_table():
    return HeapFile(BufferPool(MemoryPager(), capacity=64), name="t_q_idxtab")


class TestRoundTrip:
    def test_dump_row_count(self, built_index):
        _db, index = built_index
        heap = make_index_table()
        count = dump_quadtree(index, heap)
        assert count == index.tile_count()
        assert heap.row_count == count

    def test_load_restores_identical_index(self, built_index):
        db, index = built_index
        heap = make_index_table()
        dump_quadtree(index, heap)
        loaded = load_quadtree(
            heap, "t_q2", db.table("t"), "geom",
            domain=DOMAIN, tiling_level=6,
        )
        assert list(loaded.btree.items()) == list(index.btree.items())

    def test_loaded_index_answers_queries(self, built_index):
        db, index = built_index
        heap = make_index_table()
        dump_quadtree(index, heap)
        loaded = load_quadtree(
            heap, "t_q2", db.table("t"), "geom", domain=DOMAIN, tiling_level=6
        )
        window = Geometry.rectangle(10, 10, 60, 60)
        assert sorted(loaded.fetch("SDO_RELATE", (window, "ANYINTERACT"))) == sorted(
            index.fetch("SDO_RELATE", (window, "ANYINTERACT"))
        )

    def test_empty_index_roundtrip(self, random_rects):
        db = Database()
        load_geometries(db, "t", [])
        index = QuadtreeIndex("t_q", db.table("t"), "geom", domain=DOMAIN, tiling_level=5)
        index.create()
        heap = make_index_table()
        assert dump_quadtree(index, heap) == 0
        loaded = load_quadtree(
            heap, "t_q2", db.table("t"), "geom", domain=DOMAIN, tiling_level=5
        )
        assert loaded.tile_count() == 0
