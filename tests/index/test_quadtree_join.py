"""Unit tests for the quadtree tile-merge join."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.engine.parallel import WorkerContext
from repro.errors import JoinError
from repro.geometry.mbr import MBR
from repro.geometry.predicates import intersects
from repro.index.quadtree.join import quadtree_join_candidates, quadtree_tile_join
from repro.index.quadtree.quadtree import QuadtreeIndex


DOMAIN = MBR(0, 0, 110, 110)


@pytest.fixture
def qj_db(random_rects):
    db = Database()
    load_geometries(db, "a_tab", random_rects(80, seed=121))
    load_geometries(db, "b_tab", random_rects(70, seed=122))
    idx_a = QuadtreeIndex("a_q", db.table("a_tab"), "geom", domain=DOMAIN, tiling_level=6)
    idx_a.create()
    idx_b = QuadtreeIndex("b_q", db.table("b_tab"), "geom", domain=DOMAIN, tiling_level=6)
    idx_b.create()
    return db, idx_a, idx_b


def brute(db):
    out = set()
    for ra, rowa in db.table("a_tab").scan():
        for rb, rowb in db.table("b_tab").scan():
            if intersects(rowa[1], rowb[1]):
                out.add((ra, rb))
    return out


class TestQuadtreeJoin:
    def test_matches_brute_force(self, qj_db):
        db, idx_a, idx_b = qj_db
        got = set(quadtree_tile_join(idx_a, idx_b))
        assert got == brute(db)

    def test_candidates_are_superset(self, qj_db):
        db, idx_a, idx_b = qj_db
        candidates = set(quadtree_join_candidates(idx_a, idx_b))
        assert brute(db) <= candidates

    def test_certain_pairs_really_intersect(self, qj_db):
        db, idx_a, idx_b = qj_db
        for (ra, rb), certain in quadtree_join_candidates(idx_a, idx_b).items():
            if certain:
                ga = db.table("a_tab").fetch(ra)[1]
                gb = db.table("b_tab").fetch(rb)[1]
                assert intersects(ga, gb)

    def test_mismatched_grids_rejected(self, qj_db):
        db, idx_a, _idx_b = qj_db
        other = QuadtreeIndex(
            "b_q2", db.table("b_tab"), "geom", domain=DOMAIN, tiling_level=5
        )
        other.create()
        with pytest.raises(JoinError):
            quadtree_join_candidates(idx_a, other)

    def test_agrees_with_rtree_join(self, qj_db):
        db, idx_a, idx_b = qj_db
        db.create_spatial_index("a_r", "a_tab", "geom", kind="RTREE")
        db.create_spatial_index("b_r", "b_tab", "geom", kind="RTREE")
        rtree_result = db.spatial_join("a_tab", "geom", "b_tab", "geom")
        quad_result = quadtree_tile_join(idx_a, idx_b)
        assert sorted(rtree_result.pairs) == sorted(quad_result)

    def test_work_charged(self, qj_db):
        _db, idx_a, idx_b = qj_db
        ctx = WorkerContext(0)
        quadtree_tile_join(idx_a, idx_b, ctx)
        assert ctx.meter.counts["mbr_test"] > 0
        assert ctx.meter.counts["sort_per_item"] > 0

    def test_self_join(self, qj_db):
        _db, idx_a, _idx_b = qj_db
        pairs = set(quadtree_tile_join(idx_a, idx_a))
        for rid in {r for r, _ in pairs}:
            assert (rid, rid) in pairs
