"""Unit tests for R-tree persistence into index tables."""

import random

from repro.geometry.mbr import MBR
from repro.index.rtree.bulkload import str_pack
from repro.index.rtree.persist import dump_rtree, load_rtree
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile, RowId
from repro.storage.pager import MemoryPager


def random_entries(n, seed):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        out.append((MBR(x, y, x + 2, y + 2), RowId(0, i)))
    return out


def make_index_table():
    return HeapFile(BufferPool(MemoryPager(), capacity=64), name="idx_tab")


class TestRoundTrip:
    def test_dump_and_load_preserves_entries(self):
        entries = random_entries(150, seed=1)
        tree = str_pack(entries, fanout=8)
        heap = make_index_table()
        root_ptr, node_count = dump_rtree(tree, heap)
        assert node_count == tree.node_count()

        loaded = load_rtree(heap, root_ptr, fanout=8)
        assert len(loaded) == len(tree)
        assert sorted(r for _m, r in loaded.leaf_entries()) == sorted(
            r for _m, r in tree.leaf_entries()
        )
        loaded.check_invariants()

    def test_loaded_tree_answers_queries(self):
        entries = random_entries(100, seed=2)
        tree = str_pack(entries, fanout=8)
        heap = make_index_table()
        root_ptr, _n = dump_rtree(tree, heap)
        loaded = load_rtree(heap, root_ptr, fanout=8)
        q = MBR(20, 20, 60, 60)
        assert sorted(r for _m, r in loaded.search(q)) == sorted(
            r for _m, r in tree.search(q)
        )

    def test_single_node_tree(self):
        entries = random_entries(3, seed=3)
        tree = str_pack(entries, fanout=8)
        heap = make_index_table()
        root_ptr, node_count = dump_rtree(tree, heap)
        assert node_count == 1
        loaded = load_rtree(heap, root_ptr, fanout=8)
        assert len(loaded) == 3

    def test_index_table_rows_are_durable_records(self):
        """The index table is an ordinary heap: its rows survive a scan."""
        entries = random_entries(50, seed=4)
        tree = str_pack(entries, fanout=8)
        heap = make_index_table()
        _root, node_count = dump_rtree(tree, heap)
        assert heap.row_count == node_count
        assert len(list(heap.scan())) == node_count
