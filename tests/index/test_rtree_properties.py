"""Property-based tests for the R-tree (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.mbr import MBR
from repro.index.rtree.bulkload import merge_subtrees, str_pack
from repro.index.rtree.rtree import RTree
from repro.storage.heap import RowId

coord = st.floats(min_value=0, max_value=1000, allow_nan=False, allow_infinity=False)


@st.composite
def small_mbrs(draw):
    x = draw(coord)
    y = draw(coord)
    w = draw(st.floats(min_value=0.01, max_value=30))
    h = draw(st.floats(min_value=0.01, max_value=30))
    return MBR(x, y, x + w, y + h)


entry_lists = st.lists(small_mbrs(), min_size=0, max_size=120)


class TestDynamicTree:
    @given(entry_lists)
    @settings(max_examples=50, deadline=None)
    def test_insert_preserves_invariants_and_content(self, mbrs):
        tree = RTree(fanout=4)
        for i, m in enumerate(mbrs):
            tree.insert(m, RowId(0, i))
        tree.check_invariants()
        assert len(tree) == len(mbrs)
        found = sorted(r.slot for _m, r in tree.leaf_entries())
        assert found == list(range(len(mbrs)))

    @given(entry_lists, small_mbrs())
    @settings(max_examples=50, deadline=None)
    def test_search_equals_brute_force(self, mbrs, query):
        tree = RTree(fanout=4)
        for i, m in enumerate(mbrs):
            tree.insert(m, RowId(0, i))
        expected = sorted(i for i, m in enumerate(mbrs) if m.intersects(query))
        got = sorted(r.slot for _m, r in tree.search(query))
        assert got == expected

    @given(entry_lists, st.data())
    @settings(max_examples=50, deadline=None)
    def test_delete_subset_keeps_rest(self, mbrs, data):
        tree = RTree(fanout=4)
        for i, m in enumerate(mbrs):
            tree.insert(m, RowId(0, i))
        if mbrs:
            victims = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(mbrs) - 1), unique=True
                )
            )
        else:
            victims = []
        for i in victims:
            assert tree.delete(mbrs[i], RowId(0, i))
        tree.check_invariants()
        remaining = sorted(set(range(len(mbrs))) - set(victims))
        assert sorted(r.slot for _m, r in tree.leaf_entries()) == remaining


class TestBulkLoad:
    @given(entry_lists)
    @settings(max_examples=50, deadline=None)
    def test_str_pack_invariants(self, mbrs):
        entries = [(m, RowId(0, i)) for i, m in enumerate(mbrs)]
        tree = str_pack(entries, fanout=6)
        if entries:
            tree.check_invariants()
        assert len(tree) == len(entries)

    @given(entry_lists, small_mbrs())
    @settings(max_examples=50, deadline=None)
    def test_packed_search_equals_dynamic_search(self, mbrs, query):
        entries = [(m, RowId(0, i)) for i, m in enumerate(mbrs)]
        packed = str_pack(entries, fanout=5)
        dynamic = RTree(fanout=5)
        for m, r in entries:
            dynamic.insert(m, r)
        assert sorted(r.slot for _m, r in packed.search(query)) == sorted(
            r.slot for _m, r in dynamic.search(query)
        )

    @given(entry_lists, st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_merge_partitions_preserves_content(self, mbrs, k):
        entries = [(m, RowId(0, i)) for i, m in enumerate(mbrs)]
        chunks = [entries[i::k] for i in range(k)]
        trees = [str_pack(c, fanout=5) for c in chunks]
        merged = merge_subtrees(trees, fanout=5)
        assert len(merged) == len(entries)
        assert sorted(r.slot for _m, r in merged.leaf_entries()) == list(
            range(len(entries))
        )
        if len(merged) > 0:
            merged.check_invariants()
