"""Unit tests for the sdo_nn operator through the R-tree indextype."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.errors import OperatorError
from repro.geometry.distance import distance


@pytest.fixture
def nn_db(random_rects):
    db = Database()
    load_geometries(db, "t", random_rects(150, seed=111))
    db.create_spatial_index("t_idx", "t", "geom", kind="RTREE", fanout=8)
    return db


def brute_force_nn(db, query, k):
    scored = []
    for rid, row in db.table("t").scan():
        scored.append((distance(row[1], query), rid))
    scored.sort()
    return [rid for _d, rid in scored[:k]]


class TestSdoNn:
    def test_matches_brute_force_point_query(self, nn_db):
        query = Geometry.point(43.0, 57.0)
        index = nn_db.spatial_index("t_idx")
        got = list(index.fetch("SDO_NN", (query, 10)))
        expected = brute_force_nn(nn_db, query, 10)
        # distances may tie; compare by distance profile
        got_d = [distance(nn_db.table("t").fetch(r)[1], query) for r in got]
        exp_d = [distance(nn_db.table("t").fetch(r)[1], query) for r in expected]
        assert got_d == pytest.approx(exp_d)

    def test_k_one_default(self, nn_db):
        query = Geometry.point(10.0, 10.0)
        index = nn_db.spatial_index("t_idx")
        got = list(index.fetch("SDO_NN", (query,)))
        assert len(got) == 1
        assert got == brute_force_nn(nn_db, query, 1)

    def test_extended_query_geometry(self, nn_db):
        query = Geometry.rectangle(40, 40, 60, 60)
        index = nn_db.spatial_index("t_idx")
        got = list(index.fetch("SDO_NN", (query, 5)))
        got_d = sorted(distance(nn_db.table("t").fetch(r)[1], query) for r in got)
        exp = brute_force_nn(nn_db, query, 5)
        exp_d = sorted(distance(nn_db.table("t").fetch(r)[1], query) for r in exp)
        assert got_d == pytest.approx(exp_d)

    def test_k_larger_than_table(self, nn_db):
        query = Geometry.point(0, 0)
        index = nn_db.spatial_index("t_idx")
        got = list(index.fetch("SDO_NN", (query, 1000)))
        assert len(got) == 150

    def test_inexact_mode_returns_mbr_ranking(self, nn_db):
        query = Geometry.point(50, 50)
        index = nn_db.spatial_index("t_idx")
        got = list(index.fetch("SDO_NN", (query, 5), exact=False))
        assert len(got) == 5

    def test_bad_k(self, nn_db):
        index = nn_db.spatial_index("t_idx")
        with pytest.raises(OperatorError):
            list(index.fetch("SDO_NN", (Geometry.point(0, 0), 0)))

    def test_missing_query(self, nn_db):
        index = nn_db.spatial_index("t_idx")
        with pytest.raises(OperatorError):
            list(index.fetch("SDO_NN", ()))
