"""Unit tests for the synchronized R-tree join cursor."""

import random

from repro.engine.parallel import WorkerContext
from repro.geometry.mbr import MBR
from repro.index.rtree.bulkload import str_pack
from repro.index.rtree.join import RTreeJoinCursor
from repro.storage.heap import RowId


def rid(i):
    return RowId(i // 100, i % 100)


def random_entries(n, seed, extent=500.0, size=12.0, id_base=0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, extent), rng.uniform(0, extent)
        out.append(
            (MBR(x, y, x + rng.uniform(1, size), y + rng.uniform(1, size)), rid(id_base + i))
        )
    return out


def brute_pairs(ea, eb, distance=0.0):
    out = set()
    for ma, ra in ea:
        for mb, rb in eb:
            hit = ma.intersects(mb) if distance == 0.0 else ma.distance(mb) <= distance
            if hit:
                out.add((ra, rb))
    return out


class TestJoinCorrectness:
    def test_matches_brute_force_intersect(self):
        ea = random_entries(150, seed=1)
        eb = random_entries(170, seed=2, id_base=1000)
        ta, tb = str_pack(ea, fanout=8), str_pack(eb, fanout=8)
        cursor = RTreeJoinCursor([(ta.root, tb.root)])
        got = {(a, b) for a, b, _ma, _mb in cursor.drain()}
        assert got == brute_pairs(ea, eb)

    def test_matches_brute_force_distance(self):
        ea = random_entries(100, seed=3)
        eb = random_entries(100, seed=4, id_base=1000)
        ta, tb = str_pack(ea, fanout=8), str_pack(eb, fanout=8)
        cursor = RTreeJoinCursor([(ta.root, tb.root)], distance=15.0)
        got = {(a, b) for a, b, _ma, _mb in cursor.drain()}
        assert got == brute_pairs(ea, eb, distance=15.0)

    def test_self_join_includes_identity(self):
        entries = random_entries(80, seed=5)
        tree = str_pack(entries, fanout=8)
        cursor = RTreeJoinCursor([(tree.root, tree.root)])
        got = {(a, b) for a, b, _ma, _mb in cursor.drain()}
        for _m, r in entries:
            assert (r, r) in got

    def test_different_heights(self):
        ea = random_entries(500, seed=6)
        eb = random_entries(20, seed=7, id_base=5000)
        ta, tb = str_pack(ea, fanout=6), str_pack(eb, fanout=6)
        assert ta.height != tb.height
        cursor = RTreeJoinCursor([(ta.root, tb.root)])
        got = {(a, b) for a, b, _ma, _mb in cursor.drain()}
        assert got == brute_pairs(ea, eb)

    def test_empty_seed_is_exhausted(self):
        cursor = RTreeJoinCursor([])
        assert cursor.exhausted
        assert cursor.next_candidates(10) == []


class TestResumability:
    def test_batched_fetch_covers_everything(self):
        ea = random_entries(120, seed=8)
        eb = random_entries(120, seed=9, id_base=1000)
        ta, tb = str_pack(ea, fanout=8), str_pack(eb, fanout=8)
        expected = brute_pairs(ea, eb)

        cursor = RTreeJoinCursor([(ta.root, tb.root)])
        got = set()
        batches = 0
        while True:
            chunk = cursor.next_candidates(7)  # deliberately tiny batches
            if not chunk:
                break
            batches += 1
            assert len(chunk) <= 7
            got.update((a, b) for a, b, _ma, _mb in chunk)
        assert got == expected
        assert batches > 1
        assert cursor.exhausted

    def test_batch_boundaries_dont_duplicate(self):
        ea = random_entries(60, seed=10)
        ta = str_pack(ea, fanout=8)
        cursor = RTreeJoinCursor([(ta.root, ta.root)])
        seen = []
        while True:
            chunk = cursor.next_candidates(3)
            if not chunk:
                break
            seen.extend((a, b) for a, b, _ma, _mb in chunk)
        assert len(seen) == len(set(seen))


class TestSubtreePairSeeding:
    def test_partitioned_roots_cover_full_join(self):
        """Figure 1: joining the cross product of level-1 subtrees equals
        joining the roots."""
        ea = random_entries(300, seed=11)
        eb = random_entries(300, seed=12, id_base=9000)
        ta, tb = str_pack(ea, fanout=6), str_pack(eb, fanout=6)
        roots_a = ta.subtree_roots(1)
        roots_b = tb.subtree_roots(1)
        pairs = [(a, b) for a in roots_a for b in roots_b]
        cursor = RTreeJoinCursor(pairs)
        got = {(a, b) for a, b, _ma, _mb in cursor.drain()}
        assert got == brute_pairs(ea, eb)

    def test_disjoint_partitions_produce_disjoint_results(self):
        ea = random_entries(200, seed=13)
        ta = str_pack(ea, fanout=6)
        roots = ta.subtree_roots(1)
        all_pairs = []
        for a in roots:
            for b in roots:
                chunk = RTreeJoinCursor([(a, b)]).drain()
                all_pairs.extend((x, y) for x, y, _m, _n in chunk)
        # Each subtree pair contributes distinct candidate pairs; their
        # union is the whole join.
        assert len(all_pairs) == len(set(all_pairs))
        whole = {(x, y) for x, y, _m, _n in RTreeJoinCursor([(ta.root, ta.root)]).drain()}
        assert set(all_pairs) == whole


class TestInstrumentation:
    def test_work_charged_to_context(self):
        ea = random_entries(100, seed=14)
        ta = str_pack(ea, fanout=8)
        ctx = WorkerContext(0)
        RTreeJoinCursor([(ta.root, ta.root)]).drain(ctx)
        assert ctx.meter.counts["mbr_test"] > 0
        assert ctx.meter.counts["rtree_node_visit"] > 0
