"""Unit tests for Morton tile codes and the tile grid."""

import pytest

from repro.errors import IndexBuildError
from repro.geometry.mbr import MBR
from repro.index.quadtree.codes import (
    TileGrid,
    child_codes,
    descendant_range,
    morton_decode,
    morton_encode,
    parent_code,
)


class TestMorton:
    def test_origin(self):
        assert morton_encode(0, 0) == 0

    def test_known_values(self):
        # x bits even positions, y bits odd: (1,0)->1, (0,1)->2, (1,1)->3
        assert morton_encode(1, 0) == 1
        assert morton_encode(0, 1) == 2
        assert morton_encode(1, 1) == 3
        assert morton_encode(2, 0) == 4

    def test_roundtrip(self):
        for ix in (0, 1, 5, 100, 4095):
            for iy in (0, 3, 77, 2048):
                assert morton_decode(morton_encode(ix, iy)) == (ix, iy)

    def test_negative_rejected(self):
        with pytest.raises(IndexBuildError):
            morton_encode(-1, 0)

    def test_parent_child_relationship(self):
        code = morton_encode(5, 9)
        for child in child_codes(code):
            assert parent_code(child) == code

    def test_children_are_contiguous(self):
        code = morton_encode(3, 4)
        kids = child_codes(code)
        assert kids == (kids[0], kids[0] + 1, kids[0] + 2, kids[0] + 3)

    def test_descendant_range_covers_children(self):
        code = 13
        lo, hi = descendant_range(code, 2)
        for child in child_codes(code):
            for grandchild in child_codes(child):
                assert lo <= grandchild <= hi
        assert hi - lo + 1 == 16  # 4^2 descendants

    def test_morton_z_order_locality(self):
        """Quadrant blocks of the grid occupy contiguous code ranges."""
        level = 3  # 8x8 grid
        sw_codes = sorted(
            morton_encode(ix, iy) for ix in range(4) for iy in range(4)
        )
        assert sw_codes == list(range(16))


class TestTileGrid:
    def make(self, level=3):
        return TileGrid(domain=MBR(0, 0, 8, 8), level=level)

    def test_tile_size(self):
        g = self.make()
        assert g.tiles_per_axis == 8
        assert g.tile_size == 1.0

    def test_tile_index_and_mbr(self):
        g = self.make()
        assert g.tile_index(2.5, 3.5) == (2, 3)
        assert g.tile_mbr(2, 3).as_tuple() == (2, 3, 3, 4)

    def test_tile_index_clamped(self):
        g = self.make()
        assert g.tile_index(-5, -5) == (0, 0)
        assert g.tile_index(100, 100) == (7, 7)

    def test_code_mbr_roundtrip(self):
        g = self.make()
        code = g.code(5, 6)
        assert g.code_mbr(code).as_tuple() == (5, 6, 6, 7)

    def test_code_out_of_grid_rejected(self):
        with pytest.raises(IndexBuildError):
            self.make().code(8, 0)

    def test_quadrant_mbr_hierarchy(self):
        g = self.make()
        whole = g.quadrant_mbr(0, 0, 0)
        assert whole.as_tuple() == (0, 0, 8, 8)
        sw = g.quadrant_mbr(1, 0, 0)
        assert sw.as_tuple() == (0, 0, 4, 4)
        assert whole.contains(sw)

    def test_tiles_touching(self):
        g = self.make()
        codes = list(g.tiles_touching(MBR(0.5, 0.5, 2.5, 1.5)))
        assert len(codes) == 3 * 2  # x tiles 0..2, y tiles 0..1

    def test_non_square_domain_uses_bounding_square(self):
        g = TileGrid(domain=MBR(0, 0, 16, 8), level=2)
        assert g.side == 16
        assert g.tile_size == 4.0

    def test_invalid_grid(self):
        with pytest.raises(IndexBuildError):
            TileGrid(domain=MBR(0, 0, 1, 1), level=-1)
        with pytest.raises(IndexBuildError):
            TileGrid(domain=MBR(1, 1, 1, 1), level=3)
