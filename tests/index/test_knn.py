"""Unit tests for k-nearest-neighbour search."""

import random

from repro.geometry.mbr import MBR
from repro.index.rtree.bulkload import str_pack
from repro.index.rtree.knn import incremental_nearest, nearest_neighbors
from repro.storage.heap import RowId


def rid(i):
    return RowId(0, i)


def random_entries(n, seed):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        out.append((MBR(x, y, x + 1, y + 1), rid(i)))
    return out


class TestKnn:
    def test_matches_brute_force(self):
        entries = random_entries(200, seed=1)
        tree = str_pack(entries, fanout=8)
        qx, qy = 37.0, 64.0
        expected = sorted(
            ((m.distance_to_point(qx, qy), r) for m, r in entries),
        )[:10]
        got = nearest_neighbors(tree, qx, qy, 10)
        assert [r for _d, r in got] == [r for _d, r in expected]

    def test_distances_non_decreasing(self):
        entries = random_entries(150, seed=2)
        tree = str_pack(entries, fanout=8)
        dists = [d for d, _r in nearest_neighbors(tree, 50, 50, 40)]
        assert dists == sorted(dists)

    def test_incremental_enumerates_everything(self):
        entries = random_entries(60, seed=3)
        tree = str_pack(entries, fanout=8)
        all_hits = list(incremental_nearest(tree, 0, 0))
        assert len(all_hits) == 60
        assert sorted(r for _d, r in all_hits) == sorted(r for _m, r in entries)

    def test_k_larger_than_population(self):
        entries = random_entries(5, seed=4)
        tree = str_pack(entries, fanout=8)
        assert len(nearest_neighbors(tree, 0, 0, 50)) == 5

    def test_empty_tree(self):
        from repro.index.rtree.rtree import RTree

        assert nearest_neighbors(RTree(8), 0, 0, 3) == []

    def test_point_inside_an_entry_has_distance_zero(self):
        entries = [(MBR(10, 10, 20, 20), rid(0)), (MBR(50, 50, 60, 60), rid(1))]
        tree = str_pack(entries, fanout=4)
        (d, r), *_ = nearest_neighbors(tree, 15, 15, 1)
        assert d == 0.0 and r == rid(0)
