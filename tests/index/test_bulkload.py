"""Unit tests for STR bulk loading and the parallel subtree build."""

import random

import pytest

from repro.engine.parallel import SerialExecutor, SimulatedExecutor
from repro.geometry.mbr import MBR
from repro.index.rtree.bulkload import build_parallel, merge_subtrees, str_pack
from repro.index.rtree.rtree import RTree
from repro.storage.heap import RowId


def rid(i):
    return RowId(i // 100, i % 100)


def random_entries(n, seed=0, extent=1000.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, extent), rng.uniform(0, extent)
        out.append((MBR(x, y, x + rng.uniform(1, 8), y + rng.uniform(1, 8)), rid(i)))
    return out


class TestStrPack:
    def test_contains_everything(self):
        entries = random_entries(500, seed=1)
        tree = str_pack(entries, fanout=16)
        assert len(tree) == 500
        assert sorted(r for _m, r in tree.leaf_entries()) == sorted(
            r for _m, r in entries
        )
        tree.check_invariants()

    def test_search_equivalent_to_dynamic(self):
        entries = random_entries(400, seed=2)
        packed = str_pack(entries, fanout=10)
        dynamic = RTree(fanout=10)
        for m, r in entries:
            dynamic.insert(m, r)
        q = MBR(100, 100, 400, 400)
        assert sorted(r for _m, r in packed.search(q)) == sorted(
            r for _m, r in dynamic.search(q)
        )

    def test_packed_tree_is_shallower_or_equal(self):
        entries = random_entries(600, seed=3)
        packed = str_pack(entries, fanout=10, fill=0.9)
        dynamic = RTree(fanout=10)
        for m, r in entries:
            dynamic.insert(m, r)
        assert packed.height <= dynamic.height

    def test_empty_and_single(self):
        assert len(str_pack([], fanout=8)) == 0
        tree = str_pack(random_entries(1), fanout=8)
        assert len(tree) == 1
        tree.check_invariants()

    def test_bad_fill_rejected(self):
        from repro.errors import IndexBuildError

        with pytest.raises(IndexBuildError):
            str_pack([], fill=0.1)

    def test_packed_tree_supports_dynamic_updates(self):
        entries = random_entries(200, seed=4)
        tree = str_pack(entries, fanout=8)
        tree.insert(MBR(0, 0, 1, 1), rid(9999))
        assert tree.delete(entries[0][0], entries[0][1])
        assert len(tree) == 200
        tree.check_invariants()


class TestMergeSubtrees:
    def test_merge_two_halves_equals_whole(self):
        entries = random_entries(300, seed=5)
        left = str_pack(entries[:150], fanout=8)
        right = str_pack(entries[150:], fanout=8)
        merged = merge_subtrees([left, right], fanout=8)
        assert len(merged) == 300
        assert sorted(r for _m, r in merged.leaf_entries()) == sorted(
            r for _m, r in entries
        )
        merged.check_invariants()

    def test_merge_uneven_heights(self):
        entries = random_entries(420, seed=6)
        big = str_pack(entries[:400], fanout=8)
        small = str_pack(entries[400:], fanout=8)
        assert big.height > small.height
        merged = merge_subtrees([big, small], fanout=8)
        assert len(merged) == 420
        merged.check_invariants()

    def test_merge_with_empty_trees(self):
        entries = random_entries(50, seed=7)
        merged = merge_subtrees([RTree(8), str_pack(entries, fanout=8), RTree(8)])
        assert len(merged) == 50

    def test_merge_single(self):
        tree = str_pack(random_entries(50, seed=8), fanout=8)
        assert merge_subtrees([tree]) is tree

    def test_merge_all_empty(self):
        assert len(merge_subtrees([RTree(8), RTree(8)])) == 0


class TestBuildParallel:
    def _loaders(self, entries, k):
        chunks = [entries[i::k] for i in range(k)]
        return [lambda ctx, c=chunk: list(c) for chunk in chunks]

    def test_parallel_build_equals_serial_content(self):
        entries = random_entries(400, seed=9)
        tree, run = build_parallel(
            self._loaders(entries, 4), SimulatedExecutor(4), fanout=8
        )
        assert len(tree) == 400
        assert sorted(r for _m, r in tree.leaf_entries()) == sorted(
            r for _m, r in entries
        )
        tree.check_invariants()
        assert run.degree == 4

    def test_parallel_makespan_below_serial(self):
        from repro.engine.cost import CostModel

        model = CostModel(worker_startup=0.0)
        entries = random_entries(2000, seed=10)
        _tree1, run1 = build_parallel(
            self._loaders(entries, 1), SerialExecutor(model), fanout=8
        )
        _tree4, run4 = build_parallel(
            self._loaders(entries, 4), SimulatedExecutor(4, model), fanout=8
        )
        assert run4.makespan_seconds < run1.makespan_seconds

    def test_search_correct_after_parallel_build(self):
        entries = random_entries(300, seed=11)
        tree, _run = build_parallel(
            self._loaders(entries, 3), SimulatedExecutor(3), fanout=8
        )
        q = MBR(0, 0, 500, 500)
        expected = sorted(r for m, r in entries if m.intersects(q))
        assert sorted(r for _m, r in tree.search(q)) == expected
