"""Property-based tests for the quadtree (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.geometry import Geometry
from repro.geometry.mbr import MBR
from repro.geometry.predicates import contains, intersects
from repro.index.quadtree.codes import TileGrid, morton_decode, morton_encode
from repro.index.quadtree.tessellate import tessellate

GRID = TileGrid(domain=MBR(0, 0, 64, 64), level=4)

coord = st.floats(min_value=0.5, max_value=63.5, allow_nan=False)


@st.composite
def rects(draw):
    x = draw(coord)
    y = draw(coord)
    w = draw(st.floats(min_value=0.1, max_value=20))
    h = draw(st.floats(min_value=0.1, max_value=20))
    return Geometry.rectangle(x, y, min(x + w, 63.9), min(y + h, 63.9))


class TestMortonProperties:
    @given(st.integers(0, 2**14 - 1), st.integers(0, 2**14 - 1))
    def test_encode_decode_inverse(self, ix, iy):
        assert morton_decode(morton_encode(ix, iy)) == (ix, iy)

    @given(st.integers(0, 2**10 - 1), st.integers(0, 2**10 - 1))
    def test_code_uniqueness(self, ix, iy):
        # two distinct cells cannot share a code
        other = (ix + 1, iy)
        assert morton_encode(*other) != morton_encode(ix, iy)

    @given(st.integers(0, 2**12 - 1))
    def test_parent_of_children(self, code):
        from repro.index.quadtree.codes import child_codes, parent_code

        for child in child_codes(code):
            assert parent_code(child) == code


class TestTessellationProperties:
    @given(rects())
    @settings(max_examples=60, deadline=None)
    def test_tiles_cover_exactly_the_intersections(self, geom):
        got = {morton_decode(t.code) for t in tessellate(geom, GRID)}
        expected = set()
        for ix in range(GRID.tiles_per_axis):
            for iy in range(GRID.tiles_per_axis):
                tile_geom = Geometry.from_mbr(GRID.tile_mbr(ix, iy))
                if intersects(tile_geom, geom):
                    expected.add((ix, iy))
        assert got == expected

    @given(rects())
    @settings(max_examples=60, deadline=None)
    def test_interior_tiles_are_sound(self, geom):
        for tile in tessellate(geom, GRID):
            if tile.interior:
                tile_geom = Geometry.from_mbr(GRID.code_mbr(tile.code))
                assert contains(geom, tile_geom)

    @given(rects())
    @settings(max_examples=60, deadline=None)
    def test_tiles_sorted_unique(self, geom):
        codes = [t.code for t in tessellate(geom, GRID)]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))


class TestQuadtreeWindowProperties:
    @given(st.integers(0, 100_000), rects())
    @settings(max_examples=25, deadline=None)
    def test_window_query_equals_brute_force(self, seed, window):
        from repro import Database
        from repro.datasets import load_geometries
        from repro.index.quadtree.quadtree import QuadtreeIndex

        rng = random.Random(seed)
        geoms = []
        for _ in range(30):
            x, y = rng.uniform(1, 58), rng.uniform(1, 58)
            geoms.append(
                Geometry.rectangle(x, y, x + rng.uniform(0.2, 5), y + rng.uniform(0.2, 5))
            )
        db = Database()
        load_geometries(db, "t", geoms)
        index = QuadtreeIndex(
            "t_q", db.table("t"), "geom", domain=MBR(0, 0, 64, 64), tiling_level=4
        )
        index.create()
        expected = sorted(
            rid for rid, row in db.table("t").scan() if intersects(row[1], window)
        )
        got = sorted(index.fetch("SDO_RELATE", (window, "ANYINTERACT")))
        assert got == expected
