"""Unit tests for geometry tessellation into quadtree tiles."""

from repro.engine.parallel import WorkerContext
from repro.geometry.geometry import Geometry
from repro.geometry.mbr import MBR
from repro.geometry.predicates import contains, intersects
from repro.index.quadtree.codes import TileGrid, morton_decode
from repro.index.quadtree.tessellate import tessellate


GRID = TileGrid(domain=MBR(0, 0, 16, 16), level=4)  # 16x16 unit tiles


class TestCoverage:
    def test_point_gets_its_tile(self):
        tiles = tessellate(Geometry.point(3.5, 5.5), GRID)
        assert len(tiles) == 1
        assert morton_decode(tiles[0].code) == (3, 5)
        assert not tiles[0].interior

    def test_tile_aligned_square(self):
        # A square covering exactly tiles (4..7, 4..7) - 16 tiles.
        geom = Geometry.rectangle(4, 4, 8, 8)
        tiles = tessellate(geom, GRID)
        covered = {morton_decode(t.code) for t in tiles}
        for ix in range(4, 8):
            for iy in range(4, 8):
                assert (ix, iy) in covered

    def test_tiles_exactly_the_intersecting_set(self):
        geom = Geometry.rectangle(2.5, 2.5, 5.5, 4.5)
        tiles = {morton_decode(t.code) for t in tessellate(geom, GRID)}
        expected = set()
        for ix in range(16):
            for iy in range(16):
                if intersects(Geometry.from_mbr(GRID.tile_mbr(ix, iy)), geom):
                    expected.add((ix, iy))
        assert tiles == expected

    def test_codes_sorted_and_unique(self):
        geom = Geometry.rectangle(1.3, 1.3, 9.7, 8.2)
        codes = [t.code for t in tessellate(geom, GRID)]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))

    def test_line_tessellation(self):
        line = Geometry.linestring([(0.5, 0.5), (7.5, 0.5)])
        tiles = {morton_decode(t.code) for t in tessellate(line, GRID)}
        assert tiles == {(ix, 0) for ix in range(8)}
        # lines have no interior tiles
        assert all(not t.interior for t in tessellate(line, GRID))


class TestInteriorClassification:
    def test_large_polygon_has_interior_tiles(self):
        geom = Geometry.rectangle(1, 1, 15, 15)
        tiles = tessellate(geom, GRID)
        interior = [t for t in tiles if t.interior]
        boundary = [t for t in tiles if not t.interior]
        assert interior and boundary
        # every interior tile really is inside the polygon
        for t in interior:
            tile_geom = Geometry.from_mbr(GRID.code_mbr(t.code))
            assert contains(geom, tile_geom)

    def test_boundary_tiles_touch_the_boundary(self):
        geom = Geometry.rectangle(1.5, 1.5, 6.5, 6.5)
        for t in tessellate(geom, GRID):
            tile_geom = Geometry.from_mbr(GRID.code_mbr(t.code))
            if not t.interior:
                assert not contains(geom, tile_geom) or True  # boundary or partial

    def test_polygon_with_hole_excludes_hole_interior(self):
        donut = Geometry.polygon(
            [(1, 1), (15, 1), (15, 15), (1, 15)],
            holes=[[(5, 5), (5, 11), (11, 11), (11, 5)]],
        )
        tiles = {morton_decode(t.code) for t in tessellate(donut, GRID)}
        # tile (7,7) .. (8,8) are strictly inside the hole
        assert (7, 7) not in tiles
        assert (8, 8) not in tiles
        # the ring part is covered
        assert (2, 2) in tiles


class TestCostCharging:
    def test_work_units_recorded(self):
        ctx = WorkerContext(0)
        geom = Geometry.rectangle(1, 1, 9, 9)
        tessellate(geom, GRID, ctx)
        assert ctx.meter.counts["tessellate_per_vertex"] == geom.num_vertices
        assert ctx.meter.counts["tessellate_per_tile"] > 0

    def test_complex_geometry_costs_more(self):
        from repro.datasets.random_geom import radial_polygon
        import random

        simple = Geometry.rectangle(4, 4, 6, 6)
        complex_geom = radial_polygon(random.Random(1), 8, 8, 6.0, 120)
        ctx_simple, ctx_complex = WorkerContext(0), WorkerContext(0)
        tessellate(simple, GRID, ctx_simple)
        tessellate(complex_geom, GRID, ctx_complex)
        assert ctx_complex.meter.seconds() > ctx_simple.meter.seconds()
