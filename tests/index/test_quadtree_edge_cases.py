"""Quadtree edge cases: domain boundaries and degenerate windows."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.geometry.mbr import MBR
from repro.index.quadtree.quadtree import QuadtreeIndex


DOMAIN = MBR(0, 0, 100, 100)


@pytest.fixture
def edge_index(random_rects):
    db = Database()
    geoms = random_rects(60, seed=191) + [
        Geometry.rectangle(0, 0, 1, 1),       # touching the domain corner
        Geometry.rectangle(98, 98, 99.9, 99.9),  # near the far corner
    ]
    load_geometries(db, "t", geoms)
    index = QuadtreeIndex("t_q", db.table("t"), "geom", domain=DOMAIN, tiling_level=5)
    index.create()
    return db, index


class TestDomainBoundaries:
    def test_window_fully_outside_domain(self, edge_index):
        _db, index = edge_index
        window = Geometry.rectangle(500, 500, 510, 510)
        assert list(index.fetch("SDO_RELATE", (window, "ANYINTERACT"))) == []

    def test_within_distance_window_clipped_to_domain(self, edge_index):
        """An expanded search window that pokes outside the tiled domain
        must be clipped, not crash the tessellator."""
        db, index = edge_index
        probe = Geometry.rectangle(98, 98, 99, 99)
        got = sorted(index.fetch("SDO_WITHIN_DISTANCE", (probe, 50.0)))
        from repro.geometry.distance import within_distance

        expected = sorted(
            rid for rid, row in db.table("t").scan()
            if within_distance(row[1], probe, 50.0)
        )
        assert got == expected

    def test_within_distance_probe_outside_domain(self, edge_index):
        db, index = edge_index
        probe = Geometry.point(120, 120)
        got = sorted(index.fetch("SDO_WITHIN_DISTANCE", (probe, 40.0)))
        from repro.geometry.distance import within_distance

        expected = sorted(
            rid for rid, row in db.table("t").scan()
            if within_distance(row[1], probe, 40.0)
        )
        assert got == expected

    def test_corner_geometry_indexed_and_found(self, edge_index):
        db, index = edge_index
        window = Geometry.rectangle(0, 0, 0.5, 0.5)
        hits = list(index.fetch("SDO_RELATE", (window, "ANYINTERACT")))
        corner_ids = [db.table("t").fetch(r)[0] for r in hits]
        assert 60 in corner_ids  # the corner rectangle's id

    def test_tiny_window_single_tile(self, edge_index):
        _db, index = edge_index
        window = Geometry.rectangle(50.1, 50.1, 50.2, 50.2)
        hits = list(index.fetch("SDO_RELATE", (window, "ANYINTERACT")))
        assert len(hits) == len(set(hits))  # well-formed, no duplicates
