"""SQL-level ``strategy`` argument and EXPLAIN output for grid joins."""

import pytest

from repro import Database
from repro.datasets import load_geometries
from repro.errors import SqlError


@pytest.fixture
def db(random_rects):
    db = Database()
    load_geometries(db, "a_tab", random_rects(120, seed=31))
    load_geometries(db, "b_tab", random_rects(130, seed=32))
    db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
    db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE", fanout=6)
    return db


JOIN = "spatial_join('a_tab','geom','b_tab','geom','INTERSECT'{tail})"


def run(db, tail=""):
    sql = f"select * from table({JOIN.format(tail=tail)})"
    return db.sql(sql)


class TestStrategyArgument:
    def test_grid_equals_default(self, db):
        ref = run(db)
        grid = run(db, ", 0, 1, 'GRID'")
        assert sorted(grid.rows) == sorted(ref.rows)
        assert grid.rowcount == ref.rowcount

    def test_parallel_grid_equals_default(self, db):
        ref = run(db)
        grid = run(db, ", 0, 4, 'GRID'")
        assert sorted(grid.rows) == sorted(ref.rows)

    def test_distance_grid_equals_default(self, db):
        ref = run(db, ", 3.0")
        grid = run(db, ", 3.0, 4, 'GRID'")
        assert sorted(grid.rows) == sorted(ref.rows)

    def test_nested_strategy_still_works(self, db):
        ref = run(db)
        nested = run(db, ", 0, 1, 'NESTED'")
        assert sorted(nested.rows) == sorted(ref.rows)

    def test_unknown_strategy_raises(self, db):
        with pytest.raises(SqlError):
            run(db, ", 0, 1, 'KDTREE'")


class TestExplain:
    def test_grid_plan_lines(self, db):
        result = db.sql(
            "explain select * from table("
            "spatial_join('a_tab','geom','b_tab','geom','INTERSECT',0,4,'GRID'))"
        )
        text = "\n".join(r[0] for r in result.rows)
        assert "GRID PARTITION" in text
        assert "PER-TILE PLANE SWEEP (two-layer duplicate avoidance)" in text
        assert "SYNCHRONIZED R-TREE TRAVERSAL" not in text

    def test_default_plan_unchanged(self, db):
        result = db.sql(
            "explain select * from table("
            "spatial_join('a_tab','geom','b_tab','geom','INTERSECT'))"
        )
        text = "\n".join(r[0] for r in result.rows)
        assert "SYNCHRONIZED R-TREE TRAVERSAL" in text
        assert "GRID PARTITION" not in text
