"""Unit tests for schema-aware tables and maintenance hooks."""

import pytest

from repro.errors import EngineError, RowIdError
from repro.engine.table import Table
from repro.geometry.geometry import Geometry
from repro.storage.buffer import BufferPool
from repro.storage.catalog import ColumnMeta, TableMeta
from repro.storage.heap import HeapFile
from repro.storage.pager import MemoryPager


def make_table():
    pool = BufferPool(MemoryPager(), capacity=32)
    meta = TableMeta(
        name="shapes",
        columns=[ColumnMeta("id", "NUMBER"), ColumnMeta("geom", "SDO_GEOMETRY")],
        heap_name="shapes_heap",
    )
    return Table(meta, HeapFile(pool))


class TestDml:
    def test_insert_fetch(self):
        t = make_table()
        rid = t.insert((1, Geometry.point(2, 3)))
        row = t.fetch(rid)
        assert row[0] == 1
        assert row[1] == Geometry.point(2, 3)

    def test_type_validation_on_insert(self):
        t = make_table()
        with pytest.raises(EngineError):
            t.insert(("one", Geometry.point(0, 0)))
        with pytest.raises(EngineError):
            t.insert((1,))

    def test_update(self):
        t = make_table()
        rid = t.insert((1, Geometry.point(0, 0)))
        t.update(rid, (2, Geometry.point(5, 5)))
        assert t.fetch(rid)[0] == 2

    def test_delete(self):
        t = make_table()
        rid = t.insert((1, None))
        t.delete(rid)
        with pytest.raises(RowIdError):
            t.fetch(rid)
        assert t.row_count == 0

    def test_null_geometry_allowed(self):
        t = make_table()
        rid = t.insert((1, None))
        assert t.fetch(rid)[1] is None


class TestScan:
    def test_scan_order_and_content(self):
        t = make_table()
        rids = [t.insert((i, Geometry.point(i, i))) for i in range(10)]
        scanned = list(t.scan())
        assert [r for r, _row in scanned] == rids
        assert [row[0] for _r, row in scanned] == list(range(10))

    def test_scan_cursor_with_rowid(self):
        t = make_table()
        rid = t.insert((7, None))
        rows = list(t.scan_cursor(with_rowid=True))
        assert rows[0][0] == rid
        assert rows[0][1] == 7

    def test_column_values(self):
        t = make_table()
        t.insert((1, Geometry.point(0, 0)))
        t.insert((2, Geometry.point(1, 1)))
        values = [v for _r, v in t.column_values("id")]
        assert values == [1, 2]


class TestMaintenanceHooks:
    def test_hooks_fire_for_all_dml(self):
        t = make_table()
        events = []
        t.add_maintenance_hook(lambda op, rid, old, new: events.append(op))
        rid = t.insert((1, Geometry.point(0, 0)))
        t.update(rid, (1, Geometry.point(1, 1)))
        t.delete(rid)
        assert events == ["INSERT", "UPDATE", "DELETE"]

    def test_hook_sees_old_and_new_rows(self):
        t = make_table()
        captured = {}

        def hook(op, rid, old, new):
            captured[op] = (old, new)

        t.add_maintenance_hook(hook)
        rid = t.insert((1, Geometry.point(0, 0)))
        t.update(rid, (2, Geometry.point(3, 3)))
        assert captured["INSERT"][0] is None
        assert captured["INSERT"][1][0] == 1
        assert captured["UPDATE"][0][0] == 1
        assert captured["UPDATE"][1][0] == 2
