"""Unit tests for the SQL front-end: lexer, parser and executor."""

import pytest

from repro import Database
from repro.errors import SqlPlanError, SqlSyntaxError
from repro.engine.sql.ast import (
    ColumnRef,
    CreateIndex,
    CreateTable,
    InSubquery,
    Insert,
    Literal,
    Select,
    TableFunctionRef,
    TableRef,
)
from repro.engine.sql.lexer import TokenType, tokenize
from repro.engine.sql.parser import parse


class TestLexer:
    def test_basic_tokens(self):
        types = [t.type for t in tokenize("select * from t where a = 1")]
        assert TokenType.STAR in types
        assert types[-1] is TokenType.EOF

    def test_string_with_escaped_quote(self):
        toks = tokenize("'it''s'")
        assert toks[0].text == "it's"

    def test_numbers(self):
        toks = tokenize("1 2.5 -3 1e4 2.5e-3")
        values = [t.text for t in toks[:-1]]
        assert values == ["1", "2.5", "-3", "1e4", "2.5e-3"]

    def test_comparison_operators(self):
        types = [t.type for t in tokenize("< <= > >= != <>")][:-1]
        assert types == [
            TokenType.LT, TokenType.LTE, TokenType.GT, TokenType.GTE,
            TokenType.NEQ, TokenType.NEQ,
        ]

    def test_comment_skipped(self):
        toks = tokenize("select -- a comment\n 1")
        assert [t.text for t in toks[:-1]] == ["select", "1"]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_garbage_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")


class TestParser:
    def test_create_table(self):
        stmt = parse("create table t (id number, geom sdo_geometry)")
        assert isinstance(stmt, CreateTable)
        assert stmt.columns == (("id", "NUMBER"), ("geom", "SDO_GEOMETRY"))

    def test_create_index_with_everything(self):
        stmt = parse(
            "create index t_idx on t(geom) indextype is spatial_index "
            "parameters ('kind=QUADTREE tiling_level=8') parallel 4"
        )
        assert isinstance(stmt, CreateIndex)
        assert stmt.indextype == "SPATIAL_INDEX"
        assert stmt.parallel == 4
        assert "tiling_level=8" in stmt.parameters

    def test_insert_with_function(self):
        stmt = parse("insert into t values (1, sdo_geometry('POINT (1 2)'))")
        assert isinstance(stmt, Insert)
        assert stmt.values[0] == Literal(1)

    def test_select_star(self):
        stmt = parse("select * from t")
        assert isinstance(stmt, Select)
        assert stmt.items[0].expr is None
        assert stmt.from_items == (TableRef("t", None),)

    def test_select_with_aliases(self):
        stmt = parse("select a.id, b.id from t a, t b")
        assert stmt.from_items == (TableRef("t", "a"), TableRef("t", "b"))
        assert stmt.items[0].expr == ColumnRef("a", "id")

    def test_count_star(self):
        stmt = parse("select count(*) from t")
        assert stmt.items[0].is_count_star

    def test_table_function_in_from(self):
        stmt = parse("select * from TABLE(spatial_join('a','g','b','g','intersect')) j")
        tf = stmt.from_items[0]
        assert isinstance(tf, TableFunctionRef)
        assert tf.function == "spatial_join"
        assert tf.alias == "j"
        assert len(tf.args) == 5

    def test_cursor_argument(self):
        stmt = parse(
            "select * from TABLE(spatial_join(CURSOR(select * from "
            "table(subtree_root('i', 1))), 'a','g','b','g','intersect'))"
        )
        tf = stmt.from_items[0]
        from repro.engine.sql.ast import CursorArg

        assert isinstance(tf.args[0], CursorArg)

    def test_rowid_pair_in_subquery(self):
        stmt = parse(
            "select count(*) from t a, t b where (a.rowid, b.rowid) in "
            "(select rid1, rid2 from TABLE(spatial_join('t','g','t','g','intersect')))"
        )
        assert isinstance(stmt.where, InSubquery)

    def test_conjunction(self):
        stmt = parse("select * from t where a = 1 and b = 2 and c = 3")
        from repro.engine.sql.ast import AndExpr

        assert isinstance(stmt.where, AndExpr)
        assert len(stmt.where.terms) == 3

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse("select * from t extra garbage ( ")

    def test_semicolon_tolerated(self):
        assert isinstance(parse("select * from t;"), Select)


@pytest.fixture
def sql_db():
    db = Database()
    db.sql("create table parks (id number, name varchar, geom sdo_geometry)")
    shapes = [
        (1, "north", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"),
        (2, "mid", "POLYGON ((3 3, 7 3, 7 7, 3 7, 3 3))"),
        (3, "south", "POLYGON ((10 10, 12 10, 12 12, 10 12, 10 10))"),
    ]
    for pid, name, wkt in shapes:
        db.sql(f"insert into parks values ({pid}, '{name}', sdo_geometry('{wkt}'))")
    db.sql(
        "create index parks_sidx on parks(geom) indextype is spatial_index "
        "parameters ('kind=RTREE fanout=8')"
    )
    return db


class TestExecutor:
    def test_select_all(self, sql_db):
        r = sql_db.sql("select id, name from parks")
        assert sorted(r.rows) == [(1, "north"), (2, "mid"), (3, "south")]

    def test_where_scalar(self, sql_db):
        r = sql_db.sql("select name from parks where id = 2")
        assert r.rows == [("mid",)]

    def test_where_comparison_operators(self, sql_db):
        assert len(sql_db.sql("select id from parks where id > 1")) == 2
        assert len(sql_db.sql("select id from parks where id <= 2")) == 2

    def test_count_star(self, sql_db):
        assert sql_db.sql("select count(*) from parks").scalar() == 3

    def test_single_table_spatial_predicate(self, sql_db):
        r = sql_db.sql(
            "select id from parks where sdo_relate(geom, "
            "sdo_geometry('POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))'), 'ANYINTERACT') = 'TRUE'"
        )
        assert r.rows == [(1,)]

    def test_join_via_table_function(self, sql_db):
        r = sql_db.sql(
            "select a.id, b.id from parks a, parks b where (a.rowid, b.rowid) in "
            "(select rid1, rid2 from TABLE(spatial_join('parks','geom','parks','geom','intersect')))"
        )
        assert sorted(r.rows) == [(1, 1), (1, 2), (2, 1), (2, 2), (3, 3)]

    def test_join_generic_fallback_agrees(self, sql_db):
        a = sql_db.sql(
            "select count(*) from parks a, parks b where "
            "sdo_relate(a.geom, b.geom, 'ANYINTERACT') = 'TRUE'"
        ).scalar()
        b = sql_db.sql(
            "select count(*) from parks a, parks b where (a.rowid, b.rowid) in "
            "(select rid1, rid2 from TABLE(spatial_join('parks','geom','parks','geom','intersect')))"
        ).scalar()
        assert a == b == 5

    def test_within_distance_operator(self, sql_db):
        r = sql_db.sql(
            "select id from parks where sdo_within_distance(geom, "
            "sdo_geometry('POINT (13 13)'), 2) = 'TRUE'"
        )
        assert r.rows == [(3,)]

    def test_table_function_direct_from(self, sql_db):
        r = sql_db.sql(
            "select count(*) from TABLE(spatial_join('parks','geom','parks','geom','intersect'))"
        )
        assert r.scalar() == 5

    def test_parallel_degree_argument(self, sql_db):
        r = sql_db.sql(
            "select count(*) from TABLE(spatial_join('parks','geom','parks','geom','intersect', 0, 2))"
        )
        assert r.scalar() == 5

    def test_distance_argument(self, sql_db):
        r = sql_db.sql(
            "select count(*) from TABLE(spatial_join('parks','geom','parks','geom','anyinteract', 100))"
        )
        assert r.scalar() == 9  # everything within distance 100 of everything

    def test_subtree_root_cursor_form(self, sql_db):
        r = sql_db.sql(
            "select count(*) from TABLE(spatial_join(CURSOR("
            "select * from table(subtree_root('parks_sidx', 1)), "
            "table(subtree_root('parks_sidx', 1))), "
            "'parks','geom','parks','geom','intersect'))"
        )
        assert r.scalar() == 5

    def test_drop_table(self, sql_db):
        sql_db.sql("drop index parks_sidx")
        sql_db.sql("drop table parks")
        with pytest.raises(Exception):
            sql_db.sql("select * from parks")

    def test_quadtree_via_sql(self, sql_db):
        msg = sql_db.sql(
            "create index parks_qidx on parks(geom) indextype is spatial_index "
            "parameters ('kind=QUADTREE tiling_level=5') parallel 2"
        ).message
        assert "QUADTREE" in msg and "parallel 2" in msg

    def test_unknown_table_function(self, sql_db):
        with pytest.raises(SqlPlanError):
            sql_db.sql("select * from TABLE(mystery_fn(1))")
