"""Determinism tests: DESIGN.md promises byte-identical reruns.

Seeded datasets, simulated time, and the greedy scheduler must all be
pure functions of their inputs — these tests pin that down, because the
benchmarks' credibility rests on it.
"""

import pytest

from repro import Database
from repro.datasets import blockgroups, counties, load_geometries, stars


class TestDatasetDeterminism:
    @pytest.mark.parametrize(
        "generator,kwargs",
        [
            (counties, {"n": 60, "seed": 5}),
            (stars, {"n": 200, "seed": 5}),
            (blockgroups, {"n": 80, "seed": 5}),
        ],
    )
    def test_generators_are_pure(self, generator, kwargs):
        assert generator(**kwargs) == generator(**kwargs)


class TestSimulatedTimeDeterminism:
    def build(self):
        db = Database()
        load_geometries(db, "t", stars(400, seed=31))
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        return db

    def test_join_simulated_time_reproducible(self):
        results = []
        for _ in range(2):
            db = self.build()
            r = db.spatial_join("t", "geom", "t", "geom", parallel=3)
            results.append((sorted(r.pairs), r.makespan_seconds, r.total_work_seconds))
        assert results[0] == results[1]

    def test_build_report_reproducible(self):
        reports = []
        for _ in range(2):
            db = self.build()
            _idx, report = db.create_spatial_index(
                "t_q", "t", "geom", kind="QUADTREE", tiling_level=6, parallel=4
            )
            reports.append(
                (report.makespan_seconds, report.tiles_created, report.rows_indexed)
            )
        assert reports[0] == reports[1]

    def test_worker_assignment_reproducible(self):
        from repro.engine.parallel import SimulatedExecutor

        def charge(n):
            def task(ctx):
                ctx.charge("mbr_test", n)
                return ctx.worker_id

            return task

        tasks = [charge(n) for n in (5, 3, 8, 1, 9, 2)]
        a = SimulatedExecutor(3).run(tasks)
        b = SimulatedExecutor(3).run(tasks)
        assert a.results == b.results
        assert a.worker_seconds == b.worker_seconds
