"""Unit tests for the extensible-indexing framework."""

import pytest

from repro.errors import IndexTypeError, OperatorError
from repro.engine.indextype import (
    OPERATORS,
    DomainIndex,
    IndexTypeRegistry,
    evaluate_operator,
)
from repro.geometry.geometry import Geometry


def square(x, y, s=2.0):
    return Geometry.rectangle(x, y, x + s, y + s)


class TestOperators:
    def test_sdo_relate(self):
        assert evaluate_operator("sdo_relate", square(0, 0), square(1, 1), "ANYINTERACT")
        assert not evaluate_operator("SDO_RELATE", square(0, 0), square(9, 9), "ANYINTERACT")

    def test_sdo_relate_mask_variants(self):
        assert evaluate_operator(
            "SDO_RELATE", square(2, 2, 1), square(0, 0, 10), "INSIDE"
        )
        assert evaluate_operator(
            "SDO_RELATE", square(0, 0, 10), square(2, 2, 1), "CONTAINS"
        )

    def test_sdo_within_distance(self):
        assert evaluate_operator("SDO_WITHIN_DISTANCE", square(0, 0), square(5, 0), 3.0)
        assert not evaluate_operator(
            "SDO_WITHIN_DISTANCE", square(0, 0), square(5, 0), 2.0
        )

    def test_sdo_filter_is_mbr_only(self):
        # Thin diagonal polygon vs a square near its bounding box but far
        # from its boundary: primary filter says yes, exact says no overlap.
        sliver = Geometry.polygon([(0, 0), (10, 10), (10, 10.1), (0, 0.1)])
        probe = square(8, 0, 1)
        assert evaluate_operator("SDO_FILTER", sliver, probe)
        assert not evaluate_operator("SDO_RELATE", sliver, probe, "ANYINTERACT")

    def test_unknown_operator(self):
        with pytest.raises(OperatorError):
            evaluate_operator("SDO_TELEPORT", square(0, 0), square(1, 1))

    def test_operator_registry_contents(self):
        assert set(OPERATORS) == {"SDO_RELATE", "SDO_WITHIN_DISTANCE", "SDO_FILTER"}


class TestRegistry:
    def test_register_and_create(self):
        registry = IndexTypeRegistry()

        class FakeIndex(DomainIndex):
            kind = "FAKE"

        registry.register("FAKE", FakeIndex)
        assert registry.kinds() == ["FAKE"]

    def test_duplicate_kind_rejected(self):
        registry = IndexTypeRegistry()
        registry.register("X", DomainIndex)
        with pytest.raises(IndexTypeError):
            registry.register("x", DomainIndex)

    def test_unknown_kind(self):
        with pytest.raises(IndexTypeError):
            IndexTypeRegistry().create("NOPE", "n", None, "c")


class TestMaintenanceIntegration:
    def test_dml_keeps_index_synchronised(self, indexed_db):
        """Inserting into the base table must update the R-tree (the
        'automatically trigger an update of the corresponding spatial
        indexes' behaviour of the framework)."""
        db = indexed_db
        table = db.table("shapes")
        index = db.spatial_index("shapes_ridx")
        before = len(index.tree)
        rid = table.insert((999, Geometry.rectangle(200, 200, 201, 201)))
        assert len(index.tree) == before + 1
        hits = list(
            index.fetch("SDO_RELATE", (Geometry.rectangle(199, 199, 202, 202), "ANYINTERACT"))
        )
        assert rid in hits
        table.delete(rid)
        assert len(index.tree) == before

    def test_update_moves_index_entry(self, indexed_db):
        db = indexed_db
        table = db.table("shapes")
        index = db.spatial_index("shapes_ridx")
        rid = table.insert((1000, Geometry.rectangle(300, 300, 301, 301)))
        table.update(rid, (1000, Geometry.rectangle(400, 400, 401, 401)))
        old_window = Geometry.rectangle(299, 299, 302, 302)
        new_window = Geometry.rectangle(399, 399, 402, 402)
        assert rid not in list(index.fetch("SDO_RELATE", (old_window, "ANYINTERACT")))
        assert rid in list(index.fetch("SDO_RELATE", (new_window, "ANYINTERACT")))
        table.delete(rid)

    def test_fetch_returns_single_table_rowids_only(self, indexed_db):
        """The framework restriction the paper is built on: fetch yields
        rowids of the indexed table, nothing else."""
        db = indexed_db
        index = db.spatial_index("shapes_ridx")
        table_rowids = {rid for rid, _ in db.table("shapes").scan()}
        window = Geometry.rectangle(0, 0, 100, 100)
        for rid in index.fetch("SDO_RELATE", (window, "ANYINTERACT")):
            assert rid in table_rowids
