"""Tests for SQL shapes outside the recognised plans (generic fallback)."""

import pytest

from repro import Database


@pytest.fixture
def fb_db():
    db = Database()
    db.sql("create table t (id number, geom sdo_geometry)")
    shapes = [
        (1, "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
        (2, "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))"),
        (3, "POLYGON ((8 8, 9 8, 9 9, 8 9, 8 8))"),
    ]
    for pid, wkt in shapes:
        db.sql(f"insert into t values ({pid}, sdo_geometry('{wkt}'))")
    db.sql(
        "create index t_sidx on t(geom) indextype is spatial_index "
        "parameters ('kind=RTREE')"
    )
    return db


class TestGenericFallback:
    def test_operator_equals_false(self, fb_db):
        """= 'FALSE' is outside the index plans; the generic filter must
        still evaluate it correctly."""
        rows = fb_db.sql(
            "select id from t where sdo_relate(geom, "
            "sdo_geometry('POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))'), "
            "'ANYINTERACT') = 'FALSE'"
        ).rows
        assert sorted(r[0] for r in rows) == [3]

    def test_scalar_only_predicates(self, fb_db):
        rows = fb_db.sql("select id from t where id != 2").rows
        assert sorted(r[0] for r in rows) == [1, 3]

    def test_scalar_in_subquery(self, fb_db):
        rows = fb_db.sql(
            "select id from t where id in (select id from t where id > 1)"
        ).rows
        assert sorted(r[0] for r in rows) == [2, 3]

    def test_mixed_spatial_and_scalar(self, fb_db):
        rows = fb_db.sql(
            "select id from t where sdo_relate(geom, "
            "sdo_geometry('POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))'), "
            "'ANYINTERACT') = 'TRUE' and id > 1"
        ).rows
        assert sorted(r[0] for r in rows) == [2]

    def test_three_table_cartesian(self, fb_db):
        count = fb_db.sql("select count(*) from t a, t b, t c").scalar()
        assert count == 27
