"""Unit tests for the single-table domain-index SQL plan and SDO_NN."""

import pytest

from repro import Database, Geometry
from repro.errors import SqlPlanError
from repro.geometry.predicates import intersects
from repro.geometry.wkt import to_wkt


@pytest.fixture
def scan_db(random_rects):
    db = Database()
    db.sql("create table t (id number, geom sdo_geometry)")
    geoms = random_rects(60, seed=131)
    for i, g in enumerate(geoms):
        db.sql(f"insert into t values ({i}, sdo_geometry('{to_wkt(g)}'))")
    db.sql(
        "create index t_sidx on t(geom) indextype is spatial_index "
        "parameters ('kind=RTREE')"
    )
    return db, geoms


WINDOW_WKT = "POLYGON ((20 20, 55 20, 55 50, 20 50, 20 20))"


class TestIndexScanPlan:
    def test_index_scan_matches_full_scan(self, scan_db):
        db, geoms = scan_db
        window = Geometry.polygon([(20, 20), (55, 20), (55, 50), (20, 50)])
        got = sorted(
            r[0]
            for r in db.sql(
                f"select id from t where sdo_relate(geom, "
                f"sdo_geometry('{WINDOW_WKT}'), 'ANYINTERACT') = 'TRUE'"
            ).rows
        )
        expected = sorted(i for i, g in enumerate(geoms) if intersects(g, window))
        assert got == expected

    def test_within_distance_through_index(self, scan_db):
        db, geoms = scan_db
        from repro.geometry.distance import within_distance

        probe = Geometry.point(50, 50)
        got = sorted(
            r[0]
            for r in db.sql(
                "select id from t where sdo_within_distance(geom, "
                "sdo_geometry('POINT (50 50)'), 10) = 'TRUE'"
            ).rows
        )
        expected = sorted(
            i for i, g in enumerate(geoms) if within_distance(g, probe, 10.0)
        )
        assert got == expected

    def test_extra_predicates_compose(self, scan_db):
        db, _geoms = scan_db
        base = db.sql(
            f"select count(*) from t where sdo_relate(geom, "
            f"sdo_geometry('{WINDOW_WKT}'), 'ANYINTERACT') = 'TRUE'"
        ).scalar()
        filtered = db.sql(
            f"select count(*) from t where sdo_relate(geom, "
            f"sdo_geometry('{WINDOW_WKT}'), 'ANYINTERACT') = 'TRUE' and id < 10"
        ).scalar()
        assert filtered <= base


class TestSdoNnInSql:
    def test_k_nearest(self, scan_db):
        db, geoms = scan_db
        from repro.geometry.distance import distance

        probe = Geometry.point(10, 10)
        rows = db.sql(
            "select id from t where sdo_nn(geom, sdo_geometry('POINT (10 10)'), 5) = 'TRUE'"
        ).rows
        assert len(rows) == 5
        got_ids = {r[0] for r in rows}
        ranked = sorted(range(len(geoms)), key=lambda i: distance(geoms[i], probe))
        got_d = sorted(distance(geoms[i], probe) for i in got_ids)
        exp_d = sorted(distance(geoms[i], probe) for i in ranked[:5])
        assert got_d == pytest.approx(exp_d)

    def test_sdo_nn_requires_index(self):
        db = Database()
        db.sql("create table bare (id number, geom sdo_geometry)")
        db.sql("insert into bare values (1, sdo_geometry('POINT (0 0)'))")
        with pytest.raises(SqlPlanError):
            db.sql(
                "select id from bare where sdo_nn(geom, "
                "sdo_geometry('POINT (1 1)'), 2) = 'TRUE'"
            )
