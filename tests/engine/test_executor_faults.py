"""Executor fault matrix: dead slave processes, retries, and multi-error
aggregation under concurrent failure mixes."""

import os
import threading
import time

import pytest

from repro.errors import EngineError
from repro.engine import parallel as parallel_mod
from repro.engine.parallel import ProcessExecutor, ThreadExecutor


def charge_task(kind, amount):
    def task(ctx):
        ctx.charge(kind, amount)
        return amount

    return task


class DieOnce:
    """Kills the hosting worker process the first time it runs; succeeds on
    the retry.  State lives in the filesystem because the task is re-pickled
    into a different process each attempt."""

    def __init__(self, marker_path):
        self.marker_path = marker_path

    def __call__(self, ctx):
        if not os.path.exists(self.marker_path):
            with open(self.marker_path, "w") as fh:
                fh.write("died")
            os._exit(17)  # hard kill: no exception, no cleanup
        ctx.charge("mbr_test", 1)
        return "survived"


class AlwaysDie:
    def __call__(self, ctx):
        os._exit(17)


class TestDeadWorkerRequeue:
    def test_task_requeued_after_worker_death(self, tmp_path):
        marker = str(tmp_path / "died.marker")
        run = ProcessExecutor(2).run(
            [charge_task("mbr_test", 1), DieOnce(marker), charge_task("mbr_test", 2)]
        )
        assert run.results == [1, "survived", 2]
        retries = sum(m.counts.get("task_retry", 0) for m in run.worker_meters)
        assert retries == 1

    def test_retries_exhausted_raises(self):
        with pytest.raises(EngineError, match="died before completing") as info:
            ProcessExecutor(2, max_task_retries=1).run(
                [charge_task("mbr_test", 1), AlwaysDie()]
            )
        assert "after 2 attempts" in str(info.value)

    def test_zero_retries_fails_fast(self):
        with pytest.raises(EngineError, match="died before completing"):
            ProcessExecutor(2, max_task_retries=0).run([AlwaysDie()])

    def test_retry_budget_validated(self):
        with pytest.raises(EngineError):
            ProcessExecutor(2, max_task_retries=-1)

    def test_sibling_tasks_still_complete(self, tmp_path):
        # A death in one worker must not lose work queued to the others.
        marker = str(tmp_path / "died.marker")
        tasks = [charge_task("mbr_test", n) for n in range(8)]
        tasks.insert(3, DieOnce(marker))
        run = ProcessExecutor(3).run(tasks)
        assert run.results[3] == "survived"
        assert [r for i, r in enumerate(run.results) if i != 3] == list(range(8))


_REAL_WORKER = parallel_mod._process_worker


def _steal_and_die_worker(worker_id, tasks, task_queue, conn):
    """Worker 0 dequeues a task and dies *before* sending its claim — the
    window where the parent has no in-flight record of what was lost."""
    if worker_id == 0:
        task_queue.get()
        os._exit(17)
    _REAL_WORKER(worker_id, tasks, task_queue, conn)


def _slow_value_task(n):
    def task(ctx):
        time.sleep(0.05)  # keep the queue busy until worker 0 steals
        ctx.charge("mbr_test", 1)
        return n

    return task


class TestUnclaimedTaskLoss:
    def test_task_lost_before_claim_is_recovered(self, monkeypatch):
        # Pre-fix, the stolen task was never requeued: the survivor blocked
        # on the empty queue and the run hung forever.
        monkeypatch.setattr(parallel_mod, "_process_worker", _steal_and_die_worker)
        run = ProcessExecutor(2).run([_slow_value_task(n) for n in range(4)])
        assert run.results == list(range(4))
        retries = sum(m.counts.get("task_retry", 0) for m in run.worker_meters)
        assert retries >= 1


def boom(ctx):
    raise ValueError("boom")


def type_boom(ctx):
    raise TypeError("type boom")


def ok(ctx):
    return "ok"


class TestSiblingErrorMatrix:
    """Every mix of failures reports *all* collected errors, on both real
    executors."""

    @pytest.fixture(params=["threads", "processes"])
    def make(self, request):
        if request.param == "threads":
            return lambda degree, **kw: ThreadExecutor(degree)
        return lambda degree, **kw: ProcessExecutor(degree, **kw)

    def test_mixed_success_and_failure(self, make):
        with pytest.raises(ValueError) as info:
            make(2).run([ok, boom, ok])
        assert len(info.value.sibling_errors) == 1

    def test_all_tasks_fail(self, make):
        # Threads fail fast (stop dispatching after the first error), so
        # only assert that every *collected* error is reported.
        with pytest.raises(ValueError) as info:
            make(3).run([boom, boom, boom])
        assert len(info.value.sibling_errors) >= 1
        assert all(isinstance(e, ValueError) for e in info.value.sibling_errors)

    def test_process_executor_reports_all_failures(self):
        # Processes drain the whole queue: both failures must surface.
        with pytest.raises((ValueError, TypeError)) as info:
            ProcessExecutor(2).run([boom, type_boom])
        assert {type(e) for e in info.value.sibling_errors} == {ValueError, TypeError}

    def test_error_plus_dead_worker_reports_both(self, tmp_path):
        # One task raises cleanly, another kills its worker beyond the
        # retry budget: the EngineError for the death must ride along as a
        # sibling of the ValueError (or vice versa).
        with pytest.raises((ValueError, EngineError)) as info:
            ProcessExecutor(2, max_task_retries=0).run([boom, AlwaysDie()])
        types = {type(e) for e in info.value.sibling_errors}
        assert ValueError in types and EngineError in types

    def test_concurrent_thread_failures_synchronized(self):
        barrier = threading.Barrier(2, timeout=5)

        def sync_boom_a(ctx):
            barrier.wait()
            raise ValueError("a")

        def sync_boom_b(ctx):
            barrier.wait()
            raise TypeError("b")

        with pytest.raises((ValueError, TypeError)) as info:
            ThreadExecutor(2).run([sync_boom_a, sync_boom_b])
        assert len(info.value.sibling_errors) == 2
