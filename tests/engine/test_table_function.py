"""Unit tests for the pipelined/parallel table-function machinery."""

import pytest

from repro.errors import TableFunctionError
from repro.engine.cursor import Cursor, ListCursor, PartitionMethod
from repro.engine.parallel import SerialExecutor, SimulatedExecutor, WorkerContext
from repro.engine.table_function import (
    TableFunction,
    collect,
    flatten_run,
    pipeline,
    run_parallel,
)


class CountdownFunction(TableFunction):
    """Emits (n-1,), (n-2,), ..., (0,) across fetch calls."""

    def __init__(self, n, batch=3):
        super().__init__()
        self.n = n
        self.batch = batch
        self.closed_calls = 0

    def _start(self, ctx):
        self._remaining = list(range(self.n - 1, -1, -1))

    def _fetch(self, ctx, max_rows):
        take = min(max_rows, self.batch, len(self._remaining))
        out = [(v,) for v in self._remaining[:take]]
        self._remaining = self._remaining[take:]
        return out

    def _close(self, ctx):
        self.closed_calls += 1


class EchoCursorFunction(TableFunction):
    """Parallel-style function: copies its input cursor's rows through."""

    def __init__(self, cursor: Cursor):
        super().__init__()
        self.cursor = cursor

    def _fetch(self, ctx, max_rows):
        return self.cursor.fetch(max_rows)


class TestProtocol:
    def test_fetch_before_start_rejected(self):
        fn = CountdownFunction(3)
        with pytest.raises(TableFunctionError):
            fn.fetch(WorkerContext(0))

    def test_double_start_rejected(self):
        fn = CountdownFunction(3)
        ctx = WorkerContext(0)
        fn.start(ctx)
        with pytest.raises(TableFunctionError):
            fn.start(ctx)

    def test_fetch_after_close_rejected(self):
        fn = CountdownFunction(3)
        ctx = WorkerContext(0)
        fn.start(ctx)
        fn.close(ctx)
        with pytest.raises(TableFunctionError):
            fn.fetch(ctx)

    def test_double_close_rejected(self):
        fn = CountdownFunction(3)
        ctx = WorkerContext(0)
        fn.start(ctx)
        fn.close(ctx)
        with pytest.raises(TableFunctionError):
            fn.close(ctx)

    def test_exhaustion_is_sticky(self):
        fn = CountdownFunction(2, batch=10)
        ctx = WorkerContext(0)
        fn.start(ctx)
        assert fn.fetch(ctx, 10) == [(1,), (0,)]
        assert fn.fetch(ctx, 10) == []
        assert fn.exhausted
        assert fn.fetch(ctx, 10) == []

    def test_fetch_size_respected(self):
        fn = CountdownFunction(10, batch=100)
        ctx = WorkerContext(0)
        fn.start(ctx)
        assert len(fn.fetch(ctx, 4)) == 4


class TestPipeline:
    def test_pipeline_yields_all_rows(self):
        assert collect(CountdownFunction(7)) == [(v,) for v in range(6, -1, -1)]

    def test_pipeline_closes_on_early_exit(self):
        fn = CountdownFunction(100)
        it = pipeline(fn)
        next(it)
        it.close()  # abandon the iterator
        assert fn.closed_calls == 1

    def test_pipeline_closes_on_completion(self):
        fn = CountdownFunction(3)
        list(pipeline(fn))
        assert fn.closed_calls == 1

    def test_small_fetch_size(self):
        assert collect(CountdownFunction(5), fetch_size=1) == [
            (4,), (3,), (2,), (1,), (0,),
        ]


class TestRunParallel:
    def test_rows_preserved_across_partitions(self):
        rows = [(i,) for i in range(20)]
        run = run_parallel(
            EchoCursorFunction, ListCursor(rows), SimulatedExecutor(4)
        )
        assert sorted(flatten_run(run)) == rows
        assert run.degree == 4

    def test_serial_executor(self):
        rows = [(i,) for i in range(5)]
        run = run_parallel(EchoCursorFunction, ListCursor(rows), SerialExecutor())
        assert sorted(flatten_run(run)) == rows

    def test_empty_input(self):
        run = run_parallel(EchoCursorFunction, ListCursor([]), SimulatedExecutor(2))
        assert flatten_run(run) == []

    def test_partition_work_charged(self):
        rows = [(i,) for i in range(100)]
        run = run_parallel(EchoCursorFunction, ListCursor(rows), SimulatedExecutor(2))
        combined = run.combined_meter()
        assert combined.counts.get("partition_per_row") == 100
