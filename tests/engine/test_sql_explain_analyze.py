"""EXPLAIN ANALYZE: actual rows, meter counts and simulated seconds
decorate the plan next to the optimizer's estimates."""

import re

import pytest

from repro import Database
from repro.datasets import load_geometries


@pytest.fixture
def counties_db(small_counties):
    db = Database()
    load_geometries(db, "counties", small_counties)
    db.create_spatial_index(
        "counties_sidx", "counties", "geom", kind="RTREE", fanout=16
    )
    db.sql("analyze table counties compute statistics")
    return db


def plan_text(db, sql):
    return "\n".join(r[0] for r in db.sql(sql).rows)


class TestExplainAnalyzeJoin:
    SELF_JOIN = (
        "explain analyze select count(*) from counties a, counties b where "
        "(a.rowid, b.rowid) in (select rid1, rid2 from TABLE("
        "spatial_join('counties','geom','counties','geom','intersect')))"
    )

    def test_per_operator_actuals_next_to_estimates(self, counties_db):
        plan = plan_text(counties_db, self.SELF_JOIN)
        # the table function line carries actual pairs AND the estimate
        tf = re.search(
            r"TABLE FUNCTION SPATIAL_JOIN.*actual pairs=(\d+), "
            r"est pairs=(\d+)",
            plan,
        )
        assert tf, plan
        actual_pairs, est_pairs = int(tf.group(1)), int(tf.group(2))
        assert actual_pairs > 0
        assert est_pairs > 0
        # per-operator actual rows and simulated seconds
        assert re.search(r"SELECT STATEMENT \(actual rows=1, simulated=", plan)
        assert re.search(r"ROWID SEMI-JOIN.*actual rows=\d+", plan)
        assert re.search(
            r"SYNCHRONIZED R-TREE TRAVERSAL.*actual candidates=\d+, "
            r"sweeps=\d+, simulated=[0-9.]+s",
            plan,
        )
        assert re.search(
            r"SECONDARY FILTER.*actual rows=\d+, drains=\d+, "
            r"simulated=[0-9.]+s",
            plan,
        )
        # meter counts per operator
        assert plan.count("meter:") >= 3
        assert re.search(r"meter: .*mbr_test=\d+", plan)
        assert re.search(r"meter: .*exact_test_base=\d+", plan)

    def test_statement_totals_and_buffer_line(self, counties_db):
        plan = plan_text(counties_db, self.SELF_JOIN)
        assert re.search(
            r"buffer: gets=\d+ hits=\d+ misses=\d+ hit_ratio=", plan
        )
        assert "statement meter:" in plan
        total = re.search(r"statement simulated seconds: ([0-9.]+)", plan)
        assert total and float(total.group(1)) > 0

    def test_estimated_pairs_line_gets_actual(self, counties_db):
        plan = plan_text(
            counties_db,
            "explain analyze select count(*) from TABLE("
            "spatial_join('counties','geom','counties','geom','intersect'))",
        )
        assert re.search(r"actual pairs=\d+", plan)

    def test_semi_join_actuals_match_tf_pairs(self, counties_db):
        plan = plan_text(counties_db, self.SELF_JOIN)
        semi = int(re.search(r"ROWID SEMI-JOIN.*actual rows=(\d+)", plan).group(1))
        pairs = int(
            re.search(r"TABLE FUNCTION.*actual pairs=(\d+)", plan).group(1)
        )
        assert semi == pairs


class TestExplainAnalyzeOtherPlans:
    def test_index_scan_actuals(self, counties_db):
        plan = plan_text(
            counties_db,
            "explain analyze select id from counties where sdo_relate(geom, "
            "sdo_geometry('POLYGON ((20 20, 60 20, 60 60, 20 60, 20 20))'), "
            "'ANYINTERACT') = 'TRUE'",
        )
        match = re.search(
            r"DOMAIN INDEX COUNTIES_SIDX.*actual rows=(\d+), simulated=", plan
        )
        assert match, plan
        assert "estimated rows:" in plan  # estimate preserved alongside
        assert "meter:" in plan

    def test_nested_loop_actuals(self, counties_db):
        plan = plan_text(
            counties_db,
            "explain analyze select count(*) from counties a, counties b "
            "where sdo_relate(a.geom, b.geom, 'ANYINTERACT') = 'TRUE'",
        )
        assert re.search(r"NESTED LOOPS.*actual rows=\d+, probes=\d+", plan)

    def test_plain_explain_unchanged(self, counties_db):
        plan = plan_text(
            counties_db,
            "explain select id from counties where sdo_relate(geom, "
            "sdo_geometry('POINT (30 30)'), 'ANYINTERACT') = 'TRUE'",
        )
        assert "actual" not in plan
        assert "meter:" not in plan

    def test_analyze_results_match_plain_execution(self, counties_db):
        sql = (
            "select count(*) from counties a, counties b where "
            "(a.rowid, b.rowid) in (select rid1, rid2 from TABLE("
            "spatial_join('counties','geom','counties','geom','intersect')))"
        )
        count = counties_db.sql(sql).rows[0][0]
        plan = plan_text(counties_db, "explain analyze " + sql)
        pairs = int(
            re.search(r"TABLE FUNCTION.*actual pairs=(\d+)", plan).group(1)
        )
        assert pairs == count
