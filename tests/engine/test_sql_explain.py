"""Unit tests for EXPLAIN plan reporting."""

import pytest

from repro import Database


@pytest.fixture
def explain_db():
    db = Database()
    db.sql("create table parks (id number, geom sdo_geometry)")
    db.sql(
        "insert into parks values (1, sdo_geometry('POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))'))"
    )
    db.sql(
        "create index parks_sidx on parks(geom) indextype is spatial_index "
        "parameters ('kind=RTREE')"
    )
    return db


def plan_text(db, sql):
    return "\n".join(r[0] for r in db.sql(sql).rows)


class TestExplain:
    def test_domain_index_scan(self, explain_db):
        plan = plan_text(
            explain_db,
            "explain select id from parks where sdo_relate(geom, "
            "sdo_geometry('POINT (0 0)'), 'ANYINTERACT') = 'TRUE'",
        )
        assert "DOMAIN INDEX PARKS_SIDX (RTREE)" in plan
        assert "SDO_RELATE" in plan

    def test_full_scan_without_index(self):
        db = Database()
        db.sql("create table bare (id number, geom sdo_geometry)")
        plan = plan_text(
            db,
            "explain select id from bare where sdo_relate(geom, "
            "sdo_geometry('POINT (0 0)'), 'ANYINTERACT') = 'TRUE'",
        )
        assert "TABLE ACCESS FULL BARE" in plan
        assert "DOMAIN INDEX" not in plan

    def test_nested_loop_join_plan(self, explain_db):
        plan = plan_text(
            explain_db,
            "explain select count(*) from parks a, parks b where "
            "sdo_relate(a.geom, b.geom, 'ANYINTERACT') = 'TRUE'",
        )
        assert "NESTED LOOPS" in plan
        assert "DOMAIN INDEX PROBE" in plan

    def test_table_function_join_plan(self, explain_db):
        plan = plan_text(
            explain_db,
            "explain select count(*) from parks a, parks b where "
            "(a.rowid, b.rowid) in (select rid1, rid2 from TABLE("
            "spatial_join('parks','geom','parks','geom','intersect')))",
        )
        assert "ROWID SEMI-JOIN" in plan
        assert "TABLE FUNCTION SPATIAL_JOIN" in plan
        assert "SYNCHRONIZED R-TREE TRAVERSAL" in plan

    def test_parallel_degree_shown(self, explain_db):
        plan = plan_text(
            explain_db,
            "explain select count(*) from TABLE("
            "spatial_join('parks','geom','parks','geom','intersect', 0, 4))",
        )
        assert "parallel 4" in plan

    def test_explain_plan_for_spelling(self, explain_db):
        plan = plan_text(explain_db, "explain plan for select id from parks")
        assert "SELECT STATEMENT" in plan

    def test_explain_does_not_execute(self, explain_db):
        # An EXPLAIN over a join must be instant and side-effect free:
        # verify by explaining a query against a dropped-index table copy.
        result = explain_db.sql("explain select id from parks")
        assert result.columns == ["PLAN"]
        assert len(result.rows) >= 1
