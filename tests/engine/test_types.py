"""Unit tests for row schemas and type validation."""

import pytest

from repro.errors import EngineError
from repro.engine.types import RowSchema, validate_value
from repro.geometry.geometry import Geometry
from repro.storage.catalog import ColumnMeta
from repro.storage.heap import RowId


class TestValidateValue:
    def test_number_accepts_int_and_float(self):
        validate_value(1, "NUMBER")
        validate_value(1.5, "NUMBER")

    def test_number_rejects_bool_and_str(self):
        with pytest.raises(EngineError):
            validate_value(True, "NUMBER")
        with pytest.raises(EngineError):
            validate_value("1", "NUMBER")

    def test_null_accepted_everywhere(self):
        for tag in ("NUMBER", "VARCHAR", "SDO_GEOMETRY", "ROWID", "RAW"):
            validate_value(None, tag)

    def test_geometry_column(self):
        validate_value(Geometry.point(0, 0), "SDO_GEOMETRY")
        with pytest.raises(EngineError):
            validate_value("POINT(0 0)", "SDO_GEOMETRY")

    def test_rowid_column(self):
        validate_value(RowId(1, 2), "ROWID")

    def test_unknown_type_tag(self):
        with pytest.raises(EngineError):
            validate_value(1, "BLOB")


class TestRowSchema:
    def make(self):
        return RowSchema(
            [ColumnMeta("id", "NUMBER"), ColumnMeta("geom", "SDO_GEOMETRY")]
        )

    def test_index_of_case_insensitive(self):
        s = self.make()
        assert s.index_of("ID") == 0
        assert s.index_of("Geom") == 1

    def test_unknown_column(self):
        with pytest.raises(EngineError):
            self.make().index_of("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(EngineError):
            RowSchema([ColumnMeta("a", "NUMBER"), ColumnMeta("A", "NUMBER")])

    def test_validate_row_width(self):
        with pytest.raises(EngineError):
            self.make().validate_row((1,))

    def test_validate_row_types(self):
        s = self.make()
        s.validate_row((1, Geometry.point(0, 0)))
        with pytest.raises(EngineError):
            s.validate_row((1, "not a geometry"))

    def test_value_by_name(self):
        s = self.make()
        row = (7, None)
        assert s.value(row, "id") == 7
