"""``ALTER TABLE ... COMPACT`` — SQL surface for heap-to-columnar compaction."""

import pytest

from repro import Database
from repro.datasets import load_geometries
from repro.errors import SqlError


@pytest.fixture
def db(random_rects):
    db = Database()
    load_geometries(db, "shapes", random_rects(80, seed=5))
    db.create_spatial_index("s_idx", "shapes", "geom", kind="RTREE", fanout=6)
    return db


class TestCompactStatement:
    def test_basic_compact(self, db):
        result = db.sql("alter table shapes compact")
        assert db.table("shapes").columnar is not None
        assert "compacted" in result.message
        assert "80 rows" in result.message

    def test_compact_with_column_and_chunk(self, db):
        result = db.sql("alter table shapes compact column geom chunk 16")
        seg = db.table("shapes").columnar
        assert seg is not None
        assert len(seg.chunks) == 5  # 80 rows / 16 per chunk
        assert "5 chunks" in result.message

    def test_queries_identical_after_sql_compact(self, db):
        q = (
            "select id from shapes where sdo_relate(geom, sdo_geometry("
            "'POLYGON ((10 10, 40 10, 40 40, 10 40, 10 10))'), "
            "'ANYINTERACT') = 'TRUE'"
        )
        before = db.sql(q).rows
        db.sql("alter table shapes compact")
        assert db.sql(q).rows == before

    def test_recompact_folds_journal(self, db):
        db.sql("alter table shapes compact chunk 16")
        t = db.table("shapes")
        rid = next(iter(t.scan()))[0]
        t.delete(rid)
        assert not t.columnar.journal_empty()
        db.sql("alter table shapes compact chunk 16")
        seg = t.columnar
        assert seg.journal_empty() and seg.row_count == 79

    def test_unknown_table_raises(self, db):
        with pytest.raises(Exception):
            db.sql("alter table nope compact")

    def test_parse_errors(self, db):
        for bad in (
            "alter table shapes",  # missing COMPACT
            "alter shapes compact",  # missing TABLE
            "alter table shapes compact chunk",  # missing count
            "alter table shapes compact column",  # missing ident
        ):
            with pytest.raises(SqlError):
                db.sql(bad)

    def test_chunk_size_must_be_positive(self, db):
        with pytest.raises(Exception):
            db.sql("alter table shapes compact chunk 0")

    def test_explainable_queries_still_work_after_compact(self, db):
        db.sql("alter table shapes compact")
        result = db.sql(
            "explain select id from shapes where sdo_relate(geom, "
            "sdo_geometry('POINT (20 20)'), 'ANYINTERACT') = 'TRUE'"
        )
        assert result.rows  # plan still renders
