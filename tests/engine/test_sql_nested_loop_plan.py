"""Unit tests for the indexed nested-loop SQL plan (two-table operators)."""

import pytest

from repro import Database, Geometry
from repro.geometry.predicates import contains, intersects
from repro.geometry.wkt import to_wkt


@pytest.fixture
def two_table_db(random_rects):
    db = Database()
    db.sql("create table big (id number, geom sdo_geometry)")
    db.sql("create table small (id number, geom sdo_geometry)")
    import random

    rng = random.Random(9)
    for i in range(25):
        x, y = rng.uniform(0, 80), rng.uniform(0, 80)
        g = Geometry.rectangle(x, y, x + 12, y + 12)
        db.sql(f"insert into big values ({i}, sdo_geometry('{to_wkt(g)}'))")
    for i in range(40):
        x, y = rng.uniform(0, 90), rng.uniform(0, 90)
        g = Geometry.rectangle(x, y, x + 2, y + 2)
        db.sql(f"insert into small values ({i}, sdo_geometry('{to_wkt(g)}'))")
    db.sql(
        "create index small_sidx on small(geom) indextype is spatial_index "
        "parameters ('kind=RTREE')"
    )
    return db


def brute(db, predicate):
    count = 0
    for _ra, rowa in db.table("big").scan():
        for _rb, rowb in db.table("small").scan():
            if predicate(rowa[1], rowb[1]):
                count += 1
    return count


class TestIndexedNestedLoopPlan:
    def test_anyinteract(self, two_table_db):
        got = two_table_db.sql(
            "select count(*) from big a, small b where "
            "sdo_relate(a.geom, b.geom, 'ANYINTERACT') = 'TRUE'"
        ).scalar()
        assert got == brute(two_table_db, intersects)

    def test_contains_mask_transposed_correctly(self, two_table_db):
        got = two_table_db.sql(
            "select count(*) from big a, small b where "
            "sdo_relate(a.geom, b.geom, 'CONTAINS') = 'TRUE'"
        ).scalar()
        expected = brute(two_table_db, contains)  # big contains small
        assert expected > 0, "fixture must produce some containments"
        assert got == expected

    def test_inside_mask_transposed_correctly(self, two_table_db):
        got = two_table_db.sql(
            "select count(*) from small b, big a where "
            "sdo_relate(b.geom, a.geom, 'INSIDE') = 'TRUE'"
        ).scalar()
        expected = brute(two_table_db, contains)
        assert got == expected

    def test_within_distance(self, two_table_db):
        got = two_table_db.sql(
            "select count(*) from big a, small b where "
            "sdo_within_distance(a.geom, b.geom, 5) = 'TRUE'"
        ).scalar()
        from repro.geometry.distance import within_distance

        assert got == brute(two_table_db, lambda x, y: within_distance(x, y, 5.0))

    def test_projection_of_both_sides(self, two_table_db):
        rows = two_table_db.sql(
            "select a.id, b.id from big a, small b where "
            "sdo_relate(a.geom, b.geom, 'ANYINTERACT') = 'TRUE'"
        ).rows
        assert len(rows) == brute(two_table_db, intersects)
        assert all(len(r) == 2 for r in rows)

    def test_falls_back_without_index(self):
        """No index on the inner side: cartesian filter still gets the
        right answer (just slower)."""
        db = Database()
        db.sql("create table x (id number, geom sdo_geometry)")
        db.sql("insert into x values (1, sdo_geometry('POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))'))")
        db.sql("insert into x values (2, sdo_geometry('POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))'))")
        got = db.sql(
            "select count(*) from x a, x b where "
            "sdo_relate(a.geom, b.geom, 'ANYINTERACT') = 'TRUE'"
        ).scalar()
        assert got == 4

    def test_extra_scalar_predicates_still_apply(self, two_table_db):
        full = two_table_db.sql(
            "select count(*) from big a, small b where "
            "sdo_relate(a.geom, b.geom, 'ANYINTERACT') = 'TRUE'"
        ).scalar()
        filtered = two_table_db.sql(
            "select count(*) from big a, small b where "
            "sdo_relate(a.geom, b.geom, 'ANYINTERACT') = 'TRUE' and a.id < 5"
        ).scalar()
        assert filtered <= full
