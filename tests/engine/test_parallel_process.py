"""ProcessExecutor correctness + multi-error reporting for real executors.

The process executor must satisfy exactly the contract the thread executor
does (results in submission order, metered work, error propagation), so
most tests here run against both via one parametrized fixture.
"""

import pickle

import pytest

from repro.errors import EngineError
from repro.engine.cursor import ListCursor
from repro.engine.parallel import (
    ProcessExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.engine.table_function import (
    PartitionTask,
    flatten_run,
    run_parallel,
)
from tests.engine.test_table_function import EchoCursorFunction


def charge_task(kind, amount):
    def task(ctx):
        ctx.charge(kind, amount)
        return amount

    return task


def boom_task(ctx):
    raise ValueError("task failed")


def type_error_task(ctx):
    raise TypeError("other failure")


@pytest.fixture(params=["threads", "processes"])
def real_executor(request):
    """Factory for the two real-concurrency executors."""

    def make(degree):
        if request.param == "threads":
            return ThreadExecutor(degree)
        return ProcessExecutor(degree)

    return make


class TestRealExecutorContract:
    def test_results_in_submission_order(self, real_executor):
        run = real_executor(4).run([charge_task("mbr_test", n) for n in range(10)])
        assert run.results == list(range(10))
        assert run.wall_seconds > 0

    def test_meters_account_all_work(self, real_executor):
        run = real_executor(3).run(
            [charge_task("mbr_test", n) for n in (5, 7, 11)]
        )
        total = sum(m.counts.get("mbr_test", 0) for m in run.worker_meters)
        assert total == 23
        assert len(run.worker_meters) == 3

    def test_exceptions_propagate(self, real_executor):
        with pytest.raises(ValueError, match="task failed"):
            real_executor(2).run([charge_task("mbr_test", 1), boom_task])

    def test_more_workers_than_tasks(self, real_executor):
        run = real_executor(8).run([charge_task("mbr_test", 1)])
        assert run.results == [1]

    def test_no_tasks(self, real_executor):
        run = real_executor(3).run([])
        assert run.results == []
        assert len(run.worker_meters) == 3

    def test_run_parallel_equals_serial(self, real_executor):
        rows = [(i,) for i in range(40)]
        run = run_parallel(
            EchoCursorFunction, ListCursor(rows), real_executor(4)
        )
        assert sorted(flatten_run(run)) == rows

    def test_degree_validation(self, real_executor):
        with pytest.raises(EngineError):
            real_executor(0)


class TestAllErrorsReported:
    """The satellite fix: no collected worker exception is dropped."""

    def test_thread_executor_reports_both_concurrent_errors(self):
        import threading

        barrier = threading.Barrier(2, timeout=5)

        def sync_fail_a(ctx):
            barrier.wait()
            raise ValueError("worker a failed")

        def sync_fail_b(ctx):
            barrier.wait()
            raise TypeError("worker b failed")

        with pytest.raises((ValueError, TypeError)) as info:
            ThreadExecutor(2).run([sync_fail_a, sync_fail_b])
        exc = info.value
        assert len(exc.sibling_errors) == 2
        notes = getattr(exc, "__notes__", [])
        assert len(notes) == 1
        assert "also raised in a parallel worker" in notes[0]

    def test_process_executor_reports_all_errors(self):
        with pytest.raises((ValueError, TypeError)) as info:
            ProcessExecutor(2).run([boom_task, type_error_task])
        exc = info.value
        assert len(exc.sibling_errors) == 2
        types = {type(e) for e in exc.sibling_errors}
        assert types == {ValueError, TypeError}
        assert getattr(exc, "__notes__", [])

    def test_single_error_has_no_notes(self):
        with pytest.raises(ValueError) as info:
            ThreadExecutor(2).run([boom_task])
        assert not getattr(info.value, "__notes__", [])
        assert len(info.value.sibling_errors) == 1


class TestPicklingSafety:
    """run_parallel's tasks are module-level callables, not closures."""

    def test_partition_task_pickles(self):
        task = PartitionTask(EchoCursorFunction, ListCursor([(1,), (2,)]), 64)
        clone = pickle.loads(pickle.dumps(task))
        from repro.engine.parallel import WorkerContext

        assert clone(WorkerContext(0)) == [(1,), (2,)]

    def test_unpicklable_result_degrades_to_engine_error(self):
        def make_unpicklable(ctx):
            return lambda: None  # lambdas never pickle

        with pytest.raises(EngineError, match="failed to pickle"):
            ProcessExecutor(2).run([make_unpicklable])


class TestMakeExecutorProcesses:
    def test_processes_requested(self):
        assert isinstance(
            make_executor(4, use_processes=True), ProcessExecutor
        )

    def test_degree_one_still_serial(self):
        from repro.engine.parallel import SerialExecutor

        assert isinstance(make_executor(1, use_processes=True), SerialExecutor)

    def test_processes_win_over_threads(self):
        assert isinstance(
            make_executor(4, use_threads=True, use_processes=True),
            ProcessExecutor,
        )
