"""Unit tests for optimizer statistics and ANALYZE."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.engine.stats import (
    analyze_table,
    estimate_join_pairs,
    estimate_window_rows,
)
from repro.errors import CatalogError
from repro.geometry.mbr import MBR


@pytest.fixture
def stats_db(random_rects):
    db = Database()
    load_geometries(db, "t", random_rects(200, seed=161))
    return db


class TestAnalyze:
    def test_row_counts_and_averages(self, stats_db):
        stats = stats_db.analyze("t")
        assert stats.row_count == 200
        col = stats.column("geom")
        assert col.geometry_count == 200
        assert 0 < col.avg_width <= 4.0
        assert col.avg_vertices == 4.0  # rectangles
        assert not col.layer_mbr.is_empty

    def test_null_geometries_excluded_from_column_stats(self):
        db = Database()
        t = db.create_table("t", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")])
        t.insert((1, Geometry.rectangle(0, 0, 2, 2)))
        t.insert((2, None))
        stats = analyze_table(t)
        assert stats.row_count == 2
        assert stats.column("geom").geometry_count == 1

    def test_missing_stats_raise(self, stats_db):
        stats = stats_db.analyze("t")
        with pytest.raises(CatalogError):
            stats.column("not_a_column")

    def test_analyze_via_sql(self, stats_db):
        msg = stats_db.sql("analyze table t compute statistics").message
        assert "200 rows" in msg
        assert stats_db.table_stats("t") is not None


class TestEstimates:
    def test_window_estimate_tracks_actual(self, stats_db):
        from repro.geometry.predicates import intersects

        stats = stats_db.analyze("t")
        col = stats.column("geom")
        window = MBR(20, 20, 60, 60)
        estimate = estimate_window_rows(col, window)
        window_geom = Geometry.from_mbr(window)
        actual = sum(
            1
            for _r, row in stats_db.table("t").scan()
            if intersects(row[1], window_geom)
        )
        # uniformity model: order-of-magnitude agreement is the contract
        assert actual / 3 <= estimate <= actual * 3

    def test_window_estimate_monotone_in_window_size(self, stats_db):
        col = stats_db.analyze("t").column("geom")
        small = estimate_window_rows(col, MBR(40, 40, 45, 45))
        large = estimate_window_rows(col, MBR(10, 10, 90, 90))
        assert small < large

    def test_join_estimate_tracks_actual(self, stats_db):
        col = stats_db.analyze("t").column("geom")
        estimate = estimate_join_pairs(col, col)
        actual = len(stats_db_join(stats_db))
        assert actual / 4 <= estimate <= actual * 4

    def test_empty_column(self):
        from repro.engine.stats import ColumnGeometryStats

        col = ColumnGeometryStats(column="g")
        assert estimate_window_rows(col, MBR(0, 0, 1, 1)) == 0.0
        assert estimate_join_pairs(col, col) == 0.0


def stats_db_join(db):
    from repro.geometry.predicates import intersects

    rows = [(r, row[1]) for r, row in db.table("t").scan()]
    return [
        (ra, rb)
        for ra, ga in rows
        for rb, gb in rows
        if ga.mbr.intersects(gb.mbr)
    ]


class TestExplainEstimates:
    def test_window_estimate_in_plan(self, stats_db):
        stats_db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        stats_db.sql("analyze table t")
        plan = "\n".join(
            r[0]
            for r in stats_db.sql(
                "explain select id from t where sdo_relate(geom, "
                "sdo_geometry('POLYGON ((20 20, 60 20, 60 60, 20 60, 20 20))'), "
                "'ANYINTERACT') = 'TRUE'"
            ).rows
        )
        assert "estimated rows:" in plan

    def test_join_estimate_in_plan(self, stats_db):
        stats_db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        stats_db.sql("analyze table t")
        plan = "\n".join(
            r[0]
            for r in stats_db.sql(
                "explain select count(*) from t a, t b where "
                "sdo_relate(a.geom, b.geom, 'ANYINTERACT') = 'TRUE'"
            ).rows
        )
        assert "estimated candidate pairs:" in plan

    def test_no_stats_no_estimates(self, stats_db):
        stats_db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        plan = "\n".join(
            r[0]
            for r in stats_db.sql(
                "explain select id from t where sdo_relate(geom, "
                "sdo_geometry('POINT (1 1)'), 'ANYINTERACT') = 'TRUE'"
            ).rows
        )
        assert "estimated" not in plan
