"""Unit tests for logical database export/import."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.engine.dump import export_database, import_database
from repro.errors import EngineError


@pytest.fixture
def source_db(random_rects):
    db = Database()
    load_geometries(db, "shapes", random_rects(50, seed=151))
    db.create_table("notes", [("id", "NUMBER"), ("body", "VARCHAR")])
    db.table("notes").insert((1, "hello"))
    db.table("notes").insert((2, "world"))
    db.create_spatial_index("shapes_ridx", "shapes", "geom", kind="RTREE", fanout=8)
    db.create_spatial_index(
        "shapes_qidx", "shapes", "geom", kind="QUADTREE", tiling_level=5
    )
    return db


class TestExportImport:
    def test_stats(self, source_db, tmp_path):
        path = str(tmp_path / "db.dmp")
        stats = export_database(source_db, path)
        assert stats == {"tables": 2, "rows": 52, "indexes": 2}

    def test_roundtrip_rows(self, source_db, tmp_path):
        path = str(tmp_path / "db.dmp")
        export_database(source_db, path)
        restored = import_database(path)
        src_rows = sorted(row for _r, row in source_db.table("shapes").scan())
        dst_rows = sorted(row for _r, row in restored.table("shapes").scan())
        assert src_rows == dst_rows
        assert restored.table("notes").row_count == 2

    def test_indexes_rebuilt_and_answer_queries(self, source_db, tmp_path):
        path = str(tmp_path / "db.dmp")
        export_database(source_db, path)
        restored = import_database(path)
        assert restored.catalog.has_index("shapes_ridx")
        assert restored.catalog.has_index("shapes_qidx")
        window = Geometry.rectangle(10, 10, 50, 50)
        src = sorted(
            source_db.table("shapes").fetch(r)[0]
            for r in source_db.select_rowids("shapes", "geom", "SDO_RELATE", (window, "ANYINTERACT"))
        )
        dst = sorted(
            restored.table("shapes").fetch(r)[0]
            for r in restored.select_rowids("shapes", "geom", "SDO_RELATE", (window, "ANYINTERACT"))
        )
        assert src == dst

    def test_index_parameters_preserved(self, source_db, tmp_path):
        path = str(tmp_path / "db.dmp")
        export_database(source_db, path)
        restored = import_database(path)
        meta = restored.catalog.index("shapes_qidx")
        assert meta.parameters["tiling_level"] == 5
        rmeta = restored.catalog.index("shapes_ridx")
        assert rmeta.parameters["fanout"] == 8

    def test_joins_work_after_import(self, source_db, tmp_path):
        path = str(tmp_path / "db.dmp")
        export_database(source_db, path)
        restored = import_database(path)
        src = source_db.spatial_join("shapes", "geom", "shapes", "geom")
        dst = restored.spatial_join("shapes", "geom", "shapes", "geom")
        assert len(src.pairs) == len(dst.pairs)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.dmp"
        path.write_bytes(b"NOTADUMP")
        with pytest.raises(EngineError):
            import_database(str(path))

    def test_truncated_file_rejected(self, source_db, tmp_path):
        path = tmp_path / "db.dmp"
        export_database(source_db, str(path))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(EngineError):
            import_database(str(path))
