"""Negative tests: the SQL parser rejects malformed statements crisply."""

import pytest

from repro.errors import SqlSyntaxError
from repro.engine.sql.parser import parse


BAD_STATEMENTS = [
    # truncations
    "select",
    "select * from",
    "select * from t where",
    "create table",
    "create table t",
    "create table t (",
    "create table t (id)",
    "insert into t",
    "insert into t values",
    "insert into t values (1",
    "drop",
    "drop banana t",
    # malformed clauses
    "create index i on t geom",
    "create index i on t(geom) indextype spatial_index",
    "select * from t where id",
    "select * from t where id = ",
    "select * from TABLE()",
    "select * from t where (a.rowid, b.rowid) in select 1",
    # garbage
    "frobnicate the database",
    "select * from t; drop table t",  # one statement per call
]


class TestParserRejections:
    @pytest.mark.parametrize("statement", BAD_STATEMENTS)
    def test_rejected_with_syntax_error(self, statement):
        with pytest.raises(SqlSyntaxError):
            parse(statement)

    def test_error_messages_carry_positions(self):
        try:
            parse("select * from t where @")
        except SqlSyntaxError as exc:
            assert "position" in str(exc) or "at" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected SqlSyntaxError")


class TestParserTolerance:
    """Things that look unusual but are legal must still parse."""

    @pytest.mark.parametrize(
        "statement",
        [
            "SELECT * FROM t",
            "select\n  *\nfrom\n  t",
            "select * from t;",
            "select * from t -- trailing comment",
            "select a.id from t a where a.id = -5",
            "select id from t where id >= 1.5e3",
            "insert into t values (1, 'it''s quoted')",
        ],
    )
    def test_parses(self, statement):
        parse(statement)
