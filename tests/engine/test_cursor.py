"""Unit tests for cursors and cursor partitioning."""

import pytest

from repro.errors import CursorError
from repro.engine.cursor import (
    GeneratorCursor,
    ListCursor,
    PartitionMethod,
    partition_cursor,
)


def rows(n):
    return [(i, f"row{i}") for i in range(n)]


class TestCursorProtocol:
    def test_fetch_in_batches(self):
        c = ListCursor(rows(7))
        assert len(c.fetch(3)) == 3
        assert len(c.fetch(3)) == 3
        assert len(c.fetch(3)) == 1
        assert c.fetch(3) == []

    def test_iteration(self):
        assert list(ListCursor(rows(4))) == rows(4)

    def test_fetch_after_close_raises(self):
        c = ListCursor(rows(2))
        c.close()
        with pytest.raises(CursorError):
            c.fetch(1)

    def test_bad_fetch_size(self):
        with pytest.raises(CursorError):
            ListCursor(rows(2)).fetch(0)

    def test_generator_cursor_is_lazy(self):
        consumed = []

        def produce():
            for i in range(5):
                consumed.append(i)
                yield (i,)

        c = GeneratorCursor(produce())
        c.fetch(2)
        assert consumed == [0, 1]
        c.fetch(10)
        assert consumed == [0, 1, 2, 3, 4]


class TestPartitioning:
    def test_degree_one_passthrough(self):
        parts = partition_cursor(ListCursor(rows(5)), 1)
        assert len(parts) == 1
        assert list(parts[0]) == rows(5)

    def test_any_round_robin_covers_all(self):
        parts = partition_cursor(ListCursor(rows(10)), 3, PartitionMethod.ANY)
        assert len(parts) == 3
        combined = sorted(r for p in parts for r in p)
        assert combined == rows(10)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_hash_groups_equal_keys(self):
        data = [(i % 4, i) for i in range(40)]
        parts = partition_cursor(
            ListCursor(data), 3, PartitionMethod.HASH, key=lambda r: r[0]
        )
        for part in parts:
            keys = {r[0] for r in part}
            for other in parts:
                if other is part:
                    continue
                assert keys.isdisjoint({r[0] for r in other})

    def test_hash_requires_key(self):
        with pytest.raises(CursorError):
            partition_cursor(ListCursor(rows(4)), 2, PartitionMethod.HASH)

    def test_range_partitions_are_contiguous(self):
        data = [(i,) for i in (5, 3, 9, 1, 7, 2, 8, 0, 6, 4)]
        parts = [
            list(p)
            for p in partition_cursor(
                ListCursor(data), 3, PartitionMethod.RANGE, key=lambda r: r[0]
            )
        ]
        flat = [r[0] for p in parts for r in p]
        assert flat == sorted(flat)
        # each partition's max < next partition's min
        maxes = [max(r[0] for r in p) for p in parts if p]
        mins = [min(r[0] for r in p) for p in parts if p]
        for i in range(len(maxes) - 1):
            assert maxes[i] <= mins[i + 1]

    def test_more_partitions_than_rows(self):
        parts = partition_cursor(ListCursor(rows(2)), 5, PartitionMethod.ANY)
        assert len(parts) == 5
        assert sum(len(p) for p in parts) == 2

    def test_bad_degree(self):
        with pytest.raises(CursorError):
            partition_cursor(ListCursor(rows(2)), 0)
