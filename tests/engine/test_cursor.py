"""Unit tests for cursors and cursor partitioning."""

import pytest

from repro.errors import CursorError
from repro.engine.cursor import (
    GeneratorCursor,
    ListCursor,
    PartitionMethod,
    partition_cursor,
)


def rows(n):
    return [(i, f"row{i}") for i in range(n)]


class TestCursorProtocol:
    def test_fetch_in_batches(self):
        c = ListCursor(rows(7))
        assert len(c.fetch(3)) == 3
        assert len(c.fetch(3)) == 3
        assert len(c.fetch(3)) == 1
        assert c.fetch(3) == []

    def test_iteration(self):
        assert list(ListCursor(rows(4))) == rows(4)

    def test_fetch_after_close_raises(self):
        c = ListCursor(rows(2))
        c.close()
        with pytest.raises(CursorError):
            c.fetch(1)

    def test_bad_fetch_size(self):
        with pytest.raises(CursorError):
            ListCursor(rows(2)).fetch(0)

    def test_generator_cursor_is_lazy(self):
        consumed = []

        def produce():
            for i in range(5):
                consumed.append(i)
                yield (i,)

        c = GeneratorCursor(produce())
        c.fetch(2)
        assert consumed == [0, 1]
        c.fetch(10)
        assert consumed == [0, 1, 2, 3, 4]


class TestPartitioning:
    def test_degree_one_passthrough(self):
        parts = partition_cursor(ListCursor(rows(5)), 1)
        assert len(parts) == 1
        assert list(parts[0]) == rows(5)

    def test_any_round_robin_covers_all(self):
        parts = partition_cursor(ListCursor(rows(10)), 3, PartitionMethod.ANY)
        assert len(parts) == 3
        combined = sorted(r for p in parts for r in p)
        assert combined == rows(10)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_hash_groups_equal_keys(self):
        data = [(i % 4, i) for i in range(40)]
        parts = partition_cursor(
            ListCursor(data), 3, PartitionMethod.HASH, key=lambda r: r[0]
        )
        for part in parts:
            keys = {r[0] for r in part}
            for other in parts:
                if other is part:
                    continue
                assert keys.isdisjoint({r[0] for r in other})

    def test_hash_requires_key(self):
        with pytest.raises(CursorError):
            partition_cursor(ListCursor(rows(4)), 2, PartitionMethod.HASH)

    def test_range_partitions_are_contiguous(self):
        data = [(i,) for i in (5, 3, 9, 1, 7, 2, 8, 0, 6, 4)]
        parts = [
            list(p)
            for p in partition_cursor(
                ListCursor(data), 3, PartitionMethod.RANGE, key=lambda r: r[0]
            )
        ]
        flat = [r[0] for p in parts for r in p]
        assert flat == sorted(flat)
        # each partition's max < next partition's min
        maxes = [max(r[0] for r in p) for p in parts if p]
        mins = [min(r[0] for r in p) for p in parts if p]
        for i in range(len(maxes) - 1):
            assert maxes[i] <= mins[i + 1]

    def test_more_partitions_than_rows(self):
        parts = partition_cursor(ListCursor(rows(2)), 5, PartitionMethod.ANY)
        assert len(parts) == 5
        assert sum(len(p) for p in parts) == 2

    def test_bad_degree(self):
        with pytest.raises(CursorError):
            partition_cursor(ListCursor(rows(2)), 0)


class TestPartitioningEdges:
    """Edge cases the parallel table-function machinery must survive."""

    def test_degree_exceeds_row_count_leaves_empty_partitions(self):
        parts = partition_cursor(ListCursor(rows(3)), 8, PartitionMethod.ANY)
        assert len(parts) == 8
        assert [len(p) for p in parts[:3]] == [1, 1, 1]
        assert all(len(p) == 0 for p in parts[3:])
        # empty partitions still behave like cursors
        assert parts[5].fetch(4) == []

    def test_degree_one_returns_single_partition_all_methods(self):
        for method, key in (
            (PartitionMethod.ANY, None),
            (PartitionMethod.HASH, lambda r: r[0]),
            (PartitionMethod.RANGE, lambda r: r[0]),
        ):
            parts = partition_cursor(ListCursor(rows(5)), 1, method, key)
            assert len(parts) == 1
            assert list(parts[0]) == rows(5)

    def test_exhausted_cursor_partitions_to_empty(self):
        cursor = ListCursor(rows(6))
        assert len(cursor.fetch(10)) == 6  # drain it first
        parts = partition_cursor(cursor, 3, PartitionMethod.ANY)
        assert len(parts) == 3
        assert all(len(p) == 0 for p in parts)

    def test_range_degree_exceeds_rows_empty_tail_buckets(self):
        parts = partition_cursor(
            ListCursor(rows(2)), 4, PartitionMethod.RANGE, key=lambda r: r[0]
        )
        assert [len(p) for p in parts] == [1, 1, 0, 0]

    def test_run_parallel_skips_empty_partitions(self):
        from repro.engine.parallel import SimulatedExecutor
        from repro.engine.table_function import flatten_run, run_parallel
        from tests.engine.test_table_function import EchoCursorFunction

        run = run_parallel(
            EchoCursorFunction, ListCursor(rows(2)), SimulatedExecutor(6)
        )
        assert sorted(flatten_run(run)) == rows(2)

    def test_run_parallel_empty_cursor_yields_empty_run(self):
        from repro.engine.parallel import SimulatedExecutor
        from repro.engine.table_function import flatten_run, run_parallel
        from tests.engine.test_table_function import EchoCursorFunction

        run = run_parallel(
            EchoCursorFunction, ListCursor([]), SimulatedExecutor(3)
        )
        assert flatten_run(run) == []
