"""Unit tests for the cost-model mechanisms behind the paper's shapes.

These pin down the *mechanisms* (not magic constants): per-probe operator
overhead, fetch locality through the domain index's geometry cache, the
node-cache miss penalty for repeatedly probed large trees, and the fixed
per-statement overhead that makes tiny joins strategy-insensitive.
"""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.engine.parallel import WorkerContext


@pytest.fixture
def probe_db(random_rects):
    db = Database()
    load_geometries(db, "t", random_rects(60, seed=91))
    db.create_spatial_index("t_idx", "t", "geom", kind="RTREE", fanout=8)
    return db


class TestIndexProbeCharge:
    def test_each_fetch_charges_one_probe(self, probe_db):
        index = probe_db.spatial_index("t_idx")
        ctx = WorkerContext(0)
        window = Geometry.rectangle(0, 0, 50, 50)
        for _ in range(5):
            list(index.fetch("SDO_RELATE", (window, "ANYINTERACT"), ctx))
        assert ctx.meter.counts["index_probe"] == 5

    def test_quadtree_fetch_also_charges(self, probe_db):
        probe_db.create_spatial_index(
            "t_q", "t", "geom", kind="QUADTREE", tiling_level=5
        )
        index = probe_db.spatial_index("t_q")
        ctx = WorkerContext(0)
        list(index.fetch("SDO_RELATE", (Geometry.rectangle(0, 0, 50, 50), "ANYINTERACT"), ctx))
        assert ctx.meter.counts["index_probe"] == 1


class TestGeometryCacheInDomainIndex:
    def test_repeated_fetch_hits_cache(self, probe_db):
        index = probe_db.spatial_index("t_idx")
        rid = next(iter(probe_db.table("t").heap.rowids()))
        ctx1, ctx2 = WorkerContext(0), WorkerContext(1)
        index.geometry_of(rid, ctx1)  # miss
        index.geometry_of(rid, ctx2)  # hit
        assert "geom_fetch_base" in ctx1.meter.counts
        assert "geom_fetch_base" not in ctx2.meter.counts
        assert ctx2.meter.counts["buffer_get_hit"] == 1

    def test_dml_invalidates_cache(self, probe_db):
        index = probe_db.spatial_index("t_idx")
        table = probe_db.table("t")
        rid = table.insert((777, Geometry.rectangle(200, 200, 201, 201)))
        index.geometry_of(rid)  # warm the cache
        table.update(rid, (777, Geometry.rectangle(300, 300, 301, 301)))
        geom = index.geometry_of(rid)
        assert geom.mbr.min_x == 300
        table.delete(rid)

    def test_capacity_bounded(self, probe_db):
        index = probe_db.spatial_index("t_idx")
        index.GEOMETRY_CACHE_ROWS = 8  # shrink for the test
        rids = list(probe_db.table("t").heap.rowids())[:20]
        for rid in rids:
            index.geometry_of(rid)
        assert len(index._geom_cache) <= 8


class TestStatementOverhead:
    def test_tiny_join_strategies_near_parity(self, random_rects):
        """The Table 2 25-row behaviour: fixed statement cost dominates."""
        db = Database()
        load_geometries(db, "t", random_rects(10, seed=92))
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        nested = db.nested_loop_join("t", "geom", "t", "geom")
        index = db.spatial_join("t", "geom", "t", "geom")
        ratio = nested.makespan_seconds / index.makespan_seconds
        assert ratio < 1.3

    def test_overhead_constant_across_degrees(self, random_rects):
        db = Database()
        load_geometries(db, "t", random_rects(100, seed=93))
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        s = db.spatial_join("t", "geom", "t", "geom")
        p = db.spatial_join("t", "geom", "t", "geom", parallel=2)
        assert s.statement_overhead_seconds == p.statement_overhead_seconds > 0


class TestNodeCacheMisses:
    def test_small_tree_never_penalised(self, probe_db):
        index = probe_db.spatial_index("t_idx")
        ctx = WorkerContext(0)
        list(index.fetch("SDO_RELATE", (Geometry.rectangle(0, 0, 100, 100), "ANYINTERACT"), ctx))
        assert "physical_read" not in ctx.meter.counts

    def test_large_tree_probes_pay_physical_reads(self, random_rects):
        db = Database()
        load_geometries(db, "t", random_rects(600, seed=94))
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE", fanout=4)
        index = db.spatial_index("t_idx")
        index.NODE_CACHE = 16  # pretend the cache is tiny
        index._node_count_cache = None
        ctx = WorkerContext(0)
        list(index.fetch("SDO_RELATE", (Geometry.rectangle(0, 0, 100, 100), "ANYINTERACT"), ctx))
        assert ctx.meter.counts.get("physical_read", 0) > 0
