"""Unit tests for executors and simulated-time accounting."""

import pytest

from repro.errors import EngineError
from repro.engine.cost import CostModel, WorkMeter
from repro.engine.parallel import (
    ParallelRun,
    SerialExecutor,
    SimulatedExecutor,
    ThreadExecutor,
    WorkerContext,
    make_executor,
)


def charge_task(kind, amount):
    def task(ctx):
        ctx.charge(kind, amount)
        return amount

    return task


class TestWorkMeter:
    def test_add_and_seconds(self):
        m = WorkMeter()
        m.add("mbr_test", 1000)
        model = CostModel()
        assert m.seconds(model) == pytest.approx(1000 * model.mbr_test)

    def test_merge(self):
        a, b = WorkMeter(), WorkMeter()
        a.add("mbr_test", 5)
        b.add("mbr_test", 3)
        b.add("result_row", 1)
        a.merge(b)
        assert a.counts["mbr_test"] == 8
        assert a.counts["result_row"] == 1

    def test_unknown_kind_rejected_at_pricing(self):
        m = WorkMeter()
        m.add("not_a_kind")
        with pytest.raises(EngineError):
            m.seconds()

    def test_breakdown_sorted_by_cost(self):
        m = WorkMeter()
        m.add("mbr_test", 1)
        m.add("physical_read", 1)
        top = next(iter(m.breakdown()))
        assert top[0] == "physical_read"

    def test_scaled_model_preserves_ratios(self):
        model = CostModel()
        scaled = model.scaled(10.0)
        assert scaled.mbr_test / scaled.physical_read == pytest.approx(
            model.mbr_test / model.physical_read
        )


class TestSerialExecutor:
    def test_single_meter_no_startup(self):
        ex = SerialExecutor()
        run = ex.run([charge_task("mbr_test", 100), charge_task("mbr_test", 50)])
        assert run.results == [100, 50]
        assert len(run.worker_meters) == 1
        assert run.makespan_seconds == pytest.approx(run.total_work_seconds)


class TestSimulatedExecutor:
    def test_results_in_submission_order(self):
        ex = SimulatedExecutor(3)
        run = ex.run([charge_task("mbr_test", n) for n in (5, 1, 9, 2)])
        assert run.results == [5, 1, 9, 2]

    def test_greedy_balancing(self):
        # 4 equal tasks on 2 workers -> 2 each.
        ex = SimulatedExecutor(2)
        run = ex.run([charge_task("mbr_test", 100)] * 4)
        times = run.worker_seconds
        assert times[0] == pytest.approx(times[1])
        assert run.imbalance == pytest.approx(1.0)

    def test_makespan_less_than_total_for_parallel_work(self):
        ex = SimulatedExecutor(4, CostModel(worker_startup=0.0))
        run = ex.run([charge_task("physical_read", 1000)] * 8)
        assert run.makespan_seconds == pytest.approx(run.total_work_seconds / 4)

    def test_startup_cost_charged_once_per_worker(self):
        model = CostModel(worker_startup=1.0)
        ex = SimulatedExecutor(2, model)
        run = ex.run([charge_task("mbr_test", 1)])
        assert run.makespan_seconds >= 2.0  # 2 workers' startup

    def test_skewed_tasks_dominate_makespan(self):
        ex = SimulatedExecutor(2, CostModel(worker_startup=0.0))
        run = ex.run(
            [charge_task("physical_read", 1000)] + [charge_task("physical_read", 1)] * 5
        )
        assert run.makespan_seconds == pytest.approx(
            1000 * CostModel().physical_read, rel=0.01
        )

    def test_degree_validation(self):
        with pytest.raises(EngineError):
            SimulatedExecutor(0)


class TestThreadExecutor:
    def test_results_and_meters(self):
        ex = ThreadExecutor(4)
        run = ex.run([charge_task("mbr_test", n) for n in range(10)])
        assert run.results == list(range(10))
        total = sum(m.counts.get("mbr_test", 0) for m in run.worker_meters)
        assert total == sum(range(10))
        assert run.wall_seconds > 0

    def test_exceptions_propagate(self):
        def boom(ctx):
            raise ValueError("task failed")

        ex = ThreadExecutor(2)
        with pytest.raises(ValueError, match="task failed"):
            ex.run([charge_task("mbr_test", 1), boom])

    def test_more_workers_than_tasks(self):
        ex = ThreadExecutor(8)
        run = ex.run([charge_task("mbr_test", 1)])
        assert run.results == [1]


class TestMakeExecutor:
    def test_degree_one_is_serial(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_default_parallel_is_simulated(self):
        assert isinstance(make_executor(4), SimulatedExecutor)

    def test_threads_requested(self):
        assert isinstance(make_executor(4, use_threads=True), ThreadExecutor)
