"""Structural checks that the generators scale to the paper's full sizes.

We cannot afford full-size joins in unit tests, but generation itself must
work at paper scale and keep the structural properties the experiments
rely on.  These tests are the guardrail for ``REPRO_BENCH_PROFILE=paper``.
"""

import pytest

from repro.datasets import blockgroups, counties, stars


class TestPaperScaleGeneration:
    def test_full_county_count(self):
        layer = counties(3230, seed=42)
        assert len(layer) == 3230
        # contiguity: total area tiles the CONUS extent
        total = sum(g.area for g in layer)
        assert total == pytest.approx(57.5 * 25.0, rel=0.02)

    def test_star_subset_prefix_property(self):
        """Table 2 subsets are prefixes; a prefix must equal regenerating
        the smaller size with the same seed (same cluster stream)."""
        big = stars(5000, seed=1234)
        small = stars(1200, seed=1234)
        assert big[:1200] == small

    def test_blockgroups_tail_at_scale(self):
        layer = blockgroups(5000, seed=7)
        counts = sorted(g.num_vertices for g in layer)
        assert counts[-1] >= 300  # the heavy tail is present
        assert counts[len(counts) // 2] <= 40

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_tiny_sizes_still_work(self, n):
        assert len(counties(n, seed=1)) == n
        assert len(stars(n, seed=1)) == n
        assert len(blockgroups(n, seed=1)) == n
