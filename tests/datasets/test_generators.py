"""Unit tests for the synthetic dataset generators."""

import math

import pytest

from repro.datasets import (
    blockgroups,
    counties,
    load_geometries,
    radial_polygon,
    regular_polygon,
    stars,
)
from repro.errors import DatasetError
from repro.geometry.predicates import intersects, touches
from repro.geometry.validation import is_valid


class TestCounties:
    def test_count_and_determinism(self):
        a = counties(100, seed=3)
        b = counties(100, seed=3)
        assert len(a) == 100
        assert a == b

    def test_different_seeds_differ(self):
        assert counties(50, seed=1) != counties(50, seed=2)

    def test_all_valid(self):
        for geom in counties(150, seed=4):
            assert is_valid(geom)

    def test_tessellation_is_contiguous(self):
        """Adjacent counties share boundary: intersect without overlap."""
        polys = counties(60, seed=5)
        touching = 0
        for i, a in enumerate(polys):
            for b in polys[i + 1 :]:
                if a.mbr.intersects(b.mbr) and intersects(a, b):
                    touching += 1
        # grid tessellation: roughly 2 shared edges per cell
        assert touching >= len(polys)

    def test_counties_cover_extent_area(self):
        polys = counties(100, seed=6, extent=(0, 0, 10, 10))
        total = sum(p.area for p in polys)
        # cells tile the extent: total area equals extent area
        assert total == pytest.approx(100.0, rel=0.05)

    def test_refinement_adds_vertices(self):
        coarse = counties(20, seed=7, refine=0)
        fine = counties(20, seed=7, refine=3)
        assert fine[0].num_vertices > coarse[0].num_vertices

    def test_bad_count(self):
        with pytest.raises(DatasetError):
            counties(0)


class TestStars:
    def test_count_and_determinism(self):
        assert len(stars(500, seed=9)) == 500
        assert stars(200, seed=9) == stars(200, seed=9)

    def test_stars_are_small_valid_polygons(self):
        for star in stars(100, seed=10):
            assert is_valid(star)
            assert star.mbr.width < 5.0

    def test_clustering_produces_overlaps(self):
        """Self-join selectivity must be non-trivial (Table 2 depends on
        result sets growing with dataset size)."""
        polys = stars(800, seed=11)
        overlaps = 0
        for i, a in enumerate(polys):
            for b in polys[max(0, i - 60) : i]:
                if a.mbr.intersects(b.mbr) and intersects(a, b):
                    overlaps += 1
        assert overlaps > 20

    def test_prefixes_remain_clustered(self):
        full = stars(1000, seed=12)
        prefix = full[:100]
        # clustered prefix: mean nearest-neighbour gap far below uniform
        xs = sorted(g.mbr.center[0] for g in prefix)
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert sorted(gaps)[len(gaps) // 2] < 1.0  # median gap tiny vs 360 extent


class TestBlockgroups:
    def test_count_and_determinism(self):
        assert len(blockgroups(300, seed=13)) == 300
        assert blockgroups(100, seed=13) == blockgroups(100, seed=13)

    def test_heavy_tailed_vertex_counts(self):
        polys = blockgroups(600, seed=14)
        counts = sorted(p.num_vertices for p in polys)
        p50 = counts[len(counts) // 2]
        p99 = counts[int(len(counts) * 0.99)]
        assert p99 > 4 * p50  # heavy tail

    def test_all_valid_sample(self):
        for geom in blockgroups(120, seed=15):
            assert is_valid(geom)

    def test_complexity_correlates_with_size(self):
        polys = blockgroups(400, seed=16)
        small = [p for p in polys if p.num_vertices < 12]
        big = [p for p in polys if p.num_vertices > 100]
        if small and big:
            avg_small = sum(p.area for p in small) / len(small)
            avg_big = sum(p.area for p in big) / len(big)
            assert avg_big > avg_small


class TestHelpers:
    def test_regular_polygon(self):
        hexagon = regular_polygon(0, 0, 1.0, 6)
        assert hexagon.num_vertices == 6
        assert hexagon.area == pytest.approx(3 * math.sqrt(3) / 2, rel=1e-6)

    def test_radial_polygon_star_convex(self):
        import random

        poly = radial_polygon(random.Random(1), 5, 5, 2.0, 50)
        assert is_valid(poly)
        assert poly.contains_point(5, 5)  # centre is inside (star-convex)

    def test_bad_parameters(self):
        import random

        with pytest.raises(DatasetError):
            regular_polygon(0, 0, 1.0, 2)
        with pytest.raises(DatasetError):
            radial_polygon(random.Random(1), 0, 0, 1.0, 2)


class TestLoader:
    def test_load_geometries(self, random_rects):
        from repro import Database

        db = Database()
        geoms = random_rects(25, seed=17)
        table = load_geometries(db, "loaded", geoms)
        assert table.row_count == 25
        rows = [row for _rid, row in table.scan()]
        assert [r[0] for r in rows] == list(range(25))
        assert rows[0][1] == geoms[0]
