"""Disk cache for generated datasets (keyed by kind, n, seed, params)."""

import pickle

import pytest

from repro.datasets import cache_path, cached_dataset, stars


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DATASET_CACHE", str(tmp_path))
    return tmp_path


def counting_builder():
    calls = {"n": 0}

    def build(n, seed=0):
        calls["n"] += 1
        return list(range(n + seed))

    return build, calls


class TestCachedDataset:
    def test_second_call_hits_disk(self):
        build, calls = counting_builder()
        first = cached_dataset("toy", build, 10, 3)
        second = cached_dataset("toy", build, 10, 3)
        assert first == second == list(range(13))
        assert calls["n"] == 1

    def test_key_includes_n_seed_and_params(self):
        assert cache_path("toy", 10, 3) != cache_path("toy", 11, 3)
        assert cache_path("toy", 10, 3) != cache_path("toy", 10, 4)
        assert cache_path("toy", 10, 3) != cache_path("other", 10, 3)
        assert cache_path("toy", 10, 3, refine=6) != cache_path("toy", 10, 3)

    def test_regen_overwrites(self):
        build, calls = counting_builder()
        cached_dataset("toy", build, 5, 0)
        cached_dataset("toy", build, 5, 0, regen=True)
        assert calls["n"] == 2

    def test_corrupt_entry_regenerates(self):
        build, calls = counting_builder()
        cached_dataset("toy", build, 5, 0)
        cache_path("toy", 5, 0).write_bytes(b"not a pickle")
        assert cached_dataset("toy", build, 5, 0) == list(range(5))
        assert calls["n"] == 2
        # and the repaired entry is a valid pickle again
        with cache_path("toy", 5, 0).open("rb") as fh:
            assert pickle.load(fh) == list(range(5))

    def test_real_geometries_roundtrip(self):
        first = cached_dataset("stars", stars, 50, 7)
        second = cached_dataset("stars", stars, 50, 7)
        assert len(first) == len(second) == 50
        assert [g.mbr for g in first] == [g.mbr for g in second]
