"""Edge-case tests for the heap: boundary sizes, churn, compaction."""

import random

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.pager import MemoryPager


def make_heap(page_size=256, capacity=16):
    return HeapFile(BufferPool(MemoryPager(page_size=page_size), capacity=capacity))


class TestBoundarySizes:
    def test_record_exactly_at_inline_limit(self):
        heap = make_heap(page_size=256)
        limit = heap._max_inline()
        record = b"x" * limit
        rid = heap.insert(record)
        assert heap.read(rid) == record
        # one byte more must spill to overflow and still round-trip
        rid2 = heap.insert(b"y" * (limit + 1))
        assert heap.read(rid2) == b"y" * (limit + 1)

    def test_single_byte_records(self):
        heap = make_heap(page_size=128)
        rids = [heap.insert(bytes([i])) for i in range(200)]
        for i, rid in enumerate(rids):
            assert heap.read(rid) == bytes([i])

    def test_overflow_chunk_boundary(self):
        heap = make_heap(page_size=128)
        chunk_cap = 128 - 6  # page minus overflow header
        for n in (chunk_cap - 1, chunk_cap, chunk_cap + 1, chunk_cap * 3):
            rid = heap.insert(b"z" * n)
            assert heap.read(rid) == b"z" * n


class TestChurn:
    def test_insert_delete_reinsert_cycles(self):
        heap = make_heap(page_size=256, capacity=8)
        rng = random.Random(7)
        live = {}
        for step in range(800):
            if live and rng.random() < 0.45:
                rid = rng.choice(list(live))
                assert heap.read(rid) == live.pop(rid)
                heap.delete(rid)
            else:
                record = bytes([rng.randrange(256)]) * rng.randrange(1, 60)
                rid = heap.insert(record)
                assert rid not in live
                live[rid] = record
        assert heap.row_count == len(live)
        scanned = dict(heap.scan())
        assert scanned == live

    def test_update_churn_keeps_rowids_stable(self):
        heap = make_heap(page_size=256)
        rng = random.Random(8)
        rids = {heap.insert(b"init"): b"init" for _ in range(20)}
        for _ in range(300):
            rid = rng.choice(list(rids))
            record = bytes([rng.randrange(256)]) * rng.randrange(1, 400)
            heap.update(rid, record)
            rids[rid] = record
        for rid, expected in rids.items():
            assert heap.read(rid) == expected

    def test_page_count_stays_bounded_under_balanced_churn(self):
        heap = make_heap(page_size=256)
        rids = [heap.insert(b"a" * 40) for _ in range(50)]
        baseline = heap.page_count
        for cycle in range(10):
            for rid in rids:
                heap.delete(rid)
            rids = [heap.insert(b"b" * 40) for _ in range(50)]
        # deleted space must be reused, not leaked
        assert heap.page_count <= baseline * 2
