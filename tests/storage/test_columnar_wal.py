"""Columnar durability: segments ride the WAL, survive crashes, and
round-trip overflow-chain geometries through compaction.

The compact step writes chunk pages through the buffer pool, so WAL
commit + checkpoint must make the whole segment (directory and pages)
recoverable; after reopen queries must keep answering from the columnar
path, not silently fall back to the heap.
"""

import os

import pytest

from repro.engine.database import Database, encode_row
from repro.errors import FaultError
from repro.geometry.geometry import Geometry
from repro.storage.fault import FaultPlan

PAGE = 512
N = 30


def square(i):
    x, y = float(i % 6) * 2.0, float(i // 6) * 2.0
    return Geometry.polygon([(x, y), (x + 1, y), (x + 1, y + 1), (x, y + 1)])


def big_ring(i, verts=120):
    """A polygon fat enough that its heap record spills into an overflow
    chain on 512-byte pages (~2 KB of ordinates)."""
    import math

    cx, cy = float(i) * 40.0, 0.0
    pts = [
        (
            cx + 10.0 * math.cos(2.0 * math.pi * k / verts),
            cy + 10.0 * math.sin(2.0 * math.pi * k / verts),
        )
        for k in range(verts)
    ]
    return Geometry.polygon(pts)


def populate(db, rows=N):
    t = db.create_table("shapes", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")])
    t.insert_many([(i, square(i)) for i in range(rows)])
    return t


def probe(db, i):
    return list(db.select_rowids("shapes", "geom", "SDO_FILTER", [square(i)]))


@pytest.mark.parametrize("durability", ["none", "wal"])
class TestSegmentReopen:
    def test_segment_survives_reopen(self, tmp_path, durability):
        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability=durability, page_size=PAGE)
        populate(db)
        db.create_spatial_index("s_idx", "shapes", "geom", kind="RTREE", fanout=6)
        db.compact_table("shapes")  # checkpoints the file-backed store
        before = {i: len(probe(db, i)) for i in range(N)}
        stats = db.storage_stats()
        assert stats["columnar_segments"] == 1
        db.close()

        db = Database.open(path, durability=durability, page_size=PAGE)
        try:
            seg = db.table("shapes").columnar
            assert seg is not None and seg.row_count == N
            assert seg.journal_empty()
            assert db.storage_stats()["columnar_segments"] == 1
            for i in range(N):
                assert len(probe(db, i)) == before[i] > 0
        finally:
            db.close()

    def test_journal_survives_reopen(self, tmp_path, durability):
        # DML after compaction journals rows; a checkpointed snapshot must
        # carry the stale/dead/fresh sets so the reopened segment keeps
        # excluding them instead of serving frozen pre-update images.
        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability=durability, page_size=PAGE)
        t = populate(db)
        db.create_spatial_index("s_idx", "shapes", "geom", kind="RTREE", fanout=6)
        db.compact_table("shapes")
        rid0 = next(iter(t.scan()))[0]
        t.update(rid0, (0, square(N + 5)))  # moved away from square(0)
        t.insert((N, square(N)))
        rid1 = [rid for rid, row in t.scan() if row[0] == 1][0]
        t.delete(rid1)
        db.checkpoint()
        expect = {i: len(probe(db, i)) for i in range(N + 6)}
        db.close()

        db = Database.open(path, durability=durability, page_size=PAGE)
        try:
            seg = db.table("shapes").columnar
            assert seg is not None and seg.journal_size() == 3
            for i in range(N + 6):
                assert len(probe(db, i)) == expect[i]
            # Re-compaction folds the journal back in.
            db.compact_table("shapes")
            seg = db.table("shapes").columnar
            assert seg.journal_empty() and seg.row_count == N
        finally:
            db.close()


class TestWalRecovery:
    def test_segment_recovered_from_wal_replay(self, tmp_path):
        # Commit the snapshot but skip checkpoint write-back: the chunk
        # pages exist only in the WAL and recovery must replay them.
        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability="wal", page_size=PAGE)
        populate(db, rows=12)
        db.create_spatial_index("s_idx", "shapes", "geom", kind="RTREE", fanout=6)
        db.compact_table("shapes")
        db._write_meta_chain(encode_row(db._build_snapshot()))
        db.pool.flush()
        db.pager.commit()
        db.pager.wal.close()
        db.pager.inner.close()

        db = Database.open(path, durability="wal", page_size=PAGE)
        try:
            assert db.storage_stats()["recovered_pages"] > 0
            seg = db.table("shapes").columnar
            assert seg is not None and seg.row_count == 12
            # chunk pages themselves must be readable, not just the directory
            assert [rid for rid, _row in seg.chunk_rows()] == [
                rid for rid, _data in db.table("shapes").heap.scan()
            ]
        finally:
            db.close()

    def test_chaos_seed_crash_during_compact(self, tmp_path, capsys):
        # A seeded random fault during/after compaction must never leave a
        # store that fails to reopen or whose segment disagrees with the
        # heap.  Reproduce any failure with the printed CHAOS_SEED.
        seed = int(os.environ.get("CHAOS_SEED", "2027"))
        print(f"CHAOS_SEED={seed}")
        plan = FaultPlan.random(seed)
        path = str(tmp_path / "db.pages")
        try:
            db = Database.open(
                path, durability="wal", page_size=PAGE, fault_plan=plan
            )
            populate(db, rows=12)
            db.create_spatial_index(
                "s_idx", "shapes", "geom", kind="RTREE", fanout=6
            )
            db.compact_table("shapes")
            db.close()
        except FaultError:
            pass

        db = Database.open(path, durability="wal", page_size=PAGE)
        try:
            if not db.catalog.has_table("shapes"):
                return  # crashed before the first checkpoint: empty store is fine
            t = db.table("shapes")
            if t.columnar is not None:
                # merged columnar scan must agree with the heap, rowid for
                # rowid — the heap stays the authority after any crash
                merged = [rid for rid, _row in t.scan()]
                assert merged == [rid for rid, _d in t.heap.scan()]
        finally:
            db.close()


class TestOverflowChains:
    def test_overflow_geometries_survive_compact_round_trip(self, tmp_path):
        # big_ring records exceed a 512-byte page, so the heap stores them
        # in overflow chains; compaction must decode the full chain and the
        # columnar copy must be bit-identical, including after reopen.
        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability="wal", page_size=PAGE)
        t = db.create_table(
            "rings", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")]
        )
        rows = [(i, big_ring(i)) for i in range(6)] + [(6, None)]
        t.insert_many(rows)
        heap_before = [row for _rid, row in t.scan()]
        db.compact_table("rings", chunk_rows=4)
        seg = db.table("rings").columnar
        assert seg is not None
        # a single big_ring record is larger than one page: its chunk must
        # span several pages
        assert seg.page_count > len(seg.chunks)
        after = [row for _rid, row in t.scan()]
        assert after == heap_before
        for (_id, g0), (_id2, g1) in zip(heap_before, after):
            if g0 is None:
                assert g1 is None
                continue
            assert list(g0.vertices()) == list(g1.vertices())
        db.checkpoint()
        db.close()

        db = Database.open(path, durability="wal", page_size=PAGE)
        try:
            reread = [row for _rid, row in db.table("rings").scan()]
            assert reread == heap_before
        finally:
            db.close()

    def test_overflow_update_journals_then_refolds(self, tmp_path):
        db = Database.open(
            str(tmp_path / "db.pages"), durability="wal", page_size=PAGE
        )
        t = db.create_table(
            "rings", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")]
        )
        t.insert_many([(i, big_ring(i)) for i in range(4)])
        db.compact_table("rings", chunk_rows=2)
        rid = next(iter(t.scan()))[0]
        t.update(rid, (0, big_ring(9, verts=200)))  # grow the overflow chain
        seg = db.table("rings").columnar
        assert rid in seg.stale
        assert t.fetch_geometry(rid, 1).num_vertices == 200
        db.compact_table("rings", chunk_rows=2)
        seg = db.table("rings").columnar
        assert seg.journal_empty()
        assert seg.geometry_at(rid).num_vertices == 200
        db.close()
