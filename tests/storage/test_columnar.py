"""Unit tests for columnar geometry storage (chunks, zone maps, journal)."""

import pickle

import pytest

from repro.engine.cost import WorkMeter
from repro.errors import StorageError
from repro.geometry.geometry import Geometry
from repro.storage.buffer import BufferPool
from repro.storage.codec import decode_row, encode_row
from repro.storage.columnar import (
    MISSING,
    ColumnarChunk,
    build_segment,
    encode_chunk,
    segment_from_snapshot,
    segment_snapshot,
)
from repro.storage.heap import HeapFile, RowId
from repro.storage.pager import MemoryPager

np = pytest.importorskip("numpy", reason="coords_view aliasing tests need numpy")


class Ctx:
    """Minimal charge-recording stand-in for a WorkerContext."""

    def __init__(self):
        self.meter = WorkMeter()

    def charge(self, kind, n=1.0):
        self.meter.add(kind, n)


def sample_geometries():
    return [
        Geometry.polygon(
            [(0, 0), (4, 0), (4, 3), (0, 3)],
            holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]],
        ),
        Geometry.point(5.5, -2.25),
        Geometry.linestring([(0, 0), (1, 1), (2, 0.5)]),
        None,
        Geometry.multipolygon(
            [
                ([(10, 10), (12, 10), (12, 12), (10, 12)], []),
                (
                    [(20, 20), (21, 20), (21, 21), (20, 21)],
                    [[(20.2, 20.2), (20.4, 20.2), (20.4, 20.4), (20.2, 20.4)]],
                ),
            ]
        ),
        Geometry.multipoint([(1, 2), (3, 4)]),
        Geometry.multilinestring([[(0, 0), (1, 0)], [(5, 5), (6, 6), (7, 5)]]),
    ]


def make_chunk():
    geoms = sample_geometries()
    rows = [(i, f"name{i}", g, float(i) * 1.5) for i, g in enumerate(geoms)]
    rowids = [RowId(100 + i // 3, i % 3) for i in range(len(rows))]
    blob, zone = encode_chunk(rows, rowids, geom_col=2)
    return rows, rowids, geoms, blob, zone


class TestChunkRoundTrip:
    def test_all_geometry_types_and_null(self):
        rows, rowids, geoms, blob, _zone = make_chunk()
        chunk = ColumnarChunk.decode(blob)
        assert chunk.row_count == len(rows)
        for i, row in enumerate(rows):
            assert chunk.row(i) == row
            assert chunk.rowids[i] == rowids[i]
            g = chunk.geometry(i)
            if geoms[i] is None:
                assert g is None
            else:
                assert g == geoms[i]
                assert g.mbr == geoms[i].mbr
                assert g.num_vertices == geoms[i].num_vertices

    def test_vertices_bit_identical_to_heap_codec(self):
        rows, _rowids, _geoms, blob, _zone = make_chunk()
        chunk = ColumnarChunk.decode(blob)
        for i, row in enumerate(rows):
            heap_row = decode_row(encode_row(row))
            assert heap_row == chunk.row(i)
            if row[2] is not None:
                assert tuple(heap_row[2].vertices()) == tuple(
                    chunk.geometry(i).vertices()
                )

    def test_zone_is_union_of_row_mbrs(self):
        _rows, _rowids, geoms, _blob, zone = make_chunk()
        present = [g for g in geoms if g is not None]
        assert zone == (
            min(g.mbr.min_x for g in present),
            min(g.mbr.min_y for g in present),
            max(g.mbr.max_x for g in present),
            max(g.mbr.max_y for g in present),
        )

    def test_all_null_chunk_has_no_zone(self):
        rows = [(1, None), (2, None)]
        rowids = [RowId(1, 0), RowId(1, 1)]
        blob, zone = encode_chunk(rows, rowids, geom_col=1)
        assert zone is None
        chunk = ColumnarChunk.decode(blob)
        assert chunk.geometry(0) is None and chunk.row(1) == rows[1]
        assert chunk.plane_rows == []

    def test_bad_magic_rejected(self):
        _rows, _rowids, _geoms, blob, _zone = make_chunk()
        with pytest.raises(StorageError):
            ColumnarChunk.decode(b"XXXX" + blob[4:])

    def test_collection_rejected(self):
        coll = Geometry.collection(
            [Geometry.point(0, 0), Geometry.linestring([(0, 0), (1, 1)])]
        )
        with pytest.raises(StorageError):
            encode_chunk([(1, coll)], [RowId(1, 0)], geom_col=1)

    def test_non_geometry_column_rejected(self):
        with pytest.raises(StorageError):
            encode_chunk([(1, "not a geometry")], [RowId(1, 0)], geom_col=1)


class TestZeroDecodeViews:
    def test_coords_view_aliases_chunk_buffer(self):
        _rows, _rowids, geoms, blob, _zone = make_chunk()
        chunk = ColumnarChunk.decode(blob)
        full = np.frombuffer(chunk.xy, dtype=np.float64)
        for i, g in enumerate(geoms):
            if g is None:
                continue
            view = chunk.coords_view(i)
            assert view.shape == (g.num_vertices, 2)
            assert np.shares_memory(view, full)

    def test_rebuilt_geometry_coords_array_preseeded(self):
        # The seeded cache must equal what lazy computation would build,
        # and must alias the chunk buffer (no per-row decode).
        _rows, _rowids, geoms, blob, _zone = make_chunk()
        chunk = ColumnarChunk.decode(blob)
        full = np.frombuffer(chunk.xy, dtype=np.float64)
        for i, g in enumerate(geoms):
            if g is None:
                continue
            rebuilt = chunk.geometry(i)
            seeded = rebuilt._coords_array
            assert seeded is not None
            assert np.shares_memory(seeded, full)
            assert np.array_equal(rebuilt.coords_array(), g.coords_array())

    def test_ring_views_preseeded_for_polygons(self):
        _rows, _rowids, geoms, blob, _zone = make_chunk()
        chunk = ColumnarChunk.decode(blob)
        poly = chunk.geometry(0)
        full = np.frombuffer(chunk.xy, dtype=np.float64)
        assert poly.exterior._coords_array is not None
        assert np.shares_memory(poly.exterior._coords_array, full)
        for hole in poly.holes:
            assert hole._coords_array is not None
            assert np.shares_memory(hole._coords_array, full)


def build_grid_segment(n=100, chunk_rows=16, page_size=512):
    pager = MemoryPager(page_size=page_size)
    pool = BufferPool(pager, capacity=256)
    heap = HeapFile(pool)
    rowids, geoms = [], []
    for i in range(n):
        x, y = float(i % 10) * 10, float(i // 10) * 10
        g = Geometry.rectangle(x, y, x + 5, y + 5)
        geoms.append(g)
        rowids.append(heap.insert(encode_row((i, g))))
    seg = build_segment(heap, pool, geom_col=1, chunk_rows=chunk_rows)
    return pool, heap, seg, rowids, geoms


class TestSegment:
    def test_build_counts(self):
        _pool, _heap, seg, _rowids, _geoms = build_grid_segment()
        assert seg.row_count == 100
        assert len(seg.chunks) == 7  # ceil(100 / 16)
        assert seg.page_count > 0 and seg.byte_size > 0
        assert seg.journal_empty()

    def test_geometry_at_and_charges(self):
        _pool, _heap, seg, rowids, geoms = build_grid_segment()
        ctx = Ctx()
        g = seg.geometry_at(rowids[0], ctx)
        assert g == geoms[0]
        counts = ctx.meter.counts
        # first access loads the chunk (physical_read per page) then views
        assert counts["physical_read"] == len(seg.chunks[0].pages)
        assert counts["chunk_row_view"] == 1
        ctx2 = Ctx()
        seg.geometry_at(rowids[1], ctx2)  # same chunk: no load
        assert "physical_read" not in ctx2.meter.counts
        assert ctx2.meter.counts["chunk_row_view"] == 1

    def test_chunk_loads_use_prefetch(self):
        pool, _heap, seg, rowids, _geoms = build_grid_segment()
        pool.invalidate()
        pool.stats.reset()
        seg.geometry_at(rowids[0])
        assert pool.stats.prefetches == len(seg.chunks[0].pages)
        assert pool.stats.prefetch_hits == len(seg.chunks[0].pages)

    def test_zone_prune_skips_whole_chunks(self):
        _pool, _heap, seg, _rowids, _geoms = build_grid_segment()
        ctx = Ctx()
        hits = list(seg.window_candidates((1000.0, 1000.0, 1001.0, 1001.0), ctx=ctx))
        assert hits == []
        assert seg.zone_prunes == len(seg.chunks)
        assert ctx.meter.counts == {"zone_skip": float(len(seg.chunks))}

    def test_window_candidates_match_brute_force(self):
        _pool, _heap, seg, rowids, geoms = build_grid_segment()
        box, d = (0.0, 0.0, 12.0, 12.0), 0.0
        expect = [
            (rid, g)
            for rid, g in zip(rowids, geoms)
            if not (
                box[0] - g.mbr.max_x > d
                or g.mbr.min_x - box[2] > d
                or box[1] - g.mbr.max_y > d
                or g.mbr.min_y - box[3] > d
            )
        ]
        got = list(seg.window_candidates(box, d))
        assert [r for r, _ in got] == [r for r, _ in expect]
        assert all(a == b for (_, a), (_, b) in zip(got, expect))

    def test_all_zones_miss(self):
        _pool, _heap, seg, _rowids, _geoms = build_grid_segment()
        ctx = Ctx()
        assert seg.all_zones_miss((5000.0, 5000.0, 5001.0, 5001.0), ctx=ctx)
        assert ctx.meter.counts["zone_skip"] == len(seg.chunks)
        assert not seg.all_zones_miss((0.0, 0.0, 1.0, 1.0))
        # within-distance can reach a zone the plain window misses
        assert not seg.all_zones_miss((-30.0, -30.0, -29.0, -29.0), distance=40.0)

    def test_journal_exclusions(self):
        _pool, _heap, seg, rowids, _geoms = build_grid_segment()
        seg.note_update(rowids[3])
        seg.note_delete(rowids[4])
        fresh = RowId(10_000, 0)
        seg.note_insert(fresh)
        assert seg.geometry_at(rowids[3]) is MISSING
        assert seg.geometry_at(rowids[4]) is MISSING
        assert seg.geometry_at(fresh) is MISSING
        served = {rid for rid, _row in seg.chunk_rows()}
        assert rowids[3] not in served and rowids[4] not in served
        assert len(served) == 98
        # window candidates honour the same exclusions
        cands = {rid for rid, _g in seg.window_candidates((0.0, 0.0, 100.0, 100.0))}
        assert rowids[3] not in cands and rowids[4] not in cands

    def test_journal_transitions(self):
        _pool, _heap, seg, rowids, _geoms = build_grid_segment()
        rid = rowids[0]
        seg.note_update(rid)
        assert rid in seg.stale
        seg.note_delete(rid)  # updated then deleted -> dead, not stale
        assert rid in seg.dead and rid not in seg.stale
        seg.note_insert(rid)  # rowid reuse: live again, heap-resident
        assert rid in seg.fresh and rid not in seg.dead
        seg.note_delete(rid)  # fresh delete cancels out entirely
        assert rid not in seg.fresh and rid not in seg.dead

    def test_snapshot_roundtrip_through_codec(self):
        pool, _heap, seg, rowids, _geoms = build_grid_segment()
        seg.note_update(rowids[1])
        seg.note_delete(rowids[2])
        snap = decode_row(encode_row(segment_snapshot(seg)))
        seg2 = segment_from_snapshot(pool, snap)
        assert seg2.geom_col == seg.geom_col
        assert [m.pages for m in seg2.chunks] == [m.pages for m in seg.chunks]
        assert [m.zone for m in seg2.chunks] == [m.zone for m in seg.chunks]
        assert seg2.stale == seg.stale and seg2.dead == seg.dead
        assert dict(seg2.chunk_rows()) == dict(seg.chunk_rows())

    def test_pickle_drops_chunk_cache(self):
        _pool, _heap, seg, rowids, geoms = build_grid_segment()
        seg.geometry_at(rowids[0])  # populate the LRU
        clone = pickle.loads(pickle.dumps(seg))
        assert clone._loaded == {}
        assert clone.geometry_at(rowids[0]) == geoms[0]

    def test_chunk_lru_bounded(self):
        pool, heap, _seg, _rowids, _geoms = build_grid_segment()
        seg = build_segment(heap, pool, geom_col=1, chunk_rows=16)
        seg._cache_chunks = 2
        for rid, _row in seg.chunk_rows():
            pass
        assert len(seg._loaded) <= 2

    def test_bad_chunk_rows_rejected(self):
        pool, heap, _seg, _rowids, _geoms = build_grid_segment()
        with pytest.raises(StorageError):
            build_segment(heap, pool, geom_col=1, chunk_rows=0)


class TestCompression:
    def test_columnar_bytes_beat_heap_row_encoding(self):
        # delta/varint ring offsets + dictionary gtypes + closing-vertex
        # elision must keep the chunk image no larger than the sum of the
        # heap's per-row TLV encodings, despite adding the MBR planes.
        pool, heap, seg, _rowids, _geoms = build_grid_segment(
            n=200, chunk_rows=256
        )
        heap_bytes = sum(len(data) for _rid, data in heap.scan())
        assert seg.byte_size <= heap_bytes
        # ...and the page image is materially smaller than the heap's
        # page footprint (slot directories, per-row headers, free space).
        heap_pages = len(heap.pages_snapshot()[0])
        assert seg.page_count < heap_pages

    def test_gtype_dictionary_single_entry_for_uniform_chunk(self):
        rows = [(i, Geometry.rectangle(i, 0, i + 1, 1)) for i in range(20)]
        rowids = [RowId(1, i) for i in range(20)]
        blob, _zone = encode_chunk(rows, rowids, geom_col=1)
        chunk = ColumnarChunk.decode(blob)
        assert chunk.gtype_dict == [2003]
