"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.pager import MemoryPager


def make_pool(capacity=3, page_size=64):
    pager = MemoryPager(page_size=page_size)
    return pager, BufferPool(pager, capacity=capacity)


class TestBasics:
    def test_allocate_then_get_hits_cache(self):
        pager, pool = make_pool()
        pid = pool.allocate()
        pool.get(pid)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 0
        assert pager.stats.reads == 0  # never touched the backend

    def test_put_then_get_returns_content(self):
        _pager, pool = make_pool()
        pid = pool.allocate()
        data = bytes([9] * 64)
        pool.put(pid, data)
        assert pool.get(pid) == data

    def test_put_wrong_size_rejected(self):
        _pager, pool = make_pool()
        pid = pool.allocate()
        with pytest.raises(StorageError):
            pool.put(pid, b"nope")

    def test_capacity_must_be_positive(self):
        pager = MemoryPager(page_size=64)
        with pytest.raises(StorageError):
            BufferPool(pager, capacity=0)


class TestEviction:
    def test_lru_eviction_order(self):
        pager, pool = make_pool(capacity=2)
        a, b, c = pool.allocate(), pool.allocate(), pool.allocate()
        # c's allocation evicted a (oldest).  Touch b, then pull a back:
        pool.get(b)
        pool.get(a)  # miss: a was evicted
        assert pool.stats.misses == 1
        assert pool.stats.evictions >= 2

    def test_dirty_page_written_back_on_eviction(self):
        pager, pool = make_pool(capacity=1)
        a = pool.allocate()
        payload = bytes([5] * 64)
        pool.put(a, payload)
        b = pool.allocate()  # evicts a, which is dirty
        assert pager.read(a) == payload

    def test_flush_writes_all_dirty(self):
        pager, pool = make_pool(capacity=4)
        pids = [pool.allocate() for _ in range(3)]
        for i, pid in enumerate(pids):
            pool.put(pid, bytes([i] * 64))
        pool.flush()
        for i, pid in enumerate(pids):
            assert pager.read(pid) == bytes([i] * 64)

    def test_invalidate_flushes_then_misses(self):
        pager, pool = make_pool(capacity=4)
        pid = pool.allocate()
        pool.put(pid, bytes([1] * 64))
        pool.invalidate()
        assert pool.cached_page_ids() == []
        assert pool.get(pid) == bytes([1] * 64)
        assert pool.stats.misses == 1


class TestPrefetch:
    def test_prefetch_then_get_counts_prefetch_hit(self):
        pager, pool = make_pool(capacity=4)
        pids = [pool.allocate() for _ in range(3)]
        for pid in pids:
            pool.put(pid, bytes([7] * 64))
        pool.invalidate()
        assert pool.prefetch(pids) == 3
        assert pool.stats.prefetches == 3
        for pid in pids:
            pool.get(pid)
        assert pool.stats.prefetch_hits == 3
        assert pool.stats.hits == 3 and pool.stats.misses == 0

    def test_prefetch_skips_resident_pages(self):
        pager, pool = make_pool(capacity=4)
        pid = pool.allocate()
        assert pool.prefetch([pid]) == 0
        assert pool.stats.prefetches == 0

    def test_prefetch_hit_counted_once(self):
        pager, pool = make_pool(capacity=4)
        pid = pool.allocate()
        pool.put(pid, bytes([1] * 64))
        pool.invalidate()
        pool.prefetch([pid])
        pool.get(pid)
        pool.get(pid)
        assert pool.stats.prefetch_hits == 1

    def test_prefetch_is_scan_resistant(self):
        # A hot page must survive a capacity-sized prefetch sweep: the
        # prefetched frames enter at the cold end and evict one another.
        pager, pool = make_pool(capacity=2)
        hot = pool.allocate()
        pool.put(hot, bytes([9] * 64))
        cold = [pool.allocate() for _ in range(2)]  # evicts hot... re-warm:
        for pid in cold:
            pool.put(pid, bytes([0] * 64))
        pool.invalidate()
        pool.get(hot)  # hot is the single resident (and MRU) frame
        pool.prefetch(cold)
        assert pool.get(hot) == bytes([9] * 64)
        assert pool.stats.misses == 1  # only hot's first re-read missed


class TestScanMode:
    def test_scan_get_does_not_promote(self):
        # LRU order [a, b]; a scan touch of a must leave a the next victim.
        pager, pool = make_pool(capacity=2)
        a, b = pool.allocate(), pool.allocate()
        pool.get(a, scan=True)  # hit, but deliberately not promoted
        c = pool.allocate()  # evicts a: the scan touch left it the victim
        pool.get(a)
        assert pool.stats.misses == 1

    def test_scan_miss_installs_cold(self):
        pager, pool = make_pool(capacity=2)
        a, b = pool.allocate(), pool.allocate()
        pool.put(a, bytes([1] * 64))
        pool.put(b, bytes([2] * 64))
        pool.invalidate()
        pool.get(a)  # hot
        pool.get(b, scan=True)  # cold install
        c = pool.allocate()  # evicts b (the cold scan frame), not a
        pool.get(a)
        assert pool.stats.misses == 2  # a + b's scan miss only — a stayed


class TestHooks:
    def test_access_hook_sees_hits_and_misses(self):
        events = []
        pager = MemoryPager(page_size=64)
        pool = BufferPool(pager, capacity=1, access_hook=lambda pid, hit: events.append(hit))
        a = pool.allocate()
        b = pool.allocate()  # evicts a
        pool.get(b)  # hit
        pool.get(a)  # miss
        assert events == [True, False]

    def test_hit_ratio(self):
        _pager, pool = make_pool(capacity=4)
        pid = pool.allocate()
        for _ in range(4):
            pool.get(pid)
        assert pool.stats.hit_ratio == 1.0
