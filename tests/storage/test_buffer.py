"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.pager import MemoryPager


def make_pool(capacity=3, page_size=64):
    pager = MemoryPager(page_size=page_size)
    return pager, BufferPool(pager, capacity=capacity)


class TestBasics:
    def test_allocate_then_get_hits_cache(self):
        pager, pool = make_pool()
        pid = pool.allocate()
        pool.get(pid)
        assert pool.stats.hits == 1
        assert pool.stats.misses == 0
        assert pager.stats.reads == 0  # never touched the backend

    def test_put_then_get_returns_content(self):
        _pager, pool = make_pool()
        pid = pool.allocate()
        data = bytes([9] * 64)
        pool.put(pid, data)
        assert pool.get(pid) == data

    def test_put_wrong_size_rejected(self):
        _pager, pool = make_pool()
        pid = pool.allocate()
        with pytest.raises(StorageError):
            pool.put(pid, b"nope")

    def test_capacity_must_be_positive(self):
        pager = MemoryPager(page_size=64)
        with pytest.raises(StorageError):
            BufferPool(pager, capacity=0)


class TestEviction:
    def test_lru_eviction_order(self):
        pager, pool = make_pool(capacity=2)
        a, b, c = pool.allocate(), pool.allocate(), pool.allocate()
        # c's allocation evicted a (oldest).  Touch b, then pull a back:
        pool.get(b)
        pool.get(a)  # miss: a was evicted
        assert pool.stats.misses == 1
        assert pool.stats.evictions >= 2

    def test_dirty_page_written_back_on_eviction(self):
        pager, pool = make_pool(capacity=1)
        a = pool.allocate()
        payload = bytes([5] * 64)
        pool.put(a, payload)
        b = pool.allocate()  # evicts a, which is dirty
        assert pager.read(a) == payload

    def test_flush_writes_all_dirty(self):
        pager, pool = make_pool(capacity=4)
        pids = [pool.allocate() for _ in range(3)]
        for i, pid in enumerate(pids):
            pool.put(pid, bytes([i] * 64))
        pool.flush()
        for i, pid in enumerate(pids):
            assert pager.read(pid) == bytes([i] * 64)

    def test_invalidate_flushes_then_misses(self):
        pager, pool = make_pool(capacity=4)
        pid = pool.allocate()
        pool.put(pid, bytes([1] * 64))
        pool.invalidate()
        assert pool.cached_page_ids() == []
        assert pool.get(pid) == bytes([1] * 64)
        assert pool.stats.misses == 1


class TestHooks:
    def test_access_hook_sees_hits_and_misses(self):
        events = []
        pager = MemoryPager(page_size=64)
        pool = BufferPool(pager, capacity=1, access_hook=lambda pid, hit: events.append(hit))
        a = pool.allocate()
        b = pool.allocate()  # evicts a
        pool.get(b)  # hit
        pool.get(a)  # miss
        assert events == [True, False]

    def test_hit_ratio(self):
        _pager, pool = make_pool(capacity=4)
        pid = pool.allocate()
        for _ in range(4):
            pool.get(pid)
        assert pool.stats.hit_ratio == 1.0
