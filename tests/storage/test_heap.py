"""Unit tests for heap files and rowids."""

import pytest

from repro.errors import RowIdError
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile, RowId
from repro.storage.pager import MemoryPager


def make_heap(page_size=256, capacity=16):
    pool = BufferPool(MemoryPager(page_size=page_size), capacity=capacity)
    return HeapFile(pool, name="t")


class TestInsertRead:
    def test_roundtrip(self):
        heap = make_heap()
        rid = heap.insert(b"hello")
        assert heap.read(rid) == b"hello"
        assert heap.row_count == 1

    def test_many_records_span_pages(self):
        heap = make_heap(page_size=128)
        rids = [heap.insert(bytes([i % 256]) * 20) for i in range(50)]
        assert heap.page_count > 1
        for i, rid in enumerate(rids):
            assert heap.read(rid) == bytes([i % 256]) * 20

    def test_rowids_are_stable_and_ordered(self):
        heap = make_heap()
        rids = [heap.insert(b"x" * 10) for _ in range(30)]
        assert rids == sorted(rids)
        assert len(set(rids)) == 30

    def test_empty_record(self):
        heap = make_heap()
        rid = heap.insert(b"")
        assert heap.read(rid) == b""


class TestOverflow:
    def test_record_larger_than_page(self):
        heap = make_heap(page_size=128)
        big = bytes(range(256)) * 8  # 2 KiB on 128-byte pages
        rid = heap.insert(big)
        assert heap.read(rid) == big

    def test_mixed_inline_and_overflow(self):
        heap = make_heap(page_size=128)
        small = heap.insert(b"small")
        big = heap.insert(b"B" * 1000)
        small2 = heap.insert(b"again")
        assert heap.read(small) == b"small"
        assert heap.read(big) == b"B" * 1000
        assert heap.read(small2) == b"again"

    def test_delete_overflow_record(self):
        heap = make_heap(page_size=128)
        rid = heap.insert(b"B" * 1000)
        heap.delete(rid)
        with pytest.raises(RowIdError):
            heap.read(rid)


class TestDelete:
    def test_delete_makes_rowid_invalid(self):
        heap = make_heap()
        rid = heap.insert(b"gone")
        heap.delete(rid)
        assert heap.row_count == 0
        with pytest.raises(RowIdError):
            heap.read(rid)
        with pytest.raises(RowIdError):
            heap.delete(rid)

    def test_deleted_space_reused(self):
        heap = make_heap(page_size=128)
        rids = [heap.insert(b"A" * 30) for _ in range(3)]
        pages_before = heap.page_count
        heap.delete(rids[1])
        new_rid = heap.insert(b"B" * 30)
        assert heap.page_count == pages_before  # no growth
        assert heap.read(new_rid) == b"B" * 30

    def test_foreign_rowid_rejected(self):
        heap = make_heap()
        heap.insert(b"x")
        with pytest.raises(RowIdError):
            heap.read(RowId(999, 0))
        with pytest.raises(RowIdError):
            heap.read(RowId(0, 99))


class TestUpdate:
    def test_update_in_place_same_size(self):
        heap = make_heap()
        rid = heap.insert(b"aaaa")
        heap.update(rid, b"bbbb")
        assert heap.read(rid) == b"bbbb"

    def test_update_shrink(self):
        heap = make_heap()
        rid = heap.insert(b"a" * 50)
        heap.update(rid, b"b")
        assert heap.read(rid) == b"b"

    def test_update_grow_keeps_rowid(self):
        heap = make_heap(page_size=256)
        rid = heap.insert(b"tiny")
        other = heap.insert(b"neighbor")
        heap.update(rid, b"G" * 100)
        assert heap.read(rid) == b"G" * 100
        assert heap.read(other) == b"neighbor"

    def test_update_grow_to_overflow(self):
        heap = make_heap(page_size=128)
        rid = heap.insert(b"tiny")
        heap.update(rid, b"H" * 2000)
        assert heap.read(rid) == b"H" * 2000
        heap.update(rid, b"back")
        assert heap.read(rid) == b"back"


class TestScan:
    def test_scan_returns_live_rows_in_rowid_order(self):
        heap = make_heap(page_size=128)
        rids = [heap.insert(bytes([i]) * 10) for i in range(20)]
        heap.delete(rids[5])
        heap.delete(rids[13])
        scanned = list(heap.scan())
        assert [r for r, _d in scanned] == sorted(r for r, _d in scanned)
        assert len(scanned) == 18
        live = {rid: data for rid, data in scanned}
        assert rids[5] not in live
        assert live[rids[0]] == bytes([0]) * 10

    def test_scan_empty_heap(self):
        heap = make_heap()
        assert list(heap.scan()) == []


class TestRowIdOrdering:
    def test_total_order(self):
        assert RowId(0, 1) < RowId(0, 2) < RowId(1, 0)

    def test_hashable(self):
        assert len({RowId(0, 1), RowId(0, 1), RowId(1, 1)}) == 2
