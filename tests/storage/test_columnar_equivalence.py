"""Format-equivalence tests: columnar results must be bit-identical to
slotted, on both kernel backends, including adversarial zone-map cases.

Every test builds the same dataset twice — one database left slotted, one
compacted to columnar — and asserts the *exact* equality of query results
between formats and across ``REPRO_KERNELS`` backends.  The charge
structures legitimately differ (that difference is the optimisation); the
rows must not.
"""

import random

import pytest

from repro.engine.database import Database
from repro.engine.parallel import WorkerContext
from repro.geometry import kernels
from repro.geometry.geometry import Geometry

BACKENDS = list(kernels.available_backends())
HAVE_NUMPY = "numpy" in BACKENDS


def build_pair(loader, chunk_rows=64):
    """Two identical databases: (slotted, compacted-to-columnar)."""
    dbs = []
    for _ in range(2):
        db = Database()
        table = db.create_table(
            "shapes", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")]
        )
        table.insert_many(loader())
        db.create_spatial_index("shapes_sidx", "shapes", "geom", "RTREE")
        dbs.append(db)
    dbs[1].compact_table("shapes", chunk_rows=chunk_rows)
    return dbs[0], dbs[1]


def random_rects(n=400, seed=11):
    def loader():
        rng = random.Random(seed)
        rows = []
        for i in range(n):
            x, y = rng.uniform(0, 100), rng.uniform(0, 100)
            rows.append(
                (
                    i,
                    Geometry.rectangle(
                        x, y, x + rng.uniform(0.5, 4), y + rng.uniform(0.5, 4)
                    ),
                )
            )
        return rows

    return loader


def coherent_strip(n=300):
    """Spatially coherent insertion order: x grows with rowid, so chunk
    zones tile the strip and selective windows prune most chunks."""

    def loader():
        return [
            (i, Geometry.rectangle(i * 2.0, 0.0, i * 2.0 + 1.5, 10.0))
            for i in range(n)
        ]

    return loader


@pytest.mark.parametrize("backend", BACKENDS)
class TestFormatEquivalence:
    def test_select_rowids_identical(self, backend):
        slotted, columnar = build_pair(random_rects())
        windows = [
            Geometry.rectangle(20, 20, 30, 30),
            Geometry.rectangle(0, 0, 100, 100),
            Geometry.rectangle(99.5, 99.5, 99.9, 99.9),
            Geometry.rectangle(500, 500, 501, 501),  # empty
        ]
        with kernels.use_backend(backend):
            for q in windows:
                for op, args in (
                    ("SDO_RELATE", [q]),
                    ("SDO_FILTER", [q]),
                    ("SDO_WITHIN_DISTANCE", [q, 3.0]),
                ):
                    a = list(slotted.select_rowids("shapes", "geom", op, args))
                    b = list(columnar.select_rowids("shapes", "geom", op, args))
                    assert a == b, (op, q.mbr)

    def test_window_scan_identical(self, backend):
        slotted, columnar = build_pair(random_rects())
        with kernels.use_backend(backend):
            for q in (
                Geometry.rectangle(10, 10, 25, 25),
                Geometry.rectangle(-5, -5, 0.25, 0.25),
            ):
                for exact in (True, False):
                    a = slotted.window_scan("shapes", "geom", q, exact=exact)
                    b = columnar.window_scan("shapes", "geom", q, exact=exact)
                    assert a == b

    def test_join_pairs_identical(self, backend):
        slotted, columnar = build_pair(random_rects(n=250))
        with kernels.use_backend(backend):
            a = slotted.spatial_join("shapes", "geom", "shapes", "geom")
            b = columnar.spatial_join("shapes", "geom", "shapes", "geom")
            assert a.pairs == b.pairs

    def test_grid_parallel_join_identical(self, backend):
        slotted, columnar = build_pair(random_rects(n=250))
        with kernels.use_backend(backend):
            a = slotted.spatial_join(
                "shapes", "geom", "shapes", "geom", parallel=4, strategy="GRID"
            )
            b = columnar.spatial_join(
                "shapes", "geom", "shapes", "geom", parallel=4, strategy="GRID"
            )
            assert a.pairs == b.pairs

    def test_post_compaction_dml_tracks_heap_truth(self, backend):
        slotted, columnar = build_pair(random_rects(n=200))
        q = Geometry.rectangle(20, 20, 40, 40)
        with kernels.use_backend(backend):
            base = sorted(slotted.select_rowids("shapes", "geom", "SDO_RELATE", [q]))
            victims = base[:2]
            for db in (slotted, columnar):
                t = db.table("shapes")
                t.insert((9001, Geometry.rectangle(25, 25, 26, 26)))
                t.delete(victims[0])
                t.update(victims[1], (9002, Geometry.rectangle(70, 70, 71, 71)))
            a = sorted(slotted.select_rowids("shapes", "geom", "SDO_RELATE", [q]))
            b = sorted(columnar.select_rowids("shapes", "geom", "SDO_RELATE", [q]))
            assert a == b
            # scans merge journal rows back at their rowid positions
            assert list(slotted.table("shapes").scan()) == list(
                columnar.table("shapes").scan()
            )


class TestBackendParity:
    """python and numpy backends must agree row-for-row on chunk scans."""

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs the numpy backend")
    def test_window_candidates_backend_identical(self):
        _slotted, columnar = build_pair(random_rects())
        seg = columnar.table("shapes").columnar
        box = (15.0, 15.0, 60.0, 60.0)
        with kernels.use_backend("python"):
            a = [(rid, g) for rid, g in seg.window_candidates(box)]
        with kernels.use_backend("numpy"):
            b = [(rid, g) for rid, g in seg.window_candidates(box)]
        assert [rid for rid, _ in a] == [rid for rid, _ in b]
        assert all(x == y for (_, x), (_, y) in zip(a, b))

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs the numpy backend")
    def test_null_geometry_rows_invisible_on_both_backends(self):
        # NULL geometries carry no MBR plane entry (plane_rows maps the
        # dense planes back to chunk rows), so neither backend can ever
        # emit them from the primary filter.
        db = Database()
        t = db.create_table("mix", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")])
        rows = []
        for i in range(60):
            geom = (
                None
                if i % 3 == 0
                else Geometry.rectangle(i, 0.0, i + 0.5, 1.0)
            )
            rows.append((i, geom))
        t.insert_many(rows)
        db.compact_table("mix", chunk_rows=16)
        seg = t.columnar
        box = (0.0, 0.0, 100.0, 100.0)
        with kernels.use_backend("python"):
            a = [rid for rid, _ in seg.window_candidates(box)]
        with kernels.use_backend("numpy"):
            b = [rid for rid, _ in seg.window_candidates(box)]
        assert a == b
        assert len(a) == sum(1 for _i, g in rows if g is not None)


class TestAdversarialZones:
    """Zone maps on chunk-boundary-straddling MBRs (grid-partition style)."""

    def test_geometry_straddling_chunk_boundary_found(self):
        # One huge rectangle is inserted mid-stream in an otherwise
        # coherent strip: its chunk's zone must widen to cover it, and a
        # window hitting only its far end must still find it.
        def loader():
            rows = [
                (i, Geometry.rectangle(i * 2.0, 0.0, i * 2.0 + 1.5, 10.0))
                for i in range(100)
            ]
            rows[50] = (50, Geometry.rectangle(100.0, 0.0, 900.0, 10.0))
            return rows

        slotted, columnar = build_pair(loader, chunk_rows=16)
        q = Geometry.rectangle(880.0, 2.0, 890.0, 3.0)  # far end of the giant
        a = sorted(slotted.select_rowids("shapes", "geom", "SDO_RELATE", [q]))
        b = sorted(columnar.select_rowids("shapes", "geom", "SDO_RELATE", [q]))
        assert a == b and len(a) == 1
        c = columnar.window_scan("shapes", "geom", q)
        assert c == b

    def test_window_exactly_on_zone_edges(self):
        # Windows whose edges coincide exactly with zone boundaries: the
        # closed-interval test must keep touching geometries (and both
        # formats must agree on every boundary).
        slotted, columnar = build_pair(coherent_strip(), chunk_rows=25)
        seg = columnar.table("shapes").columnar
        for meta in seg.chunks:
            zx0, _zy0, zx1, _zy1 = meta.zone
            for edge in (zx0, zx1):
                q = Geometry.rectangle(edge - 0.25, 3.0, edge, 4.0)
                a = slotted.window_scan("shapes", "geom", q)
                b = columnar.window_scan("shapes", "geom", q)
                assert a == b

    def test_selective_window_prunes_most_chunks(self):
        _slotted, columnar = build_pair(coherent_strip(), chunk_rows=25)
        seg = columnar.table("shapes").columnar
        n_chunks = len(seg.chunks)
        ctx = WorkerContext(0)
        q = Geometry.rectangle(10.0, 2.0, 14.0, 6.0)
        columnar.window_scan("shapes", "geom", q, ctx=ctx)
        assert seg.zone_prunes >= n_chunks - 2
        assert ctx.meter.counts.get("zone_skip", 0) >= n_chunks - 2

    def test_distance_expanded_zone_test(self):
        # A within-distance query must expand the zone test by the same
        # distance the row-level filter uses, or boundary rows vanish.
        slotted, columnar = build_pair(coherent_strip(), chunk_rows=25)
        q = Geometry.rectangle(-50.0, 0.0, -49.0, 10.0)  # left of all data
        for d in (0.0, 48.9, 49.0, 60.0):
            a = sorted(
                slotted.select_rowids(
                    "shapes", "geom", "SDO_WITHIN_DISTANCE", [q, d]
                )
            )
            b = sorted(
                columnar.select_rowids(
                    "shapes", "geom", "SDO_WITHIN_DISTANCE", [q, d]
                )
            )
            assert a == b, d
