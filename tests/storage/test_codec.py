"""Unit tests for the row/value binary codec."""

import pytest

from repro.errors import StorageError
from repro.geometry.geometry import Geometry
from repro.geometry.mbr import MBR
from repro.storage.codec import decode_row, decode_value, encode_row, encode_value


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -1, 2**40, 3.14159, -1e300, "", "hello", "ünïcødé",
         b"", b"\x00\xff raw"],
    )
    def test_value_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_bool_not_confused_with_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True


class TestComposites:
    def test_tuple_roundtrip(self):
        value = (1, "two", 3.0, None, (4, "five"))
        assert decode_value(encode_value(value)) == value

    def test_geometry_roundtrip(self):
        poly = Geometry.polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (2, 4), (4, 4), (4, 2)]],
        )
        assert decode_value(encode_value(poly)) == poly

    def test_all_geometry_types_roundtrip(self):
        geoms = [
            Geometry.point(1, 2),
            Geometry.linestring([(0, 0), (1, 1)]),
            Geometry.multipoint([(0, 0), (2, 2)]),
            Geometry.multilinestring([[(0, 0), (1, 1)], [(2, 2), (3, 3)]]),
            Geometry.multipolygon([([(0, 0), (1, 0), (1, 1), (0, 1)], [])]),
        ]
        for g in geoms:
            assert decode_value(encode_value(g)) == g

    def test_mbr_roundtrip(self):
        m = MBR(-1.5, 2.5, 3.5, 4.5)
        assert decode_value(encode_value(m)) == m


class TestRows:
    def test_row_roundtrip(self):
        row = (42, "name", Geometry.point(1, 2), None, 2.5)
        assert decode_row(encode_row(row)) == row

    def test_empty_row(self):
        assert decode_row(encode_row(())) == ()

    def test_row_width_preserved(self):
        row = (None, None, None)
        assert len(decode_row(encode_row(row))) == 3

    def test_trailing_garbage_detected(self):
        data = encode_row((1, 2)) + b"junk"
        with pytest.raises(StorageError):
            decode_row(data)

    def test_unencodable_type_rejected(self):
        with pytest.raises(StorageError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(StorageError):
            decode_value(b"\xee")


class TestBatchArrayFastPaths:
    """The batch f64/u32 helpers must emit byte-identical output to the
    scalar ``struct.pack`` loops they replaced (on-disk format stability)."""

    def test_f64_array_matches_scalar_pack_loop(self):
        import struct

        from repro.storage.codec import decode_f64_array, encode_f64_array

        values = [0.0, -0.0, 1.5, -2.25, 3.141592653589793, 1e-300, -1e300]
        scalar = b"".join(struct.pack("<d", v) for v in values)
        assert encode_f64_array(values) == scalar
        arr, end = decode_f64_array(scalar, 0, len(values))
        assert end == len(scalar)
        assert arr.typecode == "d"
        assert list(arr) == values

    def test_f64_array_accepts_array_d_input(self):
        from array import array

        from repro.storage.codec import encode_f64_array

        arr = array("d", [1.0, 2.0, 3.0])
        assert encode_f64_array(arr) == arr.tobytes() or encode_f64_array(
            arr
        ) == encode_f64_array(list(arr))

    def test_u32_array_matches_scalar_pack_loop(self):
        import struct

        from repro.storage.codec import decode_u32_array, encode_u32_array

        values = [0, 1, 2**16, 2**32 - 1]
        scalar = b"".join(struct.pack("<I", v) for v in values)
        assert encode_u32_array(values) == scalar
        out, end = decode_u32_array(scalar, 0, len(values))
        assert out == values and end == len(scalar)

    def test_decode_overrun_rejected(self):
        from repro.storage.codec import decode_f64_array, decode_u32_array

        with pytest.raises(StorageError):
            decode_f64_array(b"\x00" * 15, 0, 2)
        with pytest.raises(StorageError):
            decode_u32_array(b"\x00" * 7, 0, 2)

    def test_geometry_row_bytes_stable_under_fast_path(self):
        # The geometry TLV layout is unchanged: gtype, elem_info count +
        # u32s, ordinate count + f64s.  Pin the exact bytes.
        import struct

        from repro.geometry.sdo import to_sdo

        poly = Geometry.polygon([(0, 0), (4, 0), (4, 3), (0, 3)])
        sdo = to_sdo(poly)
        expected = bytearray([8])  # _TAG_GEOMETRY
        expected += struct.pack("<I", sdo.gtype)
        expected += struct.pack("<I", len(sdo.elem_info))
        for v in sdo.elem_info:
            expected += struct.pack("<I", v)
        expected += struct.pack("<I", len(sdo.ordinates))
        for v in sdo.ordinates:
            expected += struct.pack("<d", v)
        assert encode_value(poly) == bytes(expected)
