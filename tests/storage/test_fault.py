"""The fault-injection harness itself must be trustworthy: these tests
pin down exactly what each injected fault does to the bytes on disk."""

import os

import pytest

from repro.errors import PageError
from repro.storage.fault import (
    CrashPoint,
    FaultPlan,
    FaultyFile,
    FaultyPager,
    InjectedIOError,
    classify_path,
)
from repro.storage.pager import MemoryPager


class TestClassify:
    def test_tags(self):
        assert classify_path("/a/db.wal") == "wal"
        assert classify_path("/a/db.wal.chk") == "chk"
        assert classify_path("/a/db.wal.chk.tmp") == "chk"
        assert classify_path("/a/db.pages") == "data"


class TestTornWrite:
    def test_prefix_kept_then_dead(self, tmp_path):
        plan = FaultPlan(torn_write=("data", 1, 3))
        f = FaultyFile(str(tmp_path / "f.pages"), "w+b", plan, "data")
        f.write(b"AAAA")  # call 0: intact
        with pytest.raises(CrashPoint):
            f.write(b"BBBB")  # call 1: keeps 3 bytes, then dies
        assert plan.tripped
        with pytest.raises(CrashPoint):
            f.write(b"CCCC")  # dead file stays dead
        assert (tmp_path / "f.pages").read_bytes() == b"AAAABBB"

    def test_zero_keep_is_clean_kill(self, tmp_path):
        plan = FaultPlan(torn_write=("data", 0, 0))
        f = FaultyFile(str(tmp_path / "f.pages"), "w+b", plan, "data")
        with pytest.raises(CrashPoint):
            f.write(b"AAAA")
        assert (tmp_path / "f.pages").read_bytes() == b""

    def test_other_tags_unaffected(self, tmp_path):
        plan = FaultPlan(torn_write=("wal", 0, 0))
        f = FaultyFile(str(tmp_path / "f.pages"), "w+b", plan, "data")
        f.write(b"AAAA")
        assert (tmp_path / "f.pages").read_bytes() == b"AAAA"


class TestCrashAfterWrites:
    def test_counted_per_tag(self, tmp_path):
        plan = FaultPlan(crash_after_writes=("data", 2))
        f = FaultyFile(str(tmp_path / "f.pages"), "w+b", plan, "data")
        f.write(b"A")
        f.write(b"B")
        with pytest.raises(CrashPoint):
            f.write(b"C")
        assert (tmp_path / "f.pages").read_bytes() == b"AB"


class TestDroppedFsync:
    def test_unsynced_writes_lost_on_crash(self, tmp_path):
        path = str(tmp_path / "f.wal")
        plan = FaultPlan(drop_fsync=("wal",), crash_sites={"boom": 0})
        f = FaultyFile(path, "w+b", plan, "wal")
        f.write(b"DURABLE?")
        f.sync()  # silently dropped: bytes stay in the "OS cache"
        with pytest.raises(CrashPoint):
            plan.reached("boom")
        f.close()  # the plan is tripped: close discards the shadow
        assert os.path.getsize(path) == 0  # the lie is exposed

    def test_clean_close_still_lands(self, tmp_path):
        # No crash: a lazy cache eventually writes back.
        path = str(tmp_path / "f.wal")
        plan = FaultPlan(drop_fsync=("wal",))
        f = FaultyFile(path, "w+b", plan, "wal")
        f.write(b"EVENTUALLY")
        f.close()
        assert open(path, "rb").read() == b"EVENTUALLY"

    def test_working_sync_in_cache_mode(self, tmp_path):
        path = str(tmp_path / "f.wal")
        plan = FaultPlan(cache_tags=("wal",))
        f = FaultyFile(path, "w+b", plan, "wal")
        f.write(b"SYNCED")
        f.sync()
        plan.trip("post-sync crash")
        f.close()
        assert open(path, "rb").read() == b"SYNCED"

    def test_cache_mode_read_sees_own_writes(self, tmp_path):
        plan = FaultPlan(cache_tags=("wal",))
        f = FaultyFile(str(tmp_path / "f.wal"), "w+b", plan, "wal")
        f.write(b"HELLO")
        f.seek(0)
        assert f.read(5) == b"HELLO"


class TestEioAndSites:
    def test_eio_on_chosen_read(self, tmp_path):
        plan = FaultPlan(eio_reads=(("data", 1),))
        f = FaultyFile(str(tmp_path / "f.pages"), "w+b", plan, "data")
        f.write(b"ABCDEF")
        f.seek(0)
        assert f.read(3) == b"ABC"  # read 0 fine
        with pytest.raises(InjectedIOError):
            f.read(3)  # read 1 injected
        assert not plan.tripped  # EIO is survivable
        f.seek(3)
        assert f.read(3) == b"DEF"

    def test_site_countdown(self):
        plan = FaultPlan(crash_sites={"checkpoint.begin": 1})
        plan.reached("checkpoint.begin")  # visit 0: survives
        with pytest.raises(CrashPoint):
            plan.reached("checkpoint.begin")  # visit 1: dies
        with pytest.raises(CrashPoint):
            plan.reached("anything.else")  # plan is dead now

    def test_random_plans_are_deterministic(self):
        a, b = FaultPlan.random(42), FaultPlan.random(42)
        assert (a.torn_write, a.crash_after_writes, a.crash_sites, a.drop_fsync) == (
            b.torn_write,
            b.crash_after_writes,
            b.crash_sites,
            b.drop_fsync,
        )


class TestFaultyPager:
    def test_eio_pages(self):
        inner = MemoryPager(page_size=512)
        pager = FaultyPager(inner, eio_pages={1})
        p0, p1 = pager.allocate(), pager.allocate()
        pager.write(p0, b"a" * 512)
        assert pager.read(p0) == b"a" * 512
        with pytest.raises(InjectedIOError):
            pager.read(p1)

    def test_crash_after_n_writes(self):
        inner = MemoryPager(page_size=512)
        pager = FaultyPager(inner, crash_after_writes=2)
        pids = [pager.allocate() for _ in range(4)]
        pager.write(pids[0], b"a" * 512)
        pager.write(pids[1], b"b" * 512)
        with pytest.raises(CrashPoint):
            pager.write(pids[2], b"c" * 512)
        with pytest.raises(CrashPoint):
            pager.read(pids[0])  # dead pager stays dead
        assert pager.write_log == [pids[0], pids[1]]
        assert inner.read(pids[2]) == bytes(512)  # never reached the store

    def test_wraps_validation(self):
        inner = MemoryPager(page_size=512)
        pager = FaultyPager(inner)
        pid = pager.allocate()
        with pytest.raises(PageError):
            pager.write(pid, b"short")
