"""Crash-recovery matrix: kill the store at every interesting instant.

The durability contract under test: reopening a ``durability="wal"``
database after a crash at *any* point always yields the state of the last
completed checkpoint — never a torn page, never a half-applied batch, and
never a catalog pointing at a half-written index.

The matrix kills the simulated process at every WAL write call (several
cut points per call), at every main-file write during checkpoint
write-back, at every named crash site, and with a lying write-back cache
(fsync dropped).  A seeded random plan (``CHAOS_SEED``) adds one novel
crash per run; the seed is printed so any failure reproduces exactly.
"""

import os

import pytest

from repro.engine.database import Database
from repro.errors import FaultError
from repro.geometry.geometry import Geometry
from repro.storage.fault import FaultPlan

PAGE = 512
ROWS_A = 8  # rows in checkpoint A
ROWS_B = 20  # rows after checkpoint B


def square(i):
    x, y = float(i % 6), float(i // 6)
    return Geometry.polygon([(x, y), (x + 1, y), (x + 1, y + 1), (x, y + 1)])


def build_phase_a(path, plan=None):
    """Create the store: table + R-tree index, checkpointed (state A)."""
    db = Database.open(
        path, durability="wal", page_size=PAGE, buffer_capacity=64, fault_plan=plan
    )
    t = db.create_table("t", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")])
    for i in range(ROWS_A):
        t.insert((i, square(i)))
    db.create_spatial_index("t_sidx", "t", "geom", kind="RTREE", fanout=4)
    db.close()


def build_phase_b(path, plan=None):
    """Reopen state A, add rows, checkpoint again (state B)."""
    db = Database.open(
        path, durability="wal", page_size=PAGE, buffer_capacity=64, fault_plan=plan
    )
    t = db.table("t")
    for i in range(ROWS_A, ROWS_B):
        t.insert((i, square(i)))
    db.close()


def check_consistent(path, allowed_row_counts):
    """Reopen with no faults; the state must be exactly one checkpoint."""
    db = Database.open(path, durability="wal", page_size=PAGE)
    try:
        if not db.catalog.has_table("t"):
            assert None in allowed_row_counts, "store lost table t entirely"
            return None
        rows = db.table("t").row_count
        assert rows in allowed_row_counts, (
            f"recovered {rows} rows; a checkpoint boundary allows only "
            f"{allowed_row_counts}"
        )
        # The index must agree with the table: every row findable.
        if db.catalog.has_index("t_sidx"):
            for i in range(rows):
                hits = list(
                    db.select_rowids("t", "geom", "SDO_FILTER", [square(i)])
                )
                assert hits, f"row {i} vanished from the recovered index"
        return rows
    finally:
        db.close()


def count_writes(builder, tmp_path, tag):
    """Probe run: how many write calls the workload makes to ``tag``."""
    probe = FaultPlan.counting()
    builder(str(tmp_path / "probe.pages"), probe)
    return probe.write_calls.get(tag, 0)


def sample_indices(n, limit=24):
    if n <= limit:
        return list(range(n))
    step = max(1, n // limit)
    picks = list(range(0, n, step))
    return picks[:limit] + [n - 1]


class TestKillAtEveryWalOffset:
    """The tentpole acceptance test: tear every WAL write, recover."""

    def test_phase_a_torn_wal_writes(self, tmp_path):
        total = count_writes(build_phase_a, tmp_path, "wal")
        assert total > 0
        for call in sample_indices(total):
            for keep in (0, 7):
                path = str(tmp_path / f"a_{call}_{keep}.pages")
                plan = FaultPlan(torn_write=("wal", call, keep))
                try:
                    build_phase_a(path, plan)
                except FaultError:
                    pass
                # Before the final commit the store rolls back to empty;
                # after it, to the complete state A.
                check_consistent(path, {None, ROWS_A})

    def test_phase_b_torn_wal_writes(self, tmp_path):
        base = str(tmp_path / "base.pages")
        build_phase_a(base)
        import shutil

        total = count_writes(
            lambda p, plan: (shutil.copy(base, p),
                             shutil.copy(base + ".wal", p + ".wal"),
                             shutil.copy(base + ".wal.chk", p + ".wal.chk"),
                             build_phase_b(p, plan))[-1],
            tmp_path,
            "wal",
        )
        assert total > 0
        for call in sample_indices(total, limit=16):
            path = str(tmp_path / f"b_{call}.pages")
            shutil.copy(base, path)
            shutil.copy(base + ".wal", path + ".wal")
            shutil.copy(base + ".wal.chk", path + ".wal.chk")
            plan = FaultPlan(torn_write=("wal", call, 3))
            try:
                build_phase_b(path, plan)
            except FaultError:
                pass
            # Never a torn middle: exactly state A or state B.
            check_consistent(path, {ROWS_A, ROWS_B})

    def test_torn_main_file_writes_repaired(self, tmp_path):
        """Tear checkpoint write-back: the WAL must repair the main file."""
        total = count_writes(build_phase_a, tmp_path, "data")
        assert total > 0
        for call in sample_indices(total, limit=16):
            path = str(tmp_path / f"d_{call}.pages")
            plan = FaultPlan(torn_write=("data", call, 100))
            try:
                build_phase_a(path, plan)
            except FaultError:
                pass
            check_consistent(path, {None, ROWS_A})


class TestCrashSites:
    @pytest.mark.parametrize(
        "site",
        [
            "wal.commit.before_fsync",
            "wal.commit.after_fsync",
            "checkpoint.begin",
            "checkpoint.page_written",
            "checkpoint.after_writeback",
            "checkpoint.before_truncate",
            "checkpoint.end",
        ],
    )
    def test_named_sites_phase_a(self, tmp_path, site):
        path = str(tmp_path / "db.pages")
        plan = FaultPlan(crash_sites={site: 0})
        try:
            build_phase_a(path, plan)
        except FaultError:
            pass
        check_consistent(path, {None, ROWS_A})

    def test_repeated_checkpoint_page_visits(self, tmp_path):
        # Kill at the Nth page write-back, for several N.
        for visit in (0, 3, 9, 30):
            path = str(tmp_path / f"v{visit}.pages")
            plan = FaultPlan(crash_sites={"checkpoint.page_written": visit})
            try:
                build_phase_a(path, plan)
            except FaultError:
                pass
            check_consistent(path, {None, ROWS_A})


class TestDroppedFsync:
    def test_lying_cache_rolls_back_cleanly(self, tmp_path):
        """fsync is dropped and the process dies: the "durable" commit must
        roll back to nothing rather than half-apply."""
        path = str(tmp_path / "db.pages")
        plan = FaultPlan(
            drop_fsync=("wal",), crash_sites={"checkpoint.after_writeback": 0}
        )
        try:
            build_phase_a(path, plan)
        except FaultError:
            pass
        check_consistent(path, {None, ROWS_A})

    def test_working_cache_commits_survive(self, tmp_path):
        # Same write-back cache, but fsync works: commit must survive.
        path = str(tmp_path / "db.pages")
        plan = FaultPlan(cache_tags=("wal",))
        build_phase_a(path, plan)
        assert check_consistent(path, {ROWS_A}) == ROWS_A


class TestMidBuildIndexCrash:
    def test_rtree_persist_crash_keeps_catalog_clean(self, tmp_path):
        """Crash while the R-tree is being dumped during a checkpoint:
        reopening must give either no index at all or the complete one."""
        path = str(tmp_path / "db.pages")
        # State A here: table only, checkpointed.
        db = Database.open(path, durability="wal", page_size=PAGE)
        t = db.create_table("t", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")])
        for i in range(ROWS_A):
            t.insert((i, square(i)))
        db.close()

        for call in (0, 2, 10, 40, 120):
            work = str(tmp_path / f"i_{call}.pages")
            import shutil

            shutil.copy(path, work)
            shutil.copy(path + ".wal", work + ".wal")
            shutil.copy(path + ".wal.chk", work + ".wal.chk")
            plan = FaultPlan(torn_write=("wal", call, 9))
            try:
                db = Database.open(
                    work, durability="wal", page_size=PAGE, fault_plan=plan
                )
                db.create_spatial_index("t_sidx", "t", "geom", kind="RTREE", fanout=4)
                db.close()
            except FaultError:
                pass
            rows = check_consistent(work, {ROWS_A})
            assert rows == ROWS_A  # the base table is never collateral damage


class TestChaosSeed:
    def test_random_plan_keeps_invariant(self, tmp_path, capsys):
        seed = int(os.environ.get("CHAOS_SEED", "1009"))
        print(f"CHAOS_SEED={seed}")  # -s shows it; reproduce with the env var
        plan = FaultPlan.random(seed)
        path = str(tmp_path / "db.pages")
        crashed = False
        try:
            build_phase_a(path, plan)
        except FaultError:
            crashed = True
        try:
            build_phase_b(path, plan if not plan.tripped else None)
        except FaultError:
            crashed = True
        assert crashed or not plan.tripped
        check_consistent(path, {None, ROWS_A, ROWS_B})
