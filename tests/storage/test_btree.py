"""Unit tests for the B+-tree."""

import random

import pytest

from repro.errors import BTreeError
from repro.storage.btree import BPlusTree


class TestBasics:
    def test_insert_get(self):
        t = BPlusTree(order=4)
        t.insert(5, "five")
        t.insert(3, "three")
        assert t.get(5) == "five"
        assert t.get(3) == "three"
        assert t.get(7) is None
        assert t.get(7, "dflt") == "dflt"
        assert len(t) == 2

    def test_contains(self):
        t = BPlusTree(order=4)
        t.insert(1, None)  # None values are fine
        assert 1 in t
        assert 2 not in t

    def test_duplicate_insert_rejected(self):
        t = BPlusTree(order=4)
        t.insert(1, "a")
        with pytest.raises(BTreeError):
            t.insert(1, "b")

    def test_upsert(self):
        t = BPlusTree(order=4)
        assert t.upsert(1, "a") is True
        assert t.upsert(1, "b") is False
        assert t.get(1) == "b"
        assert len(t) == 1

    def test_order_too_small(self):
        with pytest.raises(BTreeError):
            BPlusTree(order=2)

    def test_tuple_keys(self):
        t = BPlusTree(order=4)
        t.insert((5, 1), "a")
        t.insert((5, 0), "b")
        t.insert((4, 9), "c")
        assert [k for k, _ in t.items()] == [(4, 9), (5, 0), (5, 1)]


class TestGrowth:
    def test_many_inserts_sorted_scan(self):
        t = BPlusTree(order=4)
        keys = list(range(500))
        random.Random(1).shuffle(keys)
        for k in keys:
            t.insert(k, k * 2)
        assert len(t) == 500
        assert t.height > 1
        assert [k for k, _ in t.items()] == list(range(500))
        t.check_invariants()

    def test_min_max(self):
        t = BPlusTree(order=4)
        for k in [5, 1, 9, 3]:
            t.insert(k, None)
        assert t.min_key() == 1
        assert t.max_key() == 9

    def test_min_max_empty(self):
        t = BPlusTree(order=4)
        with pytest.raises(BTreeError):
            t.min_key()


class TestRangeScan:
    def make_tree(self):
        t = BPlusTree(order=4)
        for k in range(0, 100, 2):  # evens 0..98
            t.insert(k, str(k))
        return t

    def test_closed_range(self):
        t = self.make_tree()
        assert [k for k, _ in t.scan(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_open_ends(self):
        t = self.make_tree()
        assert [k for k, _ in t.scan(10, 20, include_lo=False, include_hi=False)] == [
            12, 14, 16, 18,
        ]

    def test_unbounded_low(self):
        t = self.make_tree()
        assert [k for k, _ in t.scan(None, 6)] == [0, 2, 4, 6]

    def test_unbounded_high(self):
        t = self.make_tree()
        assert [k for k, _ in t.scan(94, None)] == [94, 96, 98]

    def test_bounds_between_keys(self):
        t = self.make_tree()
        assert [k for k, _ in t.scan(9, 15)] == [10, 12, 14]

    def test_empty_range(self):
        t = self.make_tree()
        assert list(t.scan(200, 300)) == []

    def test_prefix_tuple_range(self):
        # The quadtree's (code, rowid) range-scan idiom.
        t = BPlusTree(order=4)
        for code in (5, 6, 7):
            for sub in (1, 2):
                t.insert((code, sub), None)
        hits = [k for k, _ in t.scan((6,), (7,), include_hi=False)]
        assert hits == [(6, 1), (6, 2)]


class TestDelete:
    def test_delete_returns_value(self):
        t = BPlusTree(order=4)
        t.insert(1, "one")
        assert t.delete(1) == "one"
        assert len(t) == 0
        assert 1 not in t

    def test_delete_missing(self):
        t = BPlusTree(order=4)
        t.insert(1, "one")
        with pytest.raises(BTreeError):
            t.delete(2)

    def test_delete_all_random_order(self):
        t = BPlusTree(order=4)
        keys = list(range(300))
        rng = random.Random(2)
        rng.shuffle(keys)
        for k in keys:
            t.insert(k, k)
        rng.shuffle(keys)
        for i, k in enumerate(keys):
            assert t.delete(k) == k
            if i % 37 == 0:
                t.check_invariants()
        assert len(t) == 0
        t.check_invariants()

    def test_interleaved_insert_delete(self):
        t = BPlusTree(order=4)
        model = {}
        rng = random.Random(3)
        for i in range(1000):
            k = rng.randrange(100)
            if k in model:
                assert t.delete(k) == model.pop(k)
            else:
                t.insert(k, i)
                model[k] = i
        assert sorted(model) == [k for k, _ in t.items()]
        t.check_invariants()


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self):
        items = [(k, k * 10) for k in range(250)]
        t = BPlusTree.bulk_load(items, order=8)
        assert len(t) == 250
        assert t.get(123) == 1230
        assert [k for k, _ in t.items()] == list(range(250))
        t.check_invariants()

    def test_bulk_load_unsorted_rejected(self):
        with pytest.raises(BTreeError):
            BPlusTree.bulk_load([(2, None), (1, None)], order=4)

    def test_bulk_load_duplicates_rejected(self):
        with pytest.raises(BTreeError):
            BPlusTree.bulk_load([(1, None), (1, None)], order=4)

    def test_bulk_load_empty_and_tiny(self):
        assert len(BPlusTree.bulk_load([], order=4)) == 0
        t = BPlusTree.bulk_load([(1, "a")], order=4)
        assert t.get(1) == "a"
        t.check_invariants()

    def test_bulk_load_then_mutate(self):
        t = BPlusTree.bulk_load([(k, k) for k in range(0, 100, 2)], order=6)
        t.insert(51, 51)
        t.delete(50)
        assert 51 in t and 50 not in t
        t.check_invariants()

    def test_bulk_load_runs_merges(self):
        run_a = [(k, k) for k in range(0, 50, 2)]
        run_b = [(k, k) for k in range(1, 50, 2)]
        t = BPlusTree.bulk_load_runs([run_a, run_b], order=8)
        assert [k for k, _ in t.items()] == list(range(49)) + [49]
        t.check_invariants()

    def test_bulk_load_runs_duplicate_across_runs_rejected(self):
        with pytest.raises(BTreeError):
            BPlusTree.bulk_load_runs([[(1, None)], [(1, None)]], order=4)


class TestVisitHook:
    def test_hook_called_during_search(self):
        visits = []
        t = BPlusTree.bulk_load(
            [(k, k) for k in range(200)], order=4, visit_hook=lambda leaf: visits.append(leaf)
        )
        t.get(100)
        assert len(visits) >= t.height - 1
