"""``Database.open`` round trips: both durability modes, both index kinds."""

import pytest

from repro.engine.database import Database
from repro.errors import EngineError
from repro.geometry.geometry import Geometry

PAGE = 512
N = 24


def square(i):
    x, y = float(i % 6) * 2.0, float(i // 6) * 2.0
    return Geometry.polygon([(x, y), (x + 1, y), (x + 1, y + 1), (x, y + 1)])


def populate(db, rows=N):
    t = db.create_table("shapes", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")])
    for i in range(rows):
        t.insert((i, square(i)))
    return t


def probe(db, i):
    return list(db.select_rowids("shapes", "geom", "SDO_FILTER", [square(i)]))


@pytest.mark.parametrize("durability", ["none", "wal"])
class TestRoundTrip:
    def test_rows_and_rtree_survive_reopen(self, tmp_path, durability):
        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability=durability, page_size=PAGE)
        populate(db)
        db.create_spatial_index("s_idx", "shapes", "geom", kind="RTREE", fanout=6)
        before = {i: len(probe(db, i)) for i in range(N)}
        db.close()

        db = Database.open(path, durability=durability, page_size=PAGE)
        try:
            assert db.table("shapes").row_count == N
            assert db.catalog.has_index("s_idx")
            for i in range(N):
                assert len(probe(db, i)) == before[i] > 0
        finally:
            db.close()

    def test_quadtree_survives_reopen(self, tmp_path, durability):
        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability=durability, page_size=PAGE)
        populate(db)
        db.create_spatial_index(
            "q_idx", "shapes", "geom", kind="QUADTREE", tiling_level=4
        )
        db.close()

        db = Database.open(path, durability=durability, page_size=PAGE)
        try:
            for i in range(N):
                assert probe(db, i)
        finally:
            db.close()

    def test_dml_after_reopen_maintains_index(self, tmp_path, durability):
        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability=durability, page_size=PAGE)
        populate(db)
        db.create_spatial_index("s_idx", "shapes", "geom", kind="RTREE", fanout=6)
        db.close()

        db = Database.open(path, durability=durability, page_size=PAGE)
        t = db.table("shapes")
        t.insert((N, square(N)))
        assert probe(db, N)  # maintenance hooks reattached on load
        db.close()

        db = Database.open(path, durability=durability, page_size=PAGE)
        try:
            assert db.table("shapes").row_count == N + 1
            assert probe(db, N)
        finally:
            db.close()

    def test_second_checkpoint_accumulates(self, tmp_path, durability):
        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability=durability, page_size=PAGE)
        populate(db, rows=5)
        db.checkpoint()
        t = db.table("shapes")
        for i in range(5, 12):
            t.insert((i, square(i)))
        db.close()
        db = Database.open(path, durability=durability, page_size=PAGE)
        try:
            assert db.table("shapes").row_count == 12
        finally:
            db.close()


class TestStorageStats:
    def test_memory_database_defaults(self):
        db = Database()
        stats = db.storage_stats()
        assert stats["durability"] == "memory"
        assert stats["wal_bytes"] == 0
        assert stats["recovered_pages"] == 0

    def test_wal_stats_surface(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability="wal", page_size=PAGE)
        populate(db, rows=6)
        db.checkpoint()
        stats = db.storage_stats()
        assert stats["durability"] == "wal"
        assert stats["commits"] >= 1 and stats["checkpoints"] >= 1
        assert "wal_bytes" in stats and "recovered_pages" in stats
        db.close()

    def test_recovered_pages_counted(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability="wal", page_size=PAGE)
        populate(db, rows=6)
        # Commit the snapshot but skip the checkpoint write-back: recovery
        # must replay these pages on the next open.
        blob_db = db
        from repro.engine.database import encode_row

        blob_db._write_meta_chain(encode_row(blob_db._build_snapshot()))
        blob_db.pool.flush()
        blob_db.pager.commit()
        blob_db.pager.wal.close()
        blob_db.pager.inner.close()

        db = Database.open(path, durability="wal", page_size=PAGE)
        try:
            stats = db.storage_stats()
            assert stats["recovered_pages"] > 0
            assert db.table("shapes").row_count == 6
        finally:
            db.close()


class TestMetaChainCorruption:
    def test_cyclic_meta_chain_raises_instead_of_hanging(self, tmp_path):
        # Corrupt page 0's next-pointer into a self-loop.  The page's magic
        # and chunk checksum stay valid (the CRC covers only the chunk), so
        # without a cycle guard open() would follow the chain forever.
        import struct

        from repro.errors import StorageError

        path = str(tmp_path / "db.pages")
        db = Database.open(path, durability="none", page_size=PAGE)
        populate(db, rows=4)
        db.close()

        with open(path, "r+b") as fh:
            head = bytearray(fh.read(16))
            magic, _next, chunk_len, chunk_crc = struct.unpack_from("<IIII", head)
            struct.pack_into("<IIII", head, 0, magic, 0, chunk_len, chunk_crc)
            fh.seek(0)
            fh.write(head)

        with pytest.raises(StorageError, match="cyclic or overlong"):
            Database.open(path, durability="none", page_size=PAGE)


class TestOpenValidation:
    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="durability"):
            Database.open(str(tmp_path / "x.pages"), durability="paranoid")

    def test_checkpoint_requires_file(self):
        with pytest.raises(EngineError, match="file-backed"):
            Database().checkpoint()
