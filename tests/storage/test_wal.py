"""Write-ahead log and WalPager unit tests (no fault injection here)."""

import os

import pytest

from repro.errors import ChecksumError, WalError
from repro.storage.checksum import crc32c, mask_crc, unmask_crc
from repro.storage.pager import FilePager, MemoryPager
from repro.storage.wal import WalPager, WriteAheadLog

PAGE = 512


class TestCrc32c:
    def test_known_vector(self):
        # The classic iSCSI check value for "123456789".
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty(self):
        assert crc32c(b"") == 0

    def test_incremental_equals_whole(self):
        data = bytes(range(256)) * 3
        assert crc32c(data[100:], crc32c(data[:100])) == crc32c(data)

    def test_mask_roundtrip(self):
        for crc in (0, 1, 0xDEADBEEF, 0xFFFFFFFF):
            assert unmask_crc(mask_crc(crc)) == crc

    def test_mask_moves_zero(self):
        # Storing a masked CRC defeats "everything zeroed" corruption.
        assert mask_crc(0) != 0


class TestWriteAheadLog:
    def test_replay_only_committed(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "x.wal"), PAGE)
        wal.append_page(0, b"a" * PAGE)
        wal.commit()
        wal.append_page(1, b"b" * PAGE)  # never committed
        pages, info = wal.replay()
        assert set(pages) == {0}
        assert info.commits == 1
        assert info.discarded_bytes > 0
        wal.close()

    def test_alloc_records_give_zero_pages(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "x.wal"), PAGE)
        wal.append_alloc(3)
        wal.append_page(4, b"d" * PAGE)
        wal.commit()
        pages, _ = wal.replay()
        assert pages[3] is None and pages[4] == b"d" * PAGE
        wal.close()

    def test_torn_tail_record_is_discarded(self, tmp_path):
        path = str(tmp_path / "x.wal")
        wal = WriteAheadLog(path, PAGE)
        wal.append_page(0, b"a" * PAGE)
        wal.commit()
        wal.append_page(1, b"b" * PAGE)
        wal.commit()
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 7)  # tear the final commit record
        wal = WriteAheadLog(path, PAGE)
        pages, info = wal.replay()
        assert set(pages) == {0}
        assert info.commits == 1
        assert info.discarded_bytes > 0
        wal.close()

    def test_corrupt_record_crc_stops_replay(self, tmp_path):
        path = str(tmp_path / "x.wal")
        wal = WriteAheadLog(path, PAGE)
        wal.append_page(0, b"a" * PAGE)
        wal.commit()
        first_commit = os.path.getsize(path)
        wal.append_page(1, b"b" * PAGE)
        wal.commit()
        wal.close()
        with open(path, "r+b") as fh:
            fh.seek(first_commit + 40)  # inside the second page image
            fh.write(b"\xff\x00\xff")
        wal = WriteAheadLog(path, PAGE)
        pages, info = wal.replay()
        assert set(pages) == {0}  # the corrupt batch is rolled back whole
        assert info.commits == 1
        wal.close()

    def test_torn_header_self_heals(self, tmp_path):
        path = str(tmp_path / "x.wal")
        with open(path, "wb") as fh:
            fh.write(b"REPRO")  # half a magic: crash during creation
        wal = WriteAheadLog(path, PAGE)
        pages, info = wal.replay()
        assert pages == {} and info.commits == 0
        wal.close()

    def test_page_size_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "x.wal")
        WriteAheadLog(path, PAGE).close()
        with pytest.raises(WalError, match="page size"):
            WriteAheadLog(path, PAGE * 2)

    def test_reset_truncates(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "x.wal"), PAGE)
        wal.append_page(0, b"a" * PAGE)
        wal.commit()
        wal.reset()
        pages, info = wal.replay()
        assert pages == {} and info.commits == 0
        assert wal.size() == wal.header_size
        wal.close()

    def test_wrong_payload_size_rejected(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "x.wal"), PAGE)
        with pytest.raises(WalError):
            wal.append_page(0, b"short")
        wal.close()


def make_walpager(tmp_path, name="db"):
    inner = FilePager(str(tmp_path / f"{name}.pages"), page_size=PAGE, strict=False)
    return WalPager(inner, str(tmp_path / f"{name}.wal"))


class TestWalPager:
    def test_reads_see_buffered_writes(self, tmp_path):
        pager = make_walpager(tmp_path)
        pid = pager.allocate()
        assert pager.read(pid) == bytes(PAGE)
        pager.write(pid, b"x" * PAGE)
        assert pager.read(pid) == b"x" * PAGE
        pager.close()

    def test_checkpoint_migrates_to_main_file(self, tmp_path):
        pager = make_walpager(tmp_path)
        pid = pager.allocate()
        pager.write(pid, b"x" * PAGE)
        pager.commit()
        pager.checkpoint()
        assert pager.inner.read(pid) == b"x" * PAGE
        assert pager.wal.size() == pager.wal.header_size  # truncated
        pager.close()

    def test_uncommitted_state_lost_on_reopen(self, tmp_path):
        pager = make_walpager(tmp_path)
        pid = pager.allocate()
        pager.write(pid, b"x" * PAGE)
        pager.wal.close()  # simulate dying without commit
        pager.inner.close()
        reopened = make_walpager(tmp_path)
        assert reopened.num_pages == 0
        assert reopened.recovery.commits == 0
        reopened.close()

    def test_committed_state_recovered_on_reopen(self, tmp_path):
        pager = make_walpager(tmp_path)
        pid = pager.allocate()
        pager.write(pid, b"y" * PAGE)
        pager.commit()
        pager.wal.close()  # die after commit but before checkpoint
        pager.inner.close()
        reopened = make_walpager(tmp_path)
        assert reopened.read(pid) == b"y" * PAGE
        assert reopened.recovery.replayed_pages == 1
        reopened.close()

    def test_torn_main_page_detected_on_read(self, tmp_path):
        pager = make_walpager(tmp_path)
        pid = pager.allocate()
        pager.write(pid, b"z" * PAGE)
        pager.commit()
        pager.checkpoint()
        # Corrupt the main file behind the pager's back.
        pager.inner.write(pid, b"!" * PAGE)
        with pytest.raises(ChecksumError, match="checksum"):
            pager.read(pid)
        pager.close()

    def test_torn_main_page_repaired_on_open(self, tmp_path):
        path = tmp_path / "db.pages"
        pager = make_walpager(tmp_path)
        pid = pager.allocate()
        pager.write(pid, b"z" * PAGE)
        pager.commit()
        # Die before checkpoint, then corrupt the (stale) main file copy
        # after a partial manual checkpoint: simulate by writing garbage
        # directly and reopening — the WAL still holds the good image.
        pager.wal.close()
        pager.inner.close()
        with open(path, "r+b") as fh:
            fh.seek(0)
            fh.write(b"garbage")
        reopened = make_walpager(tmp_path)
        assert reopened.read(pid) == b"z" * PAGE
        reopened.close()

    def test_adopted_store_without_sidecar_stays_readable(self, tmp_path):
        # A main file that predates durability="wal" (or whose checksum
        # sidecar was lost) has pages the first checkpoint never rewrites;
        # their checksums must be sealed from the pages' *current* content,
        # not a placeholder that poisons every later read.
        path = str(tmp_path / "db.pages")
        inner = FilePager(path, page_size=PAGE)
        for content in (b"a", b"b", b"c"):
            pid = inner.allocate()
            inner.write(pid, content * PAGE)
        inner.close()

        pager = WalPager(FilePager(path, page_size=PAGE), str(tmp_path / "db.wal"))
        pager.write(1, b"B" * PAGE)  # touch one page only
        pager.commit()
        pager.checkpoint()
        assert pager.read(0) == b"a" * PAGE
        assert pager.read(2) == b"c" * PAGE
        pager.close()

        reopened = WalPager(
            FilePager(path, page_size=PAGE), str(tmp_path / "db.wal")
        )
        assert reopened.recovery.torn_pages_detected == 0
        assert reopened.read(0) == b"a" * PAGE
        assert reopened.read(1) == b"B" * PAGE
        assert reopened.read(2) == b"c" * PAGE
        reopened.close()

    def test_truncated_sidecar_treated_as_unverified(self, tmp_path):
        pager = make_walpager(tmp_path)
        pid = pager.allocate()
        pager.write(pid, b"s" * PAGE)
        pager.commit()
        pager.checkpoint()
        pager.close()
        chk = tmp_path / "db.wal.chk"
        blob = bytearray(chk.read_bytes())
        # Inflate the count field (magic is 10 bytes, page_size u32 next):
        # the sidecar now claims far more entries than the blob holds.
        blob[14:18] = (2**31).to_bytes(4, "little")
        chk.write_bytes(bytes(blob))
        reopened = make_walpager(tmp_path)  # must not raise struct.error
        assert reopened.read(pid) == b"s" * PAGE
        reopened.close()

    def test_memory_pager_inner_works(self, tmp_path):
        inner = MemoryPager(page_size=PAGE)
        pager = WalPager(inner, str(tmp_path / "m.wal"))
        pid = pager.allocate()
        pager.write(pid, b"m" * PAGE)
        pager.commit()
        pager.checkpoint()
        assert inner.read(pid) == b"m" * PAGE
        pager.close()

    def test_storage_stats_keys(self, tmp_path):
        pager = make_walpager(tmp_path)
        pager.allocate()
        pager.commit()
        stats = pager.storage_stats()
        for key in ("wal_bytes", "commits", "checkpoints", "recovered_pages"):
            assert key in stats
        assert stats["commits"] == 1
        pager.close()
