"""Property-based tests: the B+-tree vs a dict/sorted-list model."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage.btree import BPlusTree

keys = st.integers(min_value=-10_000, max_value=10_000)


class TestAgainstModel:
    @given(st.lists(st.tuples(keys, st.integers()), unique_by=lambda kv: kv[0]))
    @settings(max_examples=100, deadline=None)
    def test_inserts_match_dict(self, items):
        t = BPlusTree(order=5)
        model = {}
        for k, v in items:
            t.insert(k, v)
            model[k] = v
        assert len(t) == len(model)
        assert [k for k, _ in t.items()] == sorted(model)
        for k, v in model.items():
            assert t.get(k) == v
        t.check_invariants()

    @given(
        st.lists(keys, unique=True, min_size=1),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_partial_deletion(self, ks, data):
        t = BPlusTree(order=4)
        for k in ks:
            t.insert(k, k)
        to_delete = data.draw(st.lists(st.sampled_from(ks), unique=True))
        for k in to_delete:
            t.delete(k)
        remaining = sorted(set(ks) - set(to_delete))
        assert [k for k, _ in t.items()] == remaining
        t.check_invariants()

    @given(st.lists(keys, unique=True), keys, keys)
    @settings(max_examples=100, deadline=None)
    def test_range_scan_matches_filter(self, ks, a, b):
        lo, hi = min(a, b), max(a, b)
        t = BPlusTree(order=4)
        for k in ks:
            t.insert(k, None)
        expected = sorted(k for k in ks if lo <= k <= hi)
        assert [k for k, _ in t.scan(lo, hi)] == expected

    @given(st.lists(keys, unique=True, min_size=0, max_size=400))
    @settings(max_examples=50, deadline=None)
    def test_bulk_load_equals_incremental(self, ks):
        items = [(k, str(k)) for k in sorted(ks)]
        bulk = BPlusTree.bulk_load(items, order=6)
        incremental = BPlusTree(order=6)
        for k, v in items:
            incremental.insert(k, v)
        assert list(bulk.items()) == list(incremental.items())
        bulk.check_invariants()


class BTreeMachine(RuleBasedStateMachine):
    """Stateful fuzz of insert/delete/upsert against a dict model."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)
        self.model = {}

    @rule(k=keys, v=st.integers())
    def upsert(self, k, v):
        self.tree.upsert(k, v)
        self.model[k] = v

    @rule(k=keys)
    def delete_if_present(self, k):
        if k in self.model:
            assert self.tree.delete(k) == self.model.pop(k)

    @rule(k=keys)
    def lookup(self, k):
        assert self.tree.get(k) == self.model.get(k)

    @invariant()
    def sizes_match(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def structure_sound(self):
        self.tree.check_invariants()


TestBTreeStateMachine = BTreeMachine.TestCase
TestBTreeStateMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
