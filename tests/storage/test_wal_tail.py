"""Follower-shipping surface of the WAL: records_since / base_lsn.

These are the storage-level guarantees :mod:`repro.cluster.replication`
builds on: batches end at commit boundaries, uncommitted and torn tails
are never shipped, truncated history is signalled as ``reset``, and
re-shipping an applied segment is harmless.
"""

import os

import pytest

from repro.storage.fault import FaultPlan, FaultyFile
from repro.storage.pager import MemoryPager
from repro.storage.wal import (
    REC_ALLOC,
    REC_COMMIT,
    REC_PAGE,
    WalPager,
    WriteAheadLog,
)

PAGE = 512


def make_log(tmp_path, name="x"):
    return WriteAheadLog(str(tmp_path / f"{name}.wal"), PAGE)


class TestRecordsSince:
    def test_only_committed_records_ship(self, tmp_path):
        wal = make_log(tmp_path)
        wal.append_page(0, b"a" * PAGE)
        wal.commit()
        wal.append_page(1, b"b" * PAGE)  # uncommitted tail
        records, reset = wal.records_since(0)
        assert not reset
        assert [r[1] for r in records] == [REC_PAGE, REC_COMMIT]
        assert [r[0] for r in records] == [1, 2]
        wal.close()

    def test_after_lsn_filters_applied_prefix(self, tmp_path):
        wal = make_log(tmp_path)
        wal.append_page(0, b"a" * PAGE)
        first_commit = wal.commit()
        wal.append_alloc(5)
        wal.append_page(5, b"c" * PAGE)
        wal.commit()
        records, reset = wal.records_since(first_commit)
        assert not reset
        assert [r[1] for r in records] == [REC_ALLOC, REC_PAGE, REC_COMMIT]
        assert all(lsn > first_commit for lsn, *_ in records)
        # Re-shipping from 0 yields the full committed history again —
        # identical records, so a subscriber's lsn-skip makes it a no-op.
        again, _ = wal.records_since(0)
        assert again[-3:] == records
        wal.close()

    def test_batch_ends_at_commit_boundary(self, tmp_path):
        wal = make_log(tmp_path)
        for i in range(6):
            wal.append_page(i, bytes([i]) * PAGE)
        wal.commit()
        # max_records below the batch size: the whole committed batch is
        # shipped anyway (soft cap), never a commit-less prefix.
        records, _ = wal.records_since(0, max_records=3)
        assert records[-1][1] == REC_COMMIT
        assert len(records) == 7
        wal.close()

    def test_torn_final_record_not_shipped(self, tmp_path):
        path = str(tmp_path / "x.wal")
        wal = make_log(tmp_path)
        wal.append_page(0, b"a" * PAGE)
        wal.commit()
        wal.append_page(1, b"b" * PAGE)
        wal.commit()
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 7)  # tear the final commit record
        wal = WriteAheadLog(path, PAGE)
        records, reset = wal.records_since(0)
        assert not reset
        # Only the first commit's batch survives the tear.
        assert [r[1] for r in records] == [REC_PAGE, REC_COMMIT]
        wal.close()

    def test_torn_write_via_fault_plan(self, tmp_path):
        """A mid-record torn write (fault harness, not truncate())."""
        path = str(tmp_path / "f.wal")
        probe = FaultPlan.counting()
        wal = WriteAheadLog(
            path, PAGE, opener=lambda p, m: FaultyFile(p, m, probe, "wal")
        )
        wal.append_page(0, b"a" * PAGE)
        wal.commit()
        writes_for_good_prefix = probe.write_calls["wal"]
        wal.append_page(1, b"b" * PAGE)
        wal.commit()
        wal.close()

        os.unlink(path)
        plan = FaultPlan(
            7, torn_write=("wal", writes_for_good_prefix, 9)
        )
        wal = WriteAheadLog(
            path, PAGE, opener=lambda p, m: FaultyFile(p, m, plan, "wal")
        )
        wal.append_page(0, b"a" * PAGE)
        wal.commit()
        with pytest.raises(Exception):
            wal.append_page(1, b"b" * PAGE)  # torn mid-record, plan trips

        reopened = WriteAheadLog(path, PAGE)
        records, reset = reopened.records_since(0)
        assert not reset
        assert [r[1] for r in records] == [REC_PAGE, REC_COMMIT]
        reopened.close()

    def test_reset_when_history_truncated(self, tmp_path):
        wal = make_log(tmp_path)
        wal.append_page(0, b"a" * PAGE)
        wal.commit()
        wal.reset()  # checkpoint truncation
        wal.append_page(1, b"b" * PAGE)
        wal.commit()
        # A subscriber at LSN 0 needs LSN 1, but the log now starts later.
        records, reset = wal.records_since(0)
        assert reset
        # A subscriber already at the pre-truncation LSN can continue.
        records, reset = wal.records_since(2)
        assert not reset
        assert [r[1] for r in records] == [REC_PAGE, REC_COMMIT]
        wal.close()

    def test_reset_on_empty_log_behind_checkpoint(self, tmp_path):
        wal = make_log(tmp_path)
        wal.append_page(0, b"a" * PAGE)
        wal.commit()
        wal.reset()
        # Log is empty but LSNs 1..2 happened: a subscriber at 0 is stale.
        records, reset = wal.records_since(0)
        assert records == [] and reset
        records, reset = wal.records_since(2)
        assert records == [] and not reset
        wal.close()


class TestBaseLsn:
    def test_fresh_log_base_is_zero(self, tmp_path):
        wal = make_log(tmp_path)
        assert wal.base_lsn() == 0
        wal.close()

    def test_base_advances_with_truncation(self, tmp_path):
        wal = make_log(tmp_path)
        wal.append_page(0, b"a" * PAGE)
        last = wal.commit()
        assert wal.base_lsn() == 0  # records still in the log
        wal.reset()
        assert wal.base_lsn() == last  # checkpoint covers everything
        wal.append_page(1, b"b" * PAGE)
        wal.commit()
        assert wal.base_lsn() == last  # first surviving record is last+1
        wal.close()


class TestPagerRoundTrip:
    def test_shipped_records_rebuild_identical_pages(self, tmp_path):
        """Apply records_since output to a second pager: states match."""
        leader = WalPager(
            MemoryPager(page_size=PAGE), str(tmp_path / "leader.wal")
        )
        p0 = leader.allocate()
        leader.write(p0, b"x" * PAGE)
        p1 = leader.allocate()
        leader.write(p1, b"y" * PAGE)
        leader.commit()

        records, reset = leader.wal.records_since(0)
        assert not reset

        replica = WalPager(
            MemoryPager(page_size=PAGE), str(tmp_path / "replica.wal")
        )
        applied_lsn = 0
        for lsn, rtype, page_id, payload in records:
            if lsn <= applied_lsn:
                continue
            if rtype == REC_ALLOC:
                while replica.num_pages <= page_id:
                    replica.allocate()
            elif rtype == REC_PAGE:
                while replica.num_pages <= page_id:
                    replica.allocate()
                replica.write(page_id, payload)
            elif rtype == REC_COMMIT:
                replica.commit()
                applied_lsn = lsn
        assert replica.num_pages == leader.num_pages
        assert replica.read(p0) == b"x" * PAGE
        assert replica.read(p1) == b"y" * PAGE

        # Second application of the same segment: lsn guard skips all.
        before = replica.num_pages
        skipped = [r for r in records if r[0] <= applied_lsn]
        assert len(skipped) == len(records)
        assert replica.num_pages == before
        leader.close()
        replica.close()


class TestLastLsn:
    """``last_lsn`` is the committed watermark followers lag against."""

    def test_uncommitted_tail_not_counted(self, tmp_path):
        # A leader whose log ends in pending records must not report them:
        # tail shipping stops at commit boundaries, so counting them would
        # show a fully caught-up follower as permanently lagging.
        wal = make_log(tmp_path)
        assert wal.last_lsn() == 0
        wal.append_page(0, b"a" * PAGE)
        commit_lsn = wal.commit()
        assert wal.last_lsn() == commit_lsn
        wal.append_alloc(1)
        wal.append_page(1, b"b" * PAGE)  # uncommitted tail
        assert wal.last_lsn() == commit_lsn
        records, _ = wal.records_since(0)
        assert records[-1][0] == wal.last_lsn()
        wal.close()

    def test_watermark_survives_replay(self, tmp_path):
        wal = make_log(tmp_path)
        wal.append_page(0, b"a" * PAGE)
        commit_lsn = wal.commit()
        wal.append_page(0, b"c" * PAGE)  # discarded on replay
        wal.close()
        reopened = make_log(tmp_path)
        reopened.replay()
        assert reopened.last_lsn() == commit_lsn
        reopened.close()
