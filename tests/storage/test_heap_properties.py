"""Stateful property test: the heap vs a dict model (hypothesis)."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.pager import MemoryPager

records = st.binary(min_size=0, max_size=400)


class HeapMachine(RuleBasedStateMachine):
    """insert/read/update/delete fuzz against a dict model.

    Uses a small page size (256B) and tiny buffer pool (4 frames) so page
    splits, overflow chains and evictions all happen constantly.
    """

    rowids = Bundle("rowids")

    def __init__(self):
        super().__init__()
        self.heap = HeapFile(
            BufferPool(MemoryPager(page_size=256), capacity=4)
        )
        self.model = {}

    @rule(target=rowids, record=records)
    def insert(self, record):
        rowid = self.heap.insert(record)
        assert rowid not in self.model
        self.model[rowid] = record
        return rowid

    @rule(rowid=rowids, record=records)
    def update(self, rowid, record):
        if rowid in self.model:
            self.heap.update(rowid, record)
            self.model[rowid] = record

    @rule(rowid=rowids)
    def delete(self, rowid):
        if rowid in self.model:
            self.heap.delete(rowid)
            del self.model[rowid]

    @rule(rowid=rowids)
    def read(self, rowid):
        if rowid in self.model:
            assert self.heap.read(rowid) == self.model[rowid]

    @invariant()
    def row_count_matches(self):
        assert self.heap.row_count == len(self.model)

    @invariant()
    def scan_matches_model(self):
        assert dict(self.heap.scan()) == self.model


TestHeapStateMachine = HeapMachine.TestCase
TestHeapStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
