"""Unit tests for the catalog."""

import pytest

from repro.errors import CatalogError
from repro.storage.catalog import Catalog, ColumnMeta, IndexMeta, TableMeta


def table_meta(name="t"):
    return TableMeta(
        name=name,
        columns=[ColumnMeta("id", "NUMBER"), ColumnMeta("geom", "SDO_GEOMETRY")],
        heap_name=f"{name}_heap",
    )


def index_meta(name="t_idx", table="t", kind="RTREE"):
    return IndexMeta(
        name=name,
        table_name=table,
        column_name="geom",
        index_kind=kind,
        index_table_name=f"{name}_tab",
    )


class TestTables:
    def test_register_and_lookup_case_insensitive(self):
        cat = Catalog()
        cat.register_table(table_meta("Counties"))
        assert cat.table("COUNTIES").name == "Counties"
        assert cat.has_table("counties")

    def test_duplicate_rejected(self):
        cat = Catalog()
        cat.register_table(table_meta())
        with pytest.raises(CatalogError):
            cat.register_table(table_meta())

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_drop_table_cascades_indexes(self):
        cat = Catalog()
        cat.register_table(table_meta())
        cat.register_index(index_meta())
        cat.drop_table("t")
        assert not cat.has_table("t")
        assert not cat.has_index("t_idx")

    def test_column_index_lookup(self):
        meta = table_meta()
        assert meta.column_index("GEOM") == 1
        with pytest.raises(CatalogError):
            meta.column_index("missing")


class TestIndexes:
    def test_register_requires_table(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.register_index(index_meta())

    def test_register_and_query(self):
        cat = Catalog()
        cat.register_table(table_meta())
        cat.register_index(index_meta())
        assert cat.index("T_IDX").index_kind == "RTREE"
        assert len(cat.indexes_on("t")) == 1

    def test_spatial_index_on(self):
        cat = Catalog()
        cat.register_table(table_meta())
        cat.register_index(index_meta(kind="BTREE"))
        assert cat.spatial_index_on("t", "geom") is None
        cat.register_index(index_meta(name="t_sidx", kind="QUADTREE"))
        found = cat.spatial_index_on("t", "geom")
        assert found is not None and found.name == "t_sidx"

    def test_drop_index(self):
        cat = Catalog()
        cat.register_table(table_meta())
        cat.register_index(index_meta())
        cat.drop_index("t_idx")
        assert not cat.has_index("t_idx")
        with pytest.raises(CatalogError):
            cat.drop_index("t_idx")

    def test_metadata_parameters_roundtrip(self):
        meta = index_meta()
        meta.parameters["fanout"] = 32
        meta.parameters["root"] = None
        assert meta.parameters["fanout"] == 32
