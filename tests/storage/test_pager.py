"""Unit tests for page storage backends."""

import pytest

from repro.errors import PageError
from repro.storage.pager import PAGE_SIZE, FilePager, MemoryPager


class TestMemoryPager:
    def test_allocate_returns_sequential_ids(self):
        p = MemoryPager()
        assert p.allocate() == 0
        assert p.allocate() == 1
        assert p.num_pages == 2

    def test_new_page_is_zeroed(self):
        p = MemoryPager()
        pid = p.allocate()
        assert p.read(pid) == bytes(PAGE_SIZE)

    def test_write_read_roundtrip(self):
        p = MemoryPager(page_size=128)
        pid = p.allocate()
        data = bytes(range(128))
        p.write(pid, data)
        assert p.read(pid) == data

    def test_wrong_size_write_rejected(self):
        p = MemoryPager(page_size=128)
        pid = p.allocate()
        with pytest.raises(PageError):
            p.write(pid, b"short")

    def test_bad_page_id(self):
        p = MemoryPager()
        with pytest.raises(PageError):
            p.read(0)
        p.allocate()
        with pytest.raises(PageError):
            p.read(5)

    def test_stats_count_physical_io(self):
        p = MemoryPager(page_size=64)
        pid = p.allocate()
        p.write(pid, bytes(64))
        p.read(pid)
        p.read(pid)
        assert p.stats.allocations == 1
        assert p.stats.writes == 1
        assert p.stats.reads == 2
        p.stats.reset()
        assert p.stats.reads == 0

    def test_tiny_page_size_rejected(self):
        with pytest.raises(PageError):
            MemoryPager(page_size=16)


class TestFilePager:
    def test_roundtrip_through_file(self, tmp_path):
        path = str(tmp_path / "data.pages")
        p = FilePager(path, page_size=256)
        pid = p.allocate()
        payload = bytes([7] * 256)
        p.write(pid, payload)
        p.flush()
        p.close()

        reopened = FilePager(path, page_size=256)
        assert reopened.num_pages == 1
        assert reopened.read(pid) == payload
        reopened.close()

    def test_multiple_pages_persist(self, tmp_path):
        path = str(tmp_path / "multi.pages")
        p = FilePager(path, page_size=128)
        ids = [p.allocate() for _ in range(5)]
        for i, pid in enumerate(ids):
            p.write(pid, bytes([i] * 128))
        p.flush()
        p.close()

        reopened = FilePager(path, page_size=128)
        for i, pid in enumerate(ids):
            assert reopened.read(pid) == bytes([i] * 128)
        reopened.close()

    def test_misaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.pages"
        path.write_bytes(b"x" * 100)
        with pytest.raises(PageError):
            FilePager(str(path), page_size=128)

    def test_out_of_range_read(self, tmp_path):
        p = FilePager(str(tmp_path / "r.pages"), page_size=128)
        with pytest.raises(PageError):
            p.read(0)
        p.close()
