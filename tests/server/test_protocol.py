"""Unit tests for wire framing, error frames and row serialisation."""

import pytest

from repro import Geometry
from repro.errors import ProtocolError
from repro.server import protocol
from repro.storage.heap import RowId


class TestFraming:
    def test_encode_round_trips(self):
        message = {"id": 3, "op": "fetch", "session": "s1", "n": 10}
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert protocol.decode_line(line) == message

    def test_decode_rejects_malformed_json(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"{nope\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"[1, 2]\n")

    def test_decode_rejects_oversized(self):
        line = b'{"op": "' + b"x" * protocol.MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError):
            protocol.decode_line(line)

    def test_error_response_shape(self):
        response = protocol.error_response(7, protocol.ERR_OVERLOADED, "busy")
        assert response == {
            "id": 7,
            "ok": False,
            "error": {"code": "OVERLOADED", "message": "busy"},
        }

    def test_ok_response_merges_fields(self):
        response = protocol.ok_response(1, session="s9", rows=[])
        assert response["ok"] and response["session"] == "s9"


class TestRowSerialisation:
    def test_rowid_round_trip(self):
        rowid = RowId(page=12, slot=3)
        wire = protocol.rowid_to_wire(rowid)
        assert wire == [12, 3]
        assert protocol.rowid_from_wire(wire) == (12, 3)

    def test_jsonify_scalars_pass_through(self):
        assert protocol.jsonify_row((1, 2.5, "x", None, True)) == [
            1,
            2.5,
            "x",
            None,
            True,
        ]

    def test_jsonify_geometry_becomes_wkt(self):
        geom = Geometry.rectangle(0, 0, 1, 1)
        (cell,) = protocol.jsonify_row((geom,))
        assert isinstance(cell, str) and cell.startswith("POLYGON")

    def test_jsonify_rowid_cell(self):
        (cell,) = protocol.jsonify_row((RowId(page=4, slot=9),))
        assert cell == [4, 9]
