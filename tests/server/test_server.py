"""End-to-end tests for the concurrent query service.

One `BackgroundServer` per module-scoped fixture; most tests talk to it
over real sockets with `QueryClient`.  The acceptance criteria from the
issue live here: byte-identical paged joins, disconnect/deadline hygiene
(asserted through the ``stats`` endpoint), backpressure, and graceful
shutdown.
"""

import random
import threading
import time

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.engine.parallel import WorkerContext
from repro.geometry.wkt import to_wkt
from repro.server import BackgroundServer, QueryClient, QueryService, RemoteError
from repro.server.protocol import (
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    ERR_UNKNOWN_SESSION,
)


def rects(n, seed, extent=100.0, size=4.0):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x = rng.uniform(0, extent - size)
        y = rng.uniform(0, extent - size)
        out.append(
            Geometry.rectangle(
                x, y,
                x + rng.uniform(size * 0.2, size),
                y + rng.uniform(size * 0.2, size),
            )
        )
    return out


def build_db() -> Database:
    db = Database()
    load_geometries(db, "a_tab", rects(180, seed=71))
    load_geometries(db, "b_tab", rects(200, seed=72))
    db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
    db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE", fanout=6)
    return db


@pytest.fixture(scope="module")
def served():
    """(handle, db) for a background server over the two-table database."""
    db = build_db()
    with BackgroundServer(db) as handle:
        yield handle, db


@pytest.fixture
def client(served):
    handle, _ = served
    with QueryClient(port=handle.port) as c:
        yield c


def wire_pairs_to_tuples(rows):
    return [((a[0], a[1]), (b[0], b[1])) for a, b in rows]


def expected_join_pairs(db):
    result = db.spatial_join("a_tab", "geom", "b_tab", "geom")
    return [
        ((ra.page, ra.slot), (rb.page, rb.slot)) for ra, rb in result.pairs
    ]


JOIN_PARAMS = {
    "table_a": "a_tab",
    "column_a": "geom",
    "table_b": "b_tab",
    "column_b": "geom",
}


class TestQueryKinds:
    def test_ping(self, client):
        assert client.ping()

    def test_paged_join_is_byte_identical_to_in_process(self, served, client):
        """The headline acceptance criterion: same pairs, same order."""
        _, db = served
        session = client.start("spatial_join", JOIN_PARAMS)
        rows = session.all(page=7)  # awkward page size on purpose
        assert wire_pairs_to_tuples(rows) == expected_join_pairs(db)

    def test_join_small_pages_equal_one_big_fetch(self, served, client):
        small = client.start("spatial_join", JOIN_PARAMS).all(page=3)
        big = client.start("spatial_join", JOIN_PARAMS).all(page=65536)
        assert small == big

    def test_window_query_matches_engine(self, served, client):
        _, db = served
        query = Geometry.rectangle(10, 10, 40, 40)
        session = client.start(
            "window",
            {"table": "a_tab", "column": "geom", "wkt": to_wkt(query)},
        )
        got = {tuple(r) for r in session.all()}
        want = {
            (rid.page, rid.slot)
            for rid in db.select_rowids(
                "a_tab", "geom", "SDO_RELATE",
                [query, "ANYINTERACT"], WorkerContext(0),
            )
        }
        assert got == want and got

    def test_knn_query(self, served, client):
        session = client.start(
            "knn",
            {
                "table": "b_tab",
                "column": "geom",
                "wkt": "POINT (50 50)",
                "k": 5,
            },
        )
        rows = session.all()
        assert len(rows) == 5
        assert session.extra["k"] == 5

    def test_sql_session_pages_with_columns(self, served, client):
        session = client.start(
            "sql", {"statement": "select id from a_tab where id <= 10"}
        )
        assert session.columns == ["ID"]
        rows = session.all(page=4)
        assert sorted(r[0] for r in rows) == sorted(
            row[0] for row in served[1].sql(
                "select id from a_tab where id <= 10"
            ).rows
        )
        assert rows

    def test_close_midway_reports_not_exhausted(self, client):
        session = client.start("spatial_join", JOIN_PARAMS)
        session.fetch(2)
        summary = session.close()
        assert summary["rows"] == 2
        assert summary["exhausted"] is False

    def test_fetch_after_close_is_unknown_session(self, client):
        session = client.start("sql", {"statement": "select id from a_tab"})
        session.close()
        with pytest.raises(RemoteError) as info:
            client.fetch(session.session_id, 1)
        assert info.value.code == ERR_UNKNOWN_SESSION

    def test_bad_requests(self, client):
        with pytest.raises(RemoteError) as info:
            client.start("window", {"table": "a_tab"})
        assert info.value.code == ERR_BAD_REQUEST
        with pytest.raises(RemoteError) as info:
            client.start("nonsense", {})
        assert info.value.code == ERR_BAD_REQUEST
        with pytest.raises(RemoteError) as info:
            client.start("window", {"table": "a_tab", "column": "geom",
                                    "wkt": "POLYGON oops"})
        assert info.value.code == ERR_BAD_REQUEST

    def test_malformed_frame_gets_error_not_hangup(self, client):
        client.send_raw(b"this is not json\n")
        response = client.read_response()
        assert response["ok"] is False
        assert response["error"]["code"] == ERR_BAD_REQUEST
        assert client.ping()  # connection still usable


class TestConcurrency:
    def test_concurrent_sessions_interleave_correctly(self, served):
        """Many clients paging joins at once all see the exact result."""
        handle, db = served
        want = expected_join_pairs(db)
        results = {}
        errors = []

        def worker(i):
            try:
                with QueryClient(port=handle.port) as c:
                    session = c.start("spatial_join", JOIN_PARAMS)
                    results[i] = wire_pairs_to_tuples(
                        session.all(page=5 + i)
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(results) == 6
        for pairs in results.values():
            assert pairs == want

    def test_pipelined_requests_answered_in_order(self, served):
        handle, _ = served
        with QueryClient(port=handle.port) as c:
            # Two pings and a stats written before reading anything back.
            c.send_raw(
                b'{"id": 101, "op": "ping"}\n'
                b'{"id": 102, "op": "stats"}\n'
                b'{"id": 103, "op": "ping"}\n'
            )
            ids = [c.read_response()["id"] for _ in range(3)]
        assert ids == [101, 102, 103]


def poll_stats(client, predicate, timeout=5.0):
    """Poll the stats endpoint until ``predicate(stats)`` or timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = client.stats()
        if predicate(stats):
            return stats
        time.sleep(0.02)
    return client.stats()


class TestRobustness:
    def test_disconnect_mid_fetch_leaks_nothing(self, served):
        """A client vanishing mid-join shows up in stats, not as a leak."""
        handle, _ = served
        before = None
        with QueryClient(port=handle.port) as observer:
            before = observer.stats()["sessions"]["closed_disconnect"]
            rogue = QueryClient(port=handle.port)
            session = rogue.start("spatial_join", JOIN_PARAMS)
            session.fetch(3)  # mid-stream: rows fetched, far from eof
            rogue.close()  # vanish without close

            stats = poll_stats(
                observer,
                lambda s: s["sessions"]["closed_disconnect"] > before
                and s["sessions"]["active"] == 0,
            )
            assert stats["sessions"]["closed_disconnect"] == before + 1
            assert stats["sessions"]["active"] == 0
            # the abandoned session's metered work still reached the stats
            assert stats["meters"]["spatial_join"].get("mbr_test", 0) > 0

    def test_deadline_cancels_and_removes_session(self, served):
        handle, _ = served
        with QueryClient(port=handle.port) as c:
            before = c.stats()["sessions"]["cancelled_deadline"]
            session = c.start("spatial_join", JOIN_PARAMS, deadline_ms=20)
            time.sleep(0.08)  # let the deadline lapse before fetching
            with pytest.raises(RemoteError) as info:
                session.fetch(10)
            assert info.value.code == ERR_DEADLINE
            # the session is gone server-side, not leaked
            with pytest.raises(RemoteError) as info:
                client_fetch = c.fetch(session.session_id, 1)  # noqa: F841
            assert info.value.code == ERR_UNKNOWN_SESSION
            stats = c.stats()
            assert stats["sessions"]["cancelled_deadline"] == before + 1
            assert stats["sessions"]["active"] == 0

    def test_stats_counts_queries_and_rows(self, served):
        handle, db = served
        with QueryClient(port=handle.port) as c:
            session = c.start("spatial_join", JOIN_PARAMS)
            n_pairs = len(session.all(page=11))
            stats = poll_stats(
                c, lambda s: s["queries"]["spatial_join"]["rows"] >= n_pairs
            )
        join_stats = stats["queries"]["spatial_join"]
        assert join_stats["rows"] >= n_pairs
        assert join_stats["latency"]["count"] >= 1
        assert join_stats["latency"]["p50_ms"] >= 0
        assert stats["requests"]["fetch"]["count"] >= 1


class TestBackpressure:
    def test_session_cap_rejects_with_overloaded(self):
        db = build_db()
        with BackgroundServer(db, max_sessions=1) as handle:
            with QueryClient(port=handle.port) as c:
                first = c.start("spatial_join", JOIN_PARAMS)
                with pytest.raises(RemoteError) as info:
                    c.start("spatial_join", JOIN_PARAMS)
                assert info.value.code == ERR_OVERLOADED
                assert (
                    c.stats()["sessions"]["rejected_overload"] >= 1
                )
                first.close()
                # capacity freed: a new start succeeds again
                c.start("sql", {"statement": "select id from a_tab"}).close()

    def test_inflight_cap_rejects_immediately(self):
        """With the bridge saturated, new work is rejected, not queued."""
        db = build_db()
        release = threading.Event()

        class StallingService(QueryService):
            def open(self, kind, params, ctx):
                release.wait(timeout=10)
                return super().open(kind, params, ctx)

        with BackgroundServer(
            db, max_inflight=1, service=StallingService(db)
        ) as handle:
            try:
                slow_error = []

                def slow_start():
                    try:
                        with QueryClient(port=handle.port) as c1:
                            c1.start("sql", {"statement": "select id from a_tab"})
                    except Exception as exc:  # pragma: no cover
                        slow_error.append(exc)

                t = threading.Thread(target=slow_start)
                t.start()
                # wait until the stalled start occupies the inflight slot
                deadline = time.monotonic() + 5
                while handle.server._inflight < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                with QueryClient(port=handle.port) as c2:
                    with pytest.raises(RemoteError) as info:
                        c2.start("sql", {"statement": "select id from a_tab"})
                    assert info.value.code == ERR_OVERLOADED
            finally:
                release.set()
                t.join(timeout=10)
            assert not slow_error


class TestGracefulShutdown:
    def test_drain_lets_live_sessions_finish(self):
        db = build_db()
        handle = BackgroundServer(db).start()
        try:
            with QueryClient(port=handle.port) as c:
                session = c.start("spatial_join", JOIN_PARAMS)
                first_page, _ = session.fetch(4)
                handle.server.request_shutdown()
                deadline = time.monotonic() + 5
                while not handle.server._draining:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                # new sessions are refused while draining...
                with pytest.raises(RemoteError) as info:
                    c.start("sql", {"statement": "select id from a_tab"})
                assert info.value.code == ERR_SHUTTING_DOWN
                # ...but the live session pages to completion and closes
                rest = []
                eof = False
                while not eof:
                    rows, eof = session.fetch(64)
                    rest.extend(rows)
                summary = session.close()
                assert summary["exhausted"] is True
                assert len(first_page) + len(rest) == summary["rows"]
        finally:
            handle.stop()
        assert not handle._thread.is_alive()
