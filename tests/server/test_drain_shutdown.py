"""Sessions that outlive the drain window must die *typed*.

The graceful path (drain lets live sessions finish) is covered in
``test_server.py``; this file pins the other half of the contract: a
session still paging when ``drain_timeout`` expires gets a
``SHUTTING_DOWN`` cancel on its next fetch instead of a socket reset or
a timeout — the router's retry layer keys on that code to re-scatter
the slice elsewhere.
"""

import random
import time

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.server import BackgroundServer, QueryClient, RemoteError
from repro.server.protocol import ERR_SHUTTING_DOWN


def rects(n, seed, extent=100.0, size=4.0):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x = rng.uniform(0, extent - size)
        y = rng.uniform(0, extent - size)
        out.append(
            Geometry.rectangle(
                x, y,
                x + rng.uniform(size * 0.2, size),
                y + rng.uniform(size * 0.2, size),
            )
        )
    return out


JOIN_PARAMS = {
    "table_a": "a_tab", "column_a": "geom",
    "table_b": "b_tab", "column_b": "geom",
}


class TestDrainDeadlineCancelsTyped:
    def test_straggler_fetch_answers_shutting_down(self):
        db = Database()
        load_geometries(db, "a_tab", rects(180, seed=71))
        load_geometries(db, "b_tab", rects(200, seed=72))
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE")
        db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE")
        handle = BackgroundServer(db, drain_timeout=1.0).start()
        try:
            with QueryClient(port=handle.port) as client:
                session = client.start("spatial_join", JOIN_PARAMS)
                rows, eof = session.fetch(2)
                assert rows and not eof
                handle.server.request_shutdown()
                # Keep paging one row at a time: the session deliberately
                # refuses to finish inside the drain window, so the
                # server's deadline cancel must cut it off — typed.
                deadline = time.monotonic() + 10.0
                with pytest.raises(RemoteError) as info:
                    while time.monotonic() < deadline:
                        session.fetch(1)
                        time.sleep(0.02)
                assert info.value.code == ERR_SHUTTING_DOWN
        finally:
            handle.stop()
        assert not handle._thread.is_alive()
