"""Server-side ``strategy`` parameter for spatial_join sessions."""

import random

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.server import BackgroundServer, QueryClient, RemoteError


def rects(n, seed, extent=100.0, size=4.0):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x = rng.uniform(0, extent - size)
        y = rng.uniform(0, extent - size)
        out.append(
            Geometry.rectangle(
                x, y,
                x + rng.uniform(size * 0.2, size),
                y + rng.uniform(size * 0.2, size),
            )
        )
    return out


@pytest.fixture(scope="module")
def served():
    db = Database()
    load_geometries(db, "a_tab", rects(150, seed=61))
    load_geometries(db, "b_tab", rects(160, seed=62))
    db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
    db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE", fanout=6)
    with BackgroundServer(db) as handle:
        yield handle, db


@pytest.fixture
def client(served):
    handle, _ = served
    with QueryClient(port=handle.port) as c:
        yield c


PARAMS = {
    "table_a": "a_tab",
    "column_a": "geom",
    "table_b": "b_tab",
    "column_b": "geom",
}


def as_pair_set(rows):
    return {((a[0], a[1]), (b[0], b[1])) for a, b in rows}


class TestGridStrategyParam:
    def test_serial_grid_equals_default(self, client):
        ref = client.start("spatial_join", PARAMS).all()
        grid = client.start(
            "spatial_join", {**PARAMS, "strategy": "GRID"}
        ).all()
        assert as_pair_set(grid) == as_pair_set(ref)
        assert len(grid) == len(ref)  # no duplicates either way

    def test_parallel_grid_equals_default(self, client):
        ref = client.start("spatial_join", PARAMS).all()
        grid = client.start(
            "spatial_join", {**PARAMS, "strategy": "grid", "parallel": 4}
        ).all()
        assert as_pair_set(grid) == as_pair_set(ref)
        assert len(grid) == len(ref)

    def test_strategy_echoed_in_start_extra(self, client):
        session = client.start(
            "spatial_join", {**PARAMS, "strategy": "GRID", "parallel": 2}
        )
        assert session.extra.get("strategy") == "GRID"
        session.all()

    def test_bad_strategy_rejected(self, client):
        with pytest.raises(RemoteError):
            client.start(
                "spatial_join", {**PARAMS, "strategy": "VORONOI"}
            ).all()
