"""The wire ``trace.get`` op and client-visible trace ids (single node)."""

import pytest

from repro import Database
from repro.obs import trace
from repro.server import BackgroundServer, QueryClient, RemoteError
from repro.server import protocol


def _seeded_db():
    db = Database()
    db.sql("create table pts (id number, geom sdo_geometry)")
    for i in range(4):
        db.sql(
            f"insert into pts values ({i}, sdo_geometry('POINT ({i} {i})'))"
        )
    return db


@pytest.fixture
def _traced():
    trace.enable()
    try:
        yield
    finally:
        trace.disable()


class TestTraceOp:
    def test_start_returns_trace_id_and_trace_get_stitches(self, _traced):
        with BackgroundServer(_seeded_db()) as server:
            with QueryClient(port=server.port) as client:
                session = client.start(
                    "sql", {"statement": "select id from pts"}
                )
                assert session.trace_id is not None
                session.all()  # close the session so the span finishes
                stitched = client.trace(session.session_id)
        assert stitched["trace"] == session.trace_id
        names = {s["name"] for s in stitched["spans"]}
        assert {"server.session", "server.start", "server.fetch"} <= names
        # One tree, rooted at the session span.
        assert len(stitched["tree"]) == 1
        assert stitched["tree"][0]["span"]["name"] == "server.session"
        # Every span belongs to the same wire trace: one id on the wire.
        ids = {s["span_id"] for s in stitched["spans"]}
        parents = {
            s["parent_id"] for s in stitched["spans"]
            if s["parent_id"] is not None
        }
        assert parents <= ids

    def test_session_convenience_method(self, _traced):
        with BackgroundServer(_seeded_db()) as server:
            with QueryClient(port=server.port) as client:
                session = client.start(
                    "sql", {"statement": "select id from pts"}
                )
                session.all()
                stitched = session.trace()
        assert stitched["spans"]

    def test_spans_carry_meter_deltas_not_charges(self, _traced):
        """Trace spans report meter *deltas*; the session's work is
        attributed to spans without adding any charge of its own."""
        db = _seeded_db()
        db.create_spatial_index("pts_idx", "pts", "geom", kind="RTREE", fanout=6)
        with BackgroundServer(db) as server:
            with QueryClient(port=server.port) as client:
                session = client.start(
                    "window",
                    {
                        "table": "pts",
                        "column": "geom",
                        "operator": "SDO_FILTER",
                        "wkt": "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))",
                    },
                )
                session.all()
                stitched = client.trace(session.session_id)
        deltas = [s["meter_delta"] for s in stitched["spans"]]
        assert any(d for d in deltas)  # the query charged real work

    def test_tracing_off_no_trace_field_and_unknown_session(self):
        assert not trace.enabled()
        with BackgroundServer(_seeded_db()) as server:
            with QueryClient(port=server.port) as client:
                session = client.start(
                    "sql", {"statement": "select id from pts"}
                )
                assert session.trace_id is None
                session.all()
                with pytest.raises(RemoteError) as err:
                    client.trace(session.session_id)
        assert err.value.code == protocol.ERR_UNKNOWN_SESSION

    def test_unknown_session_id_errors(self, _traced):
        with BackgroundServer(_seeded_db()) as server:
            with QueryClient(port=server.port) as client:
                with pytest.raises(RemoteError) as err:
                    client.trace("sess-nope")
        assert err.value.code == protocol.ERR_UNKNOWN_SESSION
