"""Server-side fault handling: engine crashes mid-query must not leak
sessions, and the stats endpoint must keep working (including the storage
section) no matter what the engine does."""

import random

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.engine.database import Database as EngineDatabase
from repro.server import BackgroundServer, QueryClient, QueryService, RemoteError
from repro.server.protocol import ERR_INTERNAL, ERR_UNKNOWN_SESSION


def build_db():
    db = Database()
    rng = random.Random(9)
    rects = []
    for _ in range(40):
        x, y = rng.uniform(0, 90), rng.uniform(0, 90)
        rects.append(Geometry.rectangle(x, y, x + 2, y + 2))
    load_geometries(db, "a_tab", rects)
    db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
    return db


class BlowUpAfter(QueryService):
    """Streams ``good_rows`` rows, then the engine 'crashes'."""

    def __init__(self, db, good_rows=3):
        super().__init__(db)
        self.good_rows = good_rows
        self.cursor_closed = False

    def open(self, kind, params, ctx):
        service = self

        def rows():
            try:
                for i in range(service.good_rows):
                    yield [i]
                raise RuntimeError("engine exploded mid-fetch")
            finally:
                service.cursor_closed = True

        return rows(), {"columns": ["N"]}


class TestMidFetchEngineCrash:
    def test_session_cleaned_up_and_counted(self):
        db = build_db()
        service = BlowUpAfter(db, good_rows=3)
        with BackgroundServer(db, service=service) as handle:
            with QueryClient(port=handle.port) as c:
                session = c.start("sql", {"statement": "irrelevant"})
                with pytest.raises(RemoteError) as info:
                    session.fetch(10)  # asks past the crash point
                assert info.value.code == ERR_INTERNAL
                assert "engine exploded" in str(info.value)

                # The session is gone server-side, not leaked...
                with pytest.raises(RemoteError) as info:
                    c.fetch(session.session_id, 1)
                assert info.value.code == ERR_UNKNOWN_SESSION

                stats = c.stats()
                assert stats["sessions"]["active"] == 0
                assert stats["sessions"]["closed"] >= 1
                assert stats["queries"]["sql"]["errors"] >= 1
        # ...and its generator was closed, releasing engine resources.
        assert service.cursor_closed

    def test_crash_in_open_leaves_no_session(self):
        db = build_db()

        class OpenBomb(QueryService):
            def open(self, kind, params, ctx):
                raise RuntimeError("open exploded")

        with BackgroundServer(db, service=OpenBomb(db)) as handle:
            with QueryClient(port=handle.port) as c:
                with pytest.raises(RemoteError) as info:
                    c.start("sql", {"statement": "x"})
                assert info.value.code == ERR_INTERNAL
                stats = c.stats()
                assert stats["sessions"]["active"] == 0
                assert stats["sessions"]["opened"] == 0

    def test_server_survives_repeated_crashes(self):
        db = build_db()
        with BackgroundServer(db, service=BlowUpAfter(db, good_rows=0)) as handle:
            with QueryClient(port=handle.port) as c:
                for _ in range(5):
                    session = c.start("sql", {"statement": "x"})
                    with pytest.raises(RemoteError):
                        session.fetch(1)
                assert c.ping()
                assert c.stats()["sessions"]["active"] == 0


class TestStorageStatsEndpoint:
    def test_memory_db_reports_storage_section(self):
        db = build_db()
        with BackgroundServer(db) as handle:
            with QueryClient(port=handle.port) as c:
                storage = c.stats()["storage"]
        assert storage["durability"] == "memory"
        assert storage["wal_bytes"] == 0
        assert storage["recovered_pages"] == 0

    def test_wal_db_reports_wal_counters(self, tmp_path):
        db = EngineDatabase.open(
            str(tmp_path / "served.pages"), durability="wal", page_size=512
        )
        rects = [Geometry.rectangle(i, i, i + 1, i + 1) for i in range(10)]
        load_geometries(db, "a_tab", rects)
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
        db.checkpoint()
        try:
            with BackgroundServer(db) as handle:
                with QueryClient(port=handle.port) as c:
                    storage = c.stats()["storage"]
            assert storage["durability"] == "wal"
            assert storage["checkpoints"] >= 1
            assert "wal_bytes" in storage and "recovered_pages" in storage
        finally:
            db.close()

    def test_broken_storage_stats_never_breaks_serving(self):
        db = build_db()

        def boom():
            raise RuntimeError("stats backend down")

        db.storage_stats = boom  # instance attribute shadows the method
        with BackgroundServer(db) as handle:
            with QueryClient(port=handle.port) as c:
                stats = c.stats()
                # scrapers still see the stable zeroed storage schema
                assert stats["storage"]["durability"] == "none"
                assert stats["storage"]["wal_bytes"] == 0
                assert c.ping()
