"""LatencyHistogram edge cases and metrics snapshot/exposition behavior."""

import threading

import pytest

from repro.server.metrics import _BOUNDS, LatencyHistogram, ServerMetrics


class TestLatencyHistogramEdges:
    def test_empty_percentiles_are_zero(self):
        hist = LatencyHistogram()
        for p in (0, 50, 90, 99, 100):
            assert hist.percentile(p) == 0.0
        snap = hist.snapshot()
        assert snap == {
            "count": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p90_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
        }

    def test_single_sample(self):
        hist = LatencyHistogram()
        hist.record(0.010)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["mean_ms"] == 10.0
        assert snap["max_ms"] == 10.0
        # every percentile lands in the one occupied bucket, whose upper
        # bound is the first power-of-two bound >= the sample
        for p in (50, 90, 99):
            bound = hist.percentile(p)
            assert 0.010 <= bound <= 0.0128 + 1e-12

    def test_value_beyond_last_bucket_bound(self):
        hist = LatencyHistogram()
        huge = _BOUNDS[-1] * 10  # way past the ~2min top bound
        hist.record(huge)
        assert hist.counts[-1] == 1  # overflow bucket
        assert hist.percentile(99) == huge  # reports the observed max
        assert hist.snapshot()["max_ms"] == pytest.approx(huge * 1000.0)

    def test_value_exactly_on_a_bound(self):
        hist = LatencyHistogram()
        hist.record(_BOUNDS[3])
        assert hist.counts[3] == 1  # bisect_left: bound value stays in bucket

    def test_zero_and_negative_clamp_to_first_bucket(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        hist.record(-0.001)  # clock skew defensive case
        assert hist.counts[0] == 2

    def test_snapshot_stable_under_concurrent_record(self):
        hist = LatencyHistogram()
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                hist.record(0.0001 * (i % 50 + 1))
                i += 1

        def reader():
            while not stop.is_set():
                snap = hist.snapshot()
                try:
                    assert snap["count"] >= 0
                    assert snap["max_ms"] >= 0.0
                    for p in (50, 90, 99):
                        hist.percentile(p)
                except AssertionError as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.3, stop.set)
        stop_timer.start()
        for t in threads:
            t.join()
        stop_timer.cancel()
        assert not errors
        # final state is consistent once writers are quiescent
        assert sum(hist.counts) == hist.total


class TestSnapshotStorageSchema:
    def test_storage_zeros_when_absent(self):
        snap = ServerMetrics().snapshot()
        assert snap["storage"] == {
            "durability": "none",
            "num_pages": 0,
            "page_size": 0,
            "physical_reads": 0,
            "physical_writes": 0,
            "buffer_hit_ratio": 0.0,
            "wal_bytes": 0,
            "recovered_pages": 0,
        }

    def test_storage_merges_real_stats_over_zeros(self):
        snap = ServerMetrics().snapshot(
            storage={"durability": "wal", "wal_bytes": 77, "commits": 3}
        )
        assert snap["storage"]["durability"] == "wal"
        assert snap["storage"]["wal_bytes"] == 77
        assert snap["storage"]["commits"] == 3
        assert snap["storage"]["recovered_pages"] == 0  # zero-filled
