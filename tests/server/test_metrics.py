"""LatencyHistogram edge cases and metrics snapshot/exposition behavior."""

import threading

import pytest

from repro.server.metrics import _BOUNDS, LatencyHistogram, ServerMetrics


class TestLatencyHistogramEdges:
    def test_empty_percentiles_are_zero(self):
        hist = LatencyHistogram()
        for p in (0, 50, 90, 99, 100):
            assert hist.percentile(p) == 0.0
        snap = hist.snapshot()
        assert snap == {
            "count": 0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p90_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
        }

    def test_single_sample(self):
        hist = LatencyHistogram()
        hist.record(0.010)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["mean_ms"] == 10.0
        assert snap["max_ms"] == 10.0
        # every percentile lands in the one occupied bucket, whose upper
        # bound is the first power-of-two bound >= the sample
        for p in (50, 90, 99):
            bound = hist.percentile(p)
            assert 0.010 <= bound <= 0.0128 + 1e-12

    def test_value_beyond_last_bucket_bound(self):
        hist = LatencyHistogram()
        huge = _BOUNDS[-1] * 10  # way past the ~2min top bound
        hist.record(huge)
        assert hist.counts[-1] == 1  # overflow bucket
        assert hist.percentile(99) == huge  # reports the observed max
        assert hist.snapshot()["max_ms"] == pytest.approx(huge * 1000.0)

    def test_value_exactly_on_a_bound(self):
        hist = LatencyHistogram()
        hist.record(_BOUNDS[3])
        assert hist.counts[3] == 1  # bisect_left: bound value stays in bucket

    def test_zero_and_negative_clamp_to_first_bucket(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        hist.record(-0.001)  # clock skew defensive case
        assert hist.counts[0] == 2

    def test_snapshot_stable_under_concurrent_record(self):
        hist = LatencyHistogram()
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                hist.record(0.0001 * (i % 50 + 1))
                i += 1

        def reader():
            while not stop.is_set():
                snap = hist.snapshot()
                try:
                    assert snap["count"] >= 0
                    assert snap["max_ms"] >= 0.0
                    for p in (50, 90, 99):
                        hist.percentile(p)
                except AssertionError as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.3, stop.set)
        stop_timer.start()
        for t in threads:
            t.join()
        stop_timer.cancel()
        assert not errors
        # final state is consistent once writers are quiescent
        assert sum(hist.counts) == hist.total


class TestSnapshotStorageSchema:
    def test_storage_zeros_when_absent(self):
        snap = ServerMetrics().snapshot()
        assert snap["storage"] == {
            "durability": "none",
            "num_pages": 0,
            "page_size": 0,
            "physical_reads": 0,
            "physical_writes": 0,
            "buffer_hit_ratio": 0.0,
            "prefetches": 0,
            "prefetch_hits": 0,
            "wal_bytes": 0,
            "recovered_pages": 0,
            "columnar_segments": 0,
            "columnar_chunks": 0,
            "columnar_pages": 0,
            "columnar_journal_rows": 0,
            "columnar_zone_prunes": 0,
        }

    def test_storage_merges_real_stats_over_zeros(self):
        snap = ServerMetrics().snapshot(
            storage={"durability": "wal", "wal_bytes": 77, "commits": 3}
        )
        assert snap["storage"]["durability"] == "wal"
        assert snap["storage"]["wal_bytes"] == 77
        assert snap["storage"]["commits"] == 3
        assert snap["storage"]["recovered_pages"] == 0  # zero-filled


class TestHistogramMerge:
    def test_merge_sums_buckets_and_extrema(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.001)
        a.record(0.010)
        b.record(0.010)
        b.record(5.0)
        a.merge(b)
        assert a.total == 4
        assert a.sum_seconds == pytest.approx(5.021)
        assert a.max_seconds == 5.0
        assert sum(a.counts) == 4

    def test_merge_from_shorter_bucket_table(self):
        # An older shard whose bound table stopped earlier: its overflow
        # bucket (last slot) must land in OUR overflow, and its finite
        # buckets must keep their positions.
        a = LatencyHistogram()
        short = {
            "counts": [3, 0, 0, 2],  # 3 in bucket 0, 2 overflowed
            "total": 5,
            "sum_seconds": 1.0,
            "max_seconds": 200.0,
        }
        a.merge_raw(short)
        assert a.total == 5
        assert a.counts[0] == 3
        assert a.counts[-1] == 2
        assert sum(a.counts) == 5

    def test_merge_from_longer_bucket_table(self):
        # A future shard with MORE buckets: the surplus finite buckets
        # fold into our overflow rather than being dropped.
        a = LatencyHistogram()
        n = len(a.counts)
        long_counts = [1] * (n + 4)
        a.merge_raw(
            {
                "counts": long_counts,
                "total": n + 4,
                "sum_seconds": 2.0,
                "max_seconds": 300.0,
            }
        )
        assert a.total == n + 4
        assert sum(a.counts) == n + 4
        assert a.counts[-1] == 5  # 4 surplus finite + their overflow
        assert all(c == 1 for c in a.counts[:-1])

    def test_raw_round_trip_preserves_percentiles(self):
        a = LatencyHistogram()
        for ms in (1, 2, 5, 10, 50, 100, 500):
            a.record(ms / 1000.0)
        clone = LatencyHistogram.from_raw(a.raw())
        assert clone.snapshot() == a.snapshot()

    def test_empty_raw_is_noop(self):
        a = LatencyHistogram()
        a.record(0.004)
        before = a.snapshot()
        a.merge_raw({"counts": [], "total": 0, "sum_seconds": 0.0, "max_seconds": 0.0})
        assert a.snapshot() == before


class TestAggregateSnapshots:
    def _snap(self, shard, ms_samples, rows=10):
        m = ServerMetrics(shard_id=shard)
        for ms in ms_samples:
            m.record_query("window", ms / 1000.0, rows)
        m.bump_session("opened", 2)
        return m.snapshot(active_sessions=1, raw=True)

    def test_counters_sum_and_histograms_merge_exactly(self):
        from repro.server.metrics import aggregate_snapshots

        out = aggregate_snapshots(
            [self._snap(0, [1, 2, 3]), self._snap(1, [100, 200, 300])]
        )
        q = out["queries"]["window"]
        assert q["rows"] == 60
        assert q["latency"]["count"] == 6
        # Exact merge: the p99 reflects shard 1's slow samples, which an
        # average of per-shard percentile estimates would understate.
        assert q["latency"]["p99_ms"] >= 200.0
        assert out["sessions"]["opened"] == 4
        assert out["sessions"]["active"] == 2
        assert set(out["shards"]) == {"0", "1"}

    def test_fallback_without_raw_keeps_counts(self):
        from repro.server.metrics import aggregate_snapshots

        m = ServerMetrics(shard_id=7)
        for ms in (10, 20, 30):
            m.record_query("knn", ms / 1000.0, 1)
        snap = m.snapshot()  # raw=False: estimate-only
        assert "latency_raw" not in snap["queries"]["knn"]
        out = aggregate_snapshots([snap])
        assert out["queries"]["knn"]["latency"]["count"] == 3

    def test_per_shard_meters_preserved(self):
        from repro.engine.cost import WorkMeter
        from repro.server.metrics import aggregate_snapshots

        m = ServerMetrics(shard_id=3)
        meter = WorkMeter()
        meter.add("mbr_test", 40)
        m.merge_meter("window", meter)
        out = aggregate_snapshots([m.snapshot(raw=True)])
        assert out["shards"]["3"]["meters"]["window"]["mbr_test"] == 40
        assert out["meters"]["window"]["mbr_test"] == 40


class TestAggregateHeterogeneous:
    """Real clusters ship uneven snapshots: in-memory shards have no
    storage section, restarted shards miss resilience keys the router
    has, and a fully-degraded scrape can arrive empty."""

    def test_missing_storage_section(self):
        from repro.server.metrics import aggregate_snapshots

        durable = ServerMetrics(shard_id=0)
        durable.record_query("window", 0.01, 5)
        durable_snap = durable.snapshot(raw=True)
        durable_snap["storage"] = {"pages": 12, "wal_records": 3}

        in_memory = ServerMetrics(shard_id=1)
        in_memory.record_query("window", 0.02, 7)
        memory_snap = in_memory.snapshot(raw=True)
        del memory_snap["storage"]  # in-memory shard: nothing to report

        out = aggregate_snapshots([durable_snap, memory_snap])
        # Query counters still merge across both shards...
        assert out["queries"]["window"]["rows"] == 12
        assert out["queries"]["window"]["latency"]["count"] == 2
        # ...and the storage views stay per-shard, absent one included.
        assert out["shards"]["0"]["storage"]["pages"] == 12
        assert out["shards"]["1"]["storage"] == {}

    def test_mismatched_resilience_keys(self):
        from repro.server.metrics import aggregate_snapshots

        a = ServerMetrics(shard_id=0)
        a.bump_resilience("retries", 3)
        a.bump_resilience("hedges", 1)
        b = ServerMetrics(shard_id=1)
        b.bump_resilience("retries", 2)
        b.bump_resilience("trace_drain_failed", 1)  # unknown to shard 0

        out = aggregate_snapshots([a.snapshot(), b.snapshot()])
        assert out["resilience"]["retries"] == 5
        assert out["resilience"]["hedges"] == 1
        assert out["resilience"]["trace_drain_failed"] == 1
        # Zero-valued standard keys survive (dashboards key on them).
        assert out["resilience"]["deadline_misses"] == 0

    def test_zero_shard_input(self):
        from repro.server.metrics import aggregate_snapshots

        out = aggregate_snapshots([])
        assert out["shards"] == {}
        assert out["requests"] == {}
        assert out["queries"] == {}
        assert out["resilience"] == {}
        assert out["sessions"] == {}
        # The storage rollup keeps its zero schema so consumers can
        # read fields without existence checks.
        assert out["storage"]["num_pages"] == 0
        assert out["storage"]["physical_reads"] == 0
