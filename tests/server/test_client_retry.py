"""Client retry policy: OVERLOADED backoff, reconnects, and the typed
mid-stream failure.

Most tests run against a *scripted* socket server so the failure sequence
is deterministic; one integration test exercises the real server's
admission control end to end.
"""

import random
import socket
import threading
import time
from collections import deque

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.errors import RetriableError
from repro.server import BackgroundServer, QueryClient, RemoteError
from repro.server import protocol
from repro.server.protocol import ERR_BAD_REQUEST, ERR_OVERLOADED


class ScriptedServer:
    """A tiny JSON-lines server that answers from a fixed script.

    Script items: ``"overloaded"`` (error reply), ``"drop"`` (close the
    connection without replying — a reset), ``"stall"`` (never reply, hold
    the connection open — a lost response), ``"ok"`` (pong reply), or a
    dict merged into an ok reply.  An exhausted script answers ``ok``.
    """

    def __init__(self, script):
        self.script = deque(script)
        self.seen = []
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(0.2)
        self.port = self._sock.getsockname()[1]
        self.connections = 0
        self._stop = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections += 1
            with conn:
                # The makefile handle holds an io-ref on the socket: it must
                # be closed too, or "drop" leaves the fd open and the client
                # hangs until its timeout instead of seeing the EOF.
                fh = conn.makefile("rwb")
                try:
                    self._converse(fh)
                finally:
                    try:
                        fh.close()
                    except OSError:
                        pass

    def _converse(self, fh):
        while not self._stop:
            line = fh.readline()
            if not line:
                return
            request = protocol.decode_line(line)
            self.seen.append(request.get("op"))
            action = self.script.popleft() if self.script else "ok"
            if action == "drop":
                return
            if action == "stall":
                continue  # swallow the request; never answer
            if action == "overloaded":
                response = protocol.error_response(
                    request["id"], ERR_OVERLOADED, "at capacity"
                )
            else:
                response = protocol.ok_response(request["id"], pong=True)
                if isinstance(action, dict):
                    response.update(action)
            fh.write(protocol.encode(response))
            fh.flush()

    def close(self):
        self._stop = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


@pytest.fixture
def scripted():
    servers = []

    def make(script):
        server = ScriptedServer(script)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


def fast_client(port, retries=3, timeout=30.0):
    # Microscopic seeded backoff: retry tests stay fast and deterministic.
    return QueryClient(
        port=port, retries=retries, timeout=timeout, backoff=0.001,
        jitter=0.25, rng=random.Random(7),
    )


class TestOverloadedRetry:
    def test_retries_then_succeeds(self, scripted):
        server = scripted(["overloaded", "overloaded", "ok"])
        with fast_client(server.port) as c:
            assert c.ping()
            assert c.retry_count == 2
        assert server.seen == ["ping", "ping", "ping"]

    def test_exhausted_attempts_raise_overloaded(self, scripted):
        server = scripted(["overloaded"] * 5)
        with fast_client(server.port, retries=3) as c:
            with pytest.raises(RemoteError) as info:
                c.ping()
            assert info.value.code == ERR_OVERLOADED
            assert c.retry_count == 2  # two retries, third attempt raised

    def test_other_errors_never_retried(self, scripted):
        server = scripted([
            {"ok": False, "error": {"code": ERR_BAD_REQUEST, "message": "no"}},
        ])
        with fast_client(server.port) as c:
            with pytest.raises(RemoteError) as info:
                c.request("start", kind="nonsense", params={})
            assert info.value.code == ERR_BAD_REQUEST
            assert c.retry_count == 0
        assert server.seen == ["start"]

    def test_backoff_grows_and_respects_cap(self, monkeypatch):
        naps = []
        monkeypatch.setattr(time, "sleep", lambda s: naps.append(s))
        server = ScriptedServer(["overloaded"] * 4 + ["ok"])
        try:
            client = QueryClient(
                port=server.port, retries=5, backoff=0.1, backoff_cap=0.25,
                jitter=0.5, rng=random.Random(3),
            )
            assert client.ping()
            client.close()
        finally:
            server.close()
        assert len(naps) == 4
        base = [0.1, 0.2, 0.25, 0.25]  # exponential, then capped
        for nap, expected in zip(naps, base):
            assert expected <= nap <= expected * 1.5  # jitter adds 0..50%


class TestReconnect:
    def test_drop_without_sessions_reconnects(self, scripted):
        server = scripted(["drop", "ok"])
        with fast_client(server.port) as c:
            assert c.ping()  # first attempt dies, reconnect answers
            assert c.retry_count == 1
        assert server.connections == 2

    def test_midstream_drop_raises_retriable(self, scripted):
        server = scripted([{"session": "s1", "columns": []}, "drop"])
        with fast_client(server.port) as c:
            session = c.start("sql", {"statement": "select 1"})
            with pytest.raises(RetriableError) as info:
                session.fetch(10)
            assert info.value.code == "CONNECTION_LOST"
            assert "live session" in str(info.value)
            # The dead session was forgotten: the client object survives
            # and the next request reconnects with a clean slate.
            assert c.ping()
        assert server.connections == 2

    def test_timeout_is_never_silently_retried(self, scripted):
        # A timed-out request may have been *executed* (only the response
        # was slow or lost): re-sending a 'start' would leak a server-side
        # session, so the client must surface the timeout even with
        # attempts to spare and no live sessions.
        server = scripted(["stall", "ok"])
        with fast_client(server.port, retries=5, timeout=0.2) as c:
            with pytest.raises(RetriableError) as info:
                c.ping()
            assert info.value.code == "TIMEOUT"
            assert c.retry_count == 0
            # The client object survives; the next request reconnects.
            assert c.ping()
        assert server.connections == 2

    def test_retriable_error_is_not_swallowed_by_retry(self, scripted):
        # Even with attempts to spare, a mid-stream reset must surface
        # immediately instead of silently re-running the fetch.
        server = scripted([{"session": "s1", "columns": []}, "drop", "ok"])
        with fast_client(server.port, retries=5) as c:
            c.start("sql", {"statement": "select 1"})
            with pytest.raises(RetriableError):
                c.fetch("s1", 10)
            assert c.retry_count == 0


def build_db():
    db = Database()
    rng = random.Random(5)
    rects = []
    for _ in range(30):
        x, y = rng.uniform(0, 90), rng.uniform(0, 90)
        rects.append(Geometry.rectangle(x, y, x + 2, y + 2))
    load_geometries(db, "a_tab", rects)
    db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
    return db


class TestRealServerIntegration:
    def test_overloaded_start_retries_until_capacity_frees(self):
        db = build_db()
        with BackgroundServer(db, max_sessions=1) as handle:
            with QueryClient(port=handle.port) as holder:
                blocker = holder.start("sql", {"statement": "select id from a_tab"})
                releaser = threading.Timer(0.15, blocker.close)
                releaser.start()
                try:
                    with QueryClient(
                        port=handle.port, retries=8, backoff=0.05,
                        rng=random.Random(11),
                    ) as c:
                        session = c.start(
                            "sql", {"statement": "select id from a_tab"}
                        )
                        assert c.retry_count >= 1
                        assert session.all()
                finally:
                    releaser.cancel()
