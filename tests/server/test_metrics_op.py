"""The wire ``metrics`` op and the ``repro.shell stats`` subcommand."""

import io

from repro import Database
from repro.obs.exporters import lint_prometheus
from repro.server import BackgroundServer, QueryClient
from repro.shell import main as shell_main


def _seeded_db():
    db = Database()
    db.sql("create table pts (id number, geom sdo_geometry)")
    for i in range(4):
        db.sql(
            f"insert into pts values ({i}, sdo_geometry('POINT ({i} {i})'))"
        )
    return db


class TestMetricsOp:
    def test_metrics_exposition_is_lint_clean(self):
        with BackgroundServer(_seeded_db()) as server:
            with QueryClient(port=server.port) as client:
                session = client.start("sql", {"statement": "select id from pts"})
                session.all()
                text = client.metrics()
        assert lint_prometheus(text) == []
        assert 'repro_query_rows_total{kind="sql"} 4' in text
        assert "repro_sessions_active 0" in text
        assert 'repro_kernel_info{backend=' in text

    def test_metrics_counts_itself(self):
        with BackgroundServer(_seeded_db()) as server:
            with QueryClient(port=server.port) as client:
                client.metrics()
                text = client.metrics()
        assert 'repro_requests_total{op="metrics"} 2' in text

    def test_stats_op_still_reports_dict(self):
        with BackgroundServer(_seeded_db()) as server:
            with QueryClient(port=server.port) as client:
                stats = client.stats()
        assert "storage" in stats
        assert stats["storage"]["durability"] == "memory"


class TestShellStats:
    def test_stats_subcommand_prints_prometheus(self, capsys):
        with BackgroundServer(_seeded_db()) as server:
            rc = shell_main(["stats", "--port", str(server.port)])
        out = capsys.readouterr().out
        assert rc == 0
        assert lint_prometheus(out) == []
        assert "repro_sessions_active" in out

    def test_stats_subcommand_json(self, capsys):
        import json

        with BackgroundServer(_seeded_db()) as server:
            rc = shell_main(["stats", "--port", str(server.port), "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert "sessions" in payload and "storage" in payload

    def test_stats_subcommand_connection_refused(self, capsys):
        rc = shell_main(["stats", "--port", "1"])  # nothing listens there
        assert rc == 1
        assert "cannot connect" in capsys.readouterr().out
