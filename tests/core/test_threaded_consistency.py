"""Real-thread consistency: decompositions correct under genuine concurrency.

The simulated executor proves nothing about data races; these tests run
the parallel paths on actual threads (GIL or not, interleavings differ)
and check the results stay identical to serial execution.
"""

import pytest

from repro import Database
from repro.datasets import blockgroups, load_geometries, stars
from repro.engine.parallel import ThreadExecutor


class TestThreadedJoin:
    def test_threaded_parallel_join_many_degrees(self):
        db = Database()
        load_geometries(db, "t", stars(800, seed=41))
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        serial = db.spatial_join("t", "geom", "t", "geom")
        for degree in (2, 5, 8):
            threaded = db.spatial_join(
                "t", "geom", "t", "geom", parallel=degree, use_threads=True
            )
            assert sorted(threaded.pairs) == sorted(serial.pairs), degree

    def test_threaded_meters_account_all_work(self):
        from repro.core.parallel_join import parallel_spatial_join

        db = Database()
        load_geometries(db, "t", stars(400, seed=42))
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
        result = parallel_spatial_join(
            db.table("t"), "geom", db.spatial_index("t_idx").tree,
            db.table("t"), "geom", db.spatial_index("t_idx").tree,
            ThreadExecutor(4),
        )
        combined = result.run.combined_meter()
        assert combined.counts.get("exact_test_base", 0) > 0
        assert result.run.wall_seconds > 0


class TestThreadedBuilds:
    def test_threaded_quadtree_build_equals_serial(self):
        from repro.engine.parallel import make_executor
        from repro.core.index_build import create_quadtree_parallel
        from repro.geometry.mbr import MBR
        from repro.index.quadtree.quadtree import QuadtreeIndex

        db = Database()
        load_geometries(db, "t", blockgroups(250, seed=43))
        domain = MBR(0, 0, 58, 58)
        serial = QuadtreeIndex("q1", db.table("t"), "geom", domain=domain, tiling_level=7)
        serial.create()
        threaded = QuadtreeIndex("q2", db.table("t"), "geom", domain=domain, tiling_level=7)
        create_quadtree_parallel(threaded, make_executor(4, use_threads=True))
        assert list(threaded.btree.items()) == list(serial.btree.items())

    def test_threaded_rtree_build_equals_serial_content(self):
        from repro.engine.parallel import make_executor
        from repro.core.index_build import create_rtree_parallel
        from repro.index.rtree.spatial_index import RTreeIndex

        db = Database()
        load_geometries(db, "t", blockgroups(300, seed=44))
        serial = RTreeIndex("r1", db.table("t"), "geom")
        serial.create()
        threaded = RTreeIndex("r2", db.table("t"), "geom")
        create_rtree_parallel(threaded, make_executor(4, use_threads=True))
        assert sorted(r for _m, r in threaded.tree.leaf_entries()) == sorted(
            r for _m, r in serial.tree.leaf_entries()
        )
        threaded.tree.check_invariants()
