"""Edge-case tests for join drivers beyond the main equivalence suite."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.engine.parallel import SimulatedExecutor


class TestDegenerateInputs:
    def test_both_sides_empty(self):
        db = Database()
        load_geometries(db, "a_tab", [])
        load_geometries(db, "b_tab", [])
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE")
        db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE")
        assert db.spatial_join("a_tab", "geom", "b_tab", "geom").pairs == []
        assert db.nested_loop_join("a_tab", "geom", "b_tab", "geom").pairs == []
        assert (
            db.spatial_join("a_tab", "geom", "b_tab", "geom", parallel=3).pairs == []
        )

    def test_single_row_each_side(self):
        db = Database()
        load_geometries(db, "a_tab", [Geometry.rectangle(0, 0, 2, 2)])
        load_geometries(db, "b_tab", [Geometry.rectangle(1, 1, 3, 3)])
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE")
        db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE")
        result = db.spatial_join("a_tab", "geom", "b_tab", "geom")
        assert len(result.pairs) == 1

    def test_null_geometries_skipped(self):
        db = Database()
        t = db.create_table("a_tab", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")])
        t.insert((1, Geometry.rectangle(0, 0, 2, 2)))
        t.insert((2, None))
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE")
        result = db.spatial_join("a_tab", "geom", "a_tab", "geom")
        # only the non-null row participates
        assert len(result.pairs) == 1
        nested = db.nested_loop_join("a_tab", "geom", "a_tab", "geom")
        assert sorted(nested.pairs) == sorted(result.pairs)

    def test_completely_disjoint_layers(self):
        db = Database()
        load_geometries(db, "a_tab", [Geometry.rectangle(0, 0, 1, 1)])
        load_geometries(db, "b_tab", [Geometry.rectangle(100, 100, 101, 101)])
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE")
        db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE")
        assert db.spatial_join("a_tab", "geom", "b_tab", "geom").pairs == []

    def test_parallel_degree_larger_than_pairs(self, random_rects):
        db = Database()
        load_geometries(db, "a_tab", random_rects(12, seed=181))
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=16)
        serial = db.spatial_join("a_tab", "geom", "a_tab", "geom")
        wide = db.spatial_join("a_tab", "geom", "a_tab", "geom", parallel=16)
        assert sorted(wide.pairs) == sorted(serial.pairs)


class TestMaskVariants:
    @pytest.mark.parametrize("mask", ["ANYINTERACT", "TOUCH", "EQUAL", "CONTAINS"])
    def test_masked_joins_match_nested_loop(self, random_rects, mask):
        db = Database()
        load_geometries(db, "a_tab", random_rects(40, seed=182))
        load_geometries(db, "b_tab", random_rects(40, seed=183))
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE")
        db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE")
        tf = db.spatial_join("a_tab", "geom", "b_tab", "geom", mask=mask)
        # note: nested loop probes with transposed operand order; for the
        # asymmetric CONTAINS mask compare against brute force instead
        from repro.geometry.predicates import relate

        expected = set()
        for ra, rowa in db.table("a_tab").scan():
            for rb, rowb in db.table("b_tab").scan():
                if relate(rowa[1], rowb[1], mask):
                    expected.add((ra, rb))
        assert set(tf.pairs) == expected
