"""Unit tests for the parallel spatial join driver."""

import pytest

from repro import Database
from repro.datasets import load_geometries
from repro.engine.cost import CostModel
from repro.engine.parallel import SimulatedExecutor, ThreadExecutor
from repro.core.parallel_join import parallel_spatial_join, spatial_join
from repro.core.secondary_filter import JoinPredicate


@pytest.fixture
def pj_db(random_rects):
    db = Database()
    load_geometries(db, "a_tab", random_rects(200, seed=51))
    load_geometries(db, "b_tab", random_rects(220, seed=52))
    db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
    db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE", fanout=6)
    return db


def serial_pairs(db, predicate=JoinPredicate()):
    result = spatial_join(
        db.table("a_tab"), "geom", db.spatial_index("a_idx").tree,
        db.table("b_tab"), "geom", db.spatial_index("b_idx").tree,
        predicate=predicate,
    )
    return result


def parallel_pairs(db, executor, predicate=JoinPredicate(), **kw):
    return parallel_spatial_join(
        db.table("a_tab"), "geom", db.spatial_index("a_idx").tree,
        db.table("b_tab"), "geom", db.spatial_index("b_idx").tree,
        executor, predicate=predicate, **kw,
    )


class TestEquivalence:
    @pytest.mark.parametrize("degree", [2, 3, 4])
    def test_parallel_equals_serial(self, pj_db, degree):
        serial = serial_pairs(pj_db)
        parallel = parallel_pairs(pj_db, SimulatedExecutor(degree))
        assert sorted(parallel.pairs) == sorted(serial.pairs)

    def test_threaded_execution_equals_serial(self, pj_db):
        serial = serial_pairs(pj_db)
        parallel = parallel_pairs(pj_db, ThreadExecutor(4))
        assert sorted(parallel.pairs) == sorted(serial.pairs)

    def test_process_execution_equals_serial(self, pj_db):
        from repro.engine.parallel import ProcessExecutor

        serial = serial_pairs(pj_db)
        parallel = parallel_pairs(pj_db, ProcessExecutor(3))
        assert sorted(parallel.pairs) == sorted(serial.pairs)
        # slave processes really metered their work and reported it back
        combined = parallel.run.combined_meter()
        assert combined.counts.get("mbr_test", 0) > 0

    def test_distance_join_parallel(self, pj_db):
        pred = JoinPredicate(distance=6.0)
        serial = serial_pairs(pj_db, pred)
        parallel = parallel_pairs(pj_db, SimulatedExecutor(2), pred)
        assert sorted(parallel.pairs) == sorted(serial.pairs)

    def test_forced_descent_levels(self, pj_db):
        serial = serial_pairs(pj_db)
        parallel = parallel_pairs(
            pj_db, SimulatedExecutor(2), descent_levels=(2, 2)
        )
        assert sorted(parallel.pairs) == sorted(serial.pairs)
        assert parallel.descent_levels == (2, 2)

    def test_no_duplicates_across_slaves(self, pj_db):
        parallel = parallel_pairs(pj_db, SimulatedExecutor(4))
        assert len(parallel.pairs) == len(set(parallel.pairs))


class TestScaling:
    def test_parallel_reduces_makespan_on_large_join(self, pj_db):
        model = CostModel(worker_startup=0.0)
        one = parallel_pairs(pj_db, SimulatedExecutor(1, model))
        two = parallel_pairs(pj_db, SimulatedExecutor(2, model))
        four = parallel_pairs(pj_db, SimulatedExecutor(4, model))
        assert two.makespan_seconds < one.makespan_seconds
        assert four.makespan_seconds <= two.makespan_seconds

    def test_startup_cost_hurts_tiny_joins(self, random_rects):
        """Table 2's first row: at 25 geometries parallelism does not pay."""
        db = Database()
        load_geometries(db, "a_tab", random_rects(25, seed=53))
        load_geometries(db, "b_tab", random_rects(25, seed=54))
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
        db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE", fanout=6)
        one = parallel_pairs(db, SimulatedExecutor(1))
        two = parallel_pairs(db, SimulatedExecutor(2))
        assert two.makespan_seconds > one.makespan_seconds

    def test_subtree_pair_count_recorded(self, pj_db):
        parallel = parallel_pairs(pj_db, SimulatedExecutor(4))
        assert parallel.subtree_pair_count >= 8  # >= degree * min_pairs

    def test_work_meters_balanced_reasonably(self, pj_db):
        parallel = parallel_pairs(pj_db, SimulatedExecutor(4))
        assert parallel.run.imbalance < 3.0
