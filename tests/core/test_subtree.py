"""Unit tests for the subtree_root table function and descent policy."""

import pytest

from repro.engine.table_function import collect
from repro.core.subtree import (
    SubtreeRootFunction,
    pick_descent_level,
    subtree_pairs,
    subtree_roots,
)
from repro.geometry.mbr import MBR
from repro.index.rtree.bulkload import str_pack
from repro.storage.heap import RowId
import random


def build_tree(n, seed=0, fanout=6):
    rng = random.Random(seed)
    entries = []
    for i in range(n):
        x, y = rng.uniform(0, 500), rng.uniform(0, 500)
        entries.append((MBR(x, y, x + 3, y + 3), RowId(0, i)))
    return str_pack(entries, fanout=fanout)


class TestSubtreeRootFunction:
    def test_level_zero_is_root(self):
        tree = build_tree(100)
        rows = collect(SubtreeRootFunction(tree, 0))
        assert rows == [(tree.root,)]

    def test_level_one_matches_children(self):
        tree = build_tree(200)
        rows = collect(SubtreeRootFunction(tree, 1))
        assert [r[0] for r in rows] == list(tree.root.children())

    def test_pipelined_in_small_batches(self):
        tree = build_tree(400, fanout=4)
        fn = SubtreeRootFunction(tree, 2)
        from repro.engine.parallel import WorkerContext

        ctx = WorkerContext(0)
        fn.start(ctx)
        total = []
        while True:
            batch = fn.fetch(ctx, 3)
            if not batch:
                break
            assert len(batch) <= 3
            total.extend(batch)
        fn.close(ctx)
        assert len(total) == len(tree.subtree_roots(2))

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            SubtreeRootFunction(build_tree(10), -1)

    def test_subtree_roots_cover_all_leaf_entries(self):
        tree = build_tree(300, fanout=4)
        for level in range(tree.root.level + 1):
            roots = subtree_roots(tree, level)
            total = 0
            for node in roots:
                stack = [node]
                while stack:
                    cur = stack.pop()
                    if cur.is_leaf:
                        total += len(cur.entries)
                    else:
                        stack.extend(cur.children())
            assert total == len(tree)


class TestSubtreePairs:
    def test_cross_product_size(self):
        ta, tb = build_tree(150, seed=1), build_tree(150, seed=2)
        pairs = subtree_pairs(ta, tb, 1, 1)
        assert len(pairs) == len(ta.subtree_roots(1)) * len(tb.subtree_roots(1))

    def test_figure1_example_shape(self):
        """Figure 1: descending one level on both sides yields the full
        cross product of the level-1 subtrees."""
        ta, tb = build_tree(60, fanout=30), build_tree(60, fanout=30)
        na, nb = len(ta.subtree_roots(1)), len(tb.subtree_roots(1))
        pairs = subtree_pairs(ta, tb, 1, 1)
        seen_a = {id(a) for a, _b in pairs}
        seen_b = {id(b) for _a, b in pairs}
        assert len(seen_a) == na and len(seen_b) == nb
        assert len(pairs) == na * nb


class TestPickDescentLevel:
    def test_enough_pairs_for_degree(self):
        ta, tb = build_tree(500, fanout=5), build_tree(500, fanout=5)
        for degree in (2, 4, 8):
            la, lb = pick_descent_level(ta, tb, degree)
            pairs = len(ta.subtree_roots(la)) * len(tb.subtree_roots(lb))
            assert pairs >= degree * 2

    def test_degree_one_stays_at_roots(self):
        ta, tb = build_tree(500, fanout=5), build_tree(500, fanout=5)
        # One pair is already >= 1 slave * min 2?  No: target = 2, so some
        # descent may occur; with min_pairs_per_slave=1 no descent needed.
        la, lb = pick_descent_level(ta, tb, 1, min_pairs_per_slave=1)
        assert (la, lb) == (0, 0)

    def test_shallow_trees_capped_at_leaves(self):
        ta, tb = build_tree(5, fanout=8), build_tree(5, fanout=8)
        la, lb = pick_descent_level(ta, tb, 16)
        assert la <= ta.root.level and lb <= tb.root.level
