"""Batch secondary filter: result/charge identity with the scalar path,
seeded RANDOM fetch order, and end-to-end join equivalence across the
kernels backends."""

import pytest

from repro import Database
from repro.datasets import counties, load_geometries
from repro.engine.parallel import WorkerContext
from repro.geometry import kernels
from repro.core.secondary_filter import FetchOrder, JoinPredicate, SecondaryFilter


@pytest.fixture
def filter_db(random_rects):
    db = Database()
    load_geometries(db, "t", random_rects(80, seed=17))
    return db


def candidates_of(db):
    rows = [(rid, row[1]) for rid, row in db.table("t").scan()]
    out = []
    for ra, ga in rows:
        for rb, gb in rows:
            if ga.mbr.intersects(gb.mbr):
                out.append((ra, rb, ga.mbr, gb.mbr))
    return out


def make_filter(db, **kw):
    return SecondaryFilter(
        db.table("t"), "geom", db.table("t"), "geom", JoinPredicate(), **kw
    )


class TestBatchIdentity:
    @pytest.mark.parametrize("backend", ("numpy", "python"))
    def test_batch_matches_scalar_results_and_charges(self, filter_db, backend):
        cands = candidates_of(filter_db)
        with kernels.use_backend(backend):
            f_batch = make_filter(filter_db, use_batch=True)
            f_scalar = make_filter(filter_db, use_batch=False)
            ctx_b, ctx_s = WorkerContext(0), WorkerContext(1)
            res_b = f_batch.process(list(cands), ctx_b)
            res_s = f_scalar.process(list(cands), ctx_s)
        # Same pairs, in the same emission order.
        assert res_b == res_s
        # Same simulated work, charge kind by charge kind.
        assert ctx_b.meter.counts == ctx_s.meter.counts
        assert ctx_b.meter.seconds() == ctx_s.meter.seconds()

    def test_batched_candidates_counter(self, filter_db):
        cands = candidates_of(filter_db)
        with kernels.use_backend("numpy"):
            f = make_filter(filter_db, use_batch=True)
            f.process(list(cands))
        assert f.batched_candidates > 0

    def test_scalar_path_never_batches(self, filter_db):
        cands = candidates_of(filter_db)
        f = make_filter(filter_db, use_batch=False)
        f.process(list(cands))
        assert f.batched_candidates == 0


class TestSeededRandomOrder:
    def test_same_seed_same_order(self, filter_db):
        cands = candidates_of(filter_db)
        f1 = make_filter(filter_db, fetch_order=FetchOrder.RANDOM, rng_seed=7)
        f2 = make_filter(filter_db, fetch_order=FetchOrder.RANDOM, rng_seed=7)
        assert f1.order_candidates(list(cands)) == f2.order_candidates(list(cands))

    def test_different_seed_different_order(self, filter_db):
        cands = candidates_of(filter_db)
        f1 = make_filter(filter_db, fetch_order=FetchOrder.RANDOM, rng_seed=7)
        f2 = make_filter(filter_db, fetch_order=FetchOrder.RANDOM, rng_seed=8)
        assert f1.order_candidates(list(cands)) != f2.order_candidates(list(cands))

    def test_rng_is_lazy(self, filter_db):
        f = make_filter(filter_db, fetch_order=FetchOrder.SORTED, rng_seed=7)
        f.process(candidates_of(filter_db))
        assert f._rng is None  # never materialized outside RANDOM order

    def test_random_order_results_match_sorted(self, filter_db):
        cands = candidates_of(filter_db)
        f_rand = make_filter(filter_db, fetch_order=FetchOrder.RANDOM, rng_seed=3)
        f_sort = make_filter(filter_db, fetch_order=FetchOrder.SORTED)
        assert sorted(f_rand.process(list(cands))) == sorted(
            f_sort.process(list(cands))
        )


class TestJoinEquivalenceAcrossBackends:
    def _join(self, db, **kw):
        return db.spatial_join("c", "geom", "c", "geom", **kw)

    @pytest.fixture(scope="class")
    def county_db(self):
        db = Database()
        load_geometries(
            db, "c", counties(120, seed=13, refine=4, extent=(0, 0, 10, 5))
        )
        db.create_spatial_index("c_idx", "c", "geom", kind="RTREE")
        return db

    @pytest.mark.parametrize("dist", [0.0, 0.15])
    def test_pairs_and_makespan_invariant(self, county_db, dist):
        ref = None
        for backend in ("numpy", "python"):
            for use_batch in (True, False):
                with kernels.use_backend(backend):
                    r = self._join(county_db, distance=dist, use_batch=use_batch)
                key = (sorted(r.pairs), round(r.makespan_seconds, 12))
                if ref is None:
                    ref = key
                assert key == ref, (backend, use_batch)
