"""Unit tests for parallel index creation (quadtree + R-tree)."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.engine.cost import CostModel
from repro.engine.parallel import SimulatedExecutor, ThreadExecutor
from repro.core.index_build import create_quadtree_parallel, create_rtree_parallel
from repro.index.quadtree.quadtree import QuadtreeIndex
from repro.index.rtree.spatial_index import RTreeIndex


@pytest.fixture
def build_db(random_rects):
    db = Database()
    load_geometries(db, "shapes", random_rects(150, seed=71))
    return db


def make_quadtree(db, level=6):
    from repro.geometry.mbr import MBR

    return QuadtreeIndex(
        "qidx", db.table("shapes"), "geom", domain=MBR(0, 0, 110, 110),
        tiling_level=level,
    )


class TestQuadtreeParallelBuild:
    def test_parallel_equals_serial_content(self, build_db):
        serial = make_quadtree(build_db)
        serial.create()
        parallel = make_quadtree(build_db)
        create_quadtree_parallel(parallel, SimulatedExecutor(4))
        assert list(serial.btree.items()) == list(parallel.btree.items())

    def test_queries_after_parallel_build(self, build_db):
        index = make_quadtree(build_db)
        create_quadtree_parallel(index, SimulatedExecutor(3))
        window = Geometry.rectangle(20, 20, 50, 50)
        from repro.geometry.predicates import intersects

        expected = sorted(
            rid for rid, row in build_db.table("shapes").scan()
            if intersects(row[1], window)
        )
        got = sorted(index.fetch("SDO_RELATE", (window, "ANYINTERACT")))
        assert got == expected

    def test_speedup_with_degree(self, build_db):
        model = CostModel(worker_startup=0.0)
        r1 = create_quadtree_parallel(make_quadtree(build_db), SimulatedExecutor(1, model))
        r4 = create_quadtree_parallel(make_quadtree(build_db), SimulatedExecutor(4, model))
        assert r4.makespan_seconds < r1.makespan_seconds
        # same total tiles either way
        assert r1.tiles_created == r4.tiles_created

    def test_report_fields(self, build_db):
        report = create_quadtree_parallel(make_quadtree(build_db), SimulatedExecutor(2))
        assert report.kind == "QUADTREE"
        assert report.degree == 2
        assert report.rows_indexed == 150
        assert report.tiles_created > 0
        assert report.serial_tail_seconds > 0

    def test_threaded_build(self, build_db):
        index = make_quadtree(build_db)
        create_quadtree_parallel(index, ThreadExecutor(2))
        serial = make_quadtree(build_db)
        serial.create()
        assert list(index.btree.items()) == list(serial.btree.items())


class TestRTreeParallelBuild:
    def test_parallel_equals_serial_content(self, build_db):
        serial = RTreeIndex("ridx", build_db.table("shapes"), "geom", fanout=8)
        serial.create()
        parallel = RTreeIndex("ridx2", build_db.table("shapes"), "geom", fanout=8)
        create_rtree_parallel(parallel, SimulatedExecutor(4))
        assert sorted(r for _m, r in parallel.tree.leaf_entries()) == sorted(
            r for _m, r in serial.tree.leaf_entries()
        )
        parallel.tree.check_invariants()

    def test_queries_after_parallel_build(self, build_db):
        index = RTreeIndex("ridx", build_db.table("shapes"), "geom", fanout=8)
        create_rtree_parallel(index, SimulatedExecutor(3))
        window = Geometry.rectangle(10, 10, 60, 60)
        from repro.geometry.predicates import intersects

        expected = sorted(
            rid for rid, row in build_db.table("shapes").scan()
            if intersects(row[1], window)
        )
        got = sorted(index.fetch("SDO_RELATE", (window, "ANYINTERACT")))
        assert got == expected

    def test_speedup_with_degree(self, build_db):
        model = CostModel(worker_startup=0.0)
        i1 = RTreeIndex("a", build_db.table("shapes"), "geom", fanout=8)
        i4 = RTreeIndex("b", build_db.table("shapes"), "geom", fanout=8)
        r1 = create_rtree_parallel(i1, SimulatedExecutor(1, model))
        r4 = create_rtree_parallel(i4, SimulatedExecutor(4, model))
        assert r4.makespan_seconds < r1.makespan_seconds


class TestRelativeCosts:
    def test_quadtree_build_slower_than_rtree(self, build_db):
        """Table 3's qualitative claim: tessellation makes quadtree
        creation much more expensive than R-tree creation."""
        q = create_quadtree_parallel(make_quadtree(build_db), SimulatedExecutor(1))
        r = create_rtree_parallel(
            RTreeIndex("r", build_db.table("shapes"), "geom", fanout=8),
            SimulatedExecutor(1),
        )
        assert q.makespan_seconds > r.makespan_seconds

    def test_database_facade_parallel_clause(self, build_db):
        _idx, report = build_db.create_spatial_index(
            "shapes_q", "shapes", "geom", kind="QUADTREE", parallel=2, tiling_level=5
        )
        assert report.degree == 2
        meta = build_db.catalog.index("shapes_q")
        assert meta.parallel_degree == 2
