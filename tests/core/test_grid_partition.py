"""Adversarial correctness tests for grid-partitioned joins.

The two-layer duplicate-avoidance scheme (DESIGN.md §10) claims every
interacting pair is emitted from *exactly one* tile with no dedup
structure.  The claim is easiest to break where replica ranges are
decided: MBRs lying exactly on tile boundaries, zero-area MBRs on tile
corners, geometries replicated into every tile of the grid, and grids
degenerate enough that every class label collapses to A.  Each case is
checked candidate-level (tile sweeps vs a brute-force rectangle test,
counting multiplicity) and the end-to-end paths are checked against the
SWEEP strategy under both kernels backends.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import Database
from repro.core.grid_partition import (
    GridSweepStats,
    build_grid_spec,
    build_tiles,
    tile_sweep,
)
from repro.datasets import load_geometries
from repro.geometry import kernels
from repro.geometry.mbr import EMPTY_MBR, MBR
from repro.index.rtree.join import JoinStrategy, RTreeJoinCursor
from repro.storage.heap import RowId


def rid(i: int) -> RowId:
    return RowId(page=0, slot=i)


def entries(mbrs) -> list:
    return [(mbr, rid(i)) for i, mbr in enumerate(mbrs)]


def grid_candidates(entries_a, entries_b, nx, ny, distance=0.0):
    """All tile-sweep emissions across the grid, *with* multiplicity."""
    box = EMPTY_MBR
    for mbr, _ in entries_a:
        box = box.union(mbr)
    for mbr, _ in entries_b:
        box = box.union(mbr)
    spec = build_grid_spec(box, nx, ny)
    tiles_a = build_tiles(entries_a, spec)
    tiles_b = (
        tiles_a
        if entries_b is entries_a and distance == 0.0
        else build_tiles(entries_b, spec, expand=distance)
    )
    stats = GridSweepStats()
    out = []
    for tile_id in sorted(tiles_a.keys() & tiles_b.keys()):
        out.extend(
            (a, b)
            for a, b, _, _ in tile_sweep(
                tiles_a[tile_id], tiles_b[tile_id], distance, stats=stats
            )
        )
    return out, stats


def brute_pairs(entries_a, entries_b, distance=0.0):
    """Reference result: every rectangle pair within gap distance."""
    out = set()
    for ma, ra in entries_a:
        for mb, rb in entries_b:
            dx = max(mb.min_x - ma.max_x, ma.min_x - mb.max_x, 0.0)
            dy = max(mb.min_y - ma.max_y, ma.min_y - mb.max_y, 0.0)
            if dx * dx + dy * dy <= distance * distance:
                out.add((ra, rb))
    return out


def assert_exactly_once(entries_a, entries_b, nx, ny, distance=0.0):
    """The grid must emit the brute-force set, each pair exactly once."""
    got, _stats = grid_candidates(entries_a, entries_b, nx, ny, distance)
    counts = Counter(got)
    dupes = {pair: n for pair, n in counts.items() if n > 1}
    assert not dupes, f"pairs emitted more than once: {dupes}"
    assert set(got) == brute_pairs(entries_a, entries_b, distance)


@pytest.fixture(params=["python", "numpy"])
def backend(request):
    """Both kernels backends must bin MBRs into identical tile ranges."""
    with kernels.use_backend(request.param):
        yield request.param


class TestBoundaryStraddlers:
    """MBR edges exactly on tile boundaries — the replica-range edge."""

    def test_edges_on_every_tile_boundary(self, backend):
        # 4x4 grid over [0,16]^2 -> boundaries at every multiple of 4.
        boxes = [
            MBR(4.0, 4.0, 8.0, 8.0),  # aligned with a full tile
            MBR(0.0, 0.0, 16.0, 4.0),  # bottom row exactly
            MBR(8.0, 0.0, 8.0, 16.0),  # zero-width line on a boundary
            MBR(3.0, 3.0, 5.0, 5.0),  # straddles a corner
            MBR(12.0, 12.0, 16.0, 16.0),  # touches the domain max corner
            MBR(0.0, 12.0, 4.0, 16.0),
        ]
        ea = entries(boxes)
        assert_exactly_once(ea, ea, 4, 4)

    def test_shared_edge_pairs_across_boundary(self, backend):
        # Two MBRs meeting exactly on a tile boundary: they interact
        # (touching counts) and are both replicated into the adjacent
        # columns — classic double-report territory.
        ea = entries([MBR(0.0, 0.0, 4.0, 8.0)])
        eb = [(MBR(4.0, 0.0, 8.0, 8.0), rid(99))]
        assert_exactly_once(ea, eb, 2, 2)
        assert_exactly_once(ea, eb, 4, 4)

    @pytest.mark.parametrize("distance", [0.0, 1.0, 4.0])
    def test_distance_join_boundary(self, backend, distance):
        ea = entries([MBR(0.0, 0.0, 3.9, 3.9), MBR(8.1, 8.1, 12.0, 12.0)])
        eb = [
            (MBR(4.0, 4.0, 8.0, 8.0), rid(50)),
            (MBR(12.0, 0.0, 16.0, 4.0), rid(51)),
        ]
        assert_exactly_once(ea, eb, 4, 4, distance)


class TestZeroAreaMBRs:
    """Point and line MBRs, including points exactly on tile corners."""

    def test_points_on_tile_corners(self, backend):
        pts = [
            MBR(4.0, 4.0, 4.0, 4.0),  # interior tile corner
            MBR(0.0, 0.0, 0.0, 0.0),  # domain min corner
            MBR(16.0, 16.0, 16.0, 16.0),  # domain max corner (clamped bin)
            MBR(8.0, 4.0, 8.0, 4.0),
            MBR(4.0, 4.0, 4.0, 4.0),  # duplicate coordinates, distinct rowid
        ]
        # Anchor the domain so corners land on tile boundaries.
        anchor = [MBR(0.0, 0.0, 16.0, 16.0)]
        ea = entries(pts + anchor)
        assert_exactly_once(ea, ea, 4, 4)

    @pytest.mark.parametrize("distance", [0.0, 2.0])
    def test_coincident_points(self, backend, distance):
        ea = entries([MBR(5.0, 5.0, 5.0, 5.0) for _ in range(4)])
        assert_exactly_once(ea, ea, 3, 3, distance)


class TestWholeGridSpanners:
    """Geometries replicated into every tile of the grid."""

    def test_spanner_vs_small(self, backend):
        spanner = MBR(0.0, 0.0, 100.0, 100.0)
        smalls = [
            MBR(10.0 * i, 10.0 * j, 10.0 * i + 5.0, 10.0 * j + 5.0)
            for i in range(10)
            for j in range(10)
        ]
        ea = entries([spanner] + smalls)
        assert_exactly_once(ea, ea, 8, 8)

    def test_two_spanners(self, backend):
        ea = entries(
            [MBR(0.0, 0.0, 50.0, 50.0), MBR(0.0, 0.0, 50.0, 50.0)]
        )
        # Both replicas appear in every tile; the pair must come out once,
        # from tile (0, 0) — where both carry class A.
        got, stats = grid_candidates(ea, ea, 5, 5)
        assert Counter(got) == Counter(
            {(rid(0), rid(0)): 1, (rid(0), rid(1)): 1,
             (rid(1), rid(0)): 1, (rid(1), rid(1)): 1}
        )
        assert stats.duplicates_avoided > 0

    def test_row_and_column_spanners(self, backend):
        ea = entries(
            [
                MBR(0.0, 4.0, 40.0, 6.0),  # spans a row of tiles
                MBR(20.0, 0.0, 22.0, 40.0),  # spans a column of tiles
                MBR(0.0, 0.0, 40.0, 40.0),  # spans everything
            ]
        )
        assert_exactly_once(ea, ea, 4, 4)


class TestDegenerateGrids:
    def test_single_tile_grid(self, backend):
        # 1x1 grid: every entry is class A and the tile sweep must equal
        # the brute force outright.
        boxes = [
            MBR(float(i), float(i), float(i) + 2.0, float(i) + 2.0)
            for i in range(10)
        ]
        ea = entries(boxes)
        assert_exactly_once(ea, ea, 1, 1)

    def test_zero_extent_domain(self, backend):
        # All inputs identical points: domain width and height are zero
        # and the spec falls back to unit tiles.
        ea = entries([MBR(7.0, 7.0, 7.0, 7.0) for _ in range(3)])
        assert_exactly_once(ea, ea, 4, 4)

    def test_empty_inputs(self, backend):
        ea = entries([MBR(0.0, 0.0, 1.0, 1.0)])
        got, _ = grid_candidates(ea, [], 2, 2)
        assert got == []
        spec = build_grid_spec(EMPTY_MBR, 3, 3)
        assert spec.tiles == 1  # empty domain degenerates to one tile

    def test_bad_shape_rejected(self):
        from repro.errors import JoinError

        with pytest.raises(JoinError):
            build_grid_spec(MBR(0, 0, 1, 1), 0, 3)


class TestCursorParity:
    """JoinStrategy.GRID through the R-tree cursor equals SWEEP."""

    @pytest.fixture()
    def rect_db(self, random_rects):
        db = Database()
        load_geometries(db, "a_tab", random_rects(150, seed=91))
        load_geometries(db, "b_tab", random_rects(170, seed=92))
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
        db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE", fanout=6)
        return db

    @pytest.mark.parametrize("distance", [0.0, 4.0])
    def test_candidates_equal_sweep(self, rect_db, backend, distance):
        ta = rect_db.spatial_index("a_idx").tree
        tb = rect_db.spatial_index("b_idx").tree
        sweep = RTreeJoinCursor(
            [(ta.root, tb.root)], distance=distance,
            strategy=JoinStrategy.SWEEP,
        )
        grid = RTreeJoinCursor(
            [(ta.root, tb.root)], distance=distance,
            strategy=JoinStrategy.GRID,
        )
        want = sorted((a, b) for a, b, _, _ in sweep.drain())
        got = []
        while True:  # small batches: tiles must resume across fetches
            chunk = grid.next_candidates(13)
            if not chunk:
                break
            got.extend((a, b) for a, b, _, _ in chunk)
        assert len(got) == len(set(got)), "grid cursor emitted duplicates"
        assert sorted(got) == want

    def test_partitioned_root_pairs_join_only_their_partition(self, rect_db):
        # A slave's cursor gets an arbitrary subset of the subtree-pair
        # cross product; the grid must join exactly those pairs, not the
        # union of the subtrees it happens to see.
        from repro.core.subtree import subtree_roots

        ta = rect_db.spatial_index("a_idx").tree
        tb = rect_db.spatial_index("b_idx").tree
        roots_a = subtree_roots(ta, 1)
        roots_b = subtree_roots(tb, 1)
        pairs = [(a, b) for a in roots_a for b in roots_b]
        partition = pairs[:: 2]  # every other pair, an arbitrary slice
        sweep = RTreeJoinCursor(list(partition), strategy=JoinStrategy.SWEEP)
        grid = RTreeJoinCursor(list(partition), strategy=JoinStrategy.GRID)
        want = sorted((a, b) for a, b, _, _ in sweep.drain())
        got = sorted((a, b) for a, b, _, _ in grid.drain())
        assert got == want


class TestEndToEndParity:
    """Full joins (primary + secondary filter) across executors."""

    @pytest.fixture()
    def rect_db(self, random_rects):
        db = Database()
        load_geometries(db, "a_tab", random_rects(120, seed=93))
        load_geometries(db, "b_tab", random_rects(110, seed=94))
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
        db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE", fanout=6)
        return db

    @pytest.mark.parametrize("distance", [0.0, 3.0])
    @pytest.mark.parametrize("parallel", [1, 3])
    def test_grid_equals_sweep(self, rect_db, backend, distance, parallel):
        ref = rect_db.spatial_join(
            "a_tab", "geom", "b_tab", "geom", distance=distance
        )
        got = rect_db.spatial_join(
            "a_tab", "geom", "b_tab", "geom", distance=distance,
            parallel=parallel, strategy="GRID",
        )
        assert len(got.pairs) == len(set(got.pairs))
        assert sorted(got.pairs) == sorted(ref.pairs)
        if parallel > 1:
            assert got.grid is not None
            assert got.grid.tasks == got.subtree_pair_count

    def test_threaded_grid(self, rect_db):
        ref = rect_db.spatial_join("a_tab", "geom", "b_tab", "geom")
        got = rect_db.spatial_join(
            "a_tab", "geom", "b_tab", "geom",
            parallel=4, use_threads=True, strategy="GRID",
        )
        assert sorted(got.pairs) == sorted(ref.pairs)

    def test_process_grid(self, rect_db):
        ref = rect_db.spatial_join("a_tab", "geom", "b_tab", "geom")
        got = rect_db.spatial_join(
            "a_tab", "geom", "b_tab", "geom",
            parallel=3, use_processes=True, strategy="GRID",
        )
        assert sorted(got.pairs) == sorted(ref.pairs)
        # slave processes metered tile sweeps and shipped counts back
        combined = got.run.combined_meter()
        assert combined.counts.get("mbr_test", 0) > 0

    def test_self_join_grid(self, random_rects):
        db = Database()
        load_geometries(db, "t", random_rects(100, seed=95))
        db.create_spatial_index("t_idx", "t", "geom", kind="RTREE", fanout=6)
        ref = db.spatial_join("t", "geom", "t", "geom")
        got = db.spatial_join(
            "t", "geom", "t", "geom", parallel=4, strategy="GRID"
        )
        assert sorted(got.pairs) == sorted(ref.pairs)
        assert len(got.pairs) == len(set(got.pairs))

    def test_unknown_strategy_rejected(self, rect_db):
        from repro.errors import JoinError

        with pytest.raises(JoinError):
            rect_db.spatial_join(
                "a_tab", "geom", "b_tab", "geom", strategy="HILBERT"
            )
