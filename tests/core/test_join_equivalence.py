"""Cross-validation: every join strategy returns the same pairs.

This is the repository's strongest correctness argument: nested loop
(through the extensible-indexing operator path), serial table-function
join, parallel table-function join at several degrees, SQL semi-join
form, and brute force all agree — on random data and on the synthetic
paper datasets.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, Geometry
from repro.datasets import counties, load_geometries, stars
from repro.core.secondary_filter import JoinPredicate
from repro.geometry.distance import within_distance
from repro.geometry.predicates import intersects


def build_db(geoms_a, geoms_b):
    db = Database()
    load_geometries(db, "a_tab", geoms_a)
    load_geometries(db, "b_tab", geoms_b)
    db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=6)
    db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE", fanout=6)
    return db


def brute(db, distance=0.0):
    rows_a = [(r, row[1]) for r, row in db.table("a_tab").scan()]
    rows_b = [(r, row[1]) for r, row in db.table("b_tab").scan()]
    out = set()
    for ra, ga in rows_a:
        for rb, gb in rows_b:
            hit = (
                intersects(ga, gb)
                if distance == 0.0
                else within_distance(ga, gb, distance)
            )
            if hit:
                out.add((ra, rb))
    return out


class TestAllStrategiesAgree:
    @pytest.mark.parametrize("distance", [0.0, 3.0])
    def test_random_rects(self, random_rects, distance):
        db = build_db(random_rects(70, seed=81), random_rects(60, seed=82))
        expected = brute(db, distance)
        nl = db.nested_loop_join("a_tab", "geom", "b_tab", "geom", distance=distance)
        s = db.spatial_join("a_tab", "geom", "b_tab", "geom", distance=distance)
        p2 = db.spatial_join("a_tab", "geom", "b_tab", "geom", distance=distance, parallel=2)
        p4 = db.spatial_join("a_tab", "geom", "b_tab", "geom", distance=distance, parallel=4)
        assert set(nl.pairs) == expected
        assert set(s.pairs) == expected
        assert set(p2.pairs) == expected
        assert set(p4.pairs) == expected

    def test_counties_self_join(self):
        polys = counties(64, seed=19)
        db = build_db(polys, polys)
        expected = brute(db)
        s = db.spatial_join("a_tab", "geom", "b_tab", "geom")
        assert set(s.pairs) == expected
        # contiguous tessellation: every polygon intersects itself and
        # at least one neighbour
        assert len(expected) > 2 * len(polys)

    def test_stars_self_join_with_distance(self):
        polys = stars(120, seed=23)
        db = build_db(polys, polys)
        expected = brute(db, distance=1.0)
        s = db.spatial_join("a_tab", "geom", "b_tab", "geom", distance=1.0)
        p = db.spatial_join("a_tab", "geom", "b_tab", "geom", distance=1.0, parallel=3)
        assert set(s.pairs) == expected
        assert set(p.pairs) == expected

    def test_sql_form_agrees_with_api(self, random_rects):
        db = build_db(random_rects(40, seed=83), random_rects(40, seed=84))
        api = db.spatial_join("a_tab", "geom", "b_tab", "geom")
        sql = db.sql(
            "select rid1, rid2 from TABLE(spatial_join("
            "'a_tab','geom','b_tab','geom','intersect'))"
        )
        assert sorted(api.pairs) == sorted(sql.rows)


class TestPropertyBased:
    @given(seed_a=st.integers(0, 10_000), seed_b=st.integers(0, 10_000),
           n=st.integers(5, 40))
    @settings(max_examples=10, deadline=None)
    def test_join_strategies_agree_on_random_data(self, seed_a, seed_b, n):
        import random as _random

        def rects(n, seed):
            rng = _random.Random(seed)
            out = []
            for _ in range(n):
                x, y = rng.uniform(0, 60), rng.uniform(0, 60)
                out.append(Geometry.rectangle(x, y, x + rng.uniform(0.5, 6), y + rng.uniform(0.5, 6)))
            return out

        db = build_db(rects(n, seed_a), rects(n, seed_b))
        expected = brute(db)
        s = db.spatial_join("a_tab", "geom", "b_tab", "geom")
        p = db.spatial_join("a_tab", "geom", "b_tab", "geom", parallel=2)
        nl = db.nested_loop_join("a_tab", "geom", "b_tab", "geom")
        assert set(s.pairs) == expected
        assert set(p.pairs) == expected
        assert set(nl.pairs) == expected
