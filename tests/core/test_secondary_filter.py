"""Unit tests for the secondary filter, fetch order, and geometry cache."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.engine.parallel import WorkerContext
from repro.core.secondary_filter import (
    FetchOrder,
    GeometryCache,
    JoinPredicate,
    SecondaryFilter,
)
from repro.geometry.mbr import MBR


@pytest.fixture
def filter_db(random_rects):
    db = Database()
    load_geometries(db, "t", random_rects(60, seed=31))
    return db


def candidates_of(db, limit=None):
    """All-pairs MBR candidates for the single table (self-join style)."""
    rows = [(rid, row[1]) for rid, row in db.table("t").scan()]
    out = []
    for ra, ga in rows:
        for rb, gb in rows:
            if ga.mbr.intersects(gb.mbr):
                out.append((ra, rb, ga.mbr, gb.mbr))
    return out[:limit] if limit else out


class TestJoinPredicate:
    def test_intersect_semantics(self):
        p = JoinPredicate()
        a, b = Geometry.rectangle(0, 0, 2, 2), Geometry.rectangle(1, 1, 3, 3)
        assert p.evaluate(a, b)
        assert not p.evaluate(a, Geometry.rectangle(9, 9, 10, 10))

    def test_distance_semantics(self):
        p = JoinPredicate(distance=3.0)
        a, b = Geometry.rectangle(0, 0, 1, 1), Geometry.rectangle(3, 0, 4, 1)
        assert p.evaluate(a, b)
        assert not JoinPredicate(distance=1.0).evaluate(a, b)

    def test_mask_passthrough(self):
        p = JoinPredicate(mask="CONTAINS")
        big, small = Geometry.rectangle(0, 0, 10, 10), Geometry.rectangle(2, 2, 3, 3)
        assert p.evaluate(big, small)
        assert not p.evaluate(small, big)


class TestGeometryCache:
    def test_hit_after_miss(self, filter_db):
        table = filter_db.table("t")
        rid = next(iter(table.heap.rowids()))
        cache = GeometryCache(capacity=4)
        ctx = WorkerContext(0)
        g1 = cache.fetch(table, rid, 1, ctx)
        g2 = cache.fetch(table, rid, 1, ctx)
        assert g1 == g2
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self, filter_db):
        table = filter_db.table("t")
        rids = list(table.heap.rowids())[:3]
        cache = GeometryCache(capacity=2)
        ctx = WorkerContext(0)
        cache.fetch(table, rids[0], 1, ctx)
        cache.fetch(table, rids[1], 1, ctx)
        cache.fetch(table, rids[2], 1, ctx)  # evicts rids[0]
        cache.fetch(table, rids[0], 1, ctx)
        assert cache.misses == 4

    def test_miss_charges_more_than_hit(self, filter_db):
        table = filter_db.table("t")
        rid = next(iter(table.heap.rowids()))
        cache = GeometryCache(capacity=4)
        ctx_miss, ctx_hit = WorkerContext(0), WorkerContext(1)
        cache.fetch(table, rid, 1, ctx_miss)
        cache.fetch(table, rid, 1, ctx_hit)
        assert ctx_miss.meter.seconds() > ctx_hit.meter.seconds()


class TestSecondaryFilter:
    def make_filter(self, db, order=FetchOrder.SORTED, capacity=2048):
        return SecondaryFilter(
            db.table("t"), "geom", db.table("t"), "geom",
            JoinPredicate(), fetch_order=order, cache_capacity=capacity,
        )

    def test_results_independent_of_order(self, filter_db):
        cands = candidates_of(filter_db)
        results = {}
        for order in FetchOrder:
            f = self.make_filter(filter_db, order=order)
            results[order] = sorted(f.process(list(cands)))
        assert results[FetchOrder.SORTED] == results[FetchOrder.RANDOM]
        assert results[FetchOrder.SORTED] == results[FetchOrder.AS_PRODUCED]

    def test_results_subset_of_candidates(self, filter_db):
        cands = candidates_of(filter_db)
        f = self.make_filter(filter_db)
        results = f.process(list(cands))
        cand_pairs = {(a, b) for a, b, _m, _n in cands}
        assert all(pair in cand_pairs for pair in results)

    def test_sorted_order_has_better_cache_hit_ratio(self, filter_db):
        """The paper's §4.2 claim, made mechanical: sorting candidates by
        first rowid improves fetch locality under a bounded cache."""
        cands = candidates_of(filter_db)
        f_sorted = self.make_filter(filter_db, FetchOrder.SORTED, capacity=8)
        f_random = self.make_filter(filter_db, FetchOrder.RANDOM, capacity=8)
        f_sorted.process(list(cands))
        f_random.process(list(cands))
        assert f_sorted.cache.hit_ratio > f_random.cache.hit_ratio

    def test_work_charged(self, filter_db):
        cands = candidates_of(filter_db, limit=50)
        f = self.make_filter(filter_db)
        ctx = WorkerContext(0)
        f.process(list(cands), ctx)
        assert ctx.meter.counts["exact_test_base"] == 50
        assert ctx.meter.counts.get("geom_fetch_base", 0) > 0

    def test_identity_pairs_always_pass(self, filter_db):
        rows = [(rid, row[1]) for rid, row in filter_db.table("t").scan()]
        cands = [(rid, rid, g.mbr, g.mbr) for rid, g in rows]
        f = self.make_filter(filter_db)
        assert len(f.process(cands)) == len(cands)

    def test_interior_cache_is_bounded(self, filter_db):
        """The interior-rectangle cache obeys its LRU capacity knob."""
        f = SecondaryFilter(
            filter_db.table("t"), "geom", filter_db.table("t"), "geom",
            JoinPredicate(), use_interior=True, interior_cache_capacity=7,
        )
        assert f.use_interior
        f.process(candidates_of(filter_db))
        assert 0 < len(f._interior) <= 7
        f.clear_caches()
        assert len(f._interior) == 0
        assert len(f.cache._entries) == 0

    def test_interior_capacity_defaults_to_geometry_capacity(self, filter_db):
        f = SecondaryFilter(
            filter_db.table("t"), "geom", filter_db.table("t"), "geom",
            JoinPredicate(), cache_capacity=13, use_interior=True,
        )
        assert f._interior_capacity == 13
