"""Unit tests for the spatial_join pipelined table function."""

import pytest

from repro import Database, Geometry
from repro.datasets import load_geometries
from repro.engine.cursor import ListCursor
from repro.engine.parallel import WorkerContext
from repro.engine.table_function import collect, pipeline
from repro.errors import JoinError, TableFunctionError
from repro.core.secondary_filter import FetchOrder, JoinPredicate
from repro.core.spatial_join import SpatialJoinFunction


@pytest.fixture
def join_db(random_rects):
    db = Database()
    load_geometries(db, "a_tab", random_rects(80, seed=41))
    load_geometries(db, "b_tab", random_rects(90, seed=42))
    db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE", fanout=8)
    db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE", fanout=8)
    return db


def make_join(db, **kwargs):
    return SpatialJoinFunction(
        db.table("a_tab"), "geom", db.spatial_index("a_idx").tree,
        db.table("b_tab"), "geom", db.spatial_index("b_idx").tree,
        **kwargs,
    )


def brute_force_pairs(db, predicate=JoinPredicate()):
    rows_a = [(rid, row[1]) for rid, row in db.table("a_tab").scan()]
    rows_b = [(rid, row[1]) for rid, row in db.table("b_tab").scan()]
    out = set()
    for ra, ga in rows_a:
        for rb, gb in rows_b:
            if predicate.evaluate(ga, gb):
                out.add((ra, rb))
    return out


class TestCorrectness:
    def test_matches_brute_force(self, join_db):
        fn = make_join(join_db)
        pairs = set(collect(fn))
        assert pairs == brute_force_pairs(join_db)

    def test_distance_join_matches_brute_force(self, join_db):
        pred = JoinPredicate(distance=5.0)
        fn = make_join(join_db, predicate=pred)
        assert set(collect(fn)) == brute_force_pairs(join_db, pred)

    def test_no_duplicate_pairs(self, join_db):
        rows = collect(make_join(join_db))
        assert len(rows) == len(set(rows))

    def test_empty_tree_side(self, random_rects):
        db = Database()
        load_geometries(db, "a_tab", random_rects(10, seed=1))
        load_geometries(db, "b_tab", [])
        db.create_spatial_index("a_idx", "a_tab", "geom", kind="RTREE")
        db.create_spatial_index("b_idx", "b_tab", "geom", kind="RTREE")
        fn = SpatialJoinFunction(
            db.table("a_tab"), "geom", db.spatial_index("a_idx").tree,
            db.table("b_tab"), "geom", db.spatial_index("b_idx").tree,
        )
        assert collect(fn) == []


class TestPipelining:
    def test_small_fetch_batches_cover_everything(self, join_db):
        expected = brute_force_pairs(join_db)
        fn = make_join(join_db)
        ctx = WorkerContext(0)
        fn.start(ctx)
        got = []
        fetches = 0
        while True:
            batch = fn.fetch(ctx, 5)
            if not batch:
                break
            fetches += 1
            assert len(batch) <= 5
            got.extend(batch)
        fn.close(ctx)
        assert set(got) == expected
        assert fetches > 1  # really was pipelined

    def test_candidate_array_bound_respected(self, join_db):
        """A small candidate array forces multiple filter rounds but must
        not change the result."""
        expected = brute_force_pairs(join_db)
        fn = make_join(join_db, candidate_array_size=16)
        assert set(collect(fn)) == expected

    def test_stats_populated(self, join_db):
        fn = make_join(join_db)
        collect(fn)
        assert fn.stats.candidate_pairs >= fn.stats.result_pairs
        assert fn.stats.result_pairs == len(brute_force_pairs(join_db))
        assert fn.stats.mbr_tests > 0
        assert fn.stats.fetch_calls >= 1

    def test_protocol_violations(self, join_db):
        fn = make_join(join_db)
        ctx = WorkerContext(0)
        with pytest.raises(TableFunctionError):
            fn.fetch(ctx)
        fn.start(ctx)
        fn.close(ctx)
        with pytest.raises(TableFunctionError):
            fn.fetch(ctx)

    def test_bad_candidate_array_size(self, join_db):
        with pytest.raises(JoinError):
            make_join(join_db, candidate_array_size=0)


class TestSubtreePairCursor:
    def test_explicit_pair_cursor_equals_whole_join(self, join_db):
        tree_a = join_db.spatial_index("a_idx").tree
        tree_b = join_db.spatial_index("b_idx").tree
        roots_a = tree_a.subtree_roots(1)
        roots_b = tree_b.subtree_roots(1)
        pair_rows = [(a, b) for a in roots_a for b in roots_b]
        fn = make_join(join_db, subtree_pair_cursor=ListCursor(pair_rows))
        assert set(collect(fn)) == brute_force_pairs(join_db)

    def test_bad_cursor_rows_rejected(self, join_db):
        fn = make_join(join_db, subtree_pair_cursor=ListCursor([(1, 2)]))
        ctx = WorkerContext(0)
        with pytest.raises(JoinError):
            fn.start(ctx)


class TestFetchOrderOptions:
    @pytest.mark.parametrize("order", list(FetchOrder))
    def test_all_orders_same_result(self, join_db, order):
        fn = make_join(join_db, fetch_order=order)
        assert set(collect(fn)) == brute_force_pairs(join_db)
