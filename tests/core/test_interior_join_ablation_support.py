"""Tests backing the interior-approximation ablation's claims.

Ablation E claims fast-accepts reduce exact-test work without changing
results; these tests verify the accounting those claims rest on.
"""

import pytest

from repro import Database
from repro.datasets import counties, load_geometries
from repro.engine.parallel import WorkerContext
from repro.engine.table_function import collect
from repro.core.spatial_join import SpatialJoinFunction


@pytest.fixture
def county_db():
    db = Database()
    load_geometries(db, "t", counties(120, seed=61, extent=(0, 0, 10, 5)))
    db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
    return db


def run_join(db, use_interior):
    fn = SpatialJoinFunction(
        db.table("t"), "geom", db.spatial_index("t_idx").tree,
        db.table("t"), "geom", db.spatial_index("t_idx").tree,
        use_interior=use_interior,
    )
    ctx = WorkerContext(0)
    pairs = collect(fn, ctx)
    return fn, ctx, sorted(pairs)


class TestInteriorAccounting:
    def test_identity_pairs_fast_accepted(self, county_db):
        """Every county contains its own interior rectangle, so self-pairs
        must never reach the exact test."""
        fn, _ctx, pairs = run_join(county_db, use_interior=True)
        n = county_db.table("t").row_count
        assert fn._filter.fast_accepts >= n  # noqa: SLF001

    def test_exact_work_reduced_not_results(self, county_db):
        fn_off, ctx_off, pairs_off = run_join(county_db, use_interior=False)
        fn_on, ctx_on, pairs_on = run_join(county_db, use_interior=True)
        assert pairs_on == pairs_off
        exact_off = ctx_off.meter.counts.get("exact_test_base", 0)
        exact_on = ctx_on.meter.counts.get("exact_test_base", 0)
        assert exact_on < exact_off

    def test_fast_accepted_pairs_are_true_positives(self, county_db):
        """Soundness: the fast-accept path may never admit a false pair
        (checked indirectly by comparing against the exact-only join)."""
        _fn_off, _c, pairs_exact = run_join(county_db, use_interior=False)
        fn_on, _c2, pairs_fast = run_join(county_db, use_interior=True)
        assert fn_on._filter.fast_accepts > 0  # noqa: SLF001
        assert set(pairs_fast) == set(pairs_exact)
