"""Unit tests for the nested-loop join baseline."""

import pytest

from repro import Database
from repro.datasets import load_geometries
from repro.core.secondary_filter import JoinPredicate


@pytest.fixture
def nl_db(random_rects):
    db = Database()
    load_geometries(db, "outer_tab", random_rects(60, seed=61))
    load_geometries(db, "inner_tab", random_rects(70, seed=62))
    db.create_spatial_index("o_idx", "outer_tab", "geom", kind="RTREE", fanout=8)
    db.create_spatial_index("i_idx", "inner_tab", "geom", kind="RTREE", fanout=8)
    return db


class TestCorrectness:
    def test_equals_index_join(self, nl_db):
        nl = nl_db.nested_loop_join("outer_tab", "geom", "inner_tab", "geom")
        ij = nl_db.spatial_join("outer_tab", "geom", "inner_tab", "geom")
        assert sorted(nl.pairs) == sorted(ij.pairs)

    def test_distance_variant(self, nl_db):
        nl = nl_db.nested_loop_join(
            "outer_tab", "geom", "inner_tab", "geom", distance=4.0
        )
        ij = nl_db.spatial_join("outer_tab", "geom", "inner_tab", "geom", distance=4.0)
        assert sorted(nl.pairs) == sorted(ij.pairs)

    def test_asymmetric_masks(self, nl_db):
        nl = nl_db.nested_loop_join(
            "outer_tab", "geom", "inner_tab", "geom", mask="CONTAINS"
        )
        # verify against brute force since CONTAINS is order-sensitive
        from repro.geometry.predicates import contains

        expected = set()
        for ra, rowa in nl_db.table("outer_tab").scan():
            for rb, rowb in nl_db.table("inner_tab").scan():
                # operator semantics: inner geometry CONTAINS probe geometry
                if contains(rowb[1], rowa[1]):
                    expected.add((ra, rb))
        assert set(nl.pairs) == expected


class TestCostShape:
    def test_nested_loop_costs_more_than_index_join(self, nl_db):
        """The paper's headline: the table-function join beats per-row
        probing (for non-tiny inputs)."""
        nl = nl_db.nested_loop_join("outer_tab", "geom", "inner_tab", "geom")
        ij = nl_db.spatial_join("outer_tab", "geom", "inner_tab", "geom")
        assert nl.makespan_seconds > ij.makespan_seconds

    def test_probe_count_scales_with_outer_table(self, random_rects):
        db = Database()
        load_geometries(db, "outer_tab", random_rects(30, seed=63))
        load_geometries(db, "inner_tab", random_rects(100, seed=64))
        db.create_spatial_index("i_idx", "inner_tab", "geom", kind="RTREE")
        result = db.nested_loop_join("outer_tab", "geom", "inner_tab", "geom")
        meter = result.run.combined_meter()
        # one outer-geometry fetch per row
        assert meter.counts["geom_fetch_base"] >= 30
