"""Primary-filter strategy tests: plane sweep vs nested pairing.

Covers the two guarantees the sweep refactor must keep:

* **Resumability** — draining the join cursor in batches of any size
  yields exactly the full drain, *in the same order* (the candidate
  buffer drains FIFO, so batch boundaries cannot reorder emission).
* **Equivalence** — SWEEP (with and without the flat-array node layout)
  and NESTED produce identical candidate sets on seeded counties/stars
  samples, for intersection and within-distance joins, on bulk-loaded
  and dynamically built (insert/delete) trees alike.
"""

import random

import pytest

from repro import Database
from repro.datasets import load_geometries
from repro.engine.parallel import WorkerContext
from repro.geometry.mbr import MBR
from repro.index.rtree.bulkload import str_pack
from repro.index.rtree.join import JoinStrategy, RTreeJoinCursor
from repro.index.rtree.rtree import RTree
from repro.storage.heap import RowId


def rid(i):
    return RowId(i // 100, i % 100)


def random_entries(n, seed, extent=400.0, size=10.0, id_base=0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, extent), rng.uniform(0, extent)
        out.append(
            (
                MBR(x, y, x + rng.uniform(1, size), y + rng.uniform(1, size)),
                rid(id_base + i),
            )
        )
    return out


def brute_pairs(ea, eb, distance=0.0):
    out = set()
    for ma, ra in ea:
        for mb, rb in eb:
            hit = ma.intersects(mb) if distance == 0.0 else ma.distance(mb) <= distance
            if hit:
                out.add((ra, rb))
    return out


def geometry_entries(geoms, id_base=0):
    return [(g.mbr, rid(id_base + i)) for i, g in enumerate(geoms)]


def cursor_pairs(cursor):
    return {(a, b) for a, b, _ma, _mb in cursor.drain()}


ALL_VARIANTS = [
    (JoinStrategy.NESTED, True),
    (JoinStrategy.SWEEP, True),
    (JoinStrategy.SWEEP, False),
]


class TestResumability:
    """drain() == concatenated next_candidates(k) for every batch size."""

    @pytest.mark.parametrize("k", [1, 3, 7])
    @pytest.mark.parametrize("strategy", [JoinStrategy.NESTED, JoinStrategy.SWEEP])
    def test_batched_equals_drain(self, k, strategy):
        ea = random_entries(120, seed=41)
        eb = random_entries(110, seed=42, id_base=5000)
        ta, tb = str_pack(ea, fanout=8), str_pack(eb, fanout=8)

        full = RTreeJoinCursor([(ta.root, tb.root)], strategy=strategy).drain()
        batched = []
        cursor = RTreeJoinCursor([(ta.root, tb.root)], strategy=strategy)
        while True:
            chunk = cursor.next_candidates(k)
            if not chunk:
                break
            assert len(chunk) <= k
            batched.extend(chunk)
        # Same pairs in the same order: the overflow buffer drains FIFO, so
        # batch boundaries are invisible to the consumer.
        assert batched == full
        assert cursor.exhausted

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_batched_equals_drain_with_distance(self, k):
        ea = random_entries(90, seed=43)
        eb = random_entries(90, seed=44, id_base=5000)
        ta, tb = str_pack(ea, fanout=8), str_pack(eb, fanout=8)
        full = RTreeJoinCursor([(ta.root, tb.root)], distance=9.0).drain()
        cursor = RTreeJoinCursor([(ta.root, tb.root)], distance=9.0)
        batched = []
        while True:
            chunk = cursor.next_candidates(k)
            if not chunk:
                break
            batched.extend(chunk)
        assert batched == full


class TestStrategyEquivalence:
    @pytest.mark.parametrize("distance", [0.0, 6.0])
    def test_random_rect_sets_identical(self, distance):
        ea = random_entries(250, seed=45)
        eb = random_entries(230, seed=46, id_base=9000)
        ta, tb = str_pack(ea, fanout=8), str_pack(eb, fanout=8)
        expected = brute_pairs(ea, eb, distance)
        for strategy, flat in ALL_VARIANTS:
            cursor = RTreeJoinCursor(
                [(ta.root, tb.root)],
                distance=distance,
                strategy=strategy,
                use_flat_arrays=flat,
            )
            assert cursor_pairs(cursor) == expected, (strategy, flat)

    @pytest.mark.parametrize("distance", [0.0, 0.2])
    def test_counties_sample(self, small_counties, distance):
        entries = geometry_entries(small_counties)
        tree = str_pack(entries, fanout=12)
        expected = brute_pairs(entries, entries, distance)
        for strategy, flat in ALL_VARIANTS:
            cursor = RTreeJoinCursor(
                [(tree.root, tree.root)],
                distance=distance,
                strategy=strategy,
                use_flat_arrays=flat,
            )
            assert cursor_pairs(cursor) == expected, (strategy, flat)

    @pytest.mark.parametrize("distance", [0.0, 1.5])
    def test_stars_sample(self, small_stars, distance):
        entries = geometry_entries(small_stars)
        tree = str_pack(entries, fanout=16)
        expected = brute_pairs(entries, entries, distance)
        for strategy, flat in ALL_VARIANTS:
            cursor = RTreeJoinCursor(
                [(tree.root, tree.root)],
                distance=distance,
                strategy=strategy,
                use_flat_arrays=flat,
            )
            assert cursor_pairs(cursor) == expected, (strategy, flat)

    def test_dynamic_tree_after_mutation(self):
        """Insert/delete-built trees exercise the coords-cache invalidation."""
        entries = random_entries(160, seed=47)
        tree = RTree(fanout=8)
        for mbr, r in entries:
            tree.insert(mbr, r)
        # Warm the flat-array caches with a sweep join, then mutate.
        RTreeJoinCursor([(tree.root, tree.root)]).drain()
        removed = entries[::5]
        for mbr, r in removed:
            assert tree.delete(mbr, r)
        kept = [e for i, e in enumerate(entries) if i % 5 != 0]
        extra = random_entries(40, seed=48, id_base=7000)
        for mbr, r in extra:
            tree.insert(mbr, r)
        live = kept + extra
        expected = brute_pairs(live, live)
        for strategy, flat in ALL_VARIANTS:
            cursor = RTreeJoinCursor(
                [(tree.root, tree.root)], strategy=strategy, use_flat_arrays=flat
            )
            assert cursor_pairs(cursor) == expected, (strategy, flat)

    def test_sweep_charges_fewer_mbr_tests(self):
        entries = random_entries(400, seed=49)
        tree = str_pack(entries, fanout=16)
        meters = {}
        for strategy in (JoinStrategy.NESTED, JoinStrategy.SWEEP):
            ctx = WorkerContext(0)
            RTreeJoinCursor([(tree.root, tree.root)], strategy=strategy).drain(ctx)
            meters[strategy] = ctx.meter
        nested, sweep = meters[JoinStrategy.NESTED], meters[JoinStrategy.SWEEP]
        assert sweep.counts["mbr_test"] < nested.counts["mbr_test"]
        assert sweep.seconds() < nested.seconds()
        assert sweep.counts["sweep_sort_per_item"] > 0
        assert sweep.counts["sweep_pair_emit"] > 0


class TestDriverLevelEquivalence:
    """The strategy knob threads through the join drivers end to end."""

    def test_spatial_join_strategies_agree(self, small_counties):
        db = Database()
        load_geometries(db, "c", small_counties)
        db.create_spatial_index("c_idx", "c", "geom", kind="RTREE")
        sweep = db.spatial_join("c", "geom", "c", "geom")
        nested = db.spatial_join(
            "c", "geom", "c", "geom", strategy=JoinStrategy.NESTED
        )
        no_flat = db.spatial_join(
            "c", "geom", "c", "geom", use_flat_arrays=False
        )
        parallel = db.spatial_join(
            "c", "geom", "c", "geom", parallel=3, strategy=JoinStrategy.NESTED
        )
        assert set(sweep.pairs) == set(nested.pairs) == set(no_flat.pairs)
        assert set(parallel.pairs) == set(sweep.pairs)
        # The sweep primary filter must make the simulated join cheaper.
        assert sweep.makespan_seconds < nested.makespan_seconds
