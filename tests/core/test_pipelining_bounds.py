"""Tests for the paper's memory claim about pipelined table functions.

§2: "iterative fetching of result rows (referred to as pipelining here) is
essential to support table functions that return a large set of rows that
cannot fit in memory."  These tests pin the mechanism: with a bounded
candidate array and small fetch sizes, the join function's internal state
stays bounded no matter how large the result set is.
"""

import pytest

from repro import Database
from repro.datasets import load_geometries, stars
from repro.engine.parallel import WorkerContext
from repro.core.spatial_join import SpatialJoinFunction


@pytest.fixture
def dense_db():
    """A workload whose self-join result is much larger than its input."""
    db = Database()
    load_geometries(db, "t", stars(600, seed=171))
    db.create_spatial_index("t_idx", "t", "geom", kind="RTREE")
    return db


class TestBoundedState:
    def test_internal_buffers_bounded_during_pipelined_fetch(self, dense_db):
        array_size = 64
        fetch_size = 16
        fn = SpatialJoinFunction(
            dense_db.table("t"), "geom", dense_db.spatial_index("t_idx").tree,
            dense_db.table("t"), "geom", dense_db.spatial_index("t_idx").tree,
            candidate_array_size=array_size,
            cache_capacity=128,
        )
        ctx = WorkerContext(0)
        fn.start(ctx)
        total = 0
        max_buffer = 0
        while True:
            batch = fn.fetch(ctx, fetch_size)
            if not batch:
                break
            total += len(batch)
            max_buffer = max(max_buffer, len(fn._out_buffer))  # noqa: SLF001
        fn.close(ctx)
        assert total > 10 * fetch_size, "workload must actually be large"
        # The out-buffer holds at most one candidate array's surplus.
        assert max_buffer <= array_size
        # And the geometry cache respects its capacity.
        assert len(fn._filter.cache._entries) == 0  # noqa: SLF001 (cleared on close)

    def test_rows_arrive_before_join_completes(self, dense_db):
        """Pipelining means the first rows surface long before the full
        traversal finishes — observed via the join cursor's live stack."""
        fn = SpatialJoinFunction(
            dense_db.table("t"), "geom", dense_db.spatial_index("t_idx").tree,
            dense_db.table("t"), "geom", dense_db.spatial_index("t_idx").tree,
            candidate_array_size=32,
        )
        ctx = WorkerContext(0)
        fn.start(ctx)
        first = fn.fetch(ctx, 5)
        assert len(first) == 5
        assert not fn._join.exhausted  # noqa: SLF001 - traversal still pending
        fn.close(ctx)

    def test_results_independent_of_fetch_granularity(self, dense_db):
        def run(fetch_size, array_size):
            fn = SpatialJoinFunction(
                dense_db.table("t"), "geom", dense_db.spatial_index("t_idx").tree,
                dense_db.table("t"), "geom", dense_db.spatial_index("t_idx").tree,
                candidate_array_size=array_size,
            )
            ctx = WorkerContext(0)
            fn.start(ctx)
            rows = []
            while True:
                batch = fn.fetch(ctx, fetch_size)
                if not batch:
                    break
                rows.extend(batch)
            fn.close(ctx)
            return sorted(rows)

        reference = run(1024, 4096)
        assert run(3, 16) == reference
        assert run(500, 64) == reference
