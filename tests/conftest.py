"""Shared fixtures: small seeded datasets and pre-built databases."""

from __future__ import annotations

import random

import pytest

from repro import Database, Geometry
from repro.datasets import counties, load_geometries, stars


@pytest.fixture(scope="session")
def small_counties():
    """~120 contiguous county-like polygons (session-cached)."""
    return counties(120, seed=11)


@pytest.fixture(scope="session")
def small_stars():
    """~400 clustered star polygons (session-cached)."""
    return stars(400, seed=5)


@pytest.fixture
def random_rects():
    """Factory for seeded random rectangle geometries."""

    def make(n: int, seed: int = 0, extent: float = 100.0, size: float = 4.0):
        rng = random.Random(seed)
        out = []
        for _ in range(n):
            x = rng.uniform(0, extent - size)
            y = rng.uniform(0, extent - size)
            w = rng.uniform(size * 0.2, size)
            h = rng.uniform(size * 0.2, size)
            out.append(Geometry.rectangle(x, y, x + w, y + h))
        return out

    return make


@pytest.fixture
def indexed_db(random_rects):
    """A database with one table of 150 rectangles and both index kinds."""
    db = Database()
    geoms = random_rects(150, seed=3)
    load_geometries(db, "shapes", geoms)
    db.create_spatial_index("shapes_ridx", "shapes", "geom", kind="RTREE", fanout=8)
    db.create_spatial_index(
        "shapes_qidx", "shapes", "geom", kind="QUADTREE", tiling_level=6
    )
    return db
