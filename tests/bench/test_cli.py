"""Unit tests for the ``python -m repro.bench`` CLI (fast paths only)."""

import pytest


class TestCli:
    def test_unknown_experiment_rejected(self, capsys):
        from repro.bench.__main__ import main

        code = main(["prog", "table9000"])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_module_loader_finds_bench_files(self):
        from repro.bench.__main__ import _load_bench_module

        module = _load_bench_module("table1")
        assert hasattr(module, "run_table1")
        module = _load_bench_module("figure2")
        assert hasattr(module, "run_figure2")

    def test_experiment_registry_complete(self):
        from repro.bench.__main__ import EXPERIMENTS, _MODULE_FILES, _load_bench_module

        for name in EXPERIMENTS:
            module = _load_bench_module(_MODULE_FILES.get(name, name))
            assert hasattr(module, f"run_{name}"), name

    def test_list_flag_prints_descriptions(self, capsys):
        from repro.bench.__main__ import DESCRIPTIONS, EXPERIMENTS, main

        code = main(["prog", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
            assert DESCRIPTIONS[name] in out

    def test_list_wins_over_experiment_names(self, capsys):
        # --list must not build workloads even when names are also given.
        from repro.bench.__main__ import main

        code = main(["prog", "table1", "--list"])
        assert code == 0
        assert "cluster" in capsys.readouterr().out
