"""Unit tests for the ``python -m repro.bench`` CLI (fast paths only)."""

import pytest


class TestCli:
    def test_unknown_experiment_rejected(self, capsys):
        from repro.bench.__main__ import main

        code = main(["prog", "table9000"])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_module_loader_finds_bench_files(self):
        from repro.bench.__main__ import _load_bench_module

        module = _load_bench_module("table1")
        assert hasattr(module, "run_table1")
        module = _load_bench_module("figure2")
        assert hasattr(module, "run_figure2")

    def test_experiment_registry_complete(self):
        from repro.bench.__main__ import EXPERIMENTS, _MODULE_FILES, _load_bench_module

        for name in EXPERIMENTS:
            module = _load_bench_module(_MODULE_FILES.get(name, name))
            assert hasattr(module, f"run_{name}"), name
