"""Unit tests for the benchmark reporting helpers."""

import os

import pytest

from repro.bench.reporting import ExperimentTable, results_dir


class TestExperimentTable:
    def test_render_aligns_columns(self):
        t = ExperimentTable(
            experiment="demo", title="Demo", columns=["name", "value"],
        )
        t.add_row("a", 1.5)
        t.add_row("longer-name", 100.0)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "== Demo =="
        header, rule, row1, row2 = lines[1:5]
        assert len(header) == len(rule) == len(row1) == len(row2)

    def test_row_width_validated(self):
        t = ExperimentTable("demo", "Demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_paper_note_rendered(self):
        t = ExperimentTable("demo", "Demo", ["a"], paper_note="shape holds")
        t.add_row(1)
        assert "paper: shape holds" in t.render()

    def test_float_formatting(self):
        t = ExperimentTable("demo", "Demo", ["v"])
        t.add_row(0.00123)
        t.add_row(3.14159)
        t.add_row(1234.5)
        body = t.render()
        assert "0.001" in body
        assert "3.14" in body
        assert "1234" in body and "1234.5" not in body

    def test_emit_writes_results_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        t = ExperimentTable("demo_emit", "Demo", ["v"])
        t.add_row(42)
        t.emit(echo=False)
        path = tmp_path / "demo_emit.md"
        assert path.exists()
        assert "42" in path.read_text()


class TestWorkloadProfiles:
    def test_profile_env(self, monkeypatch):
        from repro.bench.workloads import profile

        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert profile() == "small"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "paper")
        assert profile() == "paper"
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "bogus")
        with pytest.raises(ValueError):
            profile()

    def test_counties_workload_builds_indexed_db(self):
        from repro.bench.workloads import CountiesWorkload

        w = CountiesWorkload.build("small")
        assert w.db.table("counties").row_count == w.n
        assert w.db.catalog.has_index("counties_sidx")
        result = w.index_join(0.0)
        assert len(result.pairs) >= w.n  # at least the identity pairs
