"""Observability chaos drill: SIGKILL the leader and prove the plane saw it.

Standalone (the CI obs-plane job runs it directly)::

    PYTHONPATH=src CHAOS_SEED=1337 python benchmarks/obs_killleader.py

The scenario mirrors the resilience bench (3 replicated durable shards,
auto-heal, nobody calls ``failover()``) but this time the metrics/SLO
plane and distributed tracing are attached, and the *assertions* are
about what observability captured rather than about recovery itself:

1. the ``cluster.replication.lag_seconds`` gauge **spikes** after the
   kill (the follower reports time-since-caught-up while the leader is
   dead) and the spike is visible in the store's ring buffer;
2. the per-shard **breaker-state metric** is present in the store;
3. at least one **SLO burn-rate alert fires** during the outage
   (availability and/or replication-lag, over drill-sized burn windows);
4. **MTTR derived from the store** (the peak replication-lag sample —
   kill → promotion as the follower saw it) agrees with the directly
   measured MTTR, and loosely with the MTTR the resilience bench wrote
   to ``BENCH_resilience.json`` when that sidecar exists.

Writes three CI artifacts into the working directory: a stitched
distributed trace (``obsplane_trace.json``), the live dashboard
rendered *after* the incident (``obsplane_dashboard.html``), and the
drill summary (``obsplane_drill.json``).
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.bench.reporting import results_dir
from repro.cluster.local import LocalCluster
from repro.cluster.router import RetryPolicy
from repro.geometry.mbr import MBR
from repro.obs import trace
from repro.obs.dashboard import render_html
from repro.obs.plane import BurnWindow, default_cluster_slos

BOX = MBR(0.0, 0.0, 100.0, 100.0)
TABLE_ROWS = 200
HALO = 2.0
FULL_WINDOW = "POLYGON ((0 0, 99 0, 99 99, 0 99, 0 0))"
#: drill-sized burn windows: page when BOTH the 2s and 8s windows burn
#: at >=2x budget — real seconds, sized to a seconds-long outage.
DRILL_WINDOWS = (BurnWindow(2.0, 8.0, 2.0, "page"),)
MTTR_AGREEMENT_S = 5.0  # store-derived vs directly measured, same incident
BENCH_TOLERANCE_S = 10.0  # vs the (separate-run) resilience bench sidecar


def make_rows(n: int = TABLE_ROWS):
    from repro import Geometry
    from repro.geometry.wkt import to_wkt

    rng = random.Random(777)
    rows = []
    for i in range(n):
        x = rng.uniform(0, 94)
        y = rng.uniform(0, 94)
        rect = Geometry.rectangle(
            x, y, x + rng.uniform(0.5, 3.0), y + rng.uniform(0.5, 3.0)
        )
        rows.append([i, to_wkt(rect)])
    return rows


def full_window_ids(client):
    session = client.start(
        "window",
        {"table": "shapes", "column": "geom", "wkt": FULL_WINDOW},
    )
    return sorted(row[0] for row in session.rows(page=128))


def measure_mttr(cluster, want_ids) -> float:
    """Kill the leader; wall seconds until the first exact result."""
    cluster.kill_leader()
    killed = time.perf_counter()
    deadline = killed + 60.0
    while time.perf_counter() < deadline:
        try:
            with cluster.client(timeout=15.0) as client:
                if full_window_ids(client) == want_ids:
                    return time.perf_counter() - killed
                raise AssertionError(
                    "post-kill window lost acked rows — replication broke"
                )
        except AssertionError:
            raise
        except Exception:
            time.sleep(0.05)  # detection/promotion still in flight
    raise AssertionError("cluster never recovered within 60s of the kill")


def main() -> int:
    seed = os.environ.get("CHAOS_SEED", "1337")
    rng = random.Random(int(seed) if seed.isdigit() else 1337)
    print(f"CHAOS_SEED={seed}")
    rows = make_rows()
    want_ids = sorted(r[0] for r in rows)

    trace.enable()  # before start(): forked shards inherit enablement
    try:
        with LocalCluster(
            3,
            BOX,
            n_entries_hint=TABLE_ROWS,
            halo=HALO,
            replicated=True,
            durable=True,
            auto_heal=True,
            health_kwargs=dict(
                interval=0.05, timeout=0.5, suspect_after=1, down_after=3
            ),
            retry=RetryPolicy(
                max_attempts=12, budget=64, backoff=0.05, backoff_cap=0.4
            ),
            breaker_threshold=1000,
            client_timeout=15.0,
            obs_plane=True,
            obs_interval=0.05,
            obs_slos=default_cluster_slos(lag_seconds=0.4),
            obs_kwargs=dict(windows=DRILL_WINDOWS),
        ) as cluster:
            cluster.create_spatial_table("shapes")
            totals = cluster.load("shapes", rows)
            assert totals["placed"] == TABLE_ROWS
            plane = cluster.plane

            # Healthy traffic: grounds the availability SLO's totals and
            # produces the stitched-trace artifact.
            with cluster.client() as client:
                for _ in range(5):
                    assert full_window_ids(client) == want_ids
                session = client.start(
                    "window",
                    {"table": "shapes", "column": "geom", "wkt": FULL_WINDOW},
                )
                session.all()
                stitched = client.trace(session.session_id)
            with open("obsplane_trace.json", "w") as out:
                json.dump(stitched, out, indent=2)
            shards_in_trace = {
                s["tags"].get("shard")
                for s in stitched["spans"]
                if s["tags"].get("shard") is not None
            }
            print(
                f"stitched trace: {len(stitched['spans'])} spans across "
                f"{len(shards_in_trace)} shard(s), id {stitched['trace']}"
            )

            time.sleep(rng.uniform(0.1, 0.5))  # seeded kill-timing jitter
            lag_before = [
                v
                for _, v in plane.store.range_query(
                    "cluster.replication.lag_seconds"
                )
            ]
            kill_wall = time.perf_counter()
            mttr_direct = measure_mttr(cluster, want_ids)
            print(f"MTTR (kill -> first exact result): {mttr_direct:.2f}s")

            # A few more scrape rounds so recovery lands in the store,
            # then freeze the plane state we assert against.
            time.sleep(0.5)
            plane.scrape_once()
            store = plane.store
            dashboard = render_html(
                plane.snapshot(),
                topology=cluster.router.topology(),
                health=cluster.router.resilience_status(),
                title=f"obs drill: leader kill (seed {seed})",
            )
            snapshot = plane.snapshot()
            alerts = [a.to_dict() for a in plane.engine.alerts]
            lag_all = [
                v
                for _, v in store.range_query(
                    "cluster.replication.lag_seconds"
                )
            ]
            breaker_shards = store.match("cluster.breaker.state")
            elapsed_since_kill = time.perf_counter() - kill_wall
    finally:
        trace.disable()

    with open("obsplane_dashboard.html", "w") as out:
        out.write(dashboard)

    # -- 1. the replication-lag gauge spiked --------------------------------
    peak_before = max(lag_before, default=0.0)
    peak = max(lag_all, default=0.0)
    print(f"replication lag: pre-kill peak {peak_before:.3f}s, "
          f"incident peak {peak:.3f}s")
    if peak < 0.4:
        raise AssertionError(
            f"lag gauge never spiked past the 0.4s SLO ceiling (peak "
            f"{peak:.3f}s) — the plane missed the outage"
        )
    if peak <= peak_before:
        raise AssertionError(
            f"incident lag peak {peak:.3f}s does not exceed the healthy "
            f"baseline peak {peak_before:.3f}s"
        )
    if peak > elapsed_since_kill + 1.0:
        raise AssertionError(
            f"lag peak {peak:.2f}s exceeds time since kill "
            f"({elapsed_since_kill:.2f}s) — bogus gauge"
        )

    # -- 2. the breaker-state metric is in the store ------------------------
    if len(breaker_shards) != 3:
        raise AssertionError(
            f"expected breaker-state series for 3 shards, got "
            f"{breaker_shards}"
        )

    # -- 3. an SLO burn-rate alert fired ------------------------------------
    fired = [a for a in alerts if a["state"] == "firing"]
    if not fired:
        raise AssertionError(
            f"no SLO alert fired during the outage; alert log: {alerts}"
        )
    fired_keys = sorted({(a["slo"], a["severity"]) for a in fired})
    print(f"alerts fired during the drill: {fired_keys}")

    # -- 4. MTTR from the store agrees with the direct measurement ----------
    # The peak lag sample is the outage as the *follower* clocked it
    # (kill -> promotion); the direct MTTR adds the client ride-through.
    mttr_store = peak
    if abs(mttr_store - mttr_direct) > MTTR_AGREEMENT_S:
        raise AssertionError(
            f"store-derived MTTR {mttr_store:.2f}s disagrees with the "
            f"measured {mttr_direct:.2f}s by more than {MTTR_AGREEMENT_S}s"
        )
    bench_path = os.path.join(results_dir(), "BENCH_resilience.json")
    bench_mttr = None
    if os.path.exists(bench_path):
        with open(bench_path) as f:
            bench_mttr = json.load(f)["mttr_seconds"]
        if abs(mttr_store - bench_mttr) > BENCH_TOLERANCE_S:
            raise AssertionError(
                f"store-derived MTTR {mttr_store:.2f}s is implausibly far "
                f"from the resilience bench's {bench_mttr:.2f}s "
                f"(tolerance {BENCH_TOLERANCE_S}s)"
            )
        print(f"MTTR: store {mttr_store:.2f}s, direct {mttr_direct:.2f}s, "
              f"resilience bench {bench_mttr:.2f}s — consistent")
    else:
        print(f"MTTR: store {mttr_store:.2f}s, direct {mttr_direct:.2f}s "
              f"(no {bench_path} to cross-check)")

    with open("obsplane_drill.json", "w") as out:
        json.dump(
            {
                "chaos_seed": seed,
                "mttr_direct_seconds": round(mttr_direct, 3),
                "mttr_store_seconds": round(mttr_store, 3),
                "mttr_bench_seconds": bench_mttr,
                "lag_peak_seconds": round(peak, 3),
                "alerts": alerts,
                "scrapes": snapshot["scrapes"],
                "collector_errors": snapshot["collector_errors"],
                "trace_spans": len(stitched["spans"]),
            },
            out,
            indent=2,
        )
    print(
        "OK: lag spike, breaker metric, SLO alert and store-derived MTTR "
        "all observed — wrote obsplane_trace.json, "
        "obsplane_dashboard.html, obsplane_drill.json"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
