"""Ablation C — subtree descent depth vs parallel balance (paper §4.1).

"In general, we descend both trees as far below as to get appropriate
number of subtree-joins."  Too shallow a descent starves slaves of work
units; deeper descents balance better at the cost of more (cheaper) units.
This bench sweeps the forced descent level for a degree-4 join.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable
from repro.engine.parallel import SimulatedExecutor
from repro.core.parallel_join import parallel_spatial_join
from repro.core.subtree import pick_descent_level

DEGREE = 4


def run_descent_ablation(workload):
    db = workload.db
    table = db.table("counties")
    tree = db.spatial_index("counties_sidx").tree
    reference = None
    rows = []
    max_level = min(3, tree.root.level)
    for level in range(0, max_level + 1):
        result = parallel_spatial_join(
            table, "geom", tree, table, "geom", tree,
            SimulatedExecutor(DEGREE, db.cost_model),
            descent_levels=(level, level),
        )
        if reference is None:
            reference = sorted(result.pairs)
        assert sorted(result.pairs) == reference
        rows.append(
            {
                "level": level,
                "pairs": result.subtree_pair_count,
                "makespan_s": result.makespan_seconds,
                "imbalance": result.run.imbalance,
            }
        )
    auto = pick_descent_level(tree, tree, DEGREE)
    return rows, auto


@pytest.mark.benchmark(group="ablation")
def test_ablation_descent_level(benchmark, counties_workload):
    rows, auto = benchmark.pedantic(
        run_descent_ablation, args=(counties_workload,), rounds=1, iterations=1
    )

    table = ExperimentTable(
        experiment="ablation_descent_level",
        title=f"Ablation C — descent level for a degree-{DEGREE} parallel join",
        columns=["descent level", "subtree pairs", "makespan (sim s)", "imbalance"],
        paper_note=(
            "descend both trees until the number of subtree joins is "
            f"appropriate for the parallel degree (auto-picked: {auto})"
        ),
    )
    for row in rows:
        table.add_row(row["level"], row["pairs"], row["makespan_s"], row["imbalance"])
    table.emit()

    # Level 0 = a single work unit: one slave does everything, so the
    # makespan cannot beat deeper decompositions.
    assert rows[0]["pairs"] == 1
    best = min(row["makespan_s"] for row in rows)
    assert rows[0]["makespan_s"] >= best
    # The auto-picked level must be competitive with the best forced level.
    auto_row = next((r for r in rows if r["level"] == auto[0]), None)
    if auto_row is not None:
        assert auto_row["makespan_s"] <= rows[0]["makespan_s"]
    benchmark.extra_info["rows"] = rows
