"""Ablation I — parallel decomposition: subtree pairs vs grid partitioning.

The paper parallelises its join by crossing subtree roots (§4.1,
Figure 1).  ``JoinStrategy.GRID`` replaces that tree-oriented
decomposition with space-oriented partitioning: a uniform grid over the
joint MBR, one demand-driven task per tile, duplicates avoided by the
two-layer class scheme (DESIGN.md §10) instead of a dedup pass.

Both decompositions must produce **byte-identical** result sets
(``json.dumps`` comparison across every strategy × degree variant, plus a
zero-duplicates check on the raw pair lists), so this ablation isolates
pure scheduling quality:

* **join seconds** — simulated makespan minus the fixed per-statement
  overhead (which would otherwise swamp the comparison at small sizes);
  includes the grid's serial assignment pass.
* **speedup vs serial** — join seconds at degree 1 over join seconds at
  degree d, per strategy.  At full scale (stars-250K) the grid must reach
  ``>= 0.7 x`` linear at all cores and beat the subtree decomposition's
  makespan outright — the gates encoding the "space-oriented partitioning
  wins at high core counts" claim of Tsitsigkos et al.
* **imbalance / per-worker seconds** — max/mean worker time showing *why*:
  coarse skewed subtree pairs serialise slaves; fine tiles steal around
  skew.

Reported times are simulated seconds from the deterministic cost model
(the host may have a single core; see DESIGN.md), so every number here is
reproducible bit for bit.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.reporting import ExperimentTable

DEGREES = (1, 4, 16)  # serial, the paper's small multiprocessor, all cores
ALL_CORES = DEGREES[-1]
SPEEDUP_FRACTION = 0.7  # near-linear gate: speedup >= 0.7 x degree
FULL_SCALE = 250_000  # gates apply from the paper's full Table 2 size

STRATEGIES = (("subtree", "SWEEP"), ("grid", "GRID"))


def _pair_blob(result) -> str:
    """Canonical byte string of a join's result *set* (order-insensitive)."""
    return json.dumps(sorted((str(a), str(b)) for a, b in result.pairs))


def _join_seconds(result) -> float:
    """Simulated join time excluding the fixed per-statement overhead."""
    return result.makespan_seconds - result.statement_overhead_seconds


def _run_workload(name, join):
    """All strategy × degree variants of one workload, identity-checked."""
    rows = []
    blob = None
    serial_s = {}
    for label, strategy in STRATEGIES:
        for degree in DEGREES:
            result = join(degree, strategy)
            this_blob = _pair_blob(result)
            if blob is None:
                blob = this_blob
            assert this_blob == blob, (
                f"{name}: {label}@{degree} result set differs"
            )
            assert len(result.pairs) == len(set(result.pairs)), (
                f"{name}: {label}@{degree} emitted duplicate pairs"
            )
            seconds = _join_seconds(result)
            if degree == 1:
                serial_s[label] = seconds
            counts = result.run.combined_meter().counts
            row = {
                "workload": name,
                "strategy": label,
                "degree": degree,
                "result_pairs": len(result.pairs),
                "tasks": result.subtree_pair_count,
                "join_s": round(seconds, 4),
                "speedup": round(serial_s[label] / seconds, 2),
                "imbalance": round(result.run.imbalance, 3),
                "dup_avoided": int(counts.get("grid_pair_skip", 0)),
                # JSON sidecar only (lists/dicts are not tabulated):
                "worker_seconds": [
                    round(s, 4) for s in result.run.worker_seconds
                ],
            }
            if result.grid is not None:
                row["partition_s"] = round(result.partition_seconds, 4)
                row["grid"] = result.grid.as_dict()
            rows.append(row)
    return rows


def run_grid(counties_workload, stars_workload):
    stars_size = max(stars_workload.sizes)
    workloads = (
        (
            "counties",
            lambda degree, strategy: counties_workload.index_join(
                0.0, parallel=degree, strategy=strategy
            ),
        ),
        (
            f"stars-{stars_size}",
            lambda degree, strategy: stars_workload.index_join(
                stars_size, parallel=degree, strategy=strategy
            ),
        ),
    )
    rows = []
    for name, join in workloads:
        rows.extend(_run_workload(name, join))

    # --- full-scale gates (the acceptance claims; sub-scale smoke runs
    # still get the byte-identical and zero-duplicate asserts above) -----
    if stars_size >= FULL_SCALE:
        stars = {
            (r["strategy"], r["degree"]): r
            for r in rows
            if r["workload"] == f"stars-{stars_size}"
        }
        grid_all = stars[("grid", ALL_CORES)]
        subtree_all = stars[("subtree", ALL_CORES)]
        assert grid_all["join_s"] <= subtree_all["join_s"], (
            f"grid@{ALL_CORES} ({grid_all['join_s']}s) must beat subtree "
            f"pairs ({subtree_all['join_s']}s) at full scale"
        )
        need = SPEEDUP_FRACTION * ALL_CORES
        assert grid_all["speedup"] >= need, (
            f"grid@{ALL_CORES} speedup {grid_all['speedup']}x below "
            f"{need}x (0.7 x linear)"
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_grid(benchmark, counties_workload, stars_workload):
    rows = benchmark.pedantic(
        run_grid,
        args=(counties_workload, stars_workload),
        rounds=1,
        iterations=1,
    )

    table = ExperimentTable(
        experiment="grid",
        title="Ablation I — subtree pairs vs grid partitioning",
        columns=[
            "workload", "strategy", "degree", "tasks", "join (sim s)",
            "speedup", "imbalance", "dup avoided",
        ],
        paper_note=(
            "not in the paper (scale-out ablation): space-oriented grid "
            "partitioning with two-layer duplicate avoidance must match "
            "the subtree decomposition byte for byte and load-balance "
            "better at high degrees (Tsitsigkos et al.)"
        ),
    )
    for row in rows:
        table.add_row(
            row["workload"], row["strategy"], row["degree"], row["tasks"],
            row["join_s"], row["speedup"], row["imbalance"],
            row["dup_avoided"],
        )
    table.emit()

    # --- shape assertions -------------------------------------------------
    by_key = {(r["workload"], r["strategy"], r["degree"]): r for r in rows}
    workloads = sorted({r["workload"] for r in rows})
    assert len(workloads) == 2
    for wname in workloads:
        sizes = {r["result_pairs"] for r in rows if r["workload"] == wname}
        assert len(sizes) == 1, f"{wname}: variants disagree on result size"
        for label, _ in STRATEGIES:
            serial = by_key[(wname, label, 1)]
            fastest = min(
                by_key[(wname, label, d)]["join_s"] for d in DEGREES
            )
            assert fastest <= serial["join_s"], (
                f"{wname}/{label}: parallelism never helped"
            )
        # the grid's fine tiles must balance at least as well as the
        # coarse subtree pairs at the highest degree
        grid_all = by_key[(wname, "grid", ALL_CORES)]
        assert grid_all["speedup"] >= 1.0
    benchmark.extra_info["rows"] = rows
