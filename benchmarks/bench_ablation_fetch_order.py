"""Ablation A — candidate fetch order in the secondary filter (paper §4.2).

The paper argues (citing Shekhar et al.) that fetching candidate-pair
geometries in random order is bad, optimal order is NP-complete, and
sorting by first rowid is a good approximation.  This bench runs the same
join with SORTED vs RANDOM vs AS_PRODUCED candidate order under a small
geometry cache and reports simulated time and cache hit ratios.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable
from repro.engine.parallel import SerialExecutor, WorkerContext
from repro.engine.table_function import collect
from repro.core.secondary_filter import FetchOrder, JoinPredicate
from repro.core.spatial_join import SpatialJoinFunction

CACHE_ROWS = 256  # deliberately small so fetch order matters
RANDOM_SEED = 20030642  # explicit shuffle seed: the RANDOM row is reproducible


def run_fetch_order_ablation(workload):
    db = workload.db
    table = db.table("counties")
    tree = db.spatial_index("counties_sidx").tree
    rows = []
    reference = None
    for order in (FetchOrder.SORTED, FetchOrder.AS_PRODUCED, FetchOrder.RANDOM):
        ctx = WorkerContext(0)
        fn = SpatialJoinFunction(
            table, "geom", tree, table, "geom", tree,
            predicate=JoinPredicate(),
            fetch_order=order,
            cache_capacity=CACHE_ROWS,
            rng_seed=RANDOM_SEED,
        )
        pairs = collect(fn, ctx)
        if reference is None:
            reference = sorted(pairs)
        assert sorted(pairs) == reference
        rows.append(
            {
                "order": order.value,
                "sim_s": ctx.meter.seconds(db.cost_model),
                "cache_hit_ratio": fn.stats.cache_hit_ratio,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_fetch_order(benchmark, counties_workload):
    rows = benchmark.pedantic(
        run_fetch_order_ablation, args=(counties_workload,), rounds=1, iterations=1
    )

    table = ExperimentTable(
        experiment="ablation_fetch_order",
        title=f"Ablation A — candidate fetch order (cache {CACHE_ROWS} rows)",
        columns=["fetch order", "join (sim s)", "geometry-cache hit ratio"],
        paper_note=(
            "sorting candidates by first rowid is 'much better' than random "
            "order and within ~20% of the best approximate solutions"
        ),
    )
    for row in rows:
        table.add_row(row["order"], row["sim_s"], row["cache_hit_ratio"])
    table.emit()

    by_order = {row["order"]: row for row in rows}
    assert by_order["SORTED"]["sim_s"] < by_order["RANDOM"]["sim_s"]
    assert (
        by_order["SORTED"]["cache_hit_ratio"]
        > by_order["RANDOM"]["cache_hit_ratio"]
    )
    benchmark.extra_info["rows"] = rows
