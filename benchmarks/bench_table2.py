"""Table 2 — star-cluster self-join scaling: nested loop vs I1 vs I2.

Paper (§4.3, Table 2): 250K star polygons; subsets from 25 up to 250K are
self-joined with (1) nested loop, (2) index join on 1 processor (I1), and
(3) index join on 2 processors (I2).  Surviving (I1, I2) pairs:
(6.2, 3.47), (3.5, 2.23), (10.3, 7.2), (83, 70), (864, 676) s.  Claims:

  * at 25 polygons nested-loop == index join (fixed costs dominate);
  * for larger sizes the nested loop is "nearly 6 times slower";
  * 2-processor gains are "nearly 50% for most dataset sizes".

Shape assertions encoded here:
  * near-parity at 25 rows, and parallelism does NOT pay at 25 rows;
  * nested/I1 ratio grows with size and exceeds 2x at the top sizes;
  * I2 beats I1 for every non-tiny size.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable


def run_table2(workload):
    """One row per subset size in ``workload.sizes`` (the paper's full
    25 → 250K sweep under ``REPRO_BENCH_PROFILE=paper``, or whatever
    ``--sizes`` the bench CLI passed to the workload builder)."""
    rows = []
    for size in workload.sizes:
        i1 = workload.index_join(size, parallel=1)
        i2 = workload.index_join(size, parallel=2)
        nested = workload.nested_join(size)
        assert sorted(i1.pairs) == sorted(nested.pairs) == sorted(i2.pairs)
        rows.append(
            {
                "size": size,
                "result_size": len(i1.pairs),
                "nested_s": nested.makespan_seconds,
                "i1_s": i1.makespan_seconds,
                "i2_s": i2.makespan_seconds,
                "nested_over_i1": nested.makespan_seconds / i1.makespan_seconds,
                "i1_over_i2": i1.makespan_seconds / i2.makespan_seconds,
                "i2_imbalance": i2.run.imbalance,
                # per-worker simulated seconds (JSON sidecar only)
                "i2_worker_seconds": [
                    round(s, 4) for s in i2.run.worker_seconds
                ],
                # raw operation counters (JSON sidecar only, not tabulated)
                "ops": {
                    "i1": dict(i1.run.combined_meter().counts),
                    "i2": dict(i2.run.combined_meter().counts),
                    "nested": dict(nested.run.combined_meter().counts),
                },
            }
        )
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_star_join_scaling(benchmark, stars_workload):
    rows = benchmark.pedantic(
        run_table2, args=(stars_workload,), rounds=1, iterations=1
    )

    table = ExperimentTable(
        experiment="table2",
        title=f"Table 2 — star self-join scaling (sizes {list(stars_workload.sizes)})",
        columns=[
            "data size", "result size", "nested (sim s)", "I1 (sim s)",
            "I2 (sim s)", "nested/I1", "I1/I2", "I2 imbalance",
        ],
        paper_note=(
            "surviving (I1, I2) pairs: (6.2,3.47) (3.5,2.23) (10.3,7.2) "
            "(83,70) (864,676); nested == index at 25 rows; nested ~6x "
            "slower at larger sizes; 2-proc gains up to ~50%"
        ),
    )
    for row in rows:
        table.add_row(
            row["size"], row["result_size"], row["nested_s"], row["i1_s"],
            row["i2_s"], row["nested_over_i1"], row["i1_over_i2"],
            row["i2_imbalance"],
        )
    table.emit()

    # --- shape assertions -------------------------------------------------
    tiny = rows[0]
    assert tiny["size"] == 25
    assert tiny["nested_over_i1"] < 1.5, "at 25 rows nested ~ index"
    assert tiny["i1_over_i2"] < 1.0, "parallelism must NOT pay at 25 rows"

    big = rows[-1]
    assert big["nested_over_i1"] > 2.0, "index join wins clearly at scale"
    assert big["nested_over_i1"] > tiny["nested_over_i1"], (
        "nested/index ratio must grow with dataset size"
    )
    for row in rows[1:]:
        assert row["i1_over_i2"] > 1.0, "I2 must beat I1 beyond tiny sizes"

    benchmark.extra_info["rows"] = rows
