"""Figure 1 — joining two spatial indexes via subtree-pair decomposition.

The paper's Figure 1 shows two R-trees rooted at R1 and S1; descending one
level yields subtrees R11, R12 and S11, S12 and the parallel join operates
on the pairs (R11,S11), (R11,S12), (R12,S11), (R12,S12).

This bench regenerates the figure as data: it verifies that the level-k
cross product of subtree roots is the unit of parallel distribution —
every decomposition level yields the same join result, while deeper
descents give more (smaller) independent work units and therefore better
parallel balance.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable
from repro.engine.parallel import SimulatedExecutor
from repro.core.parallel_join import parallel_spatial_join


def run_figure1(workload):
    db = workload.db
    table = db.table("counties")
    tree = db.spatial_index("counties_sidx").tree
    baseline = db.spatial_join("counties", "geom", "counties", "geom")

    rows = []
    for level in range(0, min(3, tree.root.level) + 1):
        result = parallel_spatial_join(
            table, "geom", tree, table, "geom", tree,
            SimulatedExecutor(4, db.cost_model),
            descent_levels=(level, level),
        )
        assert sorted(result.pairs) == sorted(baseline.pairs)
        rows.append(
            {
                "level": level,
                "subtrees_per_side": len(tree.subtree_roots(level)),
                "subtree_pairs": result.subtree_pair_count,
                "makespan_s": result.makespan_seconds,
                "imbalance": result.run.imbalance,
            }
        )
    return rows


@pytest.mark.benchmark(group="figure1")
def test_figure1_subtree_pair_decomposition(benchmark, counties_workload):
    rows = benchmark.pedantic(
        run_figure1, args=(counties_workload,), rounds=1, iterations=1
    )

    table = ExperimentTable(
        experiment="figure1",
        title="Figure 1 — subtree-pair decomposition (degree-4 join)",
        columns=[
            "descent level", "subtrees/side", "subtree pairs",
            "makespan (sim s)", "worker imbalance",
        ],
        paper_note=(
            "descending 1 level turns one root join into the cross product "
            "of subtree pairs ((R11,S11)...(R12,S12)); all decompositions "
            "compute the same join"
        ),
    )
    for row in rows:
        table.add_row(
            row["level"], row["subtrees_per_side"], row["subtree_pairs"],
            row["makespan_s"], row["imbalance"],
        )
    table.emit()

    # --- shape assertions -------------------------------------------------
    pair_counts = [row["subtree_pairs"] for row in rows]
    assert pair_counts == sorted(pair_counts), "pairs grow with descent level"
    assert pair_counts[0] == 1, "level 0 is the single-root join"
    if len(rows) >= 2:
        assert rows[1]["subtree_pairs"] == rows[1]["subtrees_per_side"] ** 2
        # more work units => better balance for the 4-way executor
        assert rows[-1]["imbalance"] <= rows[1]["imbalance"] + 0.5

    benchmark.extra_info["rows"] = rows
