"""Ablation H — kernel backend: scalar vs vectorized refinement.

The secondary filter (paper §4.2) and tessellation (§5) bottom out in
exact geometry tests.  ``repro.geometry.kernels`` evaluates those tests
either one tuple at a time (``REPRO_KERNELS=python``) or as numpy array
batches (``REPRO_KERNELS=numpy``); results are bit-identical by
construction, so the backends may only differ in wall-clock time.

This bench measures both stages under both backends:

* **secondary filter** — the exact-predicate stage of the counties and
  stars-25K self-joins, scalar per-candidate evaluation vs the batch mode
  that drains first-rowid runs through the kernels.  Result pairs must be
  byte-identical (``json.dumps`` comparison) and simulated charges must
  match exactly; the numpy backend must be at least 2x faster.
* **tessellation** — fixed-level tile cover of a sample of geometries;
  tile output must be identical across backends.

Wall-clock rounds are interleaved scalar/numpy so background load drifts
into both sides of the ratio instead of one.
"""

from __future__ import annotations

import json
import time
from typing import List

import pytest

from repro.bench.reporting import ExperimentTable
from repro.core.secondary_filter import JoinPredicate, SecondaryFilter
from repro.engine.parallel import WorkerContext
from repro.geometry import kernels
from repro.geometry.mbr import EMPTY_MBR, MBR
from repro.index.quadtree.codes import TileGrid
from repro.index.quadtree.tessellate import tessellate
from repro.index.rtree.join import RTreeJoinCursor

# (row label, kernels backend, SecondaryFilter batch mode)
BACKENDS = (("scalar", "python", False), ("numpy", "numpy", True))
ROUNDS = 2
MIN_FILTER_SPEEDUP = 2.0


def _collect_candidates(db, table: str, distance: float):
    """Primary-filter output: every candidate pair of the self-join."""
    tree = db.rtree_of(table, "geom")
    cursor = RTreeJoinCursor([(tree.root, tree.root)], distance=distance)
    out = []
    while True:
        batch = cursor.next_candidates(8192)
        if not batch:
            break
        out.extend(batch)
    return out


def _filter_once(db, table, cands, distance, backend, use_batch):
    with kernels.use_backend(backend):
        filt = SecondaryFilter(
            db.table(table), "geom", db.table(table), "geom",
            JoinPredicate(distance=distance), use_batch=use_batch,
        )
        ctx = WorkerContext(0)
        started = time.perf_counter()
        pairs = filt.process(list(cands), ctx)
        wall = time.perf_counter() - started
    return pairs, wall, ctx.meter


def _secondary_filter_row(db, table, workload, distance):
    """One row: both backends over the same candidate array, equal output."""
    cands = _collect_candidates(db, table, distance)
    wall = {name: 0.0 for name, _, _ in BACKENDS}
    blobs: dict = {}
    meters: dict = {}
    n_pairs = 0
    for _ in range(ROUNDS):
        for name, backend, use_batch in BACKENDS:
            pairs, elapsed, meter = _filter_once(
                db, table, cands, distance, backend, use_batch
            )
            wall[name] += elapsed
            blob = json.dumps(pairs, default=str)
            assert blobs.setdefault(name, blob) == blob, (
                f"{workload}/{name}: non-deterministic result"
            )
            meters[name] = meter
            n_pairs = len(pairs)
    # The whole point of the dual-backend design: byte-identical pairs and
    # identical simulated charges, differing only in wall time.
    assert blobs["scalar"] == blobs["numpy"], f"{workload}: backends disagree"
    assert meters["scalar"].counts == meters["numpy"].counts, (
        f"{workload}: backends charged different simulated work"
    )
    return {
        "workload": workload,
        "stage": "secondary_filter",
        "distance": distance,
        "candidates": len(cands),
        "result_pairs": n_pairs,
        "scalar_wall_s": round(wall["scalar"], 3),
        "numpy_wall_s": round(wall["numpy"], 3),
        "speedup": round(wall["scalar"] / wall["numpy"], 2),
        "identical_output": True,
        "sim_s": round(meters["numpy"].seconds(), 4),
    }


def _data_domain(db, table: str) -> MBR:
    box = EMPTY_MBR
    for _, row in db.table(table).scan():
        box = box.union(row[1].mbr)
    return box


def _tessellation_row(db, table, workload, level, sample):
    geoms = [row[1] for _, row in db.table(table).scan()][:sample]
    grid = TileGrid(domain=_data_domain(db, table), level=level)
    wall = {}
    tiles: dict = {}
    for name, backend, _ in BACKENDS:
        with kernels.use_backend(backend):
            started = time.perf_counter()
            out: List[tuple] = [
                tuple((t.code, t.interior) for t in tessellate(g, grid))
                for g in geoms
            ]
            wall[name] = time.perf_counter() - started
            tiles[name] = out
    assert tiles["scalar"] == tiles["numpy"], f"{workload}: tile cover differs"
    return {
        "workload": workload,
        "stage": "tessellation",
        "distance": 0.0,
        "candidates": len(geoms),
        "result_pairs": sum(len(t) for t in tiles["numpy"]),
        "scalar_wall_s": round(wall["scalar"], 3),
        "numpy_wall_s": round(wall["numpy"], 3),
        "speedup": round(wall["scalar"] / wall["numpy"], 2),
        "identical_output": True,
        "sim_s": 0.0,
    }


def run_kernels(counties_workload, stars_workload):
    stars_size = max(
        (s for s in stars_workload.sizes if s >= 25_000),
        default=max(stars_workload.sizes),
    )
    stars_db = stars_workload.dbs[stars_size]
    rows = [
        _secondary_filter_row(counties_workload.db, "counties", "counties", 0.0),
        _secondary_filter_row(
            counties_workload.db, "counties", "counties", 0.25
        ),
        _secondary_filter_row(stars_db, "stars", f"stars-{stars_size}", 0.0),
        _tessellation_row(
            counties_workload.db, "counties", "counties", level=6, sample=200
        ),
        _tessellation_row(
            stars_db, "stars", f"stars-{stars_size}", level=8, sample=1500
        ),
    ]
    for row in rows:
        if row["stage"] == "secondary_filter":
            assert row["speedup"] >= MIN_FILTER_SPEEDUP, (
                f"{row['workload']}: numpy secondary filter only "
                f"{row['speedup']}x over scalar (need >={MIN_FILTER_SPEEDUP}x)"
            )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_kernels(benchmark, counties_workload, stars_workload):
    rows = benchmark.pedantic(
        run_kernels,
        args=(counties_workload, stars_workload),
        rounds=1,
        iterations=1,
    )

    table = ExperimentTable(
        experiment="kernels",
        title="Ablation H — kernel backend (scalar vs vectorized)",
        columns=[
            "workload", "stage", "distance", "candidates",
            "scalar (wall s)", "numpy (wall s)", "speedup", "identical",
        ],
        paper_note=(
            "not in the paper (engineering ablation): the vectorized "
            "kernel backend must produce byte-identical join results and "
            "tile covers while cutting refinement wall time"
        ),
    )
    for row in rows:
        table.add_row(
            row["workload"], row["stage"], row["distance"], row["candidates"],
            row["scalar_wall_s"], row["numpy_wall_s"], row["speedup"],
            row["identical_output"],
        )
    table.emit()

    # --- shape assertions -------------------------------------------------
    filter_rows = [r for r in rows if r["stage"] == "secondary_filter"]
    assert {r["workload"] for r in filter_rows} >= {"counties"}
    assert any(r["workload"].startswith("stars-") for r in filter_rows)
    for row in filter_rows:
        assert row["identical_output"]
        assert row["speedup"] >= MIN_FILTER_SPEEDUP
    for row in rows:
        if row["stage"] == "tessellation":
            assert row["identical_output"]

    benchmark.extra_info["rows"] = rows
