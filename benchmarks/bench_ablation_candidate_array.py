"""Ablation B — candidate-array size (the join's memory bound, paper §4.2).

"An array of candidate pairs of geometries are computed using the two
indexes.  The size of this array is determined by existing memory
resources."  This bench sweeps the array size: a tiny array forces many
filter rounds (more sorting, worse fetch locality per round), a large one
amortises both.  Result correctness is identical at every size.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable
from repro.engine.parallel import WorkerContext
from repro.engine.table_function import collect
from repro.core.secondary_filter import JoinPredicate
from repro.core.spatial_join import SpatialJoinFunction

ARRAY_SIZES = (64, 512, 4096, 32768)


def run_candidate_array_ablation(workload):
    db = workload.db
    table = db.table("counties")
    tree = db.spatial_index("counties_sidx").tree
    rows = []
    reference = None
    for size in ARRAY_SIZES:
        ctx = WorkerContext(0)
        fn = SpatialJoinFunction(
            table, "geom", tree, table, "geom", tree,
            predicate=JoinPredicate(),
            candidate_array_size=size,
            cache_capacity=512,
        )
        pairs = collect(fn, ctx)
        if reference is None:
            reference = sorted(pairs)
        assert sorted(pairs) == reference
        rows.append(
            {
                "array_size": size,
                "sim_s": ctx.meter.seconds(db.cost_model),
                "cache_hit_ratio": fn.stats.cache_hit_ratio,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_candidate_array(benchmark, counties_workload):
    rows = benchmark.pedantic(
        run_candidate_array_ablation,
        args=(counties_workload,),
        rounds=1,
        iterations=1,
    )

    table = ExperimentTable(
        experiment="ablation_candidate_array",
        title="Ablation B — candidate-array size vs join cost",
        columns=["array size", "join (sim s)", "cache hit ratio"],
        paper_note=(
            "array size is set by available memory; the join fills, sorts "
            "and filters the array round by round"
        ),
    )
    for row in rows:
        table.add_row(row["array_size"], row["sim_s"], row["cache_hit_ratio"])
    table.emit()

    # Bigger arrays shouldn't be slower (monotone-ish improvement).
    assert rows[-1]["sim_s"] <= rows[0]["sim_s"] * 1.05
    benchmark.extra_info["rows"] = rows
