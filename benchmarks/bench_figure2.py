"""Figure 2 — parallelising quadtree index creation.

The paper's Figure 2 shows the geometry table feeding a parallel table
function that partitions the input cursor, tessellates partitions in
parallel, and inserts tiles into the index table, after which the B-tree
is built.

This bench regenerates the figure as data: per-worker tessellation work at
each degree, the (serial) B-tree stitch tail, and the resulting scaling
curve.  It demonstrates the figure's point — tessellation is the bulk of
the work and it partitions cleanly across slaves.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable


def run_figure2(workload):
    rows = []
    for degree in (1, 2, 4, 8):
        report = workload.create_quadtree(degree)
        worker_seconds = report.run.worker_seconds
        rows.append(
            {
                "degree": degree,
                "makespan_s": report.makespan_seconds,
                "tessellation_total_s": report.run.total_work_seconds,
                "serial_tail_s": report.serial_tail_seconds,
                "imbalance": report.run.imbalance,
                "tiles": report.tiles_created,
            }
        )
    return rows


@pytest.mark.benchmark(group="figure2")
def test_figure2_parallel_tessellation_pipeline(benchmark, blockgroups_workload):
    rows = benchmark.pedantic(
        run_figure2, args=(blockgroups_workload,), rounds=1, iterations=1
    )

    table = ExperimentTable(
        experiment="figure2",
        title=(
            f"Figure 2 — parallel quadtree creation pipeline "
            f"(n={blockgroups_workload.n})"
        ),
        columns=[
            "degree", "makespan (sim s)", "parallel work (sim s)",
            "serial B-tree tail (sim s)", "imbalance", "tiles",
        ],
        paper_note=(
            "input cursor partitioned across tessellation slaves (Figure 2); "
            "tessellation dominates creation time for complex polygons"
        ),
    )
    for row in rows:
        table.add_row(
            row["degree"], row["makespan_s"], row["tessellation_total_s"],
            row["serial_tail_s"], row["imbalance"], row["tiles"],
        )
    table.emit()

    # --- shape assertions -------------------------------------------------
    tiles = {row["tiles"] for row in rows}
    assert len(tiles) == 1, "every degree must produce the identical index"
    makespans = [row["makespan_s"] for row in rows]
    assert makespans == sorted(makespans, reverse=True), "scaling must be monotone"
    # tessellation (parallel part) dominates the serial tail
    for row in rows:
        assert row["tessellation_total_s"] > 10 * row["serial_tail_s"]

    benchmark.extra_info["rows"] = rows
