"""Table 3 — parallel Quadtree and R-tree index creation.

Paper (§5.1, Table 3): quadtree and R-tree indexes created on ~230K US
block-group polygons with 1 / 2 / 4 processors.  Surviving numbers: R-tree
454s / 296s / 258s (speedup 1.76x at 4 procs); quadtree times were lost in
extraction but the stated claims are a 2.6x speedup at 4 processors and
"since the geometries are large and complex, the Quadtree creation time is
high compared to R-trees".

Shape assertions encoded here:
  * quadtree creation is much slower than R-tree creation at every degree;
  * both kinds speed up monotonically with degree;
  * quadtree scales better than R-tree (tessellation parallelises fully,
    the R-tree's merge tail does not), with quadtree 4-proc speedup > 1.8
    and R-tree speedup in a 1.3-2.5 band.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable


def run_table3(workload):
    rows = []
    for degree in workload.degrees:
        q = workload.create_quadtree(degree)
        r = workload.create_rtree(degree)
        rows.append(
            {
                "degree": degree,
                "quadtree_s": q.makespan_seconds,
                "rtree_s": r.makespan_seconds,
                "tiles": q.tiles_created,
            }
        )
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_parallel_index_creation(benchmark, blockgroups_workload):
    rows = benchmark.pedantic(
        run_table3, args=(blockgroups_workload,), rounds=1, iterations=1
    )

    q1 = rows[0]["quadtree_s"]
    r1 = rows[0]["rtree_s"]
    table = ExperimentTable(
        experiment="table3",
        title=(
            f"Table 3 — parallel index creation on blockgroups "
            f"(n={blockgroups_workload.n})"
        ),
        columns=[
            "processors", "quadtree (sim s)", "quadtree speedup",
            "rtree (sim s)", "rtree speedup",
        ],
        paper_note=(
            "R-tree 454/296/258 s (1.76x at 4 procs); quadtree speedup 2.6x "
            "at 4 procs; quadtree creation much slower than R-tree"
        ),
    )
    for row in rows:
        table.add_row(
            row["degree"], row["quadtree_s"], q1 / row["quadtree_s"],
            row["rtree_s"], r1 / row["rtree_s"],
        )
    table.emit()

    # --- shape assertions -------------------------------------------------
    for row in rows:
        assert row["quadtree_s"] > 2 * row["rtree_s"], (
            "tessellation must dominate: quadtree builds are far slower"
        )
    q_times = [row["quadtree_s"] for row in rows]
    r_times = [row["rtree_s"] for row in rows]
    assert q_times == sorted(q_times, reverse=True), "quadtree speeds up with degree"
    assert r_times == sorted(r_times, reverse=True), "rtree speeds up with degree"

    q_speedup = q1 / rows[-1]["quadtree_s"]
    r_speedup = r1 / rows[-1]["rtree_s"]
    assert q_speedup > 1.8, f"quadtree 4-proc speedup {q_speedup:.2f} too low"
    assert 1.3 < r_speedup < 2.6, f"rtree 4-proc speedup {r_speedup:.2f} off-shape"
    assert q_speedup > r_speedup, "quadtree must scale better than R-tree"

    benchmark.extra_info["rows"] = rows
