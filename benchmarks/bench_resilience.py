"""Resilience benchmark: MTTR and degraded throughput through a leader kill.

Standalone (CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_resilience.py

The scenario is the self-healing gate, measured instead of asserted:

1. **Baseline** — full-window query throughput against a healthy
   3-shard replicated cluster.
2. **Kill** — SIGKILL the leader; *nobody* calls ``failover()``.  A
   client loop keeps issuing the same full-window query (each attempt
   must return every acked row to count as a success).  **MTTR** is the
   wall time from the kill to the first exact post-kill result — it
   covers detection (heartbeat misses), promotion (WAL follower → shard)
   and the router's retry ride-through.
3. **Recovered** — the baseline loop again, on the promoted topology,
   for the degraded-throughput ratio.
4. **Gate** — MTTR must come in under ``MTTR_GATE_S`` and the recovered
   throughput must hold ``RECOVERY_GATE`` of baseline, else exit 1.

Writes ``BENCH_resilience.json`` (including the full
``resilience_events()`` timeline — the same trace the chaos CI job
uploads) next to the other benchmark sidecars.
"""

from __future__ import annotations

import random
import time

from repro import Geometry
from repro.bench.reporting import ExperimentTable, emit_bench_json
from repro.cluster.local import LocalCluster
from repro.cluster.router import RetryPolicy
from repro.geometry.mbr import MBR
from repro.geometry.wkt import to_wkt

BOX = MBR(0.0, 0.0, 100.0, 100.0)
TABLE_ROWS = 300
HALO = 2.0
PAGE = 128
BASELINE_SESSIONS = 15
MTTR_GATE_S = 10.0
RECOVERY_GATE = 0.5  # recovered throughput must be >= 50% of baseline
FULL_WINDOW = "POLYGON ((0 0, 99 0, 99 99, 0 99, 0 0))"


def make_rows(n: int = TABLE_ROWS):
    rng = random.Random(777)
    rows = []
    for i in range(n):
        x = rng.uniform(0, 94)
        y = rng.uniform(0, 94)
        rect = Geometry.rectangle(
            x, y, x + rng.uniform(0.5, 3.0), y + rng.uniform(0.5, 3.0)
        )
        rows.append([i, to_wkt(rect)])
    return rows


def full_window_ids(client):
    session = client.start(
        "window",
        {"table": "shapes", "column": "geom", "wkt": FULL_WINDOW},
    )
    return sorted(row[0] for row in session.rows(page=PAGE))


def throughput(cluster, want_ids, sessions: int = BASELINE_SESSIONS):
    """Exact full-window sessions per second (fails on any divergence)."""
    started = time.perf_counter()
    with cluster.client() as client:
        for _ in range(sessions):
            got = full_window_ids(client)
            if got != want_ids:
                raise AssertionError(
                    f"window diverged: {len(got)} vs {len(want_ids)} ids"
                )
    return sessions / (time.perf_counter() - started)


def measure_mttr(cluster, want_ids) -> float:
    """Kill the leader; wall seconds until the first exact result."""
    cluster.kill_leader()
    killed = time.perf_counter()
    deadline = killed + 60.0
    while time.perf_counter() < deadline:
        try:
            with cluster.client(timeout=15.0) as client:
                if full_window_ids(client) == want_ids:
                    return time.perf_counter() - killed
                raise AssertionError(
                    "post-kill window lost acked rows — replication broke"
                )
        except AssertionError:
            raise
        except Exception:
            time.sleep(0.05)  # detection/promotion still in flight
    raise AssertionError("cluster never recovered within 60s of the kill")


def main() -> int:
    rows = make_rows()
    want_ids = sorted(r[0] for r in rows)
    started = time.perf_counter()

    with LocalCluster(
        3,
        BOX,
        n_entries_hint=TABLE_ROWS,
        halo=HALO,
        replicated=True,
        durable=True,
        auto_heal=True,
        health_kwargs=dict(
            interval=0.05, timeout=0.5, suspect_after=1, down_after=3
        ),
        retry=RetryPolicy(
            max_attempts=12, budget=64, backoff=0.05, backoff_cap=0.4
        ),
        breaker_threshold=1000,
        client_timeout=15.0,
    ) as cluster:
        cluster.create_spatial_table("shapes")
        totals = cluster.load("shapes", rows)
        assert totals["placed"] == TABLE_ROWS

        baseline = throughput(cluster, want_ids)
        print(f"baseline: {baseline:.1f} exact window sessions/s")

        mttr = measure_mttr(cluster, want_ids)
        print(f"MTTR (kill -> first exact result): {mttr:.2f}s")

        recovered = throughput(cluster, want_ids)
        ratio = recovered / baseline if baseline else 0.0
        print(
            f"recovered: {recovered:.1f} sessions/s "
            f"({ratio:.2f}x of baseline)"
        )

        counters = dict(cluster.router.resilience)
        events = cluster.resilience_events()
        failed_over = cluster._failed_over
    elapsed = time.perf_counter() - started

    if not failed_over:
        raise AssertionError("recovery happened without a follower promotion?")
    if mttr > MTTR_GATE_S:
        raise AssertionError(
            f"MTTR {mttr:.2f}s exceeds the {MTTR_GATE_S}s gate"
        )
    if ratio < RECOVERY_GATE:
        raise AssertionError(
            f"recovered throughput is {ratio:.2f}x baseline; "
            f"the gate is {RECOVERY_GATE}x"
        )

    table = ExperimentTable(
        experiment="resilience",
        title="Self-healing: leader kill -9, unattended recovery",
        columns=["baseline sess/s", "MTTR s", "recovered sess/s", "ratio"],
        paper_note=(
            "no paper counterpart: availability engineering around the "
            "paper's spatial operators (replicated WAL, health-checked "
            "automatic failover, retrying scatter-gather)"
        ),
    )
    table.add_row(
        round(baseline, 1), round(mttr, 2), round(recovered, 1), round(ratio, 2)
    )
    table.emit()

    payload = {
        "experiment": "resilience",
        "profile": "smoke",
        "driver_wall_seconds": round(elapsed, 3),
        "baseline_sessions_per_s": round(baseline, 2),
        "mttr_seconds": round(mttr, 3),
        "mttr_gate_s": MTTR_GATE_S,
        "recovered_sessions_per_s": round(recovered, 2),
        "recovery_ratio": round(ratio, 3),
        "recovery_gate": RECOVERY_GATE,
        "router_resilience": counters,
        "events": events,
    }
    path = emit_bench_json("resilience", payload)
    print(f"wrote {path}")
    return 0


def run_resilience():
    """Registry entry point; self-contained like the cluster driver."""
    return main()


if __name__ == "__main__":
    raise SystemExit(main())
