"""Ablation F — R-tree synchronized join vs quadtree tile-merge join.

The paper builds its spatial join on R-trees; the linear quadtree joins by
merging sorted tile lists (the older Oracle path).  This bench runs the
counties self-join through both index kinds and compares simulated cost
and candidate quality (the quadtree gets interior-tile certainty, the
R-tree gets a tighter primary filter).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable
from repro.engine.parallel import WorkerContext
from repro.geometry.mbr import MBR
from repro.index.quadtree.join import quadtree_join_candidates, quadtree_tile_join
from repro.index.quadtree.quadtree import QuadtreeIndex

TILING_LEVEL = 8


def run_join_index_ablation(workload):
    db = workload.db
    table = db.table("counties")

    # R-tree path (the paper's).
    rtree_result = db.spatial_join("counties", "geom", "counties", "geom")

    # Quadtree path: build the index, then the tile-merge join.
    domain = MBR(0, 0, 58.0, 58.0)
    qidx = QuadtreeIndex(
        "counties_q_join", table, "geom", domain=domain, tiling_level=TILING_LEVEL
    )
    qidx.create()
    ctx = WorkerContext(0)
    quad_pairs = quadtree_tile_join(qidx, qidx, ctx)
    assert sorted(quad_pairs) == sorted(rtree_result.pairs)
    candidates = quadtree_join_candidates(qidx, qidx)
    certain = sum(1 for flag in candidates.values() if flag)

    return [
        {
            "method": "R-tree synchronized traversal",
            "sim_s": rtree_result.makespan_seconds,
            "candidates": "n/a",
            "certain": "n/a",
        },
        {
            "method": f"quadtree tile merge (level {TILING_LEVEL})",
            "sim_s": ctx.meter.seconds(db.cost_model),
            "candidates": len(candidates),
            "certain": certain,
        },
    ]


@pytest.mark.benchmark(group="ablation")
def test_ablation_join_index_kind(benchmark, counties_workload):
    rows = benchmark.pedantic(
        run_join_index_ablation, args=(counties_workload,), rounds=1, iterations=1
    )

    table = ExperimentTable(
        experiment="ablation_join_index",
        title="Ablation F — join through R-tree vs linear quadtree",
        columns=["method", "join (sim s)", "candidates", "tile-certain"],
        paper_note=(
            "the paper's join traverses the two R-tree indexes; quadtrees "
            "join by matching tile codes (both supported in Oracle Spatial)"
        ),
    )
    for row in rows:
        table.add_row(row["method"], row["sim_s"], row["candidates"], row["certain"])
    table.emit()

    quad = rows[1]
    assert quad["certain"] > 0, "interior tiles must certify some pairs"
    benchmark.extra_info["rows"] = rows
