"""Table 1 — counties self-join: nested-loop vs spatial-index join.

Paper (§4.3, Table 1): the 3230 US-county layer joined with itself at
distance 0 (intersect) and distances 0.1 / 0.25 / 0.5.  The surviving
published numbers are the spatial-index join times 144.7s / 221.9s /
271.8s / 331.4s; the claim is that the index (table-function) join is
33–55% faster than the nested loop, with result size and both times
growing with distance.

Shape assertions encoded here:
  * index join beats nested loop at every distance;
  * result size is non-decreasing in distance;
  * join time grows with distance.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable


def run_table1(workload):
    rows = []
    for distance in workload.distances:
        index = workload.index_join(distance)
        nested = workload.nested_join(distance)
        assert sorted(index.pairs) == sorted(nested.pairs)
        rows.append(
            {
                "distance": distance,
                "result_size": len(index.pairs),
                "nested_s": nested.makespan_seconds,
                "index_s": index.makespan_seconds,
                "ratio": nested.makespan_seconds / index.makespan_seconds,
                # raw operation counters (JSON sidecar only, not tabulated)
                "ops": {
                    "index": dict(index.run.combined_meter().counts),
                    "nested": dict(nested.run.combined_meter().counts),
                },
            }
        )
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_counties_self_join(benchmark, counties_workload):
    rows = benchmark.pedantic(
        run_table1, args=(counties_workload,), rounds=1, iterations=1
    )

    table = ExperimentTable(
        experiment="table1",
        title=f"Table 1 — counties self-join (n={counties_workload.n})",
        columns=[
            "distance", "result size", "nested-loop (sim s)",
            "index join (sim s)", "nested/index",
        ],
        paper_note=(
            "index join 144.7/221.9/271.8/331.4 s at distances 0/0.1/0.25/0.5; "
            "spatial-index join 33-55% faster than nested loop; result size "
            "and time grow with distance"
        ),
    )
    for row in rows:
        table.add_row(
            row["distance"], row["result_size"], row["nested_s"],
            row["index_s"], row["ratio"],
        )
    table.emit()

    # --- shape assertions -------------------------------------------------
    for row in rows:
        assert row["ratio"] > 1.0, "index join must beat the nested loop"
    sizes = [row["result_size"] for row in rows]
    assert sizes == sorted(sizes), "result size must not shrink with distance"
    times = [row["index_s"] for row in rows]
    assert times[-1] > times[0], "join time must grow with distance"

    benchmark.extra_info["rows"] = rows
