"""Ablation J — columnar geometry storage: slotted heap vs column chunks.

PR 9's columnar format stores geometry ordinates as contiguous float64
arrays in zone-mapped column chunks; queries reach them with **zero
per-row decode** (``coords_view`` aliases the chunk array) and skip whole
chunks whose zone map cannot intersect the query window.  This bench
measures the three read paths the format targets, always against a
slotted twin built from the *same* rows (identical rowids, byte-identical
results):

* **scan** — full-table scan wall time and buffer-pool page gets.  The
  columnar side reads ~1/compression-ratio as many pages and skips the
  per-row TLV decode entirely.
* **window** — selective window queries.  The slotted side touches every
  heap page per window; the columnar side consults chunk zone maps and
  must prune **>= 5x** the page gets on the spatially coherent counties
  layer (the acceptance gate).
* **join refinement** — the secondary filter of the stars self-join at
  both fetch orders.  Under ``SORTED`` (the paper's choice) the geometry
  cache absorbs most fetches and columnar wins only the miss path; under
  ``RANDOM`` (the strawman the paper rejects) every fetch pays the
  per-row decode, and the columnar stage must run **>= 2x** faster in
  simulated seconds on stars-25K (the acceptance gate) because chunk
  residency makes that decode cost vanish.

Results are compared with ``json.dumps`` so any drift — order, rowid,
pair set — fails loudly, under whichever kernel backend is active (CI
runs the matrix).
"""

from __future__ import annotations

import json
import time
from typing import List, Tuple

import pytest

from repro.bench.reporting import ExperimentTable
from repro.core.secondary_filter import (
    FetchOrder,
    JoinPredicate,
    SecondaryFilter,
)
from repro.engine.database import Database
from repro.engine.parallel import WorkerContext
from repro.geometry.geometry import Geometry
from repro.index.rtree.join import RTreeJoinCursor

ROUNDS = 2
MIN_JOIN_SPEEDUP = 2.0  # gate: refinement-heavy (RANDOM) stage, stars-25K
MIN_WINDOW_PRUNE = 5.0  # gate: page gets pruned by zone maps, counties
WINDOW_GRID = (8, 4)  # selective windows swept across the data extent


def _clone(src_db, table: str, with_index: bool) -> Database:
    """Fresh database with the same rows (hence the same rowids)."""
    rows = [row for _rid, row in src_db.table(table).scan()]
    db = Database()
    t = db.create_table(table, [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")])
    t.insert_many(rows)
    if with_index:
        db.create_spatial_index(f"{table}_sidx", table, "geom", kind="RTREE")
    return db


def _twin(src_db, table: str, chunk_rows: int, with_index: bool = True):
    """(slotted, columnar) twins of one workload table."""
    slotted = _clone(src_db, table, with_index)
    columnar = _clone(src_db, table, with_index)
    columnar.compact_table(table, chunk_rows=chunk_rows)
    return slotted, columnar


def _data_extent(db, table: str) -> Tuple[float, float, float, float]:
    box = None
    for _rid, row in db.table(table).scan():
        m = row[1].mbr
        box = (
            (m.min_x, m.min_y, m.max_x, m.max_y)
            if box is None
            else (
                min(box[0], m.min_x), min(box[1], m.min_y),
                max(box[2], m.max_x), max(box[3], m.max_y),
            )
        )
    return box


def _scan_row(slotted, columnar, table: str, workload: str) -> dict:
    """Full scan: page gets on first touch, wall time once caches warm."""
    pages = {}
    blobs = {}
    for name, db in (("slotted", slotted), ("columnar", columnar)):
        db.pool.stats.reset()
        rows = [(str(rid), row[0]) for rid, row in db.table(table).scan()]
        pages[name] = db.pool.stats.gets
        blobs[name] = json.dumps(rows)
    assert blobs["slotted"] == blobs["columnar"], f"{workload}: scan differs"
    wall = {"slotted": 0.0, "columnar": 0.0}
    for _ in range(ROUNDS):
        for name, db in (("slotted", slotted), ("columnar", columnar)):
            started = time.perf_counter()
            for _rid_row in db.table(table).scan():
                pass
            wall[name] += time.perf_counter() - started
    return {
        "workload": workload,
        "stage": "scan",
        "config": "full",
        "slotted_pages": pages["slotted"],
        "columnar_pages": pages["columnar"],
        "page_ratio": round(pages["slotted"] / max(1, pages["columnar"]), 2),
        "slotted_wall_s": round(wall["slotted"], 3),
        "columnar_wall_s": round(wall["columnar"], 3),
        "sim_speedup": 0.0,  # scan is a page/wall story, not a charge story
        "identical_output": True,
    }


def _window_row(slotted, columnar, table: str, workload: str) -> dict:
    """Selective windows: zone maps must prune most page gets."""
    x0, y0, x1, y1 = _data_extent(slotted, table)
    nx, ny = WINDOW_GRID
    dx, dy = (x1 - x0) / nx, (y1 - y0) / ny
    windows = [
        Geometry.rectangle(
            x0 + i * dx + 0.25 * dx, y0 + j * dy + 0.25 * dy,
            x0 + i * dx + 0.75 * dx, y0 + j * dy + 0.75 * dy,
        )
        for i in range(nx)
        for j in range(ny)
    ]
    seg = columnar.table(table).columnar
    seg.drop_chunk_cache()  # cold chunks: count real first-touch page gets
    prunes_before = seg.zone_prunes
    pages = {}
    sims = {}
    blobs = {}
    for name, db in (("slotted", slotted), ("columnar", columnar)):
        ctx = WorkerContext(0)
        db.pool.stats.reset()
        out: List[List[str]] = []
        for q in windows:
            out.append([str(r) for r in db.window_scan(table, "geom", q, ctx=ctx)])
        pages[name] = db.pool.stats.gets
        sims[name] = ctx.meter.seconds()
        blobs[name] = json.dumps(out)
    assert blobs["slotted"] == blobs["columnar"], f"{workload}: windows differ"
    return {
        "workload": workload,
        "stage": "window",
        "config": f"{len(windows)} windows",
        "slotted_pages": pages["slotted"],
        "columnar_pages": pages["columnar"],
        "page_ratio": round(pages["slotted"] / max(1, pages["columnar"]), 2),
        "slotted_wall_s": 0.0,
        "columnar_wall_s": 0.0,
        "sim_speedup": round(sims["slotted"] / sims["columnar"], 2),
        "identical_output": True,
        "zone_prunes": seg.zone_prunes - prunes_before,
        "sim_s": {"slotted": round(sims["slotted"], 4),
                  "columnar": round(sims["columnar"], 4)},
    }


def _collect_candidates(db, table: str) -> list:
    tree = db.rtree_of(table, "geom")
    cursor = RTreeJoinCursor([(tree.root, tree.root)], distance=0.0)
    out = []
    while True:
        batch = cursor.next_candidates(8192)
        if not batch:
            break
        out.extend(batch)
    return out


def _join_row(slotted, columnar, table, workload, fetch_order) -> dict:
    """Secondary-filter stage over the identical candidate array."""
    cands = _collect_candidates(slotted, table)
    sims = {}
    wall = {}
    blobs = {}
    for name, db in (("slotted", slotted), ("columnar", columnar)):
        filt = SecondaryFilter(
            db.table(table), "geom", db.table(table), "geom",
            JoinPredicate(distance=0.0), use_batch=True,
            fetch_order=fetch_order,
        )
        ctx = WorkerContext(0)
        started = time.perf_counter()
        pairs = filt.process(list(cands), ctx)
        wall[name] = time.perf_counter() - started
        sims[name] = ctx.meter.seconds()
        blobs[name] = json.dumps(pairs, default=str)
    assert blobs["slotted"] == blobs["columnar"], (
        f"{workload}/{fetch_order.value}: refinement pairs differ"
    )
    return {
        "workload": workload,
        "stage": "join_refine",
        "config": fetch_order.value,
        "slotted_pages": 0,
        "columnar_pages": 0,
        "page_ratio": 0.0,
        "slotted_wall_s": round(wall["slotted"], 3),
        "columnar_wall_s": round(wall["columnar"], 3),
        "sim_speedup": round(sims["slotted"] / sims["columnar"], 2),
        "identical_output": True,
        "candidates": len(cands),
        "sim_s": {"slotted": round(sims["slotted"], 4),
                  "columnar": round(sims["columnar"], 4)},
    }


def run_columnar(counties_workload, stars_workload):
    stars_size = max(
        (s for s in stars_workload.sizes if s >= 25_000),
        default=max(stars_workload.sizes),
    )
    # Private twins: the shared workload databases stay untouched (other
    # experiments reuse them), and identical insertion order guarantees
    # identical rowids so results can be compared byte-for-byte.
    c_slot, c_col = _twin(counties_workload.db, "counties", chunk_rows=64)
    s_slot, s_col = _twin(
        stars_workload.dbs[stars_size], "stars", chunk_rows=256
    )
    stars_name = f"stars-{stars_size}"

    rows = [
        _scan_row(c_slot, c_col, "counties", "counties"),
        _scan_row(s_slot, s_col, "stars", stars_name),
        _window_row(c_slot, c_col, "counties", "counties"),
        _window_row(s_slot, s_col, "stars", stars_name),
        _join_row(c_slot, c_col, "counties", "counties", FetchOrder.SORTED),
        _join_row(s_slot, s_col, "stars", stars_name, FetchOrder.SORTED),
        _join_row(s_slot, s_col, "stars", stars_name, FetchOrder.RANDOM),
    ]

    # --- acceptance gates -------------------------------------------------
    window_counties = next(
        r for r in rows if r["stage"] == "window" and r["workload"] == "counties"
    )
    assert window_counties["page_ratio"] >= MIN_WINDOW_PRUNE, (
        f"zone maps pruned only {window_counties['page_ratio']}x page gets "
        f"on counties windows (need >={MIN_WINDOW_PRUNE}x)"
    )
    refine_random = next(
        r for r in rows
        if r["stage"] == "join_refine"
        and r["workload"] == stars_name
        and r["config"] == "RANDOM"
    )
    assert refine_random["sim_speedup"] >= MIN_JOIN_SPEEDUP, (
        f"columnar refinement only {refine_random['sim_speedup']}x on "
        f"{stars_name} (need >={MIN_JOIN_SPEEDUP}x)"
    )
    for row in rows:
        assert row["identical_output"]
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_columnar(benchmark, counties_workload, stars_workload):
    rows = benchmark.pedantic(
        run_columnar,
        args=(counties_workload, stars_workload),
        rounds=1,
        iterations=1,
    )

    table = ExperimentTable(
        experiment="columnar",
        title="Ablation J — columnar storage (slotted heap vs column chunks)",
        columns=[
            "workload", "stage", "config", "slotted pages", "columnar pages",
            "page ratio", "slotted (wall s)", "columnar (wall s)",
            "sim speedup", "identical",
        ],
        paper_note=(
            "not in the paper (engineering ablation): zone-mapped column "
            "chunks must prune selective window page reads and erase the "
            "per-row decode cost of join refinement, bit-identically"
        ),
    )
    for row in rows:
        table.add_row(
            row["workload"], row["stage"], row["config"],
            row["slotted_pages"], row["columnar_pages"], row["page_ratio"],
            row["slotted_wall_s"], row["columnar_wall_s"],
            row["sim_speedup"], row["identical_output"],
        )
    table.emit()

    # --- shape assertions -------------------------------------------------
    stages = {r["stage"] for r in rows}
    assert stages == {"scan", "window", "join_refine"}
    scan_rows = [r for r in rows if r["stage"] == "scan"]
    for row in scan_rows:
        # Page counts are near parity on a full scan (the chunk blob is
        # about heap-record size); the scan win is the zero-decode wall.
        assert row["columnar_pages"] <= row["slotted_pages"] * 1.1
        assert row["columnar_wall_s"] < row["slotted_wall_s"]
    benchmark.extra_info["rows"] = rows
