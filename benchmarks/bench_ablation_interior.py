"""Ablation E — interior-approximation fast-accepts in the secondary filter.

The authors' companion work (the paper's reference [21], SSTD 2001) stores
*interior* rectangles alongside MBRs so that candidate pairs whose interior
approximations intersect can be accepted without the exact geometry test.
This bench runs the counties self-join with and without the optimization.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable
from repro.engine.parallel import WorkerContext
from repro.engine.table_function import collect
from repro.core.secondary_filter import JoinPredicate
from repro.core.spatial_join import SpatialJoinFunction


def run_interior_ablation(workload):
    db = workload.db
    table = db.table("counties")
    tree = db.spatial_index("counties_sidx").tree
    rows = []
    reference = None
    for use_interior in (False, True):
        ctx = WorkerContext(0)
        fn = SpatialJoinFunction(
            table, "geom", tree, table, "geom", tree,
            predicate=JoinPredicate(),
            use_interior=use_interior,
        )
        pairs = collect(fn, ctx)
        if reference is None:
            reference = sorted(pairs)
        assert sorted(pairs) == reference
        total = fn._filter.candidates_seen  # noqa: SLF001 - diagnostics
        rows.append(
            {
                "mode": "interior fast-accept" if use_interior else "exact only",
                "sim_s": ctx.meter.seconds(db.cost_model),
                "fast_accepts": fn._filter.fast_accepts,  # noqa: SLF001
                "exact_tests": total - fn._filter.fast_accepts,  # noqa: SLF001
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_interior_approximations(benchmark, counties_workload):
    rows = benchmark.pedantic(
        run_interior_ablation, args=(counties_workload,), rounds=1, iterations=1
    )

    table = ExperimentTable(
        experiment="ablation_interior",
        title="Ablation E — interior-approximation fast-accepts (counties join)",
        columns=["mode", "join (sim s)", "fast accepts", "exact tests"],
        paper_note=(
            "reference [21] (SSTD'01): interior approximations let large "
            "query processing skip the exact test when interiors provably "
            "interact"
        ),
    )
    for row in rows:
        table.add_row(row["mode"], row["sim_s"], row["fast_accepts"], row["exact_tests"])
    table.emit()

    exact_only, interior = rows
    assert interior["fast_accepts"] > 0
    assert interior["exact_tests"] < exact_only["exact_tests"]
    assert interior["sim_s"] < exact_only["sim_s"]
    benchmark.extra_info["rows"] = rows
