"""CI gate: tracing must not perturb the simulated-cost story.

Runs the sweep-ablation join workload untraced and then fully traced and
checks two things:

1. **Exactness** (the real guarantee): per-kind meter counts and the
   resulting simulated seconds are *identical* — tracing only reads
   meters, so the simulated-time overhead of the disabled AND enabled
   paths is exactly 0%, comfortably under the 2% budget.
2. **Wall-clock overhead** (informational): the traced run's wall time
   is printed next to the untraced one so regressions are visible in CI
   logs; wall time is hardware-noisy, so it does not gate.

Also writes ``obs_sample_trace.json`` — a Chrome trace-event document of
the traced run — which CI uploads as a Perfetto-loadable artifact.

After the single-node gates pass, the same charge-identity argument is
re-proven on the **cluster path** (router + forked shards + metrics/SLO
plane + distributed trace stitching) by delegating to
``bench_obsplane.py``; pass ``--no-cluster`` to skip that phase.

Usage: PYTHONPATH=src python benchmarks/check_obs_overhead.py [out.json]
"""

from __future__ import annotations

import math
import os
import sys
import time

from repro.bench.workloads import CountiesWorkload
from repro.index.rtree.join import JoinStrategy
from repro.obs import trace
from repro.obs.exporters import write_chrome_trace

OVERHEAD_BUDGET = 0.02  # simulated-seconds overhead must stay under 2%


def _run_join(db):
    started = time.perf_counter()
    result = db.spatial_join(
        "counties", "geom", "counties", "geom",
        strategy=JoinStrategy.SWEEP, use_flat_arrays=True,
    )
    wall = time.perf_counter() - started
    return result, wall


def _fsum_counts(meters):
    per_kind = {}
    for m in meters:
        for kind, n in m.counts.items():
            per_kind.setdefault(kind, []).append(n)
    return {kind: math.fsum(vals) for kind, vals in sorted(per_kind.items())}


def _cluster_phase() -> int:
    """Charge identity with the obs plane on, on the sharded path."""
    import importlib.util

    path = os.path.join(os.path.dirname(__file__), "bench_obsplane.py")
    spec = importlib.util.spec_from_file_location("bench_obsplane", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    print("\n-- cluster path (router + shards + metrics/SLO plane) --")
    return module.main()


def main(argv) -> int:
    run_cluster = "--no-cluster" not in argv
    argv = [a for a in argv if a != "--no-cluster"]
    out_path = argv[1] if len(argv) > 1 else "obs_sample_trace.json"
    workload = CountiesWorkload.build()
    db = workload.db

    assert not trace.enabled(), "run this check with REPRO_TRACE unset/off"
    baseline, wall_off = _run_join(db)
    base_counts = _fsum_counts(baseline.run.worker_meters)
    base_seconds = baseline.makespan_seconds

    with trace.tracing() as tracer:
        traced, wall_on = _run_join(db)
    traced_counts = _fsum_counts(traced.run.worker_meters)
    traced_seconds = traced.makespan_seconds

    if traced.pairs != baseline.pairs:
        print("FAIL: traced join returned different pairs")
        return 1
    if traced_counts != base_counts:
        diffs = {
            k: (base_counts.get(k), traced_counts.get(k))
            for k in set(base_counts) | set(traced_counts)
            if base_counts.get(k) != traced_counts.get(k)
        }
        print(f"FAIL: traced meter counts differ: {diffs}")
        return 1

    overhead = (
        abs(traced_seconds - base_seconds) / base_seconds
        if base_seconds
        else 0.0
    )
    print(f"simulated seconds untraced: {base_seconds:.6f}")
    print(f"simulated seconds traced:   {traced_seconds:.6f}")
    print(f"simulated overhead: {overhead * 100:.4f}% (budget {OVERHEAD_BUDGET * 100:.0f}%)")
    print(f"wall seconds untraced: {wall_off:.3f}")
    print(f"wall seconds traced:   {wall_on:.3f} (informational)")
    if overhead >= OVERHEAD_BUDGET:
        print("FAIL: simulated overhead exceeds budget")
        return 1

    spans = len(tracer.spans)
    write_chrome_trace(out_path, tracer)
    print(f"wrote {out_path} ({spans} spans) — load it in ui.perfetto.dev")
    names = {s.name for s in tracer.spans}
    for required in ("executor.task", "join.primary_filter", "join.secondary_filter"):
        if required not in names:
            print(f"FAIL: sample trace is missing {required!r} spans")
            return 1
    print("OK: tracing is charge-exact; overhead gate passed")
    if run_cluster:
        return _cluster_phase()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
