"""Ablation G — primary-filter pairing strategy inside the R-tree join.

The synchronized R-tree traversal visits node pairs; within each pair the
original implementation tested every entry of one node against every entry
of the other (NESTED, quadratic in fanout).  The SWEEP strategy replaces
that with space restriction (clip each entry list to the other node's
bounds) followed by a sort-based plane sweep, and SWEEP+flat additionally
reads MBRs from the node's flat coordinate arrays instead of rebuilding
them per visit.

All three variants must emit the *same* candidate pairs — the ablation
measures only how much primary-filter work (``mbr_test`` charges, and
hence simulated seconds) each policy spends to find them, on the Table 1
counties workload and the largest >=25K Table 2 stars subset.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable
from repro.index.rtree.join import JoinStrategy

VARIANTS = (
    ("NESTED", JoinStrategy.NESTED, True),
    ("SWEEP", JoinStrategy.SWEEP, False),
    ("SWEEP+flat", JoinStrategy.SWEEP, True),
)


def _join_rows(db, table, workload_label, distance=0.0):
    """Run the self-join under every pairing variant; one row per variant."""
    rows = []
    reference = None
    for label, strategy, flat in VARIANTS:
        result = db.spatial_join(
            table, "geom", table, "geom",
            distance=distance, strategy=strategy, use_flat_arrays=flat,
        )
        pairs = sorted(result.pairs)
        if reference is None:
            reference = pairs
        assert pairs == reference, f"{label} changed the join result"
        counts = result.run.combined_meter().counts
        rows.append(
            {
                "workload": workload_label,
                "variant": label,
                "sim_s": result.makespan_seconds,
                "mbr_tests": counts.get("mbr_test", 0),
                "sweep_sorts": round(counts.get("sweep_sort_per_item", 0)),
                "sweep_emits": counts.get("sweep_pair_emit", 0),
                "result_size": len(pairs),
            }
        )
    return rows


def run_ablation_sweep(counties_workload, stars_workload):
    rows = _join_rows(counties_workload.db, "counties", "counties")
    stars_size = max(
        (s for s in stars_workload.sizes if s >= 25_000),
        default=max(stars_workload.sizes),
    )
    rows += _join_rows(
        stars_workload.dbs[stars_size], "stars", f"stars-{stars_size}"
    )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_sweep(benchmark, counties_workload, stars_workload):
    rows = benchmark.pedantic(
        run_ablation_sweep,
        args=(counties_workload, stars_workload),
        rounds=1,
        iterations=1,
    )

    table = ExperimentTable(
        experiment="ablation_sweep",
        title="Ablation G — primary-filter pairing strategy",
        columns=[
            "workload", "variant", "join (sim s)", "mbr tests",
            "sweep sort items", "sweep emits", "result size",
        ],
        paper_note=(
            "not in the paper (engineering ablation): plane sweep with "
            "space restriction must find the identical candidate set with "
            "fewer per-pair MBR tests than the naive nested pairing"
        ),
    )
    for row in rows:
        table.add_row(
            row["workload"], row["variant"], row["sim_s"], row["mbr_tests"],
            row["sweep_sorts"], row["sweep_emits"], row["result_size"],
        )
    table.emit()

    # --- shape assertions -------------------------------------------------
    by_key = {(r["workload"], r["variant"]): r for r in rows}
    workloads = {r["workload"] for r in rows}
    for wl in workloads:
        nested = by_key[(wl, "NESTED")]
        sweep = by_key[(wl, "SWEEP+flat")]
        assert sweep["result_size"] == nested["result_size"]
        assert sweep["mbr_tests"] < nested["mbr_tests"], (
            f"{wl}: sweep must cut primary-filter MBR tests"
        )
        assert sweep["sim_s"] < nested["sim_s"], (
            f"{wl}: sweep must cut simulated join time"
        )
        assert nested["sweep_emits"] == 0
        assert sweep["sweep_emits"] > 0

    benchmark.extra_info["rows"] = rows
