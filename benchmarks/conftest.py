"""Session-scoped workload fixtures shared by the benchmark files.

Set ``REPRO_BENCH_PROFILE=paper`` to run at the paper's full dataset sizes
(slow: hours of pure-Python wall time); the default ``small`` profile
preserves every shape claim at tractable scale.  Reported metrics are
*simulated seconds* from the deterministic cost model (see DESIGN.md);
pytest-benchmark's wall times only track the reproduction driver itself.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    BlockgroupsWorkload,
    CountiesWorkload,
    StarsWorkload,
    profile,
)


@pytest.fixture(scope="session")
def bench_profile() -> str:
    return profile()


@pytest.fixture(scope="session")
def counties_workload(bench_profile) -> CountiesWorkload:
    return CountiesWorkload.build(bench_profile)


@pytest.fixture(scope="session")
def stars_workload(bench_profile) -> StarsWorkload:
    return StarsWorkload.build(bench_profile)


@pytest.fixture(scope="session")
def blockgroups_workload(bench_profile) -> BlockgroupsWorkload:
    return BlockgroupsWorkload.build(bench_profile)
