"""Ablation D — STR bulk load vs dynamic insertion (index quality).

The parallel R-tree creation path clusters subtrees with STR packing; the
alternative is one-at-a-time dynamic insertion (what base-table DML uses).
This bench compares the two on build cost and on query cost over the same
window workload, plus node count (packing density).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ExperimentTable
from repro.engine.parallel import WorkerContext
from repro.geometry.mbr import MBR
from repro.index.rtree.bulkload import str_pack
from repro.index.rtree.rtree import RTree

QUERIES = 200


def run_bulkload_ablation(workload):
    db = workload.db
    entries = []
    for rowid, row in db.table("counties").scan():
        entries.append((row[1].mbr, rowid))

    build_ctx = WorkerContext(0)
    packed = str_pack(entries, fanout=32, ctx=build_ctx)
    packed_build_s = build_ctx.meter.seconds(db.cost_model)

    dyn_ctx = WorkerContext(0)
    dynamic = RTree(fanout=32)
    for mbr, rowid in entries:
        dynamic.insert(mbr, rowid, dyn_ctx)
    dynamic_build_s = dyn_ctx.meter.seconds(db.cost_model)

    # Same window workload against both trees.
    total = packed.mbr
    queries = []
    for i in range(QUERIES):
        fx = (i * 37 % 100) / 100.0
        fy = (i * 61 % 100) / 100.0
        w = total.width * 0.05
        h = total.height * 0.05
        x = total.min_x + fx * (total.width - w)
        y = total.min_y + fy * (total.height - h)
        queries.append(MBR(x, y, x + w, y + h))

    def query_cost(tree):
        ctx = WorkerContext(0)
        hits = 0
        for q in queries:
            hits += sum(1 for _ in tree.search(q, ctx))
        return ctx.meter.seconds(db.cost_model), hits

    packed_q_s, packed_hits = query_cost(packed)
    dynamic_q_s, dynamic_hits = query_cost(dynamic)
    assert packed_hits == dynamic_hits

    return [
        {
            "method": "STR bulk load",
            "build_s": packed_build_s,
            "query_s": packed_q_s,
            "nodes": packed.node_count(),
            "height": packed.height,
        },
        {
            "method": "dynamic insert",
            "build_s": dynamic_build_s,
            "query_s": dynamic_q_s,
            "nodes": dynamic.node_count(),
            "height": dynamic.height,
        },
    ]


@pytest.mark.benchmark(group="ablation")
def test_ablation_bulkload_vs_dynamic(benchmark, counties_workload):
    rows = benchmark.pedantic(
        run_bulkload_ablation, args=(counties_workload,), rounds=1, iterations=1
    )

    table = ExperimentTable(
        experiment="ablation_bulkload",
        title="Ablation D — STR bulk load vs dynamic insertion",
        columns=[
            "method", "build (sim s)", f"{QUERIES} windows (sim s)",
            "nodes", "height",
        ],
        paper_note=(
            "parallel R-tree creation clusters subtrees (STR-style packing) "
            "rather than inserting one row at a time"
        ),
    )
    for row in rows:
        table.add_row(
            row["method"], row["build_s"], row["query_s"], row["nodes"],
            row["height"],
        )
    table.emit()

    packed, dynamic = rows
    assert packed["build_s"] < dynamic["build_s"], "bulk load must build faster"
    assert packed["nodes"] <= dynamic["nodes"], "packing must be denser"
    assert packed["query_s"] <= dynamic["query_s"] * 1.2, (
        "packed tree must not be materially worse for queries"
    )
    benchmark.extra_info["rows"] = rows
