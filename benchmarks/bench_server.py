"""Query-service benchmark: wire-join smoke test + concurrency sweep.

Standalone (CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_server.py

Two parts:

1. **Smoke** — a paged ``spatial_join`` over the wire must return exactly
   the pairs (values *and* order) of the in-process
   ``Database.spatial_join``; the run aborts if it does not.
2. **Sweep** — 1 / 4 / 16 concurrent clients each page window-query
   sessions against one server; reports throughput (sessions/s) and
   p50/p99 session latency, and writes ``BENCH_server.json`` next to the
   other benchmark sidecars.

The sweep measures the *service* (paging, admission, thread bridge), not
the spatial kernels — the per-query work is deliberately small so the
concurrency effects dominate.
"""

from __future__ import annotations

import random
import sys
import threading
import time

from repro import Database, Geometry
from repro.bench.reporting import ExperimentTable, emit_bench_json
from repro.datasets import load_geometries
from repro.geometry.wkt import to_wkt
from repro.server import BackgroundServer, QueryClient

CONCURRENCIES = (1, 4, 16)
TOTAL_SESSIONS = 96  # split across the clients of each sweep point
TABLE_ROWS = 400
PAGE = 64


def build_db() -> Database:
    rng = random.Random(1234)
    geoms = []
    for _ in range(TABLE_ROWS):
        x = rng.uniform(0, 96)
        y = rng.uniform(0, 96)
        geoms.append(
            Geometry.rectangle(
                x, y, x + rng.uniform(0.8, 4.0), y + rng.uniform(0.8, 4.0)
            )
        )
    db = Database()
    load_geometries(db, "shapes", geoms)
    load_geometries(db, "probes", geoms[: TABLE_ROWS // 2])
    db.create_spatial_index("shapes_idx", "shapes", "geom", kind="RTREE", fanout=8)
    db.create_spatial_index("probes_idx", "probes", "geom", kind="RTREE", fanout=8)
    return db


def smoke_wire_join(db: Database, port: int) -> int:
    """Assert the paged wire join is byte-identical to the in-process one."""
    want = [
        ((ra.page, ra.slot), (rb.page, rb.slot))
        for ra, rb in db.spatial_join("shapes", "geom", "probes", "geom").pairs
    ]
    with QueryClient(port=port) as client:
        session = client.start(
            "spatial_join",
            {
                "table_a": "shapes",
                "column_a": "geom",
                "table_b": "probes",
                "column_b": "geom",
            },
        )
        got = [
            ((a[0], a[1]), (b[0], b[1]))
            for a, b in session.rows(page=PAGE)
        ]
    if got != want:
        raise AssertionError(
            f"wire join diverged from in-process join: "
            f"{len(got)} vs {len(want)} pairs"
        )
    return len(got)


def _client_worker(port, n_sessions, seed, latencies, errors):
    rng = random.Random(seed)
    try:
        with QueryClient(port=port) as client:
            for _ in range(n_sessions):
                x = rng.uniform(0, 80)
                y = rng.uniform(0, 80)
                window = Geometry.rectangle(x, y, x + 16, y + 16)
                started = time.perf_counter()
                session = client.start(
                    "window",
                    {"table": "shapes", "column": "geom",
                     "wkt": to_wkt(window)},
                )
                list(session.rows(page=PAGE))
                latencies.append(time.perf_counter() - started)
    except Exception as exc:  # noqa: BLE001 - reported by the driver
        errors.append(exc)


def sweep_point(port: int, concurrency: int) -> dict:
    """Run TOTAL_SESSIONS window sessions across `concurrency` clients."""
    per_client = TOTAL_SESSIONS // concurrency
    latencies: list = []
    errors: list = []
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(port, per_client, 1000 + i, latencies, errors),
        )
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    if errors:
        raise AssertionError(f"client errors during sweep: {errors[:3]}")
    done = sorted(latencies)
    pct = lambda p: done[min(len(done) - 1, int(p / 100.0 * len(done)))]  # noqa: E731
    return {
        "clients": concurrency,
        "sessions": len(done),
        "throughput_per_s": len(done) / wall,
        "p50_ms": pct(50) * 1000.0,
        "p99_ms": pct(99) * 1000.0,
        "wall_seconds": wall,
    }


def main() -> int:
    db = build_db()
    started = time.perf_counter()
    with BackgroundServer(db, max_inflight=64, max_sessions=128) as handle:
        pairs = smoke_wire_join(db, handle.port)
        print(f"smoke: paged wire join == in-process join ({pairs} pairs)")

        rows = [sweep_point(handle.port, c) for c in CONCURRENCIES]

        # one stats probe so the sidecar records server-side counters too
        with QueryClient(port=handle.port) as client:
            stats = client.stats()
    elapsed = time.perf_counter() - started

    table = ExperimentTable(
        experiment="server",
        title="Query service throughput (window sessions, paged fetch)",
        columns=["clients", "sessions", "sessions/s", "p50 ms", "p99 ms"],
        paper_note=(
            "no paper counterpart: service-layer benchmark for the wire "
            "start/fetch/close protocol (ODCITable on a socket)"
        ),
    )
    for row in rows:
        table.add_row(
            row["clients"], row["sessions"], row["throughput_per_s"],
            row["p50_ms"], row["p99_ms"],
        )
    table.emit()

    payload = {
        "experiment": "server",
        "profile": "smoke",
        "driver_wall_seconds": round(elapsed, 3),
        "rows": rows + [{"join_smoke_pairs": pairs, "server_stats": stats}],
    }
    path = emit_bench_json("server", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
