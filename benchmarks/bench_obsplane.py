"""Observability-plane overhead: cluster join with the plane on vs off.

Standalone (CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_obsplane.py

Extends the single-node ``check_obs_overhead`` argument to the cluster
path: the *same* deterministic cross-shard ``spatial_join`` + window
workload runs twice on a 2-shard :class:`LocalCluster` —

1. **baseline** — no tracing, no metrics plane;
2. **observed** — distributed tracing enabled (shards inherit the
   enablement across the fork) *and* the metrics/SLO plane scraping at
   full tilt, with the stitched trace fetched via ``trace.get``.

and the run asserts **charge identity**: the per-``(kind, unit)`` engine
meter totals summed over all shards are *exactly* equal, so the
simulated-seconds overhead of observability is exactly 0% — comfortably
inside the 3% budget the gate allows for.  Wall-clock numbers ride along
informationally (this box is too noisy to gate on them).

Writes ``BENCH_obsplane.json`` next to the other benchmark sidecars.
"""

from __future__ import annotations

import math
import random
import time

from repro import Geometry
from repro.bench.reporting import ExperimentTable, emit_bench_json
from repro.cluster.local import LocalCluster
from repro.engine.cost import WorkMeter
from repro.geometry.mbr import MBR
from repro.geometry.wkt import to_wkt
from repro.obs import trace

NSHARDS = 2
TABLE_ROWS = 300
HALO = 2.0
BOX = MBR(0.0, 0.0, 100.0, 100.0)
WINDOW_QUERIES = 12
OVERHEAD_BUDGET = 0.03  # simulated-seconds overhead budget (3%)


def make_rows(n: int = TABLE_ROWS):
    rng = random.Random(20260808)
    rows = []
    for i in range(n):
        x = rng.uniform(0, 94)
        y = rng.uniform(0, 94)
        rect = Geometry.rectangle(
            x, y, x + rng.uniform(0.5, 3.0), y + rng.uniform(0.5, 3.0)
        )
        rows.append([i, to_wkt(rect)])
    return rows


def meter_totals(stats) -> dict:
    """Exact per-``(kind, unit)`` engine charge summed over all shards."""
    totals: dict = {}
    for shard_key, section in stats.get("shards", {}).items():
        if shard_key == "router":
            continue
        for kind, units in section.get("meters", {}).items():
            for unit, count in units.items():
                key = f"{kind}/{unit}"
                totals[key] = totals.get(key, 0.0) + count
    return {k: totals[k] for k in sorted(totals)}


def simulated_seconds(totals) -> float:
    meter = WorkMeter()
    for key, count in totals.items():
        unit = key.split("/", 1)[1]
        meter.counts[unit] = meter.counts.get(unit, 0.0) + count
    return meter.seconds()


def run_workload(observed: bool):
    """One full cluster pass; returns (meter totals, wall s, trace report)."""
    rows = make_rows()
    if observed:
        trace.enable()  # before start(): forked shards inherit enablement
    started = time.perf_counter()
    trace_report = {"spans": 0, "shards_in_trace": 0, "trace_id": None}
    try:
        with LocalCluster(
            NSHARDS,
            BOX,
            n_entries_hint=TABLE_ROWS,
            halo=HALO,
            obs_plane=observed,
            obs_interval=0.05,
        ) as cluster:
            cluster.create_spatial_table("shapes")
            cluster.load("shapes", rows)
            with cluster.client() as client:
                join = client.start(
                    "spatial_join",
                    {
                        "table_a": "shapes",
                        "column_a": "geom",
                        "table_b": "shapes",
                        "column_b": "geom",
                    },
                )
                pairs = join.all()
                if observed:
                    stitched = client.trace(join.session_id)
                    shards = {
                        s["tags"].get("shard")
                        for s in stitched["spans"]
                        if s["tags"].get("shard") is not None
                    }
                    trace_report = {
                        "spans": len(stitched["spans"]),
                        "shards_in_trace": len(shards),
                        "trace_id": stitched["trace"],
                    }
                rng = random.Random(7)
                for _ in range(WINDOW_QUERIES):
                    x = rng.uniform(0, 60)
                    y = rng.uniform(0, 60)
                    window = Geometry.rectangle(x, y, x + 30, y + 30)
                    client.start(
                        "window",
                        {
                            "table": "shapes",
                            "column": "geom",
                            "operator": "SDO_FILTER",
                            "wkt": to_wkt(window),
                        },
                    ).all()
                stats = client.stats(raw=True)
            if observed and cluster.plane is not None:
                cluster.plane.scrape_once()
                trace_report["plane_series"] = len(
                    cluster.plane.store.series()
                )
                trace_report["plane_scrapes"] = cluster.plane.scrapes
    finally:
        if observed:
            trace.disable()
    wall = time.perf_counter() - started
    return meter_totals(stats), wall, len(pairs), trace_report


def main() -> int:
    base_totals, wall_off, pairs_off, _ = run_workload(observed=False)
    obs_totals, wall_on, pairs_on, report = run_workload(observed=True)

    if pairs_on != pairs_off:
        raise AssertionError(
            f"observed run returned {pairs_on} join pairs, baseline "
            f"{pairs_off} — observability must not change results"
        )
    if obs_totals != base_totals:
        diffs = {
            k: (base_totals.get(k), obs_totals.get(k))
            for k in set(base_totals) | set(obs_totals)
            if not math.isclose(
                base_totals.get(k, 0.0), obs_totals.get(k, 0.0)
            )
        }
        raise AssertionError(f"meter charge drifted under observation: {diffs}")

    base_s = simulated_seconds(base_totals)
    obs_s = simulated_seconds(obs_totals)
    overhead = abs(obs_s - base_s) / base_s if base_s else 0.0
    if overhead >= OVERHEAD_BUDGET:
        raise AssertionError(
            f"simulated observability overhead {overhead * 100:.2f}% "
            f"exceeds the {OVERHEAD_BUDGET * 100:.0f}% budget"
        )
    if report["spans"] < 3 or report["shards_in_trace"] < 1:
        raise AssertionError(
            f"stitched trace too thin: {report} — expected router + shard "
            "spans in one tree"
        )

    print(f"join pairs (both runs): {pairs_off}")
    print(f"simulated seconds plane off: {base_s:.6f}")
    print(f"simulated seconds plane on:  {obs_s:.6f}")
    print(
        f"simulated overhead: {overhead * 100:.4f}% "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%) — charge-identical"
    )
    print(f"wall seconds plane off: {wall_off:.2f}")
    print(f"wall seconds plane on:  {wall_on:.2f} (informational)")
    print(
        f"stitched trace: {report['spans']} spans across "
        f"{report['shards_in_trace']} shard(s), id {report['trace_id']}"
    )

    table = ExperimentTable(
        experiment="obsplane",
        title="Observability plane overhead (2-shard cluster join)",
        columns=["plane", "sim s", "wall s", "join pairs"],
        paper_note=(
            "no paper counterpart: per-kind cost attribution reuses the "
            "paper's cost-model units, so tracing reads the same meters "
            "the §5 experiments charge and adds zero simulated work"
        ),
    )
    table.add_row("off", round(base_s, 4), round(wall_off, 2), pairs_off)
    table.add_row("on", round(obs_s, 4), round(wall_on, 2), pairs_on)
    table.emit()

    emit_bench_json(
        "obsplane",
        {
            "experiment": "obsplane",
            "profile": "smoke",
            "charge_identical": True,
            "sim_seconds_off": round(base_s, 6),
            "sim_seconds_on": round(obs_s, 6),
            "sim_overhead_pct": round(overhead * 100, 4),
            "overhead_budget_pct": OVERHEAD_BUDGET * 100,
            "wall_seconds_off": round(wall_off, 3),
            "wall_seconds_on": round(wall_on, 3),
            "join_pairs": pairs_off,
            "trace": report,
        },
    )
    print("OK: observability is charge-identical on the cluster path")
    return 0


def run_obsplane():
    """Registry entry point; self-contained like the cluster driver."""
    return main()


if __name__ == "__main__":
    raise SystemExit(main())
