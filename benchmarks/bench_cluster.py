"""Cluster benchmark: shard-count scaling + cross-shard join smoke.

Standalone (CI runs it directly)::

    PYTHONPATH=src python benchmarks/bench_cluster.py

Three parts:

1. **Smoke** — the cross-shard ``spatial_join`` (global grid, owned
   tiles, halo replicas) must return *exactly* the id pairs of the
   single-node in-process join, at every shard count.  The run aborts on
   any divergence.
2. **Sweep** — 16 concurrent clients page window-query sessions through
   the router at 1 / 2 / 4 shards.  Because this box gives the whole
   cluster one core, wall-clock cannot show scaling; the scaling figure
   is **simulated throughput**, consistent with the repo's cost-model
   methodology everywhere else: per-shard busy time = the engine
   :class:`~repro.engine.cost.WorkMeter` seconds the shard accumulated,
   cluster makespan = max over shards (shards run concurrently in a
   real deployment), throughput = sessions / makespan.  Wall numbers
   ride along for reference.
3. **Gate** — 4-shard simulated aggregate throughput must be >= 2.5x the
   1-shard figure, else the benchmark fails.

Writes ``BENCH_cluster.json`` next to the other benchmark sidecars.
"""

from __future__ import annotations

import random
import threading
import time

from repro import Database, Geometry
from repro.bench.reporting import ExperimentTable, emit_bench_json
from repro.cluster.local import LocalCluster
from repro.engine.cost import WorkMeter
from repro.geometry.mbr import MBR
from repro.geometry.wkt import to_wkt
from repro.server.client import QueryClient

SHARD_COUNTS = (1, 2, 4)
CLIENTS = 16
TOTAL_SESSIONS = 96
TABLE_ROWS = 600
HALO = 2.0
PAGE = 64
BOX = MBR(0.0, 0.0, 100.0, 100.0)
SPEEDUP_GATE = 2.5


def make_rows(n: int = TABLE_ROWS):
    """Deterministic ``[id, wkt]`` rectangles over the benchmark domain."""
    rng = random.Random(4242)
    rows = []
    for i in range(n):
        x = rng.uniform(0, 94)
        y = rng.uniform(0, 94)
        rect = Geometry.rectangle(
            x, y, x + rng.uniform(0.5, 3.0), y + rng.uniform(0.5, 3.0)
        )
        rows.append([i, to_wkt(rect)])
    return rows


def reference_pairs(rows):
    """Single-node id pairs of the self-join (the ground truth)."""
    db = Database()
    db.sql("create table shapes (id number, geom sdo_geometry)")
    db.sql(
        "create index shapes_sidx on shapes(geom) "
        "indextype is spatial_index parameters ('kind=RTREE')"
    )
    for row_id, wkt in rows:
        db.sql(f"insert into shapes values ({row_id}, sdo_geometry('{wkt}'))")
    table = db.table("shapes")
    result = db.spatial_join("shapes", "geom", "shapes", "geom")
    return sorted(
        (table.value(ra, "id"), table.value(rb, "id"))
        for ra, rb in result.pairs
    )


def cluster_pairs(cluster):
    with cluster.client() as client:
        session = client.start(
            "spatial_join",
            {
                "table_a": "shapes",
                "column_a": "geom",
                "table_b": "shapes",
                "column_b": "geom",
            },
        )
        return sorted((a, b) for a, b in session.rows(page=PAGE))


def _client_worker(port, n_sessions, seed, latencies, errors):
    rng = random.Random(seed)
    try:
        with QueryClient(port=port, retries=5) as client:
            for _ in range(n_sessions):
                x = rng.uniform(0, 80)
                y = rng.uniform(0, 80)
                window = Geometry.rectangle(x, y, x + 16, y + 16)
                started = time.perf_counter()
                session = client.start(
                    "window",
                    {"table": "shapes", "column": "geom",
                     "wkt": to_wkt(window)},
                )
                list(session.rows(page=PAGE))
                latencies.append(time.perf_counter() - started)
    except Exception as exc:  # noqa: BLE001 - reported by the driver
        errors.append(exc)


def simulated_busy_seconds(stats) -> dict:
    """Per-shard simulated engine seconds from the router's stats rollup."""
    busy = {}
    for shard_key, section in stats.get("shards", {}).items():
        if shard_key == "router":
            continue  # the router burns no engine work
        meter = WorkMeter()
        for units in section.get("meters", {}).values():
            for unit, count in units.items():
                meter.counts[unit] = meter.counts.get(unit, 0.0) + count
        busy[shard_key] = meter.seconds()
    return busy


def sweep_point(cluster, nshards: int, want_pairs) -> dict:
    pairs = cluster_pairs(cluster)
    if pairs != want_pairs:
        raise AssertionError(
            f"{nshards}-shard join diverged from single-node: "
            f"{len(pairs)} vs {len(want_pairs)} pairs"
        )

    per_client = TOTAL_SESSIONS // CLIENTS
    latencies: list = []
    errors: list = []
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(cluster.port, per_client, 9000 + i, latencies, errors),
        )
        for i in range(CLIENTS)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    if errors:
        raise AssertionError(f"client errors during sweep: {errors[:3]}")

    with cluster.client() as client:
        stats = client.stats()
    busy = simulated_busy_seconds(stats)
    makespan = max(busy.values()) if busy else 0.0
    done = sorted(latencies)
    pct = lambda p: done[min(len(done) - 1, int(p / 100.0 * len(done)))]  # noqa: E731
    return {
        "shards": nshards,
        "clients": CLIENTS,
        "sessions": len(done),
        "join_pairs": len(pairs),
        "sim_busy_per_shard": {k: round(v, 4) for k, v in sorted(busy.items())},
        "sim_makespan_s": round(makespan, 4),
        "sim_throughput_per_s": (
            round(len(done) / makespan, 2) if makespan > 0 else 0.0
        ),
        "wall_throughput_per_s": round(len(done) / wall, 2),
        "p50_ms": round(pct(50) * 1000.0, 2),
        "p99_ms": round(pct(99) * 1000.0, 2),
        "wall_seconds": round(wall, 2),
    }


def main() -> int:
    rows = make_rows()
    want_pairs = reference_pairs(rows)
    print(f"reference: single-node self-join = {len(want_pairs)} id pairs")

    started = time.perf_counter()
    sweep = []
    for nshards in SHARD_COUNTS:
        with LocalCluster(
            nshards, BOX, n_entries_hint=TABLE_ROWS, halo=HALO
        ) as cluster:
            cluster.create_spatial_table("shapes")
            totals = cluster.load("shapes", rows)
            point = sweep_point(cluster, nshards, want_pairs)
            point["replica_rows"] = totals["replicas"]
            sweep.append(point)
            print(
                f"{nshards} shard(s): join exact, "
                f"sim {point['sim_throughput_per_s']}/s "
                f"(wall {point['wall_throughput_per_s']}/s)"
            )
    elapsed = time.perf_counter() - started

    base = sweep[0]["sim_throughput_per_s"]
    four = next(p for p in sweep if p["shards"] == 4)
    speedup = four["sim_throughput_per_s"] / base if base else 0.0
    print(f"4-shard simulated speedup over 1 shard: {speedup:.2f}x")
    if speedup < SPEEDUP_GATE:
        raise AssertionError(
            f"4-shard simulated throughput is {speedup:.2f}x the single-"
            f"node figure; the gate is {SPEEDUP_GATE}x"
        )

    table = ExperimentTable(
        experiment="cluster",
        title="Sharded router scaling (16 clients, simulated throughput)",
        columns=["shards", "sessions", "sim sess/s", "wall sess/s",
                 "p50 ms", "p99 ms"],
        paper_note=(
            "no paper counterpart: scale-out of the paper's parallel "
            "spatial join across shard processes (grid tiles -> shards, "
            "two-layer duplicate avoidance -> zero cross-shard dups)"
        ),
    )
    for row in sweep:
        table.add_row(
            row["shards"], row["sessions"], row["sim_throughput_per_s"],
            row["wall_throughput_per_s"], row["p50_ms"], row["p99_ms"],
        )
    table.emit()

    payload = {
        "experiment": "cluster",
        "profile": "smoke",
        "driver_wall_seconds": round(elapsed, 3),
        "sim_speedup_4shard": round(speedup, 3),
        "speedup_gate": SPEEDUP_GATE,
        "rows": sweep,
    }
    path = emit_bench_json("cluster", payload)
    print(f"wrote {path}")
    return 0


def run_cluster():
    """Registry entry point; the CLI special-cases this self-contained
    driver, so this just delegates to :func:`main`."""
    return main()


if __name__ == "__main__":
    raise SystemExit(main())
