"""repro — reproduction of "Spatial Processing using Oracle Table Functions".

Kothuri, Ravada & Xu, ICDE 2003.  The package provides:

* ``repro.geometry`` — 2-D geometry engine (the ``sdo_geometry`` analogue).
* ``repro.storage`` — pages, buffer cache, heap tables with rowids, B+-tree.
* ``repro.engine`` — tables/cursors, pipelined & parallel table functions,
  the extensible-indexing framework, and a small SQL front-end.
* ``repro.index`` — R-tree and linear-quadtree spatial indexes.
* ``repro.core`` — the paper's contribution: the ``spatial_join`` table
  function (with parallel subtree decomposition) and parallel index
  creation for both index kinds.
* ``repro.datasets`` — seeded synthetic stand-ins for the paper's datasets.

Quickstart::

    from repro import Database, Geometry

    db = Database()
    counties = db.create_table("counties", [("id", "NUMBER"), ("geom", "SDO_GEOMETRY")])
    ...
    db.create_spatial_index("counties_sidx", "counties", "geom", kind="RTREE")
    pairs = list(db.spatial_join("counties", "geom", "counties", "geom", "INTERSECT"))
"""

from repro.engine.database import Database
from repro.geometry import MBR, Geometry, GeometryType

__version__ = "1.0.0"

__all__ = ["Database", "Geometry", "GeometryType", "MBR", "__version__"]
