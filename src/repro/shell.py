"""The command-line front door: REPL, query server, and wire client.

``python -m repro.shell`` (no arguments) starts the interactive SQL REPL
against an in-memory :class:`~repro.engine.database.Database`::

    $ python -m repro.shell
    repro> create table t (id number, geom sdo_geometry);
    table t created
    repro> insert into t values (1, sdo_geometry('POINT (1 2)'));
    1 row inserted
    repro> select id from t;
    ID
    --
    1

Subcommands::

    python -m repro.shell serve --port 7878 --init seed.sql
    python -m repro.shell client --port 7878

``serve`` runs the concurrent query service of :mod:`repro.server`
(Ctrl-C / SIGTERM drain live sessions before exiting); ``client`` is the
same REPL but statements execute over the wire as paged ``sql`` sessions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List, Optional

from repro.engine.database import Database
from repro.errors import ProtocolError, ReproError

__all__ = ["format_result", "run_statement", "repl", "main"]

PROMPT = "repro> "
CONTINUATION = "   ... "


def format_result(result) -> str:
    """Render a SqlResult the way a SQL client would."""
    if result.message:
        return result.message
    if not result.columns:
        return f"{result.rowcount} row(s)"
    return format_rows(result.columns, result.rows)


def format_rows(columns, rows) -> str:
    """Render a column list + row list as an aligned text table."""
    widths = [len(c) for c in columns]
    rendered = []
    for row in rows:
        cells = [_cell(v) for v in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        rendered.append(cells)
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for cells in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def run_statement(db: Database, statement: str) -> str:
    """Execute one statement, returning display text (errors included)."""
    try:
        return format_result(db.sql(statement))
    except ReproError as exc:
        return f"ERROR: {exc}"


def _statements(lines: Iterable[str]) -> Iterable[str]:
    """Group input lines into semicolon-terminated statements."""
    buffer: List[str] = []
    for line in lines:
        buffer.append(line)
        joined = " ".join(buffer).strip()
        if joined.endswith(";"):
            yield joined
            buffer = []
    tail = " ".join(buffer).strip()
    if tail:
        yield tail


def repl(
    stdin=None,
    stdout=None,
    db: Optional[Database] = None,
    interactive: bool = True,
    execute=None,
) -> Database:
    """Run the read-eval-print loop; returns the database for inspection.

    ``execute`` overrides how one statement is run (the wire client passes
    its own); Ctrl-C clears the statement being typed instead of killing
    the process, and a second Ctrl-C on an empty line exits cleanly.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    db = db if db is not None else Database()
    if execute is None:
        def execute(statement: str) -> str:
            return run_statement(db, statement)

    def prompt(text: str) -> None:
        if interactive:
            stdout.write(text)
            stdout.flush()

    prompt(PROMPT)
    pending: List[str] = []
    while True:
        try:
            raw = stdin.readline()
        except KeyboardInterrupt:
            if not pending:
                stdout.write("\n")
                break
            pending = []
            stdout.write("\n(statement cleared)\n")
            prompt(PROMPT)
            continue
        if not raw:  # EOF
            if interactive:
                stdout.write("\n")
            break
        line = raw.rstrip("\n")
        if not pending and line.strip().lower() in ("quit", "exit", r"\q"):
            break
        pending.append(line)
        joined = " ".join(pending).strip()
        if joined.endswith(";"):
            try:
                stdout.write(execute(joined) + "\n")
            except KeyboardInterrupt:
                stdout.write("\n(statement interrupted)\n")
            pending = []
            prompt(PROMPT)
        elif joined:
            prompt(CONTINUATION)
        else:
            pending = []
            prompt(PROMPT)
    return db


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def _load_init_sql(db: Database, path: str, stdout) -> None:
    """Seed the served database from a file of semicolon-separated SQL."""
    with open(path, "r", encoding="utf-8") as fh:
        for statement in _statements(fh):
            text = run_statement(db, statement)
            if text.startswith("ERROR"):
                stdout.write(f"{path}: {text}\n")


def cmd_serve(args, stdout) -> int:
    import asyncio

    from repro.server.app import serve

    db = Database()
    if args.init:
        _load_init_sql(db, args.init, stdout)

    def ready(server) -> None:
        stdout.write(
            f"repro query service listening on {server.host}:{server.port} "
            "(Ctrl-C to drain and stop)\n"
        )
        stdout.flush()

    try:
        asyncio.run(
            serve(
                db,
                host=args.host,
                port=args.port,
                ready=ready,
                max_inflight=args.max_inflight,
                max_sessions=args.max_sessions,
                default_deadline_ms=args.deadline_ms,
                fetch_workers=args.workers,
            )
        )
    except KeyboardInterrupt:
        # add_signal_handler already drained; this catches the rare window
        # before handlers are installed.  Either way: no traceback spew.
        pass
    stdout.write("server stopped\n")
    return 0


# ----------------------------------------------------------------------
# cluster
# ----------------------------------------------------------------------
def cmd_cluster(args, stdout) -> int:
    """Serve a sharded cluster: N forked shards behind one router port."""
    import time as _time

    from repro.cluster.local import LocalCluster
    from repro.geometry.mbr import MBR

    box = MBR(args.min_x, args.min_y, args.max_x, args.max_y)
    cluster = LocalCluster(
        args.shards,
        box,
        halo=args.halo,
        replicated=args.replicated,
        obs_plane=args.obs,
        router_host=args.host,
        router_port=args.port,
    )
    cluster.start()
    try:
        if args.init:
            with open(args.init, "r", encoding="utf-8") as fh:
                cluster.ddl(list(_statements(fh)))
        stdout.write(
            f"repro cluster: {args.shards} shard(s) "
            f"{'[replicated leader] ' if args.replicated else ''}"
            f"behind router on {args.host}:{cluster.port} "
            "(Ctrl-C to stop)\n"
        )
        stdout.flush()
        while True:
            _time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        cluster.stop()
    stdout.write("cluster stopped\n")
    return 0


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
def cmd_client(args, stdin, stdout) -> int:
    from repro.server.client import QueryClient, RemoteError

    try:
        client = QueryClient(host=args.host, port=args.port)
    except (OSError, ReproError) as exc:
        stdout.write(f"cannot connect to {args.host}:{args.port}: {exc}\n")
        return 1

    def execute(statement: str) -> str:
        try:
            session = client.start(
                "sql", {"statement": statement.rstrip(";")}
            )
            rows = session.all(page=args.page)
            if session.extra.get("message"):
                return session.extra["message"]
            if not session.columns:
                return f"{session.extra.get('rowcount', 0)} row(s)"
            return format_rows(session.columns, rows)
        except (RemoteError, ProtocolError) as exc:
            return f"ERROR: {exc}"

    try:
        repl(stdin=stdin, stdout=stdout, execute=execute,
             interactive=args.interactive)
    finally:
        client.close()
    return 0


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def cmd_stats(args, stdout) -> int:
    """Scrape a running server: Prometheus text (default) or JSON stats."""
    import json

    from repro.server.client import QueryClient, RemoteError

    try:
        client = QueryClient(host=args.host, port=args.port)
    except (OSError, ReproError) as exc:
        stdout.write(f"cannot connect to {args.host}:{args.port}: {exc}\n")
        return 1
    try:
        if args.json:
            stdout.write(json.dumps(client.stats(), indent=2) + "\n")
        else:
            stdout.write(client.metrics())
    except (RemoteError, ProtocolError) as exc:
        stdout.write(f"ERROR: {exc}\n")
        return 1
    finally:
        client.close()
    return 0


# ----------------------------------------------------------------------
# top / dashboard
# ----------------------------------------------------------------------
def _poll_obs(client):
    """One observation round: plane snapshot + topology + health.

    ``topology``/``health`` exist only on routers and the plane only when
    one is attached — missing surfaces degrade to None so ``top`` still
    renders whatever this server can report.
    """
    from repro.server.client import RemoteError

    out = []
    for op in ("obs.plane", "topology", "health"):
        try:
            out.append(client.request(op))
        except (RemoteError, ReproError):
            out.append(None)
    plane = (out[0] or {}).get("plane")
    return plane, out[1], out[2]


def cmd_top(args, stdout) -> int:
    """Live terminal dashboard over a running server's obs plane."""
    import time as _time

    from repro.obs.dashboard import render_top
    from repro.server.client import QueryClient

    try:
        client = QueryClient(host=args.host, port=args.port)
    except (OSError, ReproError) as exc:
        stdout.write(f"cannot connect to {args.host}:{args.port}: {exc}\n")
        return 1
    try:
        while True:
            plane, topology, health = _poll_obs(client)
            if plane is None:
                stdout.write(
                    "server has no observability plane attached "
                    "(start the cluster with --obs)\n"
                )
                return 1
            screen = render_top(plane, topology, health)
            if not args.once:
                stdout.write("\x1b[2J\x1b[H")  # clear + home
            stdout.write(screen)
            stdout.flush()
            if args.once:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        stdout.write("\n")
        return 0
    finally:
        client.close()


def cmd_dashboard(args, stdout) -> int:
    """Export the obs-plane view as a self-contained HTML page."""
    from repro.obs.dashboard import render_html
    from repro.server.client import QueryClient

    try:
        client = QueryClient(host=args.host, port=args.port)
    except (OSError, ReproError) as exc:
        stdout.write(f"cannot connect to {args.host}:{args.port}: {exc}\n")
        return 1
    try:
        plane, topology, health = _poll_obs(client)
    finally:
        client.close()
    if plane is None:
        stdout.write("server has no observability plane attached\n")
        return 1
    page = render_html(plane, topology, health)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(page)
    stdout.write(f"dashboard written to {args.out}\n")
    return 0


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.shell", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("repl", help="interactive SQL shell (default)")

    p_serve = sub.add_parser("serve", help="run the concurrent query service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7878)
    p_serve.add_argument(
        "--init", default=None, help="SQL file executed at startup (seed data)"
    )
    p_serve.add_argument("--max-inflight", type=int, default=32)
    p_serve.add_argument("--max-sessions", type=int, default=64)
    p_serve.add_argument(
        "--deadline-ms", type=int, default=None,
        help="default per-session deadline",
    )
    p_serve.add_argument("--workers", type=int, default=4)

    p_cluster = sub.add_parser(
        "cluster", help="serve N shards behind a scatter-gather router"
    )
    p_cluster.add_argument("--host", default="127.0.0.1")
    p_cluster.add_argument("--port", type=int, default=7878)
    p_cluster.add_argument("--shards", type=int, default=2)
    p_cluster.add_argument(
        "--halo", type=float, default=0.0,
        help="replication halo: max within-distance joins can use",
    )
    p_cluster.add_argument(
        "--replicated", action="store_true",
        help="WAL-backed leader shard with a tailing follower",
    )
    p_cluster.add_argument(
        "--obs", action="store_true",
        help="attach the metrics/SLO plane (enables `top` and `dashboard`)",
    )
    p_cluster.add_argument(
        "--init", default=None,
        help="SQL file broadcast to every shard at startup (DDL)",
    )
    p_cluster.add_argument("--min-x", type=float, default=0.0)
    p_cluster.add_argument("--min-y", type=float, default=0.0)
    p_cluster.add_argument("--max-x", type=float, default=100.0)
    p_cluster.add_argument("--max-y", type=float, default=100.0)

    p_client = sub.add_parser("client", help="SQL shell over the wire")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7878)
    p_client.add_argument("--page", type=int, default=1024)
    p_client.add_argument(
        "--no-prompt", dest="interactive", action="store_false",
        help="suppress prompts (scripted input)",
    )

    p_stats = sub.add_parser(
        "stats", help="scrape a running server's metrics"
    )
    p_stats.add_argument("--host", default="127.0.0.1")
    p_stats.add_argument("--port", type=int, default=7878)
    p_stats.add_argument(
        "--json", action="store_true",
        help="print the raw stats snapshot as JSON instead of Prometheus text",
    )

    p_top = sub.add_parser(
        "top", help="live terminal dashboard over the obs plane"
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=7878)
    p_top.add_argument(
        "--interval", type=float, default=1.0, help="refresh period (s)"
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (scripted / CI use)",
    )

    p_dash = sub.add_parser(
        "dashboard", help="export the obs-plane view as an HTML page"
    )
    p_dash.add_argument("--host", default="127.0.0.1")
    p_dash.add_argument("--port", type=int, default=7878)
    p_dash.add_argument("--out", default="dashboard.html")

    args = parser.parse_args(argv)
    if args.command == "serve":
        return cmd_serve(args, sys.stdout)
    if args.command == "cluster":
        return cmd_cluster(args, sys.stdout)
    if args.command == "client":
        return cmd_client(args, sys.stdin, sys.stdout)
    if args.command == "stats":
        return cmd_stats(args, sys.stdout)
    if args.command == "top":
        return cmd_top(args, sys.stdout)
    if args.command == "dashboard":
        return cmd_dashboard(args, sys.stdout)
    try:
        repl()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
