"""A minimal interactive SQL shell: ``python -m repro.shell``.

Reads semicolon-terminated statements, executes them against an in-memory
:class:`~repro.engine.database.Database`, and pretty-prints results.
Useful for exploring the SQL surface (including EXPLAIN) interactively::

    $ python -m repro.shell
    repro> create table t (id number, geom sdo_geometry);
    table t created
    repro> insert into t values (1, sdo_geometry('POINT (1 2)'));
    1 row inserted
    repro> select id from t;
    ID
    --
    1
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Optional

from repro.engine.database import Database
from repro.errors import ReproError

__all__ = ["format_result", "run_statement", "repl"]

PROMPT = "repro> "
CONTINUATION = "   ... "


def format_result(result) -> str:
    """Render a SqlResult the way a SQL client would."""
    if result.message:
        return result.message
    if not result.columns:
        return f"{result.rowcount} row(s)"
    widths = [len(c) for c in result.columns]
    rendered = []
    for row in result.rows:
        cells = [_cell(v) for v in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        rendered.append(cells)
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(result.columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for cells in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    lines.append(f"({len(result.rows)} row{'s' if len(result.rows) != 1 else ''})")
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def run_statement(db: Database, statement: str) -> str:
    """Execute one statement, returning display text (errors included)."""
    try:
        return format_result(db.sql(statement))
    except ReproError as exc:
        return f"ERROR: {exc}"


def _statements(lines: Iterable[str]) -> Iterable[str]:
    """Group input lines into semicolon-terminated statements."""
    buffer: List[str] = []
    for line in lines:
        buffer.append(line)
        joined = " ".join(buffer).strip()
        if joined.endswith(";"):
            yield joined
            buffer = []
    tail = " ".join(buffer).strip()
    if tail:
        yield tail


def repl(
    stdin=None,
    stdout=None,
    db: Optional[Database] = None,
    interactive: bool = True,
) -> Database:
    """Run the read-eval-print loop; returns the database for inspection."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    db = db if db is not None else Database()

    def prompt(text: str) -> None:
        if interactive:
            stdout.write(text)
            stdout.flush()

    prompt(PROMPT)
    pending: List[str] = []
    for raw in stdin:
        line = raw.rstrip("\n")
        if not pending and line.strip().lower() in ("quit", "exit", r"\q"):
            break
        pending.append(line)
        joined = " ".join(pending).strip()
        if joined.endswith(";"):
            stdout.write(run_statement(db, joined) + "\n")
            pending = []
            prompt(PROMPT)
        elif joined:
            prompt(CONTINUATION)
        else:
            pending = []
            prompt(PROMPT)
    return db


if __name__ == "__main__":
    repl()
