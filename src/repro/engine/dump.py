"""Logical database export/import (the ``exp``/``imp`` utility analogue).

``export_database`` writes a database's schema, rows, and index metadata
to a single file using the storage codec; ``import_database`` reads it
back into a fresh :class:`~repro.engine.database.Database`, rebuilding
every spatial index from its recorded kind/parameters (indexes are
rebuilt rather than byte-copied — the same choice Oracle's logical
export makes).

File format: a magic header, then a stream of codec-encoded records::

    ("TABLE", name, ((col, type), ...))
    ("ROW", table_name, (value, ...))          # repeated per row
    ("INDEX", name, table, column, kind, parallel, ((param, value), ...))
    ("END",)

Rowids are NOT preserved (they are physical addresses); anything that
needs stable identity across export/import should key on user columns,
as with any logical backup.
"""

from __future__ import annotations

import os
import struct
from typing import Any, BinaryIO, Dict, List, Tuple

from repro.errors import EngineError
from repro.engine.database import Database
from repro.storage.codec import decode_row, encode_row

__all__ = ["export_database", "import_database"]

_MAGIC = b"REPRODMP1\n"
_LEN = struct.Struct("<I")


def export_database(db: Database, path: str) -> Dict[str, int]:
    """Write a logical dump of ``db`` to ``path``.

    Returns counters: tables, rows, indexes written.
    """
    stats = {"tables": 0, "rows": 0, "indexes": 0}
    # Write-to-temp + fsync + atomic rename: a crash mid-export leaves any
    # previous dump at ``path`` intact instead of a truncated file.
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as fh:
        fh.write(_MAGIC)
        for meta in db.catalog.tables():
            columns = tuple((c.name, c.type_tag) for c in meta.columns)
            _write_record(fh, ("TABLE", meta.name, columns))
            stats["tables"] += 1
            table = db.table(meta.name)
            for _rowid, row in table.scan():
                _write_record(fh, ("ROW", meta.name, tuple(row)))
                stats["rows"] += 1
        for imeta in db.catalog.indexes():
            params = tuple(
                (k, v)
                for k, v in sorted(imeta.parameters.items())
                if isinstance(v, (int, float, str, bool)) or v is None
            )
            _write_record(
                fh,
                (
                    "INDEX",
                    imeta.name,
                    imeta.table_name,
                    imeta.column_name,
                    imeta.index_kind,
                    imeta.parallel_degree,
                    params,
                ),
            )
            stats["indexes"] += 1
        _write_record(fh, ("END",))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    return stats


def import_database(path: str, db: Database = None) -> Database:
    """Load a logical dump into ``db`` (a fresh Database by default)."""
    db = db if db is not None else Database()
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise EngineError(f"{path} is not a repro dump file")
        saw_end = False
        while True:
            record = _read_record(fh)
            if record is None:
                break
            kind = record[0]
            if kind == "TABLE":
                _name, columns = record[1], record[2]
                db.create_table(_name, [(c, t) for c, t in columns])
            elif kind == "ROW":
                db.table(record[1]).insert(record[2])
            elif kind == "INDEX":
                _name, table, column, ikind, parallel, params = record[1:]
                db.create_spatial_index(
                    _name,
                    table,
                    column,
                    kind=ikind,
                    parallel=max(1, int(parallel)),
                    **{k: v for k, v in params},
                )
            elif kind == "END":
                saw_end = True
                break
            else:
                raise EngineError(f"unknown dump record kind {kind!r}")
        if not saw_end:
            raise EngineError(f"{path} is truncated (no END record)")
    return db


def _write_record(fh: BinaryIO, record: Tuple[Any, ...]) -> None:
    payload = encode_row(record)
    fh.write(_LEN.pack(len(payload)))
    fh.write(payload)


def _read_record(fh: BinaryIO):
    header = fh.read(_LEN.size)
    if not header:
        return None
    if len(header) != _LEN.size:
        raise EngineError("truncated record header in dump file")
    (length,) = _LEN.unpack(header)
    payload = fh.read(length)
    if len(payload) != length:
        raise EngineError("truncated record payload in dump file")
    return decode_row(payload)
