"""Recursive-descent SQL parser.

Grammar (case-insensitive keywords)::

    statement     := select | create_table | create_index | insert
                   | drop_table | drop_index
    select        := SELECT select_list FROM from_list [WHERE predicate]
    select_list   := '*' | COUNT '(' '*' ')' | expr [[AS] ident] {',' ...}
    from_list     := from_item {',' from_item}
    from_item     := ident [ident]                       -- table [alias]
                   | TABLE '(' func_call ')' [ident]     -- table function
    func_call     := ident '(' func_arg {',' func_arg} ')'
    func_arg      := expr | CURSOR '(' select ')'
    predicate     := conjunct {AND conjunct}
    conjunct      := comparison | in_subquery
    comparison    := expr cmp_op expr
    in_subquery   := '(' expr {',' expr} ')' IN '(' select ')'
                   | expr IN '(' select ')'
    expr          := literal | column_ref | func_call | '(' expr ')'
    column_ref    := ident ['.' (ident | ROWID)]

    create_table  := CREATE TABLE ident '(' ident type {',' ident type} ')'
    create_index  := CREATE INDEX ident ON ident '(' ident ')'
                     [INDEXTYPE IS ident]
                     [PARAMETERS string]
                     [PARALLEL number]
    insert        := INSERT INTO ident VALUES '(' expr {',' expr} ')'
    compact       := ALTER TABLE ident COMPACT [COLUMN ident] [CHUNK number]
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import SqlSyntaxError
from repro.engine.sql.ast import (
    AnalyzeTable,
    AndExpr,
    ColumnRef,
    CompactTable,
    Comparison,
    CreateIndex,
    CreateTable,
    CursorArg,
    DropIndex,
    DropTable,
    Explain,
    Expr,
    FromItem,
    FunctionCall,
    InSubquery,
    Insert,
    Literal,
    Select,
    SelectItem,
    Statement,
    TableFunctionRef,
    TableRef,
    TupleExpr,
)
from repro.engine.sql.lexer import Token, TokenType, tokenize

__all__ = ["parse"]

_COMPARISON_TOKENS = {
    TokenType.EQ: "=",
    TokenType.NEQ: "!=",
    TokenType.LT: "<",
    TokenType.LTE: "<=",
    TokenType.GT: ">",
    TokenType.GTE: ">=",
}

_RESERVED = {
    "SELECT", "FROM", "WHERE", "AND", "IN", "TABLE", "CURSOR", "AS",
    "CREATE", "INSERT", "INTO", "VALUES", "INDEX", "ON", "INDEXTYPE",
    "IS", "PARAMETERS", "PARALLEL", "DROP", "COUNT", "EXPLAIN", "ANALYZE",
}


def parse(text: str) -> Statement:
    """Parse one SQL statement."""
    return _Parser(tokenize(text)).parse_statement()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.type is not TokenType.EOF:
            self._pos += 1
        return tok

    def _expect(self, ttype: TokenType) -> Token:
        tok = self._next()
        if tok.type is not ttype:
            raise SqlSyntaxError(
                f"expected {ttype.value} but got {tok.text!r} at {tok.position}"
            )
        return tok

    def _keyword(self, word: str) -> Token:
        tok = self._next()
        if tok.type is not TokenType.IDENT or tok.upper != word:
            raise SqlSyntaxError(
                f"expected keyword {word} but got {tok.text!r} at {tok.position}"
            )
        return tok

    def _at_keyword(self, word: str, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.type is TokenType.IDENT and tok.upper == word

    def _accept_keyword(self, word: str) -> bool:
        if self._at_keyword(word):
            self._next()
            return True
        return False

    # -- statements ---------------------------------------------------------
    def parse_statement(self) -> Statement:
        stmt = self._statement()
        if self._peek().type is TokenType.SEMICOLON:
            self._next()
        tok = self._peek()
        if tok.type is not TokenType.EOF:
            raise SqlSyntaxError(f"trailing input at {tok.position}: {tok.text!r}")
        return stmt

    def _statement(self) -> Statement:
        if self._at_keyword("ANALYZE"):
            self._next()
            self._keyword("TABLE")
            name = self._expect(TokenType.IDENT).text
            if self._accept_keyword("COMPUTE"):
                self._keyword("STATISTICS")
            return AnalyzeTable(name)
        if self._at_keyword("ALTER"):
            self._next()
            self._keyword("TABLE")
            name = self._expect(TokenType.IDENT).text
            self._keyword("COMPACT")
            column: Optional[str] = None
            chunk_rows: Optional[int] = None
            if self._accept_keyword("COLUMN"):
                column = self._expect(TokenType.IDENT).text
            if self._accept_keyword("CHUNK"):
                tok = self._expect(TokenType.NUMBER)
                chunk_rows = int(float(tok.text))
            return CompactTable(name, column=column, chunk_rows=chunk_rows)
        if self._at_keyword("EXPLAIN"):
            self._next()
            # tolerate Oracle's EXPLAIN PLAN FOR spelling
            if self._at_keyword("PLAN"):
                self._next()
                self._keyword("FOR")
                return Explain(self._select())
            # EXPLAIN ANALYZE <select>: execute and decorate with actuals
            if self._at_keyword("ANALYZE"):
                self._next()
                return Explain(self._select(), analyze=True)
            return Explain(self._select())
        if self._at_keyword("SELECT"):
            return self._select()
        if self._at_keyword("CREATE"):
            if self._at_keyword("TABLE", 1):
                return self._create_table()
            if self._at_keyword("INDEX", 1):
                return self._create_index()
            raise SqlSyntaxError("CREATE must be followed by TABLE or INDEX")
        if self._at_keyword("INSERT"):
            return self._insert()
        if self._at_keyword("DROP"):
            if self._at_keyword("TABLE", 1):
                self._next(), self._next()
                return DropTable(self._expect(TokenType.IDENT).text)
            if self._at_keyword("INDEX", 1):
                self._next(), self._next()
                return DropIndex(self._expect(TokenType.IDENT).text)
            raise SqlSyntaxError("DROP must be followed by TABLE or INDEX")
        tok = self._peek()
        raise SqlSyntaxError(f"unknown statement start {tok.text!r} at {tok.position}")

    # -- SELECT ---------------------------------------------------------------
    def _select(self) -> Select:
        self._keyword("SELECT")
        items = self._select_list()
        self._keyword("FROM")
        from_items: List[FromItem] = [self._from_item()]
        while self._peek().type is TokenType.COMMA:
            self._next()
            from_items.append(self._from_item())
        where = None
        if self._accept_keyword("WHERE"):
            where = self._predicate()
        return Select(tuple(items), tuple(from_items), where)

    def _select_list(self) -> List[SelectItem]:
        items: List[SelectItem] = []
        while True:
            if self._peek().type is TokenType.STAR:
                self._next()
                items.append(SelectItem(expr=None))
            elif self._at_keyword("COUNT") and self._peek(1).type is TokenType.LPAREN:
                self._next()
                self._expect(TokenType.LPAREN)
                self._expect(TokenType.STAR)
                self._expect(TokenType.RPAREN)
                items.append(SelectItem(expr=None, is_count_star=True))
            else:
                expr = self._expr()
                alias = None
                if self._accept_keyword("AS"):
                    alias = self._expect(TokenType.IDENT).text
                elif (
                    self._peek().type is TokenType.IDENT
                    and self._peek().upper not in _RESERVED
                ):
                    alias = self._next().text
                items.append(SelectItem(expr=expr, alias=alias))
            if self._peek().type is TokenType.COMMA and not self._at_keyword(
                "FROM", 1
            ):
                # Comma only continues the select list if not before FROM.
                self._next()
                continue
            break
        return items

    def _from_item(self) -> FromItem:
        if self._at_keyword("TABLE") and self._peek(1).type is TokenType.LPAREN:
            self._next()
            self._expect(TokenType.LPAREN)
            call = self._table_function_call()
            self._expect(TokenType.RPAREN)
            alias = self._maybe_alias()
            return TableFunctionRef(call[0], call[1], alias)
        name = self._expect(TokenType.IDENT).text
        alias = self._maybe_alias()
        return TableRef(name, alias)

    def _maybe_alias(self) -> Optional[str]:
        tok = self._peek()
        if tok.type is TokenType.IDENT and tok.upper not in _RESERVED:
            return self._next().text
        return None

    def _table_function_call(self):
        name = self._expect(TokenType.IDENT).text
        self._expect(TokenType.LPAREN)
        args: List[Union[Expr, CursorArg]] = []
        if self._peek().type is not TokenType.RPAREN:
            while True:
                if self._at_keyword("CURSOR") and self._peek(1).type is TokenType.LPAREN:
                    self._next()
                    self._expect(TokenType.LPAREN)
                    args.append(CursorArg(self._select()))
                    self._expect(TokenType.RPAREN)
                else:
                    args.append(self._expr())
                if self._peek().type is TokenType.COMMA:
                    self._next()
                    continue
                break
        self._expect(TokenType.RPAREN)
        return name, tuple(args)

    # -- predicates --------------------------------------------------------
    def _predicate(self):
        terms = [self._conjunct()]
        while self._accept_keyword("AND"):
            terms.append(self._conjunct())
        if len(terms) == 1:
            return terms[0]
        return AndExpr(tuple(terms))

    def _conjunct(self):
        # Tuple IN: '(' expr, expr ')' IN '(' select ')'
        if self._peek().type is TokenType.LPAREN and self._looks_like_tuple_in():
            self._expect(TokenType.LPAREN)
            items = [self._expr()]
            while self._peek().type is TokenType.COMMA:
                self._next()
                items.append(self._expr())
            self._expect(TokenType.RPAREN)
            self._keyword("IN")
            self._expect(TokenType.LPAREN)
            sub = self._select()
            self._expect(TokenType.RPAREN)
            return InSubquery(TupleExpr(tuple(items)), sub)
        left = self._expr()
        if self._accept_keyword("IN"):
            self._expect(TokenType.LPAREN)
            sub = self._select()
            self._expect(TokenType.RPAREN)
            return InSubquery(left, sub)
        tok = self._next()
        op = _COMPARISON_TOKENS.get(tok.type)
        if op is None:
            raise SqlSyntaxError(
                f"expected comparison operator, got {tok.text!r} at {tok.position}"
            )
        right = self._expr()
        return Comparison(left, op, right)

    def _looks_like_tuple_in(self) -> bool:
        """Lookahead: does the '(' start a tuple followed by IN?"""
        depth = 0
        i = self._pos
        while i < len(self._tokens):
            tok = self._tokens[i]
            if tok.type is TokenType.LPAREN:
                depth += 1
            elif tok.type is TokenType.RPAREN:
                depth -= 1
                if depth == 0:
                    nxt = self._tokens[i + 1] if i + 1 < len(self._tokens) else None
                    return (
                        nxt is not None
                        and nxt.type is TokenType.IDENT
                        and nxt.upper == "IN"
                    )
            elif tok.type is TokenType.EOF:
                return False
            i += 1
        return False

    # -- expressions ----------------------------------------------------------
    def _expr(self) -> Expr:
        tok = self._peek()
        if tok.type is TokenType.NUMBER:
            self._next()
            text = tok.text
            value = float(text)
            if value.is_integer() and "." not in text and "e" not in text.lower():
                return Literal(int(value))
            return Literal(value)
        if tok.type is TokenType.STRING:
            self._next()
            return Literal(tok.text)
        if tok.type is TokenType.LPAREN:
            self._next()
            inner = self._expr()
            self._expect(TokenType.RPAREN)
            return inner
        if tok.type is TokenType.IDENT:
            # function call?
            if self._peek(1).type is TokenType.LPAREN:
                name, args = self._table_function_call()
                return FunctionCall(name, tuple(a for a in args))  # type: ignore[misc]
            name = self._next().text
            if self._peek().type is TokenType.DOT:
                self._next()
                col_tok = self._next()
                if col_tok.type not in (TokenType.IDENT,):
                    raise SqlSyntaxError(
                        f"expected column name after '.', got {col_tok.text!r}"
                    )
                return ColumnRef(name, col_tok.text)
            return ColumnRef(None, name)
        raise SqlSyntaxError(f"unexpected token {tok.text!r} at {tok.position}")

    # -- DDL/DML -----------------------------------------------------------
    def _create_table(self) -> CreateTable:
        self._keyword("CREATE")
        self._keyword("TABLE")
        name = self._expect(TokenType.IDENT).text
        self._expect(TokenType.LPAREN)
        columns: List[Tuple[str, str]] = []
        while True:
            col = self._expect(TokenType.IDENT).text
            type_tag = self._expect(TokenType.IDENT).text
            columns.append((col, type_tag.upper()))
            if self._peek().type is TokenType.COMMA:
                self._next()
                continue
            break
        self._expect(TokenType.RPAREN)
        return CreateTable(name, tuple(columns))

    def _create_index(self) -> CreateIndex:
        self._keyword("CREATE")
        self._keyword("INDEX")
        name = self._expect(TokenType.IDENT).text
        self._keyword("ON")
        table = self._expect(TokenType.IDENT).text
        self._expect(TokenType.LPAREN)
        column = self._expect(TokenType.IDENT).text
        self._expect(TokenType.RPAREN)
        indextype = "SPATIAL_INDEX"
        parameters = ""
        parallel = 1
        while True:
            if self._accept_keyword("INDEXTYPE"):
                self._keyword("IS")
                indextype = self._expect(TokenType.IDENT).text
            elif self._accept_keyword("PARAMETERS"):
                tok = self._peek()
                if tok.type is TokenType.LPAREN:
                    self._next()
                    parameters = self._expect(TokenType.STRING).text
                    self._expect(TokenType.RPAREN)
                else:
                    parameters = self._expect(TokenType.STRING).text
            elif self._accept_keyword("PARALLEL"):
                parallel = int(self._expect(TokenType.NUMBER).text)
            else:
                break
        return CreateIndex(name, table, column, indextype.upper(), parameters, parallel)

    def _insert(self) -> Insert:
        self._keyword("INSERT")
        self._keyword("INTO")
        table = self._expect(TokenType.IDENT).text
        self._keyword("VALUES")
        self._expect(TokenType.LPAREN)
        values: List[Expr] = [self._expr()]
        while self._peek().type is TokenType.COMMA:
            self._next()
            values.append(self._expr())
        self._expect(TokenType.RPAREN)
        return Insert(table, tuple(values))
