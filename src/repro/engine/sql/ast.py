"""SQL abstract syntax tree nodes.

The grammar covers the statements the paper's workload actually issues;
nodes are plain dataclasses with no behaviour (planning interprets them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "Expr",
    "Literal",
    "ColumnRef",
    "FunctionCall",
    "TupleExpr",
    "Comparison",
    "AndExpr",
    "InSubquery",
    "SelectItem",
    "FromItem",
    "TableRef",
    "TableFunctionRef",
    "CursorArg",
    "Select",
    "CreateTable",
    "CreateIndex",
    "Insert",
    "DropTable",
    "DropIndex",
    "Explain",
    "AnalyzeTable",
    "CompactTable",
    "Statement",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    value: object  # float | int | str


@dataclass(frozen=True)
class ColumnRef:
    table: Optional[str]  # alias or table name; None = unqualified
    column: str  # may be 'ROWID'


@dataclass(frozen=True)
class FunctionCall:
    name: str
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class TupleExpr:
    items: Tuple["Expr", ...]


Expr = Union[Literal, ColumnRef, FunctionCall, TupleExpr]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Comparison:
    left: Expr
    op: str  # '=', '!=', '<', '<=', '>', '>='
    right: Expr


@dataclass(frozen=True)
class InSubquery:
    left: Expr  # usually TupleExpr of rowid refs
    subquery: "Select"


@dataclass(frozen=True)
class AndExpr:
    terms: Tuple[Union[Comparison, InSubquery, "AndExpr"], ...]


Predicate = Union[Comparison, InSubquery, AndExpr]


# ---------------------------------------------------------------------------
# FROM items
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str]


@dataclass(frozen=True)
class CursorArg:
    """A CURSOR(SELECT ...) argument to a table function."""

    query: "Select"


@dataclass(frozen=True)
class TableFunctionRef:
    """TABLE(fname(arg, ...)) [alias] in a FROM clause."""

    function: str
    args: Tuple[Union[Expr, CursorArg], ...]
    alias: Optional[str]


FromItem = Union[TableRef, TableFunctionRef]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    expr: Optional[Expr]  # None means '*'
    is_count_star: bool = False
    alias: Optional[str] = None


@dataclass(frozen=True)
class Select:
    items: Tuple[SelectItem, ...]
    from_items: Tuple[FromItem, ...]
    where: Optional[Predicate]


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: Tuple[Tuple[str, str], ...]  # (name, type_tag)


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    column: str
    indextype: str  # e.g. 'SPATIAL_INDEX'
    parameters: str  # raw PARAMETERS string, e.g. 'kind=RTREE fanout=32'
    parallel: int


@dataclass(frozen=True)
class Insert:
    table: str
    values: Tuple[Expr, ...]


@dataclass(frozen=True)
class Explain:
    """EXPLAIN <select>: report the plan without executing it.

    With ``analyze`` (``EXPLAIN ANALYZE <select>``) the query *is*
    executed and the plan is decorated with per-operator actual rows,
    meter counts, buffer hit/miss and simulated seconds next to the
    optimizer's estimates.
    """

    query: "Select"
    analyze: bool = False


@dataclass(frozen=True)
class AnalyzeTable:
    """ANALYZE TABLE <name> [COMPUTE STATISTICS]."""

    name: str


@dataclass(frozen=True)
class CompactTable:
    """ALTER TABLE <name> COMPACT [COLUMN <col>] [CHUNK <rows>].

    Rebuilds the table's columnar read segment from the heap (the
    in-memory-column-store DDL analogue).
    """

    name: str
    column: Optional[str] = None
    chunk_rows: Optional[int] = None


@dataclass(frozen=True)
class DropTable:
    name: str


@dataclass(frozen=True)
class DropIndex:
    name: str


Statement = Union[
    Select, CreateTable, CreateIndex, Insert, DropTable, DropIndex, Explain,
    AnalyzeTable, CompactTable,
]
