"""SQL lexer.

Produces a flat token stream for the recursive-descent parser.  Supported
lexemes: identifiers (unquoted, case-insensitive), numeric literals, single
-quoted string literals (with '' escaping), punctuation, and the operator
set needed by the supported grammar.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import SqlSyntaxError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(enum.Enum):
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    STAR = "*"
    EQ = "="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    SEMICOLON = ";"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()


_PUNCT = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "*": TokenType.STAR,
    "=": TokenType.EQ,
    ";": TokenType.SEMICOLON,
}


def tokenize(text: str) -> List[Token]:
    """Tokenize a SQL statement; raises :class:`SqlSyntaxError` on garbage."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            parts: List[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError(f"unterminated string literal at {i}")
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch in "+-" and i + 1 < n and (text[i + 1].isdigit() or text[i + 1] == ".")
        ):
            j = i + 1 if ch in "+-" else i
            start = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j + 1 < n:
                    nxt = text[j + 1]
                    if nxt.isdigit() or nxt in "+-":
                        seen_exp = True
                        j += 2 if nxt in "+-" else 1
                    else:
                        break
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[start:j], start))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(TokenType.IDENT, text[i:j], i))
            i = j
            continue
        if ch == "!" and i + 1 < n and text[i + 1] == "=":
            tokens.append(Token(TokenType.NEQ, "!=", i))
            i += 2
            continue
        if ch == "<":
            if i + 1 < n and text[i + 1] == "=":
                tokens.append(Token(TokenType.LTE, "<=", i))
                i += 2
            elif i + 1 < n and text[i + 1] == ">":
                tokens.append(Token(TokenType.NEQ, "<>", i))
                i += 2
            else:
                tokens.append(Token(TokenType.LT, "<", i))
                i += 1
            continue
        if ch == ">":
            if i + 1 < n and text[i + 1] == "=":
                tokens.append(Token(TokenType.GTE, ">=", i))
                i += 2
            else:
                tokens.append(Token(TokenType.GT, ">", i))
                i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
