"""SQL planning and execution.

The planner recognises the paper's query shapes and lowers them onto the
library's native drivers:

* ``TABLE(spatial_join(...))`` in FROM → the pipelined spatial-join table
  function (with a ``CURSOR(...)`` of subtree-root pairs and/or a trailing
  degree argument for the parallel form).
* ``(a.rowid, b.rowid) IN (SELECT rid1, rid2 FROM TABLE(spatial_join(...)))``
  → table-function join followed by a rowid semi-join (the paper's §4
  rewrite).
* two-table ``WHERE sdo_relate(a.g, b.g, 'mask') = 'TRUE'`` → the
  nested-loop plan through the extensible-indexing framework (the only plan
  the pre-table-function optimizer had).
* single-table spatial predicates → domain-index scan.

Everything else falls back to a generic scan / cartesian-product evaluator,
which keeps small queries and tests honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SqlPlanError
from repro.engine.cursor import ListCursor
from repro.engine.indextype import OPERATORS
from repro.engine.parallel import WorkerContext, make_executor
from repro.engine.sql.ast import (
    AnalyzeTable,
    AndExpr,
    ColumnRef,
    CompactTable,
    Comparison,
    CreateIndex,
    CreateTable,
    CursorArg,
    DropIndex,
    DropTable,
    Explain,
    Expr,
    FunctionCall,
    InSubquery,
    Insert,
    Literal,
    Select,
    Statement,
    TableFunctionRef,
    TableRef,
    TupleExpr,
)
from repro.engine.sql.parser import parse
from repro.geometry.geometry import Geometry
from repro.geometry.wkt import from_wkt
from repro.obs import trace
from repro.storage.heap import RowId

__all__ = ["SqlResult", "execute_sql"]

_SPATIAL_OPERATORS = {"SDO_RELATE", "SDO_WITHIN_DISTANCE", "SDO_FILTER"}


@dataclass
class SqlResult:
    """Result of one SQL statement."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    rowcount: int = 0
    message: str = ""

    def scalar(self) -> Any:
        if not self.rows or not self.rows[0]:
            raise SqlPlanError("result has no scalar value")
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class _Relation:
    """An evaluated FROM item: named columns plus optional hidden rowids."""

    alias: str
    columns: List[str]
    rows: List[Tuple[Any, ...]]
    rowids: Optional[List[RowId]] = None
    alias_table: str = ""  # underlying base-table name ("" for functions)


def execute_sql(db, statement_text: str) -> SqlResult:
    """Parse and execute one statement against ``db`` (a Database)."""
    with trace.span("sql.statement", text=statement_text.strip()[:200]):
        with trace.span("sql.parse"):
            statement = parse(statement_text)
        with trace.span("sql.execute", statement=type(statement).__name__):
            return _Executor(db).execute(statement)


class _Executor:
    def __init__(self, db):
        self.db = db
        # EXPLAIN ANALYZE state: a per-operator actuals scratchpad and a
        # WorkerContext threaded into index probes so their charges are
        # attributed (both None during normal execution).
        self._profile: Optional[Dict[str, Any]] = None
        self._probe_ctx: Optional[WorkerContext] = None

    # ------------------------------------------------------------------
    def execute(self, stmt: Statement) -> SqlResult:
        if isinstance(stmt, Select):
            return self._select(stmt)
        if isinstance(stmt, Explain):
            if stmt.analyze:
                lines = self._explain_analyze(stmt.query)
            else:
                lines = self._explain(stmt.query)
            return SqlResult(["PLAN"], [(line,) for line in lines], rowcount=len(lines))
        if isinstance(stmt, AnalyzeTable):
            stats = self.db.analyze(stmt.name)
            return SqlResult(
                [],
                [],
                message=(
                    f"table {stmt.name} analyzed: {stats.row_count} rows, "
                    f"{len(stats.geometry_columns)} geometry column(s)"
                ),
            )
        if isinstance(stmt, CompactTable):
            table = self.db.compact_table(
                stmt.name, column=stmt.column, chunk_rows=stmt.chunk_rows
            )
            seg = table.columnar
            assert seg is not None
            return SqlResult(
                [],
                [],
                message=(
                    f"table {stmt.name} compacted: {seg.row_count} rows in "
                    f"{len(seg.chunks)} chunks ({seg.page_count} pages)"
                ),
            )
        if isinstance(stmt, CreateTable):
            self.db.create_table(stmt.name, list(stmt.columns))
            return SqlResult([], [], message=f"table {stmt.name} created")
        if isinstance(stmt, CreateIndex):
            params = _parse_parameters(stmt.parameters)
            kind = params.pop("kind", "RTREE").upper()
            _index, report = self.db.create_spatial_index(
                stmt.name,
                stmt.table,
                stmt.column,
                kind=kind,
                parallel=stmt.parallel,
                **params,
            )
            return SqlResult(
                [],
                [],
                message=(
                    f"index {stmt.name} created ({kind}, parallel {stmt.parallel}, "
                    f"{report.makespan_seconds:.3f}s simulated)"
                ),
            )
        if isinstance(stmt, Insert):
            table = self.db.table(stmt.table)
            values = tuple(_eval_literal_expr(v) for v in stmt.values)
            table.insert(values)
            return SqlResult([], [], rowcount=1, message="1 row inserted")
        if isinstance(stmt, DropTable):
            self.db.drop_table(stmt.name)
            return SqlResult([], [], message=f"table {stmt.name} dropped")
        if isinstance(stmt, DropIndex):
            self.db.drop_index(stmt.name)
            return SqlResult([], [], message=f"index {stmt.name} dropped")
        raise SqlPlanError(f"unsupported statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _select(self, stmt: Select) -> SqlResult:
        relations = [self._eval_from_item(item, i) for i, item in enumerate(stmt.from_items)]
        conjuncts = _flatten_predicate(stmt.where)

        # Recognise the rowid-pair IN (SELECT ... FROM TABLE(spatial_join))
        # rewrite and execute it as a semi-join instead of a cross filter.
        rows, env_columns, consumed = self._join_relations(relations, conjuncts)

        # Apply remaining predicates generically.
        remaining = [c for c in conjuncts if id(c) not in consumed]
        out_rows = []
        for row_env in rows:
            if all(self._eval_predicate(c, row_env, env_columns) for c in remaining):
                out_rows.append(row_env)

        return self._project(stmt, out_rows, env_columns)

    # -- EXPLAIN -------------------------------------------------------------
    def _explain(self, stmt: Select) -> List[str]:
        """Describe the plan the executor would choose, without running it.

        Mirrors the plan-shape recognition of :meth:`_select`.
        """
        lines: List[str] = ["SELECT STATEMENT"]
        conjuncts = _flatten_predicate(stmt.where)
        table_refs = [f for f in stmt.from_items if isinstance(f, TableRef)]
        tf_refs = [f for f in stmt.from_items if isinstance(f, TableFunctionRef)]

        semi = None
        for conjunct in conjuncts:
            if isinstance(conjunct, InSubquery) and isinstance(
                conjunct.left, TupleExpr
            ):
                refs = conjunct.left.items
                if len(refs) == 2 and all(
                    isinstance(r, ColumnRef) and r.column.upper() == "ROWID"
                    for r in refs
                ):
                    semi = conjunct
                    break

        if semi is not None:
            lines.append("  ROWID SEMI-JOIN of base tables")
            for ref in table_refs:
                lines.append(f"    TABLE ACCESS BY ROWID {ref.name.upper()}")
            lines.extend(
                "    " + line for line in self._explain_from_tf(semi.subquery)
            )
            return lines

        if tf_refs:
            for ref in tf_refs:
                lines.extend("  " + line for line in self._explain_tf(ref))
            for ref in table_refs:
                lines.append(f"  TABLE ACCESS FULL {ref.name.upper()}")
            return lines

        spatial_conjuncts = [
            c
            for c in conjuncts
            if isinstance(c, Comparison)
            and isinstance(c.left, FunctionCall)
            and c.left.name.upper() in _SPATIAL_OPERATORS
        ]
        if len(table_refs) == 1 and spatial_conjuncts:
            ref = table_refs[0]
            op = spatial_conjuncts[0].left.name.upper()  # type: ignore[union-attr]
            meta = self.db.catalog.spatial_index_on(
                ref.name, _first_geometry_column(spatial_conjuncts[0])
            )
            if meta is not None:
                lines.append(
                    f"  DOMAIN INDEX {meta.name.upper()} ({meta.index_kind}) "
                    f"operator {op}"
                )
                lines.append(f"    TABLE ACCESS BY ROWID {ref.name.upper()}")
            else:
                lines.append(f"  TABLE ACCESS FULL {ref.name.upper()} filter {op}")
            estimate = self._estimate_window(ref.name, spatial_conjuncts[0])
            if estimate is not None:
                lines.append(f"  estimated rows: {estimate:.0f}")
            return lines

        if len(table_refs) == 2 and spatial_conjuncts:
            outer, inner = table_refs
            lines.append("  NESTED LOOPS (pre-9i spatial join plan)")
            lines.append(f"    TABLE ACCESS FULL {outer.name.upper()}")
            meta = self.db.catalog.spatial_index_on(inner.name, "GEOM")
            if meta is not None:
                lines.append(
                    f"    DOMAIN INDEX PROBE {meta.name.upper()} "
                    f"({meta.index_kind}) per outer row"
                )
            else:
                lines.append(f"    TABLE ACCESS FULL {inner.name.upper()} per outer row")
            estimate = self._estimate_join(outer.name, inner.name)
            if estimate is not None:
                lines.append(f"  estimated candidate pairs: {estimate:.0f}")
            return lines

        for ref in table_refs:
            lines.append(f"  TABLE ACCESS FULL {ref.name.upper()}")
        if len(table_refs) > 1:
            lines.insert(1, "  CARTESIAN PRODUCT + FILTER")
        return lines

    # -- EXPLAIN ANALYZE -----------------------------------------------------
    def _explain_analyze(self, stmt: Select) -> List[str]:
        """Execute ``stmt`` under a private tracer and decorate the plan.

        Each plan-shape line gains ``(actual ...=N, simulated=Xs)``
        annotations next to the optimizer's estimates; operator meter
        counts, buffer hit/miss deltas and the statement total follow as
        indented detail lines.
        """
        from repro.obs.exporters import aggregate_spans

        model = self.db.cost_model
        skeleton = self._explain(stmt)
        self._profile = profile = {}
        self._probe_ctx = probe_ctx = WorkerContext(0)
        pool = getattr(self.db, "pool", None)
        buf_before = (
            (pool.stats.gets, pool.stats.hits, pool.stats.misses)
            if pool is not None
            else None
        )
        try:
            with trace.tracing() as tracer:
                with trace.span("sql.execute", statement="ExplainAnalyze"):
                    result = self._select(stmt)
        finally:
            self._profile = None
            self._probe_ctx = None
        rollup = aggregate_spans(tracer.spans, model)

        tf = profile.get("tf")
        primary = rollup.get("join.primary_filter")
        secondary = rollup.get("join.secondary_filter")
        fetches = rollup.get("join.fetch", {}).get("count", 0)
        index_scan = profile.get("index_scan")
        nested = profile.get("nested_loop")
        probe_seconds = probe_ctx.meter.seconds(model)
        total_seconds = probe_seconds + (tf["seconds"] if tf else 0.0)

        lines: List[str] = []
        for line in skeleton:
            indent = line[: len(line) - len(line.lstrip())]
            stripped = line.strip()
            if stripped == "SELECT STATEMENT":
                lines.append(
                    f"{line} (actual rows={result.rowcount}, "
                    f"simulated={total_seconds:.6f}s)"
                )
            elif stripped.startswith("ROWID SEMI-JOIN"):
                lines.append(
                    f"{line} (actual rows={profile.get('semi_rows', 0)})"
                )
            elif stripped.startswith("TABLE FUNCTION SPATIAL_JOIN") and tf:
                est = self._estimate_join(*tf["tables"])
                est_text = f"{est:.0f}" if est is not None else "n/a"
                lines.append(
                    f"{line} (actual pairs={tf['pairs']}, est pairs={est_text}, "
                    f"fetches={fetches}, simulated={tf['seconds']:.6f}s)"
                )
                lines.append(
                    f"{indent}  meter: {_format_meter(tf['meter'])}"
                )
            elif stripped.startswith("SYNCHRONIZED R-TREE TRAVERSAL") and primary:
                candidates = sum(
                    s.tags.get("candidates", 0)
                    for s in tracer.find("join.primary_filter")
                )
                lines.append(
                    f"{line} (actual candidates={candidates}, "
                    f"sweeps={primary['count']}, "
                    f"simulated={primary['simulated_seconds']:.6f}s)"
                )
                lines.append(
                    f"{indent}  meter: {_format_meter(primary['meter'])}"
                )
            elif stripped.startswith("SECONDARY FILTER") and secondary:
                results_out = sum(
                    s.tags.get("results", 0)
                    for s in tracer.find("join.secondary_filter")
                )
                lines.append(
                    f"{line} (actual rows={results_out}, "
                    f"drains={secondary['count']}, "
                    f"simulated={secondary['simulated_seconds']:.6f}s)"
                )
                lines.append(
                    f"{indent}  meter: {_format_meter(secondary['meter'])}"
                )
            elif stripped.startswith("DOMAIN INDEX") and index_scan:
                lines.append(
                    f"{line} (actual rows={index_scan['rows']}, "
                    f"simulated={probe_seconds:.6f}s)"
                )
                lines.append(
                    f"{indent}  meter: {_format_meter(probe_ctx.meter.counts)}"
                )
            elif stripped.startswith("NESTED LOOPS") and nested:
                lines.append(
                    f"{line} (actual rows={nested['rows']}, "
                    f"probes={nested['probes']}, "
                    f"simulated={probe_seconds:.6f}s)"
                )
                lines.append(
                    f"{indent}  meter: {_format_meter(probe_ctx.meter.counts)}"
                )
            elif stripped.startswith("estimated rows:"):
                lines.append(f"{line} (actual rows={result.rowcount})")
            elif stripped.startswith("estimated candidate pairs:") and nested:
                lines.append(f"{line} (actual rows={nested['rows']})")
            else:
                lines.append(line)

        if buf_before is not None:
            gets = pool.stats.gets - buf_before[0]
            hits = pool.stats.hits - buf_before[1]
            misses = pool.stats.misses - buf_before[2]
            ratio = hits / gets if gets else 0.0
            lines.append(
                f"  buffer: gets={gets} hits={hits} misses={misses} "
                f"hit_ratio={ratio:.3f}"
            )
        combined: Dict[str, float] = dict(probe_ctx.meter.counts)
        if tf:
            for kind, n in tf["meter"].items():
                combined[kind] = combined.get(kind, 0.0) + n
        if combined:
            lines.append(f"  statement meter: {_format_meter(combined)}")
        lines.append(f"  statement simulated seconds: {total_seconds:.6f}")
        return lines

    def _estimate_window(self, table_name: str, conjunct) -> Optional[float]:
        """Window-query cardinality estimate when stats + literal window."""
        from repro.engine.stats import estimate_window_rows

        stats = self.db.table_stats(table_name)
        if stats is None:
            return None
        fn = conjunct.left
        if len(fn.args) < 2:
            return None
        try:
            window = _eval_literal_expr(fn.args[1])
        except SqlPlanError:
            return None
        if not isinstance(window, Geometry):
            return None
        column = _first_geometry_column(conjunct)
        try:
            col_stats = stats.column(column)
        except Exception:  # noqa: BLE001 - estimate is best-effort
            return None
        return estimate_window_rows(col_stats, window.mbr)

    def _estimate_join(self, outer_name: str, inner_name: str) -> Optional[float]:
        from repro.engine.stats import estimate_join_pairs

        outer_stats = self.db.table_stats(outer_name)
        inner_stats = self.db.table_stats(inner_name)
        if outer_stats is None or inner_stats is None:
            return None
        try:
            col_a = outer_stats.column("GEOM")
            col_b = inner_stats.column("GEOM")
        except Exception:  # noqa: BLE001 - estimate is best-effort
            return None
        return estimate_join_pairs(col_a, col_b)

    def _explain_from_tf(self, sub: Select) -> List[str]:
        tf_refs = [f for f in sub.from_items if isinstance(f, TableFunctionRef)]
        lines: List[str] = []
        for ref in tf_refs:
            lines.extend(self._explain_tf(ref))
        return lines or ["SUBQUERY"]

    def _explain_tf(self, ref: TableFunctionRef) -> List[str]:
        fname = ref.function.upper()
        if fname == "SPATIAL_JOIN":
            args = list(ref.args)
            parallel = 1
            has_cursor = bool(args) and isinstance(args[0], CursorArg)
            plain = [a for a in args if not isinstance(a, CursorArg)]
            if len(plain) > 6:
                try:
                    parallel = int(_eval_literal_expr(plain[6]))
                except Exception:  # noqa: BLE001 - display only
                    parallel = 1
            strategy = ""
            if len(plain) > 7:
                try:
                    strategy = str(_eval_literal_expr(plain[7])).upper()
                except Exception:  # noqa: BLE001 - display only
                    strategy = ""
            lines = [
                f"TABLE FUNCTION SPATIAL_JOIN (pipelined"
                + (f", parallel {parallel}" if parallel > 1 else "")
                + ")"
            ]
            if strategy == "GRID":
                lines.append("  GRID PARTITION (uniform tiles over joint MBR)")
                lines.append(
                    "  PER-TILE PLANE SWEEP (two-layer duplicate avoidance)"
                )
            else:
                lines.append("  SYNCHRONIZED R-TREE TRAVERSAL (primary filter)")
            lines.append("  SECONDARY FILTER sorted by first rowid")
            if has_cursor:
                lines.insert(1, "  SUBTREE-PAIR CURSOR (partitioned across slaves)")
            return lines
        if fname == "SUBTREE_ROOT":
            return ["TABLE FUNCTION SUBTREE_ROOT (index descent)"]
        return [f"TABLE FUNCTION {fname}"]

    # -- FROM evaluation -----------------------------------------------------
    def _eval_from_item(self, item, position: int) -> _Relation:
        if isinstance(item, TableRef):
            table = self.db.table(item.name)
            alias = item.alias or item.name
            rows: List[Tuple[Any, ...]] = []
            rowids: List[RowId] = []
            for rowid, row in table.scan():
                rows.append(row)
                rowids.append(rowid)
            return _Relation(
                alias, table.schema.names(), rows, rowids, alias_table=item.name
            )
        if isinstance(item, TableFunctionRef):
            return self._eval_table_function(item, position)
        raise SqlPlanError(f"unsupported FROM item {item!r}")

    def _eval_table_function(self, ref: TableFunctionRef, position: int) -> _Relation:
        fname = ref.function.upper()
        alias = ref.alias or f"tf{position}"
        if fname == "SPATIAL_JOIN":
            pairs = self._run_spatial_join(ref.args)
            return _Relation(alias, ["RID1", "RID2"], [(a, b) for a, b in pairs])
        if fname == "SUBTREE_ROOT":
            args = [_eval_literal_expr(a) for a in ref.args]  # type: ignore[arg-type]
            if len(args) != 2:
                raise SqlPlanError("subtree_root(index_name, level) takes 2 args")
            index = self.db.spatial_index(str(args[0]))
            from repro.core.subtree import subtree_roots

            nodes = subtree_roots(index.tree, int(args[1]))
            return _Relation(alias, ["NODE"], [(n,) for n in nodes])
        raise SqlPlanError(f"unknown table function {ref.function!r}")

    def _run_spatial_join(self, args) -> List[Tuple[RowId, RowId]]:
        """Lower a spatial_join(...) call onto the join drivers.

        Signatures::

            spatial_join(t1, c1, t2, c2, mask [, distance [, degree [, strategy]]])
            spatial_join(CURSOR(pairs), t1, c1, t2, c2, mask [, distance])

        ``strategy`` is a string literal (``'NESTED'``, ``'SWEEP'``,
        ``'GRID'``); ``'GRID'`` selects space-oriented grid partitioning
        with two-layer duplicate avoidance instead of the subtree
        decomposition.
        """
        from repro.core.parallel_join import parallel_spatial_join, spatial_join
        from repro.core.secondary_filter import JoinPredicate
        from repro.core.spatial_join import SpatialJoinFunction
        from repro.engine.table_function import collect

        cursor_rows: Optional[List[Tuple[Any, ...]]] = None
        rest = list(args)
        if rest and isinstance(rest[0], CursorArg):
            sub_result = self._select(rest[0].query)
            cursor_rows = sub_result.rows
            rest = rest[1:]
        values = [_eval_literal_expr(a) for a in rest]
        if len(values) < 5:
            raise SqlPlanError(
                "spatial_join requires (table1, col1, table2, col2, mask)"
            )
        t1, c1, t2, c2, mask = (str(v) for v in values[:5])
        distance = float(values[5]) if len(values) > 5 else 0.0
        degree = int(values[6]) if len(values) > 6 else 1
        mask_norm = "ANYINTERACT" if mask.upper() == "INTERSECT" else mask.upper()
        predicate = JoinPredicate(mask=mask_norm, distance=distance)
        from repro.index.rtree.join import JoinStrategy

        strategy = JoinStrategy.SWEEP
        if len(values) > 7:
            name = str(values[7]).upper()
            try:
                strategy = JoinStrategy[name]
            except KeyError:
                raise SqlPlanError(
                    f"unknown join strategy {name!r}; expected one of "
                    f"{', '.join(s.name for s in JoinStrategy)}"
                ) from None

        table_a, table_b = self.db.table(t1), self.db.table(t2)
        tree_a = self.db._rtree_of(t1, c1)  # noqa: SLF001 - engine-internal
        tree_b = self.db._rtree_of(t2, c2)  # noqa: SLF001

        if cursor_rows is not None:
            ctx = WorkerContext(0)
            fn = SpatialJoinFunction(
                table_a, c1, tree_a, table_b, c2, tree_b,
                predicate=predicate,
                subtree_pair_cursor=ListCursor(cursor_rows),
            )
            rows = [tuple(r) for r in collect(fn, ctx)]
            if self._profile is not None:
                self._profile["tf"] = {
                    "pairs": len(rows),
                    "tables": (t1, t2),
                    "degree": 1,
                    "meter": dict(ctx.meter.counts),
                    "seconds": ctx.meter.seconds(self.db.cost_model),
                }
            return rows  # type: ignore[return-value]
        if degree > 1:
            result = parallel_spatial_join(
                table_a, c1, tree_a, table_b, c2, tree_b,
                make_executor(degree, self.db.cost_model), predicate=predicate,
                strategy=strategy,
            )
        else:
            result = spatial_join(
                table_a, c1, tree_a, table_b, c2, tree_b, predicate=predicate,
                strategy=strategy,
            )
        if self._profile is not None:
            self._profile["tf"] = {
                "pairs": len(result.pairs),
                "tables": (t1, t2),
                "degree": degree,
                "meter": dict(result.run.combined_meter().counts),
                "seconds": result.makespan_seconds,
            }
        return result.pairs

    # -- join planning ---------------------------------------------------
    def _join_relations(
        self, relations: List[_Relation], conjuncts: List
    ) -> Tuple[List[Dict[str, Any]], Dict[str, List[str]], set]:
        """Produce joined row environments.

        A row environment maps ``alias.column`` (and ``alias.ROWID``) to a
        value.  Returns the environments, the visible columns per alias,
        and the ids of conjuncts consumed by a recognised join plan.
        """
        env_columns = {r.alias.upper(): [c.upper() for c in r.columns] for r in relations}

        # single-table spatial operator => domain index scan
        single = self._try_index_scan_plan(relations, conjuncts)
        if single is not None:
            rows, consumed = single
            return rows, env_columns, consumed

        # two-table spatial operator => indexed nested loop (the pre-9i
        # plan, same one EXPLAIN reports)
        nested = self._try_nested_loop_plan(relations, conjuncts)
        if nested is not None:
            rows, consumed = nested
            return rows, env_columns, consumed

        # rowid-pair semi-join recognition
        semi = _find_rowid_semijoin(conjuncts, relations)
        if semi is not None:
            conjunct, (alias_a, alias_b) = semi
            pair_rows = self._pairs_of_subquery(conjunct.subquery)
            rel_a = _by_alias(relations, alias_a)
            rel_b = _by_alias(relations, alias_b)
            index_a = _rowid_index(rel_a)
            index_b = _rowid_index(rel_b)
            out = []
            for rid_a, rid_b in pair_rows:
                pos_a = index_a.get(rid_a)
                pos_b = index_b.get(rid_b)
                if pos_a is None or pos_b is None:
                    continue
                env = {}
                _bind(env, rel_a, pos_a)
                _bind(env, rel_b, pos_b)
                for other in relations:
                    if other.alias not in (rel_a.alias, rel_b.alias):
                        raise SqlPlanError(
                            "rowid semi-join only supports the two joined tables"
                        )
                out.append(env)
            if self._profile is not None:
                self._profile["semi_rows"] = len(out)
            return out, env_columns, {id(conjunct)}

        # generic cartesian product (small inputs / test queries)
        out = [dict()]  # type: ignore[var-annotated]
        for rel in relations:
            new_out = []
            for env in out:
                for pos in range(len(rel.rows)):
                    env2 = dict(env)
                    _bind(env2, rel, pos)
                    new_out.append(env2)
            out = new_out
        return out, env_columns, set()

    def _try_index_scan_plan(self, relations: List[_Relation], conjuncts: List):
        """Recognise a single-table spatial predicate against a constant
        query geometry and answer it through the domain index.

        Shapes: ``sdo_op(col, <literal geometry>, ...) = 'TRUE'`` and
        ``sdo_nn(col, <literal geometry>, k) = 'TRUE'``.
        """
        if len(relations) != 1:
            return None
        rel = relations[0]
        if rel.rowids is None or not rel.alias_table:
            return None
        for conjunct in conjuncts:
            if not isinstance(conjunct, Comparison) or conjunct.op != "=":
                continue
            fn = conjunct.left
            if not isinstance(fn, FunctionCall):
                continue
            op_name = fn.name.upper()
            if op_name not in _SPATIAL_OPERATORS and op_name != "SDO_NN":
                continue
            if not (
                isinstance(conjunct.right, Literal)
                and conjunct.right.value == "TRUE"
            ):
                continue
            if len(fn.args) < 2 or not isinstance(fn.args[0], ColumnRef):
                continue
            column = fn.args[0].column
            try:
                args = [_eval_literal_expr(a) for a in fn.args[1:]]
            except SqlPlanError:
                continue  # second operand is not constant => not this plan
            if not isinstance(args[0], Geometry):
                continue
            meta = self.db.catalog.spatial_index_on(rel.alias_table, column)
            if meta is None:
                if op_name == "SDO_NN":
                    raise SqlPlanError(
                        f"SDO_NN requires a spatial index on "
                        f"{rel.alias_table}.{column}"
                    )
                return None  # fall back to the full-scan filter
            index = self.db.spatial_index(meta.name)
            positions = _rowid_index(rel)
            out: List[Dict[str, Any]] = []
            for rowid in index.fetch(op_name, tuple(args), self._probe_ctx):
                pos = positions.get(rowid)
                if pos is None:
                    continue
                env: Dict[str, Any] = {}
                _bind(env, rel, pos)
                out.append(env)
            if self._profile is not None:
                self._profile["index_scan"] = {
                    "rows": len(out),
                    "index": meta.name,
                    "op": op_name,
                }
            return out, {id(conjunct)}
        return None

    def _try_nested_loop_plan(self, relations: List[_Relation], conjuncts: List):
        """Recognise ``WHERE sdo_op(a.g, b.g, ...) = 'TRUE'`` over two base
        tables and evaluate it as per-outer-row domain-index probes.

        Returns ``(row_environments, consumed_conjunct_ids)`` or None when
        the shape doesn't match (missing index, wrong arity, etc.).
        """
        if len(relations) != 2:
            return None
        probe = _find_spatial_join_conjunct(conjuncts, relations)
        if probe is None:
            return None
        conjunct, outer_rel, outer_col, inner_rel, inner_col, extra_args = probe
        meta = self.db.catalog.spatial_index_on(inner_rel.alias_table, inner_col)
        if meta is None:
            return None
        index = self.db.spatial_index(meta.name)
        op_name = conjunct.left.name.upper()

        inner_pos = _rowid_index(inner_rel)
        outer_geom_idx = [c.upper() for c in outer_rel.columns].index(outer_col.upper())
        out: List[Dict[str, Any]] = []
        probes = 0
        assert outer_rel.rowids is not None
        for pos, row in enumerate(outer_rel.rows):
            geom = row[outer_geom_idx]
            if geom is None:
                continue
            probes += 1
            for inner_rowid in index.fetch(
                op_name, (geom, *extra_args), self._probe_ctx
            ):
                inner_position = inner_pos.get(inner_rowid)
                if inner_position is None:
                    continue
                env: Dict[str, Any] = {}
                _bind(env, outer_rel, pos)
                _bind(env, inner_rel, inner_position)
                out.append(env)
        if self._profile is not None:
            self._profile["nested_loop"] = {
                "rows": len(out),
                "probes": probes,
                "outer_rows": len(outer_rel.rows),
                "index": meta.name,
            }
        return out, {id(conjunct)}

    def _pairs_of_subquery(self, sub: Select) -> List[Tuple[RowId, RowId]]:
        result = self._select(sub)
        if len(result.columns) != 2:
            raise SqlPlanError(
                "rowid semi-join subquery must project exactly two columns"
            )
        return [(r[0], r[1]) for r in result.rows]

    # -- predicate / expression evaluation ----------------------------------
    def _eval_predicate(self, pred, env: Dict[str, Any], env_columns) -> bool:
        if isinstance(pred, Comparison):
            left = self._eval_expr(pred.left, env)
            right = self._eval_expr(pred.right, env)
            return _compare(left, pred.op, right)
        if isinstance(pred, InSubquery):
            sub = self._select(pred.subquery)
            values = {r[0] if len(r) == 1 else tuple(r) for r in sub.rows}
            left = self._eval_expr(pred.left, env)
            return left in values
        raise SqlPlanError(f"unsupported predicate {pred!r}")

    def _eval_expr(self, expr: Expr, env: Dict[str, Any]) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            return _lookup(env, expr)
        if isinstance(expr, TupleExpr):
            return tuple(self._eval_expr(e, env) for e in expr.items)
        if isinstance(expr, FunctionCall):
            fname = expr.name.upper()
            if fname == "SDO_GEOMETRY":
                arg = self._eval_expr(expr.args[0], env)
                return from_wkt(str(arg))
            if fname in _SPATIAL_OPERATORS:
                args = [self._eval_expr(a, env) for a in expr.args]
                geom = args[0]
                if not isinstance(geom, Geometry):
                    raise SqlPlanError(f"{fname} first argument must be a geometry")
                op = OPERATORS[fname]
                return "TRUE" if op.evaluate(geom, *args[1:]) else "FALSE"
            raise SqlPlanError(f"unknown function {expr.name!r}")
        raise SqlPlanError(f"unsupported expression {expr!r}")

    # -- projection ---------------------------------------------------------
    def _project(
        self, stmt: Select, rows: List[Dict[str, Any]], env_columns
    ) -> SqlResult:
        if any(item.is_count_star for item in stmt.items):
            return SqlResult(["COUNT(*)"], [(len(rows),)], rowcount=1)
        columns: List[str] = []
        extractors = []
        for item in stmt.items:
            if item.expr is None:  # '*'
                for alias, cols in env_columns.items():
                    for col in cols:
                        columns.append(col)
                        extractors.append(
                            (lambda a, c: lambda env: env.get(f"{a}.{c}"))(alias, col)
                        )
                continue
            expr = item.expr
            label = item.alias or _expr_label(expr)
            columns.append(label.upper())
            extractors.append((lambda e: lambda env: self._eval_expr(e, env))(expr))
        out_rows = [tuple(fn(env) for fn in extractors) for env in rows]
        return SqlResult(columns, out_rows, rowcount=len(out_rows))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _format_meter(counts: Dict[str, float]) -> str:
    """Render meter counts as ``kind=count`` pairs, sorted by kind."""
    if not counts:
        return "(none)"
    parts = []
    for kind in sorted(counts):
        n = counts[kind]
        parts.append(f"{kind}={n:g}")
    return " ".join(parts)


def _parse_parameters(raw: str) -> Dict[str, Any]:
    """Parse an Oracle-style PARAMETERS string: 'key=value key=value'."""
    params: Dict[str, Any] = {}
    for piece in raw.replace(",", " ").split():
        if "=" not in piece:
            raise SqlPlanError(f"bad PARAMETERS entry {piece!r} (expected key=value)")
        key, value = piece.split("=", 1)
        key = key.strip().lower()
        value = value.strip()
        try:
            params[key] = int(value)
        except ValueError:
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return params


def _eval_literal_expr(expr) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, FunctionCall) and expr.name.upper() == "SDO_GEOMETRY":
        inner = expr.args[0]
        if isinstance(inner, Literal):
            return from_wkt(str(inner.value))
    if isinstance(expr, ColumnRef) and expr.table is None:
        # bare identifiers in function args read as name strings
        return expr.column
    raise SqlPlanError(f"expected a literal argument, got {expr!r}")


def _flatten_predicate(pred) -> List:
    if pred is None:
        return []
    if isinstance(pred, AndExpr):
        out = []
        for term in pred.terms:
            out.extend(_flatten_predicate(term))
        return out
    return [pred]


_TRANSPOSED_MASKS = {
    "CONTAINS": "INSIDE",
    "INSIDE": "CONTAINS",
    "COVERS": "COVEREDBY",
    "COVEREDBY": "COVERS",
}


def _transpose_mask(mask: str) -> str:
    """Swap argument-order-sensitive masks (probing flips the operands)."""
    return "+".join(
        _TRANSPOSED_MASKS.get(part.strip().upper(), part.strip().upper())
        for part in mask.split("+")
    )


def _find_spatial_join_conjunct(conjuncts, relations: List[_Relation]):
    """Match ``sdo_op(a.col, b.col, ...) = 'TRUE'`` across two relations.

    Returns (conjunct, outer_rel, outer_col, inner_rel, inner_col,
    probe_args) or None.  ``probe_args`` are the operator's trailing
    arguments adjusted for the probe direction (mask transposition).
    """
    by_alias = {r.alias.upper(): r for r in relations}
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison) or conjunct.op != "=":
            continue
        fn = conjunct.left
        if not isinstance(fn, FunctionCall) or fn.name.upper() not in _SPATIAL_OPERATORS:
            continue
        if not (isinstance(conjunct.right, Literal) and conjunct.right.value == "TRUE"):
            continue
        if len(fn.args) < 2:
            continue
        first, second = fn.args[0], fn.args[1]
        if not (isinstance(first, ColumnRef) and isinstance(second, ColumnRef)):
            continue
        if first.table is None or second.table is None:
            continue
        outer_rel = by_alias.get(first.table.upper())
        inner_rel = by_alias.get(second.table.upper())
        if outer_rel is None or inner_rel is None or outer_rel is inner_rel:
            continue
        try:
            extra = [_eval_literal_expr(a) for a in fn.args[2:]]
        except SqlPlanError:
            continue
        if fn.name.upper() == "SDO_RELATE":
            mask = str(extra[0]) if extra else "ANYINTERACT"
            extra = [_transpose_mask(mask)] + extra[1:]
        return conjunct, outer_rel, first.column, inner_rel, second.column, tuple(extra)
    return None


def _find_rowid_semijoin(conjuncts, relations):
    for conjunct in conjuncts:
        if not isinstance(conjunct, InSubquery):
            continue
        left = conjunct.left
        if not isinstance(left, TupleExpr) or len(left.items) != 2:
            continue
        refs = left.items
        if all(
            isinstance(r, ColumnRef) and r.column.upper() == "ROWID" for r in refs
        ):
            alias_a = refs[0].table or relations[0].alias  # type: ignore[union-attr]
            alias_b = refs[1].table or relations[-1].alias  # type: ignore[union-attr]
            return conjunct, (alias_a, alias_b)
    return None


def _by_alias(relations: List[_Relation], alias: str) -> _Relation:
    for rel in relations:
        if rel.alias.upper() == alias.upper():
            return rel
    raise SqlPlanError(f"unknown alias {alias!r}")


def _rowid_index(rel: _Relation) -> Dict[RowId, int]:
    if rel.rowids is None:
        raise SqlPlanError(f"FROM item {rel.alias!r} has no rowids (not a base table)")
    return {rid: i for i, rid in enumerate(rel.rowids)}


def _bind(env: Dict[str, Any], rel: _Relation, pos: int) -> None:
    alias = rel.alias.upper()
    for col, value in zip(rel.columns, rel.rows[pos]):
        env[f"{alias}.{col.upper()}"] = value
        env.setdefault(col.upper(), value)
    if rel.rowids is not None:
        env[f"{alias}.ROWID"] = rel.rowids[pos]


def _lookup(env: Dict[str, Any], ref: ColumnRef) -> Any:
    key = (
        f"{ref.table.upper()}.{ref.column.upper()}"
        if ref.table
        else ref.column.upper()
    )
    if key not in env:
        raise SqlPlanError(f"unknown column reference {key}")
    return env[key]


def _compare(left: Any, op: str, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SqlPlanError(f"unknown comparison operator {op!r}")


def _first_geometry_column(comparison: Comparison) -> str:
    """Column name of the first operator argument (for index lookup)."""
    fn = comparison.left
    if isinstance(fn, FunctionCall) and fn.args:
        arg = fn.args[0]
        if isinstance(arg, ColumnRef):
            return arg.column
    return "GEOM"


def _expr_label(expr: Expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column
    if isinstance(expr, FunctionCall):
        return expr.name
    if isinstance(expr, Literal):
        return str(expr.value)
    return "EXPR"
