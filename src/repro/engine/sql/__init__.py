"""SQL front-end: lexer, parser, and plan/execute for the paper's queries."""

from repro.engine.sql.executor import SqlResult, execute_sql
from repro.engine.sql.parser import parse

__all__ = ["parse", "execute_sql", "SqlResult"]
