"""Parallel execution of table-function work.

Oracle's parallel table functions run N *slave* instances, each consuming a
partition of the input cursor.  This module provides that execution model
twice, behind one interface:

* :class:`ThreadExecutor` — real Python threads.  Used by tests to prove
  the decomposition is correct under genuine concurrency.  (CPython's GIL
  means it cannot demonstrate speedup for CPU-bound work, and the
  reproduction host may have a single core anyway.)
* :class:`SimulatedExecutor` — the benchmark engine.  Tasks execute
  serially but charge their work units to per-worker
  :class:`~repro.engine.cost.WorkMeter` instances; the reported *makespan*
  is the maximum worker time plus startup overhead, exactly the quantity a
  multi-CPU host would show.  Scheduling is greedy: each task goes to the
  currently least-loaded worker, which models Oracle's demand-driven
  distribution of cursor partitions to slaves.

Both executors return a :class:`ParallelRun` whose ``results`` are in task
submission order regardless of scheduling.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, List, Optional, Sequence, TypeVar

from repro.errors import EngineError
from repro.engine.cost import CostModel, DEFAULT_COST_MODEL, WorkMeter

__all__ = [
    "WorkerContext",
    "ParallelRun",
    "ParallelExecutor",
    "SerialExecutor",
    "SimulatedExecutor",
    "ThreadExecutor",
]

T = TypeVar("T")

Task = Callable[["WorkerContext"], T]


class WorkerContext:
    """Execution context handed to each task: identifies the worker and
    carries the meter that task's work units are charged to."""

    __slots__ = ("worker_id", "meter")

    def __init__(self, worker_id: int, meter: Optional[WorkMeter] = None):
        self.worker_id = worker_id
        self.meter = meter if meter is not None else WorkMeter()

    def charge(self, kind: str, n: float = 1.0) -> None:
        """Record ``n`` work units of ``kind`` against this worker."""
        self.meter.add(kind, n)


@dataclass
class ParallelRun(Generic[T]):
    """Outcome of running a batch of tasks on an executor."""

    results: List[T]
    worker_meters: List[WorkMeter]
    degree: int
    cost_model: CostModel = DEFAULT_COST_MODEL
    wall_seconds: float = 0.0  # real elapsed time (ThreadExecutor only)

    @property
    def worker_seconds(self) -> List[float]:
        return [m.seconds(self.cost_model) for m in self.worker_meters]

    @property
    def makespan_seconds(self) -> float:
        """Simulated elapsed time: slowest worker + parallel startup cost."""
        startup = self.cost_model.worker_startup * (self.degree if self.degree > 1 else 0)
        busiest = max(self.worker_seconds, default=0.0)
        return busiest + startup

    @property
    def total_work_seconds(self) -> float:
        """Sum of all workers' simulated time (the 1-processor equivalent)."""
        return sum(self.worker_seconds)

    @property
    def imbalance(self) -> float:
        """max/mean worker time; 1.0 is a perfectly balanced run."""
        times = [t for t in self.worker_seconds]
        if not times or sum(times) == 0.0:
            return 1.0
        mean = sum(times) / len(times)
        return max(times) / mean if mean else 1.0

    def combined_meter(self) -> WorkMeter:
        meter = WorkMeter()
        for m in self.worker_meters:
            meter.merge(m)
        return meter


class ParallelExecutor:
    """Interface: run tasks with a given degree of parallelism."""

    degree: int
    cost_model: CostModel

    def run(self, tasks: Sequence[Task]) -> ParallelRun:
        raise NotImplementedError


class SerialExecutor(ParallelExecutor):
    """Degree-1 executor: every task runs on one worker, no startup cost."""

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL):
        self.degree = 1
        self.cost_model = cost_model

    def run(self, tasks: Sequence[Task]) -> ParallelRun:
        meter = WorkMeter()
        results = []
        for task in tasks:
            ctx = WorkerContext(0, meter)
            results.append(task(ctx))
        return ParallelRun(
            results=results,
            worker_meters=[meter],
            degree=1,
            cost_model=self.cost_model,
        )


class SimulatedExecutor(ParallelExecutor):
    """Deterministic multi-worker executor with simulated time.

    Tasks run serially in submission order; each is assigned to the worker
    with the least accumulated simulated time *before* the task starts.
    This greedy longest-processing-time-online policy mirrors demand-driven
    slave scheduling and makes makespan a pure function of the task costs.
    """

    def __init__(self, degree: int, cost_model: CostModel = DEFAULT_COST_MODEL):
        if degree < 1:
            raise EngineError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.cost_model = cost_model

    def run(self, tasks: Sequence[Task]) -> ParallelRun:
        meters = [WorkMeter() for _ in range(self.degree)]
        results: List[Any] = []
        for task in tasks:
            times = [m.seconds(self.cost_model) for m in meters]
            worker_id = times.index(min(times))
            ctx = WorkerContext(worker_id, meters[worker_id])
            results.append(task(ctx))
        return ParallelRun(
            results=results,
            worker_meters=meters,
            degree=self.degree,
            cost_model=self.cost_model,
        )


class ThreadExecutor(ParallelExecutor):
    """Real-thread executor.

    Tasks are pulled from a shared queue by ``degree`` worker threads.  Work
    units are still metered (each worker owns a meter), so simulated numbers
    remain available; ``wall_seconds`` additionally records real elapsed
    time.  Exceptions raised by tasks are re-raised in the caller.
    """

    def __init__(self, degree: int, cost_model: CostModel = DEFAULT_COST_MODEL):
        if degree < 1:
            raise EngineError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.cost_model = cost_model

    def run(self, tasks: Sequence[Task]) -> ParallelRun:
        import time

        meters = [WorkMeter() for _ in range(self.degree)]
        results: List[Any] = [None] * len(tasks)
        errors: List[BaseException] = []
        next_index = [0]
        lock = threading.Lock()

        def worker(worker_id: int) -> None:
            while True:
                with lock:
                    if errors or next_index[0] >= len(tasks):
                        return
                    index = next_index[0]
                    next_index[0] += 1
                ctx = WorkerContext(worker_id, meters[worker_id])
                try:
                    results[index] = tasks[index](ctx)
                except BaseException as exc:  # noqa: BLE001 - reraised below
                    with lock:
                        errors.append(exc)
                    return

        started = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(min(self.degree, max(1, len(tasks))))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        return ParallelRun(
            results=results,
            worker_meters=meters,
            degree=self.degree,
            cost_model=self.cost_model,
            wall_seconds=elapsed,
        )


def make_executor(
    degree: int,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    use_threads: bool = False,
) -> ParallelExecutor:
    """Executor factory used throughout the library.

    Degree 1 always maps to :class:`SerialExecutor`; higher degrees map to
    the simulated executor unless real threads are requested.
    """
    if degree == 1:
        return SerialExecutor(cost_model)
    if use_threads:
        return ThreadExecutor(degree, cost_model)
    return SimulatedExecutor(degree, cost_model)
