"""Parallel execution of table-function work.

Oracle's parallel table functions run N *slave* instances, each consuming a
partition of the input cursor.  This module provides that execution model
twice, behind one interface:

* :class:`ThreadExecutor` — real Python threads.  Used by tests to prove
  the decomposition is correct under genuine concurrency.  (CPython's GIL
  means it cannot demonstrate speedup for CPU-bound work, and the
  reproduction host may have a single core anyway.)
* :class:`SimulatedExecutor` — the benchmark engine.  Tasks execute
  serially but charge their work units to per-worker
  :class:`~repro.engine.cost.WorkMeter` instances; the reported *makespan*
  is the maximum worker time plus startup overhead, exactly the quantity a
  multi-CPU host would show.  Scheduling is greedy: each task goes to the
  currently least-loaded worker, which models Oracle's demand-driven
  distribution of cursor partitions to slaves.
* :class:`ProcessExecutor` — real OS processes (fork-based), the closest
  analogue of Oracle's slave *processes*: partitioned table-function work
  actually uses multiple cores.  Task results and worker meters travel
  back over pipes, so results (not the tasks themselves) must pickle.

All executors return a :class:`ParallelRun` whose ``results`` are in task
submission order regardless of scheduling.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    List,
    Optional,
    Sequence,
    TypeVar,
)

from repro.errors import EngineError
from repro.engine.cost import CostModel, DEFAULT_COST_MODEL, WorkMeter
from repro.obs import trace

__all__ = [
    "WorkerContext",
    "ParallelRun",
    "ParallelExecutor",
    "SerialExecutor",
    "SimulatedExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
]

T = TypeVar("T")

Task = Callable[["WorkerContext"], T]


class WorkerContext:
    """Execution context handed to each task: identifies the worker and
    carries the meter that task's work units are charged to."""

    __slots__ = ("worker_id", "meter", "deadline", "parent_span", "trace_ctx")

    def __init__(self, worker_id: int, meter: Optional[WorkMeter] = None):
        self.worker_id = worker_id
        self.meter = meter if meter is not None else WorkMeter()
        #: absolute time.monotonic() bound the originating session runs
        #: under (None = unbounded); the cluster router's retry layer
        #: reads it so backoff/retries never outlive the session
        self.deadline: Optional[float] = None
        #: the long-lived ``server.session`` span this work belongs to
        #: (None outside a traced server session); spans opened on pool
        #: threads pass it as ``parent=`` since their span stack is empty
        self.parent_span: Optional[Any] = None
        #: wire trace context the originating client sent with ``start``
        self.trace_ctx: Optional[Dict[str, Any]] = None

    def charge(self, kind: str, n: float = 1.0) -> None:
        """Record ``n`` work units of ``kind`` against this worker."""
        self.meter.add(kind, n)


@dataclass
class ParallelRun(Generic[T]):
    """Outcome of running a batch of tasks on an executor."""

    results: List[T]
    worker_meters: List[WorkMeter]
    degree: int
    cost_model: CostModel = DEFAULT_COST_MODEL
    wall_seconds: float = 0.0  # real elapsed time (ThreadExecutor only)

    @property
    def worker_seconds(self) -> List[float]:
        return [m.seconds(self.cost_model) for m in self.worker_meters]

    @property
    def makespan_seconds(self) -> float:
        """Simulated elapsed time: slowest worker + parallel startup cost."""
        startup = self.cost_model.worker_startup * (self.degree if self.degree > 1 else 0)
        busiest = max(self.worker_seconds, default=0.0)
        return busiest + startup

    @property
    def total_work_seconds(self) -> float:
        """Sum of all workers' simulated time (the 1-processor equivalent)."""
        return sum(self.worker_seconds)

    @property
    def imbalance(self) -> float:
        """max/mean worker time; 1.0 is a perfectly balanced run."""
        times = [t for t in self.worker_seconds]
        if not times or sum(times) == 0.0:
            return 1.0
        mean = sum(times) / len(times)
        return max(times) / mean if mean else 1.0

    def combined_meter(self) -> WorkMeter:
        meter = WorkMeter()
        for m in self.worker_meters:
            meter.merge(m)
        return meter


class ParallelExecutor:
    """Interface: run tasks with a given degree of parallelism."""

    degree: int
    cost_model: CostModel

    def run(self, tasks: Sequence[Task]) -> ParallelRun:
        raise NotImplementedError


def _run_task(task, ctx, index, executor, parent=None):
    """Run one task, wrapped in an ``executor.task`` span when tracing.

    ``parent`` pins the span under the submitting span for executors whose
    tasks run on other threads (the thread-local parent default would
    otherwise start a fresh trace per worker thread).
    """
    if not trace.ENABLED:
        return task(ctx)
    with trace.span(
        "executor.task",
        ctx,
        parent=parent,
        worker=ctx.worker_id,
        task=index,
        executor=executor,
    ):
        return task(ctx)


class SerialExecutor(ParallelExecutor):
    """Degree-1 executor: every task runs on one worker, no startup cost."""

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL):
        self.degree = 1
        self.cost_model = cost_model

    def run(self, tasks: Sequence[Task]) -> ParallelRun:
        meter = WorkMeter()
        results = []
        for index, task in enumerate(tasks):
            ctx = WorkerContext(0, meter)
            results.append(_run_task(task, ctx, index, "serial"))
        return ParallelRun(
            results=results,
            worker_meters=[meter],
            degree=1,
            cost_model=self.cost_model,
        )


class SimulatedExecutor(ParallelExecutor):
    """Deterministic multi-worker executor with simulated time.

    Tasks run serially in submission order; each is assigned to the worker
    with the least accumulated simulated time *before* the task starts.
    This greedy longest-processing-time-online policy mirrors demand-driven
    slave scheduling and makes makespan a pure function of the task costs.
    """

    def __init__(self, degree: int, cost_model: CostModel = DEFAULT_COST_MODEL):
        if degree < 1:
            raise EngineError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.cost_model = cost_model

    def run(self, tasks: Sequence[Task]) -> ParallelRun:
        meters = [WorkMeter() for _ in range(self.degree)]
        results: List[Any] = []
        for index, task in enumerate(tasks):
            times = [m.seconds(self.cost_model) for m in meters]
            worker_id = times.index(min(times))
            ctx = WorkerContext(worker_id, meters[worker_id])
            results.append(_run_task(task, ctx, index, "simulated"))
        return ParallelRun(
            results=results,
            worker_meters=meters,
            degree=self.degree,
            cost_model=self.cost_model,
        )


def _raise_collected(errors: Sequence[BaseException]) -> None:
    """Re-raise the first collected worker error, carrying the others.

    Earlier versions silently dropped ``errors[1:]``.  The first error is
    raised; every other worker failure is attached to it as a ``__notes__``
    entry (rendered by tracebacks on Python >= 3.11, a plain attribute
    before that) and the full list is exposed as ``sibling_errors`` so
    callers can inspect all failures programmatically.
    """
    if not errors:
        return
    primary = errors[0]
    rest = list(errors[1:])
    if rest:
        notes = list(getattr(primary, "__notes__", []) or [])
        for extra in rest:
            notes.append(
                "also raised in a parallel worker: "
                f"{type(extra).__name__}: {extra}"
            )
        primary.__notes__ = notes
    primary.sibling_errors = list(errors)
    raise primary


class ThreadExecutor(ParallelExecutor):
    """Real-thread executor.

    Tasks are pulled from a shared queue by ``degree`` worker threads.  Work
    units are still metered (each worker owns a meter), so simulated numbers
    remain available; ``wall_seconds`` additionally records real elapsed
    time.  Exceptions raised by tasks are re-raised in the caller; when
    several workers fail, every collected exception is reported (see
    :func:`_raise_collected`).
    """

    def __init__(self, degree: int, cost_model: CostModel = DEFAULT_COST_MODEL):
        if degree < 1:
            raise EngineError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.cost_model = cost_model

    def run(self, tasks: Sequence[Task]) -> ParallelRun:
        import time

        meters = [WorkMeter() for _ in range(self.degree)]
        results: List[Any] = [None] * len(tasks)
        errors: List[BaseException] = []
        next_index = [0]
        lock = threading.Lock()
        parent_span = trace.current_span()

        def worker(worker_id: int) -> None:
            while True:
                with lock:
                    if errors or next_index[0] >= len(tasks):
                        return
                    index = next_index[0]
                    next_index[0] += 1
                ctx = WorkerContext(worker_id, meters[worker_id])
                try:
                    results[index] = _run_task(
                        tasks[index], ctx, index, "thread", parent=parent_span
                    )
                except BaseException as exc:  # noqa: BLE001 - reraised below
                    with lock:
                        errors.append(exc)
                    return

        started = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(min(self.degree, max(1, len(tasks))))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        _raise_collected(errors)
        return ParallelRun(
            results=results,
            worker_meters=meters,
            degree=self.degree,
            cost_model=self.cost_model,
            wall_seconds=elapsed,
        )


def _portable_error(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else a summary EngineError."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return EngineError(f"{type(exc).__name__}: {exc}")


def _process_worker(worker_id, tasks, task_queue, conn) -> None:
    """Slave-process loop: pull task indices until the ``None`` sentinel.

    Runs in the child.  A ``claim`` message precedes each task so the
    parent knows what was in flight if this process dies; results and
    (last) the accumulated meter counts follow.  Anything that fails to
    pickle is degraded to an :class:`~repro.errors.EngineError` so the
    parent always hears back.
    """
    meter = WorkMeter()
    traced = trace.ENABLED
    if traced:
        # The fork inherited the parent's tracer (including its already-
        # finished spans); start a fresh one so this child only ships spans
        # it produced.  They are re-parented in the parent via adopt().
        trace.enable(sample_every=1)
    while True:
        index = task_queue.get()
        if index is None:
            break
        conn.send(("claim", index, worker_id))
        ctx = WorkerContext(worker_id, meter)
        try:
            payload = ("ok", index, _run_task(tasks[index], ctx, index, "process"))
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            payload = ("err", index, _portable_error(exc))
        try:
            conn.send(payload)
        except Exception as exc:
            conn.send(
                (
                    "err",
                    index,
                    EngineError(
                        f"worker {worker_id}: result of task {index} failed "
                        f"to pickle: {exc!r}"
                    ),
                )
            )
    if traced:
        tracer = trace.get_tracer()
        if tracer is not None:
            # Ship this slave's spans over the meter pipe, ahead of the
            # final meter message, so the parent can stitch them under the
            # span that launched the run.
            conn.send(("spans", worker_id, tracer.drain_serialized()))
    conn.send(("meter", worker_id, meter.counts))
    conn.close()


class ProcessExecutor(ParallelExecutor):
    """Real-process executor: Oracle's slave *processes*, literally.

    Forked children pull task indices from a shared queue (demand-driven,
    like the thread executor) and stream results back over per-worker
    pipes.  Because children are forks, the *tasks* never need to pickle —
    only their results and meter counts do.  On platforms without the
    ``fork`` start method the run transparently degrades to
    :class:`ThreadExecutor` (same contract, no extra cores).

    A worker that *dies* (killed, segfaulted, OOMed) mid-task does not
    poison the batch: its in-flight task is requeued and retried on a
    surviving worker, up to ``max_task_retries`` attempts per task
    (Oracle restarts failed slave work the same way).  Retries are
    charged as ``task_retry`` units on the dead worker's meter.  Tasks
    must therefore be idempotent or side-effect-free, which every
    table-function partition in this library is.
    """

    def __init__(
        self,
        degree: int,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        start_method: str = "fork",
        max_task_retries: int = 1,
    ):
        if degree < 1:
            raise EngineError(f"degree must be >= 1, got {degree}")
        if max_task_retries < 0:
            raise EngineError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        self.degree = degree
        self.cost_model = cost_model
        self.start_method = start_method
        self.max_task_retries = max_task_retries

    def _context(self):
        import multiprocessing

        if self.start_method in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context(self.start_method)
        return None

    def run(self, tasks: Sequence[Task]) -> ParallelRun:
        import time
        from multiprocessing.connection import wait as conn_wait

        if not tasks:
            return ParallelRun(
                results=[],
                worker_meters=[WorkMeter() for _ in range(self.degree)],
                degree=self.degree,
                cost_model=self.cost_model,
            )
        mp = self._context()
        if mp is None:  # pragma: no cover - non-POSIX fallback
            return ThreadExecutor(self.degree, self.cost_model).run(tasks)

        nworkers = min(self.degree, len(tasks))
        task_queue = mp.Queue()
        for index in range(len(tasks)):
            task_queue.put(index)
        # Exit sentinels are sent only once every task has a result: a task
        # requeued after a worker death must reach a survivor before the
        # survivors are told to shut down.

        receivers = {}
        senders = []
        procs = []
        for worker_id in range(nworkers):
            recv_conn, send_conn = mp.Pipe(duplex=False)
            receivers[worker_id] = recv_conn
            senders.append(send_conn)
            procs.append(
                mp.Process(
                    target=_process_worker,
                    args=(worker_id, list(tasks), task_queue, send_conn),
                    daemon=True,
                )
            )

        started = time.perf_counter()
        for proc in procs:
            proc.start()
        for send_conn in senders:
            send_conn.close()  # parent's copies; children hold the real ends

        meters = [WorkMeter() for _ in range(self.degree)]
        results: List[Any] = [None] * len(tasks)
        parent_span = trace.current_span()
        received: set = set()
        errors_by_index: dict = {}
        open_workers = set(receivers)
        in_flight: dict = {}  # worker_id -> claimed task index
        retries: dict = {}  # task index -> retry count so far
        sentinels_sent = False
        suspect_losses = 0  # dead workers that may hold an unclaimed task

        def maybe_send_sentinels() -> None:
            nonlocal sentinels_sent
            if not sentinels_sent and len(received) == len(tasks):
                for _ in range(nworkers):
                    task_queue.put(None)
                sentinels_sent = True

        def requeue_or_fail(index: int, worker_id: Optional[int]) -> None:
            """Retry ``index`` on a survivor, or mark it failed."""
            attempts = retries.get(index, 0)
            if attempts < self.max_task_retries and open_workers:
                retries[index] = attempts + 1
                meters[worker_id if worker_id is not None else 0].add(
                    "task_retry", 1
                )
                task_queue.put(index)
                return
            errors_by_index.setdefault(
                index,
                EngineError(
                    f"parallel worker died before completing task {index}"
                    + (f" (after {attempts + 1} attempts)" if attempts else "")
                ),
            )
            received.add(index)

        def reap_dead_worker(worker_id: int) -> None:
            """A worker's pipe hit EOF without a final meter: it died.

            Its claimed task (if unresolved) is requeued for a survivor,
            bounded by ``max_task_retries``; with no survivors or no
            retries left, the task is marked failed.  A dead worker with
            *no* claim on record may have dequeued a task it never got to
            announce — that task is gone from the queue with no trace, so
            remember the possibility for the stall detector below.
            """
            nonlocal suspect_losses
            open_workers.discard(worker_id)
            index = in_flight.pop(worker_id, None)
            if index is None:
                suspect_losses += 1
                return
            if index in received:
                return
            requeue_or_fail(index, worker_id)

        try:
            while open_workers:
                maybe_send_sentinels()
                ready = conn_wait(
                    [receivers[w] for w in open_workers], timeout=1.0
                )
                if not ready:
                    dead = [
                        w for w in open_workers if not procs[w].is_alive()
                    ]
                    for w in dead:
                        if receivers[w].poll(0):
                            continue  # unread messages remain; drain first
                        reap_dead_worker(w)
                    if suspect_losses and open_workers:
                        # A dead worker may have dequeued a task it never
                        # claimed: nothing would ever resolve it and the
                        # survivors would block on the queue forever.  After
                        # a silent second, requeue every unresolved task no
                        # live worker has claimed.  Tasks are idempotent and
                        # first-completion-wins, so a requeue racing a copy
                        # still sitting in the queue is benign.
                        claimed = set(in_flight.values())
                        for index in range(len(tasks)):
                            if index not in received and index not in claimed:
                                requeue_or_fail(index, None)
                        suspect_losses = 0
                    continue
                conn_to_worker = {receivers[w]: w for w in open_workers}
                for conn in ready:
                    worker_id = conn_to_worker[conn]
                    try:
                        kind, key, value = conn.recv()
                    except EOFError:
                        reap_dead_worker(worker_id)
                        continue
                    if kind == "claim":
                        in_flight[worker_id] = key
                    elif kind == "ok":
                        if key not in received:  # first completion wins
                            results[key] = value
                        received.add(key)
                        in_flight.pop(worker_id, None)
                    elif kind == "err":
                        errors_by_index.setdefault(key, value)
                        received.add(key)
                        in_flight.pop(worker_id, None)
                    elif kind == "spans":
                        if trace.ENABLED:
                            tracer = trace.get_tracer()
                            if tracer is not None:
                                tracer.adopt(value, parent=parent_span)
                    else:  # "meter": the worker's final message
                        for kind, n in value.items():
                            meters[key].add(kind, n)
                        open_workers.discard(worker_id)
            # Every worker died with tasks still unresolved (e.g. the queue
            # holds requeued work nobody survives to pull).
            for index in sorted(set(range(len(tasks))) - received):
                errors_by_index.setdefault(
                    index,
                    EngineError(
                        f"parallel worker died before completing task {index}"
                    ),
                )
                received.add(index)
        finally:
            for proc in procs:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
            task_queue.close()
            task_queue.cancel_join_thread()
        elapsed = time.perf_counter() - started

        _raise_collected(
            [errors_by_index[i] for i in sorted(errors_by_index)]
        )
        return ParallelRun(
            results=results,
            worker_meters=meters,
            degree=self.degree,
            cost_model=self.cost_model,
            wall_seconds=elapsed,
        )


def make_executor(
    degree: int,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    use_threads: bool = False,
    use_processes: bool = False,
) -> ParallelExecutor:
    """Executor factory used throughout the library.

    Degree 1 always maps to :class:`SerialExecutor`; higher degrees map to
    the simulated executor unless real threads or real processes are
    requested (processes win when both flags are set).
    """
    if degree == 1:
        return SerialExecutor(cost_model)
    if use_processes:
        return ProcessExecutor(degree, cost_model)
    if use_threads:
        return ThreadExecutor(degree, cost_model)
    return SimulatedExecutor(degree, cost_model)
