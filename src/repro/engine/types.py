"""Row and schema value types shared across the engine.

Rows are plain tuples (cheap, hashable); :class:`RowSchema` gives them
named-column access.  Type tags are the catalog's string tags; validation
maps each tag to the Python types it accepts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import EngineError
from repro.geometry.geometry import Geometry
from repro.storage.catalog import ColumnMeta
from repro.storage.heap import RowId

__all__ = ["Row", "RowSchema", "validate_value", "TYPE_TAGS"]

Row = Tuple[Any, ...]

# type tag -> acceptable Python types (None is accepted everywhere: SQL NULL)
TYPE_TAGS: Dict[str, Tuple[type, ...]] = {
    "NUMBER": (int, float),
    "VARCHAR": (str,),
    "SDO_GEOMETRY": (Geometry,),
    "ROWID": (RowId,),
    "RAW": (bytes,),
}


def validate_value(value: Any, type_tag: str, column: str = "?") -> None:
    """Raise :class:`EngineError` when a value does not match its column type."""
    if value is None:
        return
    accepted = TYPE_TAGS.get(type_tag.upper())
    if accepted is None:
        raise EngineError(f"unknown type tag {type_tag!r} for column {column!r}")
    if isinstance(value, bool) or not isinstance(value, accepted):
        raise EngineError(
            f"column {column!r} ({type_tag}) rejects value of type "
            f"{type(value).__name__}"
        )


class RowSchema:
    """Column name/type metadata for tuples flowing through the engine."""

    def __init__(self, columns: Sequence[ColumnMeta]):
        self.columns = list(columns)
        self._by_name = {c.name.upper(): i for i, c in enumerate(self.columns)}
        if len(self._by_name) != len(self.columns):
            raise EngineError("duplicate column names in schema")

    def __len__(self) -> int:
        return len(self.columns)

    def index_of(self, name: str) -> int:
        try:
            return self._by_name[name.upper()]
        except KeyError:
            raise EngineError(f"no column named {name!r}") from None

    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    def value(self, row: Row, name: str) -> Any:
        return row[self.index_of(name)]

    def validate_row(self, row: Row) -> None:
        if len(row) != len(self.columns):
            raise EngineError(
                f"row width {len(row)} != schema width {len(self.columns)}"
            )
        for value, col in zip(row, self.columns):
            validate_value(value, col.type_tag, col.name)
