"""The :class:`Database` façade — the library's main entry point.

Owns the pager, buffer pool, catalog, tables and domain indexes, and
exposes the paper's operations at one call depth:

* ``create_table`` / ``table`` / ``drop_table``
* ``create_spatial_index`` (serial or parallel, R-tree or quadtree)
* ``spatial_join`` (serial or parallel index-based join)
* ``nested_loop_join`` (the baseline)
* ``select_rowids`` (single-table operator queries through the index)
* ``sql`` (the SQL front-end; see :mod:`repro.engine.sql`)
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, EngineError, JoinError
from repro.engine.cost import CostModel, DEFAULT_COST_MODEL
from repro.engine.indextype import DomainIndex, IndexTypeRegistry
from repro.engine.parallel import (
    ParallelExecutor,
    SerialExecutor,
    WorkerContext,
    make_executor,
)
from repro.engine.table import Table
from repro.geometry.geometry import Geometry
from repro.geometry.mbr import EMPTY_MBR, MBR
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog, ColumnMeta, IndexMeta, TableMeta
from repro.storage.heap import HeapFile, RowId
from repro.storage.pager import MemoryPager, Pager

__all__ = ["Database"]


class Database:
    """An in-process spatial database instance."""

    def __init__(
        self,
        pager: Optional[Pager] = None,
        buffer_capacity: int = 1024,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ):
        self.pager = pager if pager is not None else MemoryPager()
        self.pool = BufferPool(self.pager, capacity=buffer_capacity)
        self.catalog = Catalog()
        self.cost_model = cost_model
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, DomainIndex] = {}
        self._stats: Dict[str, Any] = {}
        self.indextypes = IndexTypeRegistry()
        self._register_builtin_indextypes()

    def _register_builtin_indextypes(self) -> None:
        from repro.index.quadtree.quadtree import QuadtreeIndex
        from repro.index.rtree.spatial_index import RTreeIndex

        self.indextypes.register("RTREE", RTreeIndex)
        self.indextypes.register("QUADTREE", QuadtreeIndex)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self, name: str, columns: Sequence[Tuple[str, str]]
    ) -> Table:
        """Create a heap table. ``columns`` is [(name, type_tag), ...]."""
        meta = TableMeta(
            name=name,
            columns=[ColumnMeta(cname, ctype) for cname, ctype in columns],
            heap_name=f"{name}_heap",
        )
        self.catalog.register_table(meta)
        heap = HeapFile(self.pool, name=meta.heap_name)
        table = Table(meta, heap)
        self._tables[name.upper()] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self._tables.pop(name.upper(), None)
        stale = [
            iname
            for iname, idx in self._indexes.items()
            if idx.table.name.upper() == name.upper()
        ]
        for iname in stale:
            del self._indexes[iname]

    # ------------------------------------------------------------------
    # Spatial index DDL
    # ------------------------------------------------------------------
    def create_spatial_index(
        self,
        name: str,
        table_name: str,
        column: str,
        kind: str = "RTREE",
        parallel: int = 1,
        use_threads: bool = False,
        use_processes: bool = False,
        maintain: bool = True,
        **parameters: Any,
    ) -> Tuple[DomainIndex, "BuildReportLike"]:
        """Create a spatial index, optionally in parallel.

        ``parallel`` is the paper's PARALLEL clause degree; degree > 1 runs
        the table-function build paths of §5 (on simulated workers by
        default, real threads with ``use_threads``, real slave processes
        with ``use_processes``).  ``maintain=True`` hooks the index to
        base-table DML.  Returns ``(index, build_report)``.
        """
        from repro.core.index_build import (
            BuildReport,
            create_quadtree_parallel,
            create_rtree_parallel,
        )

        table = self.table(table_name)
        kind = kind.upper()
        if kind == "QUADTREE" and "domain" not in parameters:
            parameters["domain"] = self._infer_domain(table, column)

        index = self.indextypes.create(kind, name, table, column, **parameters)
        executor = make_executor(
            parallel, self.cost_model, use_threads, use_processes
        )

        # Every build goes through the table-function path so degree 1 and
        # degree N run the same code under one cost model.
        if kind == "QUADTREE":
            report = create_quadtree_parallel(index, executor)
        elif kind == "RTREE":
            report = create_rtree_parallel(index, executor)
        else:
            ctx = WorkerContext(0)
            index.create(ctx)
            report = BuildReport(kind=kind, degree=1, run=executor.run([]))

        if maintain:
            index.attach_maintenance()

        meta = IndexMeta(
            name=name,
            table_name=table_name,
            column_name=column,
            index_kind=kind,
            index_table_name=f"{name}_idxtab",
            parameters={k: v for k, v in parameters.items() if k != "domain"},
            parallel_degree=parallel,
        )
        self.catalog.register_index(meta)
        self._indexes[name.upper()] = index
        return index, report

    def spatial_index(self, name: str) -> DomainIndex:
        try:
            return self._indexes[name.upper()]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None

    def spatial_index_on(self, table_name: str, column: str) -> DomainIndex:
        meta = self.catalog.spatial_index_on(table_name, column)
        if meta is None:
            raise CatalogError(
                f"no spatial index on {table_name}.{column}; create one first"
            )
        return self._indexes[meta.name.upper()]

    def drop_index(self, name: str) -> None:
        self.catalog.drop_index(name)
        self._indexes.pop(name.upper(), None)

    def _infer_domain(self, table: Table, column: str) -> MBR:
        domain = EMPTY_MBR
        for _rowid, geom in table.column_values(column):
            if geom is not None:
                domain = domain.union(geom.mbr)
        if domain.is_empty:
            raise EngineError(
                f"cannot infer quadtree domain: {table.name}.{column} has no data"
            )
        return domain.expand(max(domain.width, domain.height) * 0.01 + 1e-9)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select_rowids(
        self,
        table_name: str,
        column: str,
        operator: str,
        args: Sequence[Any],
        ctx: Optional[WorkerContext] = None,
    ) -> Iterator[RowId]:
        """Single-table operator query through the spatial index."""
        index = self.spatial_index_on(table_name, column)
        return index.fetch(operator, args, ctx)

    def spatial_join(
        self,
        table_a: str,
        column_a: str,
        table_b: str,
        column_b: str,
        mask: str = "ANYINTERACT",
        distance: float = 0.0,
        parallel: int = 1,
        use_threads: bool = False,
        use_processes: bool = False,
        **options: Any,
    ) -> "JoinResultLike":
        """Index-based spatial join through the spatial_join table function.

        Both columns must carry R-tree indexes (the paper's join traverses
        the two associated R-trees).  ``parallel > 1`` uses the subtree
        decomposition of §4.1; ``use_processes`` runs the partitions on
        real slave processes (multiple cores) instead of simulated workers.
        """
        from repro.core.parallel_join import parallel_spatial_join, spatial_join
        from repro.core.secondary_filter import JoinPredicate

        tree_a = self._rtree_of(table_a, column_a)
        tree_b = self._rtree_of(table_b, column_b)
        predicate = JoinPredicate(mask=mask, distance=distance)
        if parallel > 1:
            executor = make_executor(
                parallel, self.cost_model, use_threads, use_processes
            )
            return parallel_spatial_join(
                self.table(table_a),
                column_a,
                tree_a,
                self.table(table_b),
                column_b,
                tree_b,
                executor,
                predicate=predicate,
                **options,
            )
        return spatial_join(
            self.table(table_a),
            column_a,
            tree_a,
            self.table(table_b),
            column_b,
            tree_b,
            predicate=predicate,
            executor=SerialExecutor(self.cost_model),
            **options,
        )

    def nested_loop_join(
        self,
        outer_table: str,
        outer_column: str,
        inner_table: str,
        inner_column: str,
        mask: str = "ANYINTERACT",
        distance: float = 0.0,
    ) -> "JoinResultLike":
        """The pre-9i baseline: per-row index probes of the inner table."""
        from repro.core.nested_loop import nested_loop_join
        from repro.core.secondary_filter import JoinPredicate

        inner_index = self.spatial_index_on(inner_table, inner_column)
        return nested_loop_join(
            self.table(outer_table),
            outer_column,
            inner_index,
            JoinPredicate(mask=mask, distance=distance),
            executor=SerialExecutor(self.cost_model),
        )

    def _rtree_of(self, table_name: str, column: str):
        from repro.index.rtree.spatial_index import RTreeIndex

        index = self.spatial_index_on(table_name, column)
        if not isinstance(index, RTreeIndex):
            raise JoinError(
                f"spatial_join requires R-tree indexes; {index.name} is "
                f"{index.kind}"
            )
        return index.tree

    def rtree_of(self, table_name: str, column: str):
        """The R-tree backing ``table.column``'s spatial index.

        Public accessor used by layers that drive the join table function
        directly (e.g. the query service's streaming sessions).
        """
        return self._rtree_of(table_name, column)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def analyze(self, table_name: str):
        """Compute optimizer statistics for a table (full scan)."""
        from repro.engine.stats import analyze_table

        stats = analyze_table(self.table(table_name))
        self._stats[table_name.upper()] = stats
        return stats

    def table_stats(self, table_name: str):
        """Previously computed stats, or None (EXPLAIN degrades gracefully)."""
        return self._stats.get(table_name.upper())

    # ------------------------------------------------------------------
    # SQL front-end
    # ------------------------------------------------------------------
    def sql(self, statement: str) -> "SqlResultLike":
        """Execute a SQL statement (see :mod:`repro.engine.sql`)."""
        from repro.engine.sql.executor import execute_sql

        return execute_sql(self, statement)


# Documentation-only aliases for forward references in signatures.
BuildReportLike = object
JoinResultLike = object
SqlResultLike = object
