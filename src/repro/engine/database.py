"""The :class:`Database` façade — the library's main entry point.

Owns the pager, buffer pool, catalog, tables and domain indexes, and
exposes the paper's operations at one call depth:

* ``create_table`` / ``table`` / ``drop_table``
* ``create_spatial_index`` (serial or parallel, R-tree or quadtree)
* ``spatial_join`` (serial or parallel index-based join)
* ``nested_loop_join`` (the baseline)
* ``select_rowids`` (single-table operator queries through the index)
* ``sql`` (the SQL front-end; see :mod:`repro.engine.sql`)
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, EngineError, JoinError, StorageError
from repro.engine.cost import CostModel, DEFAULT_COST_MODEL
from repro.engine.indextype import DomainIndex, IndexTypeRegistry
from repro.engine.parallel import (
    ParallelExecutor,
    SerialExecutor,
    WorkerContext,
    make_executor,
)
from repro.engine.table import Table
from repro.geometry.geometry import Geometry
from repro.geometry.mbr import EMPTY_MBR, MBR
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog, ColumnMeta, IndexMeta, TableMeta
from repro.storage.checksum import crc32c, mask_crc
from repro.storage.codec import decode_row, encode_row
from repro.storage.heap import HeapFile, RowId
from repro.storage.pager import PAGE_SIZE, FilePager, MemoryPager, Pager
from repro.storage.wal import WalPager

__all__ = ["Database"]

# Meta-snapshot page chain (rooted at page 0 of a file-backed database):
#   magic u32 | next page u32 (NO_PAGE = end) | chunk_len u32 | crc u32 | chunk
_META_MAGIC = 0x52504D31  # "RPM1"
_META_HDR = struct.Struct("<IIII")
_META_NO_PAGE = 0xFFFFFFFF
# SNAP2 appends an optional columnar-segment snapshot to each table entry;
# SNAP1 files (no 5th element) load unchanged.
_SNAP_VERSION = "SNAP2"
_SNAP_ACCEPTED = ("SNAP1", "SNAP2")


class Database:
    """An in-process spatial database instance."""

    def __init__(
        self,
        pager: Optional[Pager] = None,
        buffer_capacity: int = 1024,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ):
        self.pager = pager if pager is not None else MemoryPager()
        self.pool = BufferPool(self.pager, capacity=buffer_capacity)
        self.catalog = Catalog()
        self.cost_model = cost_model
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, DomainIndex] = {}
        self._stats: Dict[str, Any] = {}
        self.indextypes = IndexTypeRegistry()
        self.durability = "memory"  # "memory" | "none" | "wal"
        self.path: Optional[str] = None
        self._meta_pages: List[int] = []
        self._register_builtin_indextypes()

    def _register_builtin_indextypes(self) -> None:
        from repro.index.quadtree.quadtree import QuadtreeIndex
        from repro.index.rtree.spatial_index import RTreeIndex

        self.indextypes.register("RTREE", RTreeIndex)
        self.indextypes.register("QUADTREE", QuadtreeIndex)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self, name: str, columns: Sequence[Tuple[str, str]]
    ) -> Table:
        """Create a heap table. ``columns`` is [(name, type_tag), ...]."""
        meta = TableMeta(
            name=name,
            columns=[ColumnMeta(cname, ctype) for cname, ctype in columns],
            heap_name=f"{name}_heap",
        )
        self.catalog.register_table(meta)
        heap = HeapFile(self.pool, name=meta.heap_name)
        table = Table(meta, heap)
        self._tables[name.upper()] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.upper()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self._tables.pop(name.upper(), None)
        stale = [
            iname
            for iname, idx in self._indexes.items()
            if idx.table.name.upper() == name.upper()
        ]
        for iname in stale:
            del self._indexes[iname]

    # ------------------------------------------------------------------
    # Spatial index DDL
    # ------------------------------------------------------------------
    def create_spatial_index(
        self,
        name: str,
        table_name: str,
        column: str,
        kind: str = "RTREE",
        parallel: int = 1,
        use_threads: bool = False,
        use_processes: bool = False,
        maintain: bool = True,
        **parameters: Any,
    ) -> Tuple[DomainIndex, "BuildReportLike"]:
        """Create a spatial index, optionally in parallel.

        ``parallel`` is the paper's PARALLEL clause degree; degree > 1 runs
        the table-function build paths of §5 (on simulated workers by
        default, real threads with ``use_threads``, real slave processes
        with ``use_processes``).  ``maintain=True`` hooks the index to
        base-table DML.  Returns ``(index, build_report)``.
        """
        from repro.core.index_build import (
            BuildReport,
            create_quadtree_parallel,
            create_rtree_parallel,
        )

        table = self.table(table_name)
        kind = kind.upper()
        if kind == "QUADTREE" and "domain" not in parameters:
            parameters["domain"] = self._infer_domain(table, column)

        index = self.indextypes.create(kind, name, table, column, **parameters)
        executor = make_executor(
            parallel, self.cost_model, use_threads, use_processes
        )

        # Every build goes through the table-function path so degree 1 and
        # degree N run the same code under one cost model.
        if kind == "QUADTREE":
            report = create_quadtree_parallel(index, executor)
        elif kind == "RTREE":
            report = create_rtree_parallel(index, executor)
        else:
            ctx = WorkerContext(0)
            index.create(ctx)
            report = BuildReport(kind=kind, degree=1, run=executor.run([]))

        if maintain:
            index.attach_maintenance()

        meta = IndexMeta(
            name=name,
            table_name=table_name,
            column_name=column,
            index_kind=kind,
            index_table_name=f"{name}_idxtab",
            parameters={k: v for k, v in parameters.items() if k != "domain"},
            parallel_degree=parallel,
        )
        self.catalog.register_index(meta)
        self._indexes[name.upper()] = index
        return index, report

    def spatial_index(self, name: str) -> DomainIndex:
        try:
            return self._indexes[name.upper()]
        except KeyError:
            raise CatalogError(f"unknown index {name!r}") from None

    def spatial_index_on(self, table_name: str, column: str) -> DomainIndex:
        meta = self.catalog.spatial_index_on(table_name, column)
        if meta is None:
            raise CatalogError(
                f"no spatial index on {table_name}.{column}; create one first"
            )
        return self._indexes[meta.name.upper()]

    def drop_index(self, name: str) -> None:
        self.catalog.drop_index(name)
        self._indexes.pop(name.upper(), None)

    def _infer_domain(self, table: Table, column: str) -> MBR:
        domain = EMPTY_MBR
        for _rowid, geom in table.column_values(column):
            if geom is not None:
                domain = domain.union(geom.mbr)
        if domain.is_empty:
            raise EngineError(
                f"cannot infer quadtree domain: {table.name}.{column} has no data"
            )
        return domain.expand(max(domain.width, domain.height) * 0.01 + 1e-9)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select_rowids(
        self,
        table_name: str,
        column: str,
        operator: str,
        args: Sequence[Any],
        ctx: Optional[WorkerContext] = None,
    ) -> Iterator[RowId]:
        """Single-table operator query through the spatial index."""
        index = self.spatial_index_on(table_name, column)
        return index.fetch(operator, args, ctx)

    def spatial_join(
        self,
        table_a: str,
        column_a: str,
        table_b: str,
        column_b: str,
        mask: str = "ANYINTERACT",
        distance: float = 0.0,
        parallel: int = 1,
        use_threads: bool = False,
        use_processes: bool = False,
        **options: Any,
    ) -> "JoinResultLike":
        """Index-based spatial join through the spatial_join table function.

        Both columns must carry R-tree indexes (the paper's join traverses
        the two associated R-trees).  ``parallel > 1`` uses the subtree
        decomposition of §4.1; ``use_processes`` runs the partitions on
        real slave processes (multiple cores) instead of simulated workers.
        ``strategy`` (a :class:`~repro.index.rtree.join.JoinStrategy` or
        its name, e.g. ``"GRID"``) selects the primary-filter policy;
        ``JoinStrategy.GRID`` swaps the subtree decomposition for
        space-oriented grid partitioning with two-layer duplicate
        avoidance — same result set, tile-level load balance.
        """
        from repro.core.parallel_join import parallel_spatial_join, spatial_join
        from repro.core.secondary_filter import JoinPredicate
        from repro.index.rtree.join import JoinStrategy

        strategy = options.get("strategy")
        if isinstance(strategy, str):
            try:
                options["strategy"] = JoinStrategy[strategy.upper()]
            except KeyError:
                raise JoinError(
                    f"unknown join strategy {strategy!r}; expected one of "
                    f"{', '.join(s.name for s in JoinStrategy)}"
                ) from None

        tree_a = self._rtree_of(table_a, column_a)
        tree_b = self._rtree_of(table_b, column_b)
        predicate = JoinPredicate(mask=mask, distance=distance)
        if parallel > 1:
            executor = make_executor(
                parallel, self.cost_model, use_threads, use_processes
            )
            return parallel_spatial_join(
                self.table(table_a),
                column_a,
                tree_a,
                self.table(table_b),
                column_b,
                tree_b,
                executor,
                predicate=predicate,
                **options,
            )
        return spatial_join(
            self.table(table_a),
            column_a,
            tree_a,
            self.table(table_b),
            column_b,
            tree_b,
            predicate=predicate,
            executor=SerialExecutor(self.cost_model),
            **options,
        )

    def nested_loop_join(
        self,
        outer_table: str,
        outer_column: str,
        inner_table: str,
        inner_column: str,
        mask: str = "ANYINTERACT",
        distance: float = 0.0,
    ) -> "JoinResultLike":
        """The pre-9i baseline: per-row index probes of the inner table."""
        from repro.core.nested_loop import nested_loop_join
        from repro.core.secondary_filter import JoinPredicate

        inner_index = self.spatial_index_on(inner_table, inner_column)
        return nested_loop_join(
            self.table(outer_table),
            outer_column,
            inner_index,
            JoinPredicate(mask=mask, distance=distance),
            executor=SerialExecutor(self.cost_model),
        )

    # ------------------------------------------------------------------
    # Columnar compaction + window scans
    # ------------------------------------------------------------------
    def compact_table(
        self,
        table_name: str,
        column: Optional[str] = None,
        chunk_rows: Optional[int] = None,
    ) -> "Table":
        """Compact a table's current rows into a columnar segment.

        The slotted heap stays the write format and the store of record;
        the segment is a frozen read image whose chunk directory carries
        zone maps for scan pruning.  ``column`` names the geometry column
        to columnarise (defaults to the table's single SDO_GEOMETRY
        column); ``chunk_rows`` overrides the chunk width.  Re-compacting
        folds the post-compaction DML journal back in.  On a file-backed
        database the new state is checkpointed so the chunk pages (and
        the directory, in the meta snapshot) are durable.
        """
        from repro.storage.columnar import DEFAULT_CHUNK_ROWS, build_segment

        table = self.table(table_name)
        if column is None:
            geom_cols = [
                c.name
                for c in table.meta.columns
                if c.type_tag.upper() == "SDO_GEOMETRY"
            ]
            if len(geom_cols) != 1:
                raise EngineError(
                    f"compact_table({table_name!r}) needs an explicit column: "
                    f"found {len(geom_cols)} geometry columns"
                )
            column = geom_cols[0]
        geom_col = table.schema.index_of(column)
        # Build from the heap directly: it holds the current version of
        # every row regardless of any previous segment's journal.
        table.columnar = None
        table.columnar = build_segment(
            table.heap,
            self.pool,
            geom_col,
            chunk_rows=chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS,
        )
        if self.path is not None:
            self.checkpoint()
        return table

    def window_scan(
        self,
        table_name: str,
        column: str,
        window: Geometry,
        distance: float = 0.0,
        exact: bool = True,
        ctx: Optional[WorkerContext] = None,
    ) -> List[RowId]:
        """Window query by table scan (no index): primary + secondary filter.

        On a plain heap table every row is decoded and MBR-tested.  On a
        compacted table the primary filter consults the chunk directory's
        zone maps first — chunks whose zone cannot intersect the window
        are skipped for a ``zone_skip`` charge without reading their
        pages — and survivors are batch-MBR-filtered straight off the
        chunk planes; journaled rows fall back to the heap.  Both paths
        return the same rowids in ascending order.
        """
        from repro.core.secondary_filter import JoinPredicate

        table = self.table(table_name)
        col = table.schema.index_of(column)
        qmbr = window.mbr
        box = (qmbr.min_x, qmbr.min_y, qmbr.max_x, qmbr.max_y)

        def box_hits(mbr: MBR) -> bool:
            # Same closed-interval gap test as kernels.mbr_filter_indices.
            return not (
                box[0] - mbr.max_x > distance
                or mbr.min_x - box[2] > distance
                or box[1] - mbr.max_y > distance
                or mbr.min_y - box[3] > distance
            )

        candidates: List[Tuple[RowId, Geometry]] = []
        seg = table.columnar
        if seg is not None:
            candidates.extend(seg.window_candidates(box, distance, ctx))
            for rowid in sorted(seg.stale | seg.fresh):
                geom = table.fetch_geometry(rowid, col, ctx)
                if geom is None:
                    continue
                if ctx is not None:
                    ctx.charge("mbr_test")
                if box_hits(geom.mbr):
                    candidates.append((rowid, geom))
            candidates.sort(key=lambda c: (c[0].page, c[0].slot))
        else:
            for rowid, row in table.scan():
                geom = row[col]
                if geom is None:
                    continue
                if ctx is not None:
                    ctx.charge("mbr_test")
                if box_hits(geom.mbr):
                    candidates.append((rowid, geom))
        if not exact:
            return [rowid for rowid, _geom in candidates]

        from repro.geometry import kernels

        geoms = [geom for _rowid, geom in candidates]
        if ctx is not None and geoms:
            nv = sum(g.num_vertices for g in geoms)
            ctx.charge("exact_test_base", len(geoms))
            ctx.charge(
                "exact_test_per_vertex",
                nv + len(geoms) * window.num_vertices,
            )
        verdicts = kernels.evaluate_predicate_batch(
            window, geoms, "ANYINTERACT", distance
        )
        if verdicts is None:  # unsupported mask: scalar per candidate
            predicate = JoinPredicate(mask="ANYINTERACT", distance=distance)
            verdicts = [predicate.evaluate(window, g) for g in geoms]
        results = [
            rowid
            for (rowid, _geom), ok in zip(candidates, verdicts)
            if ok
        ]
        if ctx is not None and results:
            ctx.charge("result_row", len(results))
        return results

    def _rtree_of(self, table_name: str, column: str):
        from repro.index.rtree.spatial_index import RTreeIndex

        index = self.spatial_index_on(table_name, column)
        if not isinstance(index, RTreeIndex):
            raise JoinError(
                f"spatial_join requires R-tree indexes; {index.name} is "
                f"{index.kind}"
            )
        return index.tree

    def rtree_of(self, table_name: str, column: str):
        """The R-tree backing ``table.column``'s spatial index.

        Public accessor used by layers that drive the join table function
        directly (e.g. the query service's streaming sessions).
        """
        return self._rtree_of(table_name, column)

    # ------------------------------------------------------------------
    # Durability: open / checkpoint / close
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str,
        durability: str = "none",
        page_size: int = PAGE_SIZE,
        buffer_capacity: int = 1024,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        fault_plan: Any = None,
    ) -> "Database":
        """Open (or create) a file-backed database at ``path``.

        ``durability`` selects the failure model:

        * ``"none"`` — a plain :class:`~repro.storage.pager.FilePager`;
          a clean :meth:`close` persists everything, a crash mid-write
          can corrupt the file (the pre-WAL behaviour).
        * ``"wal"`` — the file is wrapped in a
          :class:`~repro.storage.wal.WalPager`: page writes go through a
          checksummed write-ahead log, :meth:`checkpoint`/:meth:`close`
          are atomic durability points, and reopening after a crash at
          *any* instant recovers the last checkpointed state (replaying
          the log and repairing torn pages).

        ``fault_plan`` (tests only) threads a
        :class:`~repro.storage.fault.FaultPlan` through every file the
        store opens, so crash tests can kill the simulated process at
        arbitrary write offsets and named sites.
        """
        durability = durability.lower()
        if durability not in ("none", "wal"):
            raise EngineError(
                f"unknown durability mode {durability!r} (use 'none' or 'wal')"
            )
        opener = fault_plan.opener() if fault_plan is not None else None
        if durability == "wal":
            inner = FilePager(path, page_size=page_size, strict=False, opener=opener)
            pager: Pager = WalPager(
                inner, path + ".wal", opener=opener, fault_plan=fault_plan
            )
        else:
            pager = FilePager(path, page_size=page_size, opener=opener)
        db = cls(pager=pager, buffer_capacity=buffer_capacity, cost_model=cost_model)
        db.durability = durability
        db.path = path
        if pager.num_pages > 0:
            db._load_snapshot()
        else:
            # Reserve page 0 as the meta-snapshot root before any heap can
            # claim it.
            root = db.pool.allocate()
            assert root == 0
            db._meta_pages = [0]
        return db

    def checkpoint(self) -> None:
        """Write a durable snapshot of the whole database.

        Re-dumps every spatial index into a fresh index table, writes the
        meta snapshot (catalog + heap page lists + index parameters) into
        the page-0 chain, flushes the buffer pool, and — under WAL — logs,
        commits and checkpoints so the main file holds exactly this state.
        A crash anywhere before the WAL commit leaves the *previous*
        checkpoint intact; after it, recovery completes this one.
        """
        if self.path is None:
            raise EngineError("checkpoint() requires a file-backed database")
        blob = encode_row(self._build_snapshot())
        self._write_meta_chain(blob)
        self.pool.flush()
        if isinstance(self.pager, WalPager):
            self.pager.commit()
            self.pager.checkpoint()
        else:
            flush = getattr(self.pager, "flush", None)
            if flush is not None:
                flush()

    def commit(self) -> Optional[int]:
        """Durable commit *without* a checkpoint; returns the commit LSN.

        Same snapshot + meta-chain + flush sequence as :meth:`checkpoint`,
        but under WAL the log is only committed, never truncated — so a
        replication follower tailing the WAL still sees every record up to
        and including this commit.  Returns the committed LSN under WAL
        (what a router waits for its follower to ack), else ``None``.
        """
        if self.path is None:
            raise EngineError("commit() requires a file-backed database")
        blob = encode_row(self._build_snapshot())
        self._write_meta_chain(blob)
        self.pool.flush()
        if isinstance(self.pager, WalPager):
            return self.pager.commit()
        flush = getattr(self.pager, "flush", None)
        if flush is not None:
            flush()
        return None

    def close(self, checkpoint: bool = True) -> None:
        """Close the database, checkpointing first if file-backed."""
        if self.path is not None and checkpoint:
            self.checkpoint()
        self.pager.close()

    def storage_stats(self) -> Dict[str, Any]:
        """Storage counters for monitoring (the server's stats endpoint)."""
        stats: Dict[str, Any] = {
            "durability": self.durability,
            "num_pages": self.pager.num_pages,
            "page_size": self.pager.page_size,
            "physical_reads": self.pager.stats.reads,
            "physical_writes": self.pager.stats.writes,
            "buffer_hit_ratio": round(self.pool.stats.hit_ratio, 4),
            "prefetches": self.pool.stats.prefetches,
            "prefetch_hits": self.pool.stats.prefetch_hits,
            "wal_bytes": 0,
            "recovered_pages": 0,
        }
        segments = [
            t.columnar for t in self._tables.values() if t.columnar is not None
        ]
        stats["columnar_segments"] = len(segments)
        stats["columnar_chunks"] = sum(len(s.chunks) for s in segments)
        stats["columnar_pages"] = sum(s.page_count for s in segments)
        stats["columnar_journal_rows"] = sum(s.journal_size() for s in segments)
        stats["columnar_zone_prunes"] = sum(s.zone_prunes for s in segments)
        extra = getattr(self.pager, "storage_stats", None)
        if extra is not None:
            stats.update(extra())
        return stats

    # -- snapshot construction -----------------------------------------
    def _build_snapshot(self) -> Tuple[Any, ...]:
        from repro.storage.columnar import segment_snapshot

        tables = []
        for meta in self.catalog.tables():
            table = self.table(meta.name)
            pages, row_count = table.heap.pages_snapshot()
            columns = tuple((c.name, c.type_tag) for c in meta.columns)
            seg_snap = (
                segment_snapshot(table.columnar)
                if table.columnar is not None
                else None
            )
            tables.append((meta.name, columns, pages, row_count, seg_snap))
        indexes = []
        for imeta in self.catalog.indexes():
            index = self._indexes.get(imeta.name.upper())
            if index is None:
                continue
            heap = HeapFile(self.pool, name=imeta.index_table_name)
            extra: Tuple[Any, ...]
            if imeta.index_kind == "RTREE":
                from repro.index.rtree.persist import dump_rtree

                root, _nodes = dump_rtree(index.tree, heap)
                extra = (root, index.fanout, index.fill)
            elif imeta.index_kind == "QUADTREE":
                from repro.index.quadtree.persist import dump_quadtree

                dump_quadtree(index, heap)
                extra = (index.grid.domain, index.tiling_level, index.btree_order)
            else:
                continue
            pages, row_count = heap.pages_snapshot()
            params = tuple(
                (k, v)
                for k, v in sorted(imeta.parameters.items())
                if isinstance(v, (int, float, str, bool)) or v is None
            )
            indexes.append(
                (
                    imeta.name,
                    imeta.table_name,
                    imeta.column_name,
                    imeta.index_kind,
                    imeta.parallel_degree,
                    params,
                    pages,
                    row_count,
                    extra,
                )
            )
        return (_SNAP_VERSION, tuple(tables), tuple(indexes))

    def _load_snapshot(self) -> None:
        blob = self._read_meta_chain()
        if blob is None:
            # A store that was created but never checkpointed.
            self._meta_pages = [0] if self.pager.num_pages > 0 else []
            if not self._meta_pages:
                self.pool.allocate()
                self._meta_pages = [0]
            return
        record = decode_row(blob)
        if not record or record[0] not in _SNAP_ACCEPTED:
            raise StorageError(
                f"meta snapshot has unknown version {record[0] if record else '?'!r}"
            )
        _version, tables, indexes = record
        for entry in tables:
            # SNAP1 entries have 4 elements; SNAP2 appends the (optional)
            # columnar-segment snapshot.
            name, columns, pages, row_count = entry[:4]
            seg_snap = entry[4] if len(entry) > 4 else None
            meta = TableMeta(
                name=name,
                columns=[ColumnMeta(cname, ctype) for cname, ctype in columns],
                heap_name=f"{name}_heap",
            )
            self.catalog.register_table(meta)
            heap = HeapFile(self.pool, name=meta.heap_name)
            heap.restore_pages(pages, row_count)
            table = Table(meta, heap)
            if seg_snap is not None:
                from repro.storage.columnar import segment_from_snapshot

                table.columnar = segment_from_snapshot(self.pool, seg_snap)
            self._tables[name.upper()] = table
        for entry in indexes:
            (iname, tname, column, kind, parallel, params, pages, row_count, extra) = entry
            table = self.table(tname)
            heap = HeapFile(self.pool, name=f"{iname}_idxtab")
            heap.restore_pages(pages, row_count)
            if kind == "RTREE":
                from repro.index.rtree.persist import load_rtree
                from repro.index.rtree.spatial_index import RTreeIndex

                root, fanout, fill = extra
                index: DomainIndex = RTreeIndex(
                    iname, table, column, fanout=int(fanout), fill=float(fill)
                )
                index.tree = load_rtree(heap, root, int(fanout))
            elif kind == "QUADTREE":
                from repro.index.quadtree.persist import load_quadtree

                domain, tiling_level, btree_order = extra
                index = load_quadtree(
                    heap,
                    iname,
                    table,
                    column,
                    domain=domain,
                    tiling_level=int(tiling_level),
                    btree_order=int(btree_order),
                )
            else:
                continue
            index.attach_maintenance()
            imeta = IndexMeta(
                name=iname,
                table_name=tname,
                column_name=column,
                index_kind=kind,
                index_table_name=f"{iname}_idxtab",
                parameters={k: v for k, v in params},
                parallel_degree=int(parallel),
            )
            self.catalog.register_index(imeta)
            self._indexes[iname.upper()] = index

    # -- meta page chain -----------------------------------------------
    def _write_meta_chain(self, blob: bytes) -> None:
        page_size = self.pool.page_size
        capacity = page_size - _META_HDR.size
        chunks = [blob[i : i + capacity] for i in range(0, len(blob), capacity)] or [b""]
        while len(self._meta_pages) < len(chunks):
            self._meta_pages.append(self.pool.allocate())
        # Extra pages from a previously larger snapshot are simply orphaned
        # (the repo's storage layer reclaims no space anywhere).
        self._meta_pages = self._meta_pages[: len(chunks)]
        if not self._meta_pages or self._meta_pages[0] != 0:
            raise StorageError("meta snapshot chain must be rooted at page 0")
        for i, chunk in enumerate(chunks):
            next_page = self._meta_pages[i + 1] if i + 1 < len(chunks) else _META_NO_PAGE
            page = bytearray(page_size)
            _META_HDR.pack_into(
                page, 0, _META_MAGIC, next_page, len(chunk), mask_crc(crc32c(chunk))
            )
            page[_META_HDR.size : _META_HDR.size + len(chunk)] = chunk
            self.pool.put(self._meta_pages[i], bytes(page))

    def _read_meta_chain(self) -> Optional[bytes]:
        blob = bytearray()
        page_id = 0
        chain: List[int] = []
        seen: set = set()
        while page_id != _META_NO_PAGE:
            # A corrupted next-pointer can form a loop of pages whose magic
            # and checksums are individually valid; without a guard, open()
            # would spin forever instead of reporting the corruption.
            if page_id in seen or len(chain) >= self.pool.pager.num_pages:
                raise StorageError(
                    f"meta snapshot chain is cyclic or overlong at page {page_id}"
                )
            seen.add(page_id)
            page = self.pool.get(page_id)
            magic, next_page, chunk_len, chunk_crc = _META_HDR.unpack_from(page, 0)
            if magic != _META_MAGIC:
                if not chain:
                    return None  # page 0 never checkpointed: empty store
                raise StorageError(
                    f"meta snapshot chain broken at page {page_id} (bad magic)"
                )
            chunk = bytes(page[_META_HDR.size : _META_HDR.size + chunk_len])
            if mask_crc(crc32c(chunk)) != chunk_crc:
                raise StorageError(
                    f"meta snapshot page {page_id} failed its checksum"
                )
            chain.append(page_id)
            blob += chunk
            page_id = next_page
        self._meta_pages = chain
        return bytes(blob)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def analyze(self, table_name: str):
        """Compute optimizer statistics for a table (full scan)."""
        from repro.engine.stats import analyze_table

        stats = analyze_table(self.table(table_name))
        self._stats[table_name.upper()] = stats
        return stats

    def table_stats(self, table_name: str):
        """Previously computed stats, or None (EXPLAIN degrades gracefully)."""
        return self._stats.get(table_name.upper())

    # ------------------------------------------------------------------
    # SQL front-end
    # ------------------------------------------------------------------
    def sql(self, statement: str) -> "SqlResultLike":
        """Execute a SQL statement (see :mod:`repro.engine.sql`)."""
        from repro.engine.sql.executor import execute_sql

        return execute_sql(self, statement)


# Documentation-only aliases for forward references in signatures.
BuildReportLike = object
JoinResultLike = object
SqlResultLike = object
