"""Query-engine substrate: tables, cursors, table functions, parallelism,
the extensible-indexing framework, cost model, and the SQL front-end."""

from repro.engine.cost import CostModel, DEFAULT_COST_MODEL, WorkMeter
from repro.engine.cursor import (
    Cursor,
    GeneratorCursor,
    ListCursor,
    PartitionMethod,
    partition_cursor,
)
from repro.engine.database import Database
from repro.engine.dump import export_database, import_database
from repro.engine.stats import (
    TableStats,
    analyze_table,
    estimate_join_pairs,
    estimate_window_rows,
)
from repro.engine.indextype import (
    OPERATORS,
    DomainIndex,
    IndexTypeRegistry,
    SpatialOperator,
    evaluate_operator,
)
from repro.engine.parallel import (
    ParallelExecutor,
    ParallelRun,
    SerialExecutor,
    SimulatedExecutor,
    ThreadExecutor,
    WorkerContext,
    make_executor,
)
from repro.engine.table import Table
from repro.engine.table_function import (
    DEFAULT_FETCH_SIZE,
    TableFunction,
    collect,
    flatten_run,
    pipeline,
    run_parallel,
)
from repro.engine.types import Row, RowSchema

__all__ = [
    "Database",
    "export_database",
    "import_database",
    "TableStats",
    "analyze_table",
    "estimate_window_rows",
    "estimate_join_pairs",
    "Table",
    "Row",
    "RowSchema",
    "Cursor",
    "ListCursor",
    "GeneratorCursor",
    "PartitionMethod",
    "partition_cursor",
    "TableFunction",
    "pipeline",
    "collect",
    "run_parallel",
    "flatten_run",
    "DEFAULT_FETCH_SIZE",
    "ParallelExecutor",
    "SerialExecutor",
    "SimulatedExecutor",
    "ThreadExecutor",
    "ParallelRun",
    "WorkerContext",
    "make_executor",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "WorkMeter",
    "DomainIndex",
    "IndexTypeRegistry",
    "SpatialOperator",
    "OPERATORS",
    "evaluate_operator",
]
