"""Cursors: the row streams that table functions consume.

Oracle's parallel table functions declare how their input cursor may be
partitioned (``PARTITION BY ANY / HASH / RANGE``); the engine then splits
the input row stream across slave instances.  :func:`partition_cursor`
reproduces those three strategies.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence

from repro.errors import CursorError
from repro.engine.types import Row

__all__ = [
    "Cursor",
    "ListCursor",
    "GeneratorCursor",
    "PartitionMethod",
    "partition_cursor",
]


class Cursor:
    """A forward-only stream of rows with batched fetch.

    Subclasses implement :meth:`_next_row`.  ``fetch(n)`` returns up to
    ``n`` rows (fewer only at end-of-stream); iterating a cursor yields
    individual rows.  A cursor may be consumed exactly once.
    """

    def __init__(self) -> None:
        self._closed = False
        self._exhausted = False

    def _next_row(self) -> Optional[Row]:
        raise NotImplementedError

    def fetch(self, n: int) -> List[Row]:
        if self._closed:
            raise CursorError("fetch on closed cursor")
        if n < 1:
            raise CursorError(f"fetch size must be >= 1, got {n}")
        rows: List[Row] = []
        while len(rows) < n:
            row = self._next_row()
            if row is None:
                self._exhausted = True
                break
            rows.append(row)
        return rows

    def __iter__(self) -> Iterator[Row]:
        while True:
            if self._closed:
                raise CursorError("iteration on closed cursor")
            row = self._next_row()
            if row is None:
                self._exhausted = True
                return
            yield row

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class ListCursor(Cursor):
    """Cursor over a materialised row list."""

    def __init__(self, rows: Sequence[Row]):
        super().__init__()
        self._rows = list(rows)
        self._pos = 0

    def _next_row(self) -> Optional[Row]:
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return row

    def __len__(self) -> int:
        return len(self._rows)


class GeneratorCursor(Cursor):
    """Cursor over any row iterable (consumed lazily)."""

    def __init__(self, rows: Iterable[Row]):
        super().__init__()
        self._iter = iter(rows)

    def _next_row(self) -> Optional[Row]:
        try:
            return next(self._iter)
        except StopIteration:
            return None


class PartitionMethod(enum.Enum):
    """How a parallel table function's input cursor is split across slaves."""

    ANY = "ANY"  # arbitrary: rows dealt round-robin (any slave may take any row)
    HASH = "HASH"  # rows with equal partition keys go to the same slave
    RANGE = "RANGE"  # rows split into contiguous key ranges


def partition_cursor(
    cursor: Cursor,
    degree: int,
    method: PartitionMethod = PartitionMethod.ANY,
    key: Optional[Callable[[Row], Any]] = None,
) -> List[ListCursor]:
    """Split a cursor into ``degree`` sub-cursors.

    The source cursor is drained (partitioning is a blocking exchange, as
    it is in the real system's table-queue machinery).  HASH and RANGE
    require a ``key`` function.
    """
    if degree < 1:
        raise CursorError(f"degree must be >= 1, got {degree}")
    rows = list(cursor)
    if degree == 1:
        return [ListCursor(rows)]

    buckets: List[List[Row]] = [[] for _ in range(degree)]
    if method is PartitionMethod.ANY:
        for i, row in enumerate(rows):
            buckets[i % degree].append(row)
    elif method is PartitionMethod.HASH:
        if key is None:
            raise CursorError("HASH partitioning requires a key function")
        for row in rows:
            buckets[hash(key(row)) % degree].append(row)
    elif method is PartitionMethod.RANGE:
        if key is None:
            raise CursorError("RANGE partitioning requires a key function")
        rows = sorted(rows, key=key)
        # Contiguous equal-count ranges.
        base, extra = divmod(len(rows), degree)
        start = 0
        for b in range(degree):
            size = base + (1 if b < extra else 0)
            buckets[b] = rows[start : start + size]
            start += size
    else:  # pragma: no cover - enum is exhaustive
        raise CursorError(f"unknown partition method {method}")
    return [ListCursor(bucket) for bucket in buckets]
