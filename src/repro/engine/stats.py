"""Optimizer statistics (the ANALYZE ... COMPUTE STATISTICS analogue).

The paper's system sits inside a cost-based optimizer; the piece of that
machinery spatial processing actually needs is per-column geometry
statistics — row count, average MBR extents, layer MBR — from which the
classic spatial selectivity model estimates how many rows a window query
or join will touch:

    P(two boxes intersect) ~ ((w1 + w2) * (h1 + h2)) / area(domain)

``Database.analyze`` computes them; EXPLAIN reports the estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import CatalogError
from repro.engine.table import Table
from repro.geometry.geometry import Geometry
from repro.geometry.mbr import EMPTY_MBR, MBR

__all__ = [
    "ColumnGeometryStats",
    "TableStats",
    "analyze_table",
    "estimate_window_rows",
    "estimate_join_pairs",
]


@dataclass
class ColumnGeometryStats:
    """Statistics for one geometry column."""

    column: str
    geometry_count: int = 0
    avg_width: float = 0.0
    avg_height: float = 0.0
    avg_vertices: float = 0.0
    layer_mbr: MBR = EMPTY_MBR


@dataclass
class TableStats:
    """Statistics for one table."""

    table_name: str
    row_count: int = 0
    geometry_columns: Dict[str, ColumnGeometryStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnGeometryStats:
        try:
            return self.geometry_columns[name.upper()]
        except KeyError:
            raise CatalogError(
                f"no geometry statistics for {self.table_name}.{name}; "
                f"run ANALYZE first"
            ) from None


def analyze_table(table: Table) -> TableStats:
    """Full-scan statistics collection for one table."""
    stats = TableStats(table_name=table.name)
    geom_columns = [
        c.name for c in table.meta.columns if c.type_tag.upper() == "SDO_GEOMETRY"
    ]
    accum: Dict[str, ColumnGeometryStats] = {
        name.upper(): ColumnGeometryStats(column=name) for name in geom_columns
    }
    sums: Dict[str, list] = {name.upper(): [0.0, 0.0, 0.0] for name in geom_columns}

    for _rowid, row in table.scan():
        stats.row_count += 1
        for name in geom_columns:
            value = table.schema.value(row, name)
            if not isinstance(value, Geometry):
                continue
            col = accum[name.upper()]
            col.geometry_count += 1
            col.layer_mbr = col.layer_mbr.union(value.mbr)
            s = sums[name.upper()]
            s[0] += value.mbr.width
            s[1] += value.mbr.height
            s[2] += value.num_vertices

    for name in geom_columns:
        col = accum[name.upper()]
        if col.geometry_count:
            s = sums[name.upper()]
            col.avg_width = s[0] / col.geometry_count
            col.avg_height = s[1] / col.geometry_count
            col.avg_vertices = s[2] / col.geometry_count
    stats.geometry_columns = accum
    return stats


def estimate_window_rows(col: ColumnGeometryStats, window: MBR) -> float:
    """Expected rows whose MBR intersects ``window`` (uniformity model)."""
    if col.geometry_count == 0 or col.layer_mbr.is_empty:
        return 0.0
    domain = col.layer_mbr
    domain_area = max(domain.area, 1e-12)
    p = (
        (col.avg_width + window.width)
        * (col.avg_height + window.height)
        / domain_area
    )
    return col.geometry_count * min(1.0, p)


def estimate_join_pairs(
    col_a: ColumnGeometryStats,
    col_b: ColumnGeometryStats,
    distance: float = 0.0,
) -> float:
    """Expected MBR-intersecting pairs between two layers."""
    if col_a.geometry_count == 0 or col_b.geometry_count == 0:
        return 0.0
    domain = col_a.layer_mbr.union(col_b.layer_mbr)
    domain_area = max(domain.area, 1e-12)
    p = (
        (col_a.avg_width + col_b.avg_width + 2 * distance)
        * (col_a.avg_height + col_b.avg_height + 2 * distance)
        / domain_area
    )
    return col_a.geometry_count * col_b.geometry_count * min(1.0, p)
