"""The extensible-indexing framework (ODCIIndex analogue).

Oracle's extensible indexing lets a *domain index* supply its own create /
DML-maintenance / query routines, and surfaces domain predicates as SQL
*operators* (``sdo_relate``, ``sdo_within_distance``, ``sdo_filter``,
``sdo_nn``) that the optimizer routes to the index.

The framework's key restriction — the one the whole paper hinges on — is
reproduced faithfully here: :meth:`DomainIndex.fetch` yields rowids of a
*single* table.  A join therefore cannot be answered inside the framework;
it has to be a nested loop of per-row probes, unless it is rewritten
through a table function (which is exactly the paper's contribution).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IndexTypeError, OperatorError
from repro.engine.parallel import WorkerContext
from repro.engine.table import Table
from repro.geometry.distance import within_distance
from repro.geometry.geometry import Geometry
from repro.geometry.predicates import relate
from repro.storage.heap import RowId

__all__ = [
    "SpatialOperator",
    "OPERATORS",
    "evaluate_operator",
    "DomainIndex",
    "IndexTypeRegistry",
]


class SpatialOperator:
    """A SQL-visible spatial predicate with an exact evaluator.

    ``evaluate`` gives the exact (secondary-filter) truth value.  Whether an
    index can pre-filter for the operator — and with what window expansion —
    is described by ``index_hint``; the domain indexes consult it.
    """

    def __init__(
        self,
        name: str,
        evaluate: Callable[..., bool],
        index_hint: str,
    ):
        self.name = name.upper()
        self.evaluate = evaluate
        self.index_hint = index_hint  # 'MBR', 'MBR_DISTANCE', or 'NONE'

    def __repr__(self) -> str:
        return f"SpatialOperator({self.name})"


def _eval_relate(geom: Geometry, query: Geometry, mask: str = "ANYINTERACT") -> bool:
    return relate(geom, query, mask)


def _eval_within_distance(geom: Geometry, query: Geometry, dist: float) -> bool:
    return within_distance(geom, query, float(dist))


def _eval_filter(geom: Geometry, query: Geometry) -> bool:
    # sdo_filter is the primary-filter-only operator: MBR interaction.
    return geom.mbr.intersects(query.mbr)


OPERATORS: Dict[str, SpatialOperator] = {
    op.name: op
    for op in (
        SpatialOperator("SDO_RELATE", _eval_relate, index_hint="MBR"),
        SpatialOperator("SDO_WITHIN_DISTANCE", _eval_within_distance, index_hint="MBR_DISTANCE"),
        SpatialOperator("SDO_FILTER", _eval_filter, index_hint="MBR"),
    )
}


def evaluate_operator(name: str, geom: Geometry, *args: Any) -> bool:
    """Exact evaluation of a named operator (no index involved)."""
    try:
        op = OPERATORS[name.upper()]
    except KeyError:
        raise OperatorError(f"unknown operator {name!r}") from None
    return op.evaluate(geom, *args)


class DomainIndex:
    """Interface every spatial index kind implements (ODCIIndex analogue).

    Lifecycle: ``create`` bulk-builds from the indexed table; ``insert`` /
    ``delete`` / ``update`` keep it synchronised with base-table DML (the
    framework wires these to :class:`~repro.engine.table.Table` maintenance
    hooks); ``fetch`` answers one operator predicate with candidate rowids
    of the indexed table *only*.
    """

    kind: str = "ABSTRACT"

    #: geometries kept hot by the row cache backing :meth:`geometry_of`;
    #: fetches that miss pay full fetch cost, mirroring a buffer cache that
    #: holds a bounded number of base-table blocks.
    GEOMETRY_CACHE_ROWS = 4096

    def __init__(self, name: str, table: Table, column: str):
        self.name = name
        self.table = table
        self.column = column
        self._column_index = table.schema.index_of(column)
        self._geom_cache: "OrderedDict[RowId, Geometry]" = OrderedDict()

    # -- lifecycle ---------------------------------------------------------
    def create(self, ctx: Optional[WorkerContext] = None) -> None:
        raise NotImplementedError

    def insert(self, rowid: RowId, geom: Geometry, ctx: Optional[WorkerContext] = None) -> None:
        raise NotImplementedError

    def delete(self, rowid: RowId, geom: Geometry, ctx: Optional[WorkerContext] = None) -> None:
        raise NotImplementedError

    def update(
        self,
        rowid: RowId,
        old_geom: Geometry,
        new_geom: Geometry,
        ctx: Optional[WorkerContext] = None,
    ) -> None:
        self.delete(rowid, old_geom, ctx)
        self.insert(rowid, new_geom, ctx)

    # -- query -------------------------------------------------------------
    def fetch(
        self,
        operator: str,
        args: Sequence[Any],
        ctx: Optional[WorkerContext] = None,
        exact: bool = True,
    ) -> Iterator[RowId]:
        """Yield rowids satisfying ``operator(geom_column, *args)``.

        With ``exact=False`` only the primary (index) filter is applied and
        the result may contain false positives — that is ``sdo_filter``
        semantics.  NOTE: yields rowids of this index's table only; the
        framework offers no way to return pairs of rowids from two tables,
        which is why spatial joins predate-table-functions were nested
        loops (paper §1, §4).
        """
        raise NotImplementedError

    # -- framework plumbing --------------------------------------------------
    def attach_maintenance(self) -> None:
        """Subscribe to base-table DML so the index stays in sync."""

        def hook(op: str, rowid: RowId, old_row, new_row) -> None:
            self._geom_cache.pop(rowid, None)
            old_geom = old_row[self._column_index] if old_row is not None else None
            new_geom = new_row[self._column_index] if new_row is not None else None
            if op == "INSERT" and new_geom is not None:
                self.insert(rowid, new_geom)
            elif op == "DELETE" and old_geom is not None:
                self.delete(rowid, old_geom)
            elif op == "UPDATE":
                if old_geom is not None and new_geom is not None:
                    self.update(rowid, old_geom, new_geom)
                elif old_geom is not None:
                    self.delete(rowid, old_geom)
                elif new_geom is not None:
                    self.insert(rowid, new_geom)

        self.table.add_maintenance_hook(hook)

    def geometry_of(self, rowid: RowId, ctx: Optional[WorkerContext] = None) -> Geometry:
        """Fetch the indexed geometry for a rowid, through a bounded cache.

        Access patterns matter for cost exactly as they do for a real
        buffer cache: repeated probes of a small table stay hot, random
        probes of a table larger than the cache mostly miss — which is
        what makes the nested-loop join degrade with table size.
        """
        cached = self._geom_cache.get(rowid)
        if cached is not None:
            self._geom_cache.move_to_end(rowid)
            if ctx is not None:
                ctx.charge("buffer_get_hit")
            return cached
        # Routed through the table so columnar-resident rows are served
        # (and charged) from their chunk; heap rows keep the historical
        # geom_fetch charges.
        geom = self.table.fetch_geometry(rowid, self._column_index, ctx)
        self._geom_cache[rowid] = geom
        while len(self._geom_cache) > self.GEOMETRY_CACHE_ROWS:
            self._geom_cache.popitem(last=False)
        return geom


class IndexTypeRegistry:
    """Maps index-kind names ('RTREE', 'QUADTREE') to index factories."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., DomainIndex]] = {}

    def register(self, kind: str, factory: Callable[..., DomainIndex]) -> None:
        key = kind.upper()
        if key in self._factories:
            raise IndexTypeError(f"index kind {kind!r} already registered")
        self._factories[key] = factory

    def create(
        self, kind: str, name: str, table: Table, column: str, **parameters: Any
    ) -> DomainIndex:
        try:
            factory = self._factories[kind.upper()]
        except KeyError:
            raise IndexTypeError(f"unknown index kind {kind!r}") from None
        return factory(name=name, table=table, column=column, **parameters)

    def kinds(self) -> List[str]:
        return sorted(self._factories)
