"""Pipelined and parallel table functions.

This is the Oracle 9i mechanism the paper is built on.  A *table function*
produces a set of rows usable in the FROM clause of a query; a *pipelined*
table function returns them iteratively through a start/fetch/close
interface so result sets larger than memory can stream; a *parallel* table
function additionally accepts an input cursor that the engine partitions
across N slave instances of the function.

* :class:`TableFunction` — the start/fetch/close contract (the "C/Java
  ODCITable interface" of the paper's §2), with state checking.
* :func:`pipeline` — drive one instance to completion as a row iterator.
* :func:`run_parallel` — partition an input cursor, instantiate one
  function per partition, and drain all instances on a
  :class:`~repro.engine.parallel.ParallelExecutor`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence

from repro.errors import TableFunctionError
from repro.engine.cursor import Cursor, ListCursor, PartitionMethod, partition_cursor
from repro.engine.parallel import ParallelExecutor, ParallelRun, WorkerContext
from repro.engine.types import Row

__all__ = [
    "TableFunction",
    "DEFAULT_FETCH_SIZE",
    "pipeline",
    "collect",
    "PartitionTask",
    "run_parallel",
]

DEFAULT_FETCH_SIZE = 1024


class TableFunction:
    """Base class for pipelined table functions.

    Subclasses implement ``_start``, ``_fetch`` and ``_close``; the public
    methods enforce the protocol state machine (start exactly once, no
    fetch after close, fetch after exhaustion keeps returning empty).
    ``_fetch`` returns at most ``max_rows`` rows; an empty list signals
    end of results.
    """

    def __init__(self) -> None:
        self._started = False
        self._closed = False
        self._exhausted = False

    # -- subclass hooks --------------------------------------------------
    def _start(self, ctx: WorkerContext) -> None:
        """Acquire state: load metadata, seed traversal stacks, etc."""

    def _fetch(self, ctx: WorkerContext, max_rows: int) -> List[Row]:
        raise NotImplementedError

    def _close(self, ctx: WorkerContext) -> None:
        """Release memory/resources."""

    # -- protocol-enforcing public interface ------------------------------
    def start(self, ctx: WorkerContext) -> None:
        if self._started:
            raise TableFunctionError("start called twice")
        if self._closed:
            raise TableFunctionError("start after close")
        self._started = True
        self._start(ctx)

    def fetch(self, ctx: WorkerContext, max_rows: int = DEFAULT_FETCH_SIZE) -> List[Row]:
        if not self._started:
            raise TableFunctionError("fetch before start")
        if self._closed:
            raise TableFunctionError("fetch after close")
        if max_rows < 1:
            raise TableFunctionError(f"fetch size must be >= 1, got {max_rows}")
        if self._exhausted:
            return []
        rows = self._fetch(ctx, max_rows)
        if len(rows) > max_rows:
            raise TableFunctionError(
                f"_fetch returned {len(rows)} rows, more than max_rows={max_rows}"
            )
        if not rows:
            self._exhausted = True
        return rows

    def close(self, ctx: WorkerContext) -> None:
        if not self._started:
            raise TableFunctionError("close before start")
        if self._closed:
            raise TableFunctionError("close called twice")
        self._closed = True
        self._close(ctx)

    @property
    def exhausted(self) -> bool:
        return self._exhausted


def pipeline(
    fn: TableFunction,
    ctx: Optional[WorkerContext] = None,
    fetch_size: int = DEFAULT_FETCH_SIZE,
) -> Iterator[Row]:
    """Drive a table function to completion, yielding rows as they arrive.

    This is the engine-side loop that makes the function *pipelined*: rows
    are surfaced batch by batch, and the function's ``close`` runs even if
    the consumer abandons the iterator early.
    """
    if ctx is None:
        ctx = WorkerContext(0)
    fn.start(ctx)
    try:
        while True:
            batch = fn.fetch(ctx, fetch_size)
            if not batch:
                return
            yield from batch
    finally:
        fn.close(ctx)


def collect(
    fn: TableFunction,
    ctx: Optional[WorkerContext] = None,
    fetch_size: int = DEFAULT_FETCH_SIZE,
) -> List[Row]:
    """Materialise a table function's full result."""
    return list(pipeline(fn, ctx, fetch_size))


class PartitionTask:
    """One slave's unit of work: drain a function instance over a partition.

    A module-level callable (not a closure) so tasks are *pickling-safe*:
    provided ``factory`` and the partition's rows pickle, the whole task
    does — which is what lets spawn-style process pools, and not only
    fork-based ones, ship partitioned table-function work to other
    processes.
    """

    __slots__ = ("factory", "partition", "fetch_size")

    def __init__(
        self,
        factory: Callable[[Cursor], TableFunction],
        partition: ListCursor,
        fetch_size: int = DEFAULT_FETCH_SIZE,
    ):
        self.factory = factory
        self.partition = partition
        self.fetch_size = fetch_size

    def __call__(self, ctx: WorkerContext) -> List[Row]:
        ctx.charge("partition_per_row", len(self.partition))
        instance = self.factory(self.partition)
        return list(pipeline(instance, ctx, self.fetch_size))


def _empty_task(ctx: WorkerContext) -> List[Row]:
    """Degenerate task for an empty input cursor (also picklable)."""
    return []


def run_parallel(
    factory: Callable[[Cursor], TableFunction],
    input_cursor: Cursor,
    executor: ParallelExecutor,
    method: PartitionMethod = PartitionMethod.ANY,
    key: Optional[Callable[[Row], Any]] = None,
    fetch_size: int = DEFAULT_FETCH_SIZE,
) -> ParallelRun:
    """Execute a parallel table function.

    The input cursor is partitioned ``degree`` ways using ``method``; one
    function instance is created per non-empty partition and drained on the
    executor.  The returned run's ``results`` holds each instance's rows;
    use :func:`flatten_run` for the combined (ordered-by-instance) rows.
    """
    degree = executor.degree
    partitions = partition_cursor(input_cursor, degree, method, key)

    tasks: List[Callable[[WorkerContext], List[Row]]] = [
        PartitionTask(factory, part, fetch_size)
        for part in partitions
        if len(part) > 0
    ]
    if not tasks:
        tasks = [_empty_task]
    return executor.run(tasks)


def flatten_run(run: ParallelRun) -> List[Row]:
    """Concatenate the per-instance row lists of a parallel run."""
    rows: List[Row] = []
    for chunk in run.results:
        rows.extend(chunk)
    return rows
