"""The simulated cost model.

The paper's experiments ran on a 4-CPU Sun E450; this reproduction runs on
whatever it runs on — often a single core — so reported times come from a
deterministic cost model instead of the wall clock.  Operations record
*work units* (page reads, MBR tests, exact predicate evaluations per vertex,
tiles tessellated, ...) into a :class:`WorkMeter`; simulated time is the dot
product of those counts with the per-unit costs in :class:`CostModel`.

The default constants are calibrated so that the sequential counties
self-join (Table 1) lands in the paper's order of magnitude (~100 s) and
tessellation dominates quadtree creation the way the paper reports.  The
*shape* of every result (who wins, crossover points, speedup factors) is
insensitive to an overall rescaling of these constants; only the ratios
matter, and the ratios encode real machine facts (a physical read costs
~100x a buffer hit; an exact polygon test costs ~vertices x a constant).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, Tuple

from repro.errors import EngineError

__all__ = ["CostModel", "WorkMeter", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Per-unit costs in simulated seconds."""

    # storage
    buffer_get_hit: float = 2e-6  # logical page get satisfied by the cache
    physical_read: float = 2e-4  # page read that misses the cache
    page_write: float = 2e-4  # page write-back
    # index traversal
    btree_node_visit: float = 4e-6
    rtree_node_visit: float = 6e-6
    # filters
    mbr_test: float = 4e-7  # one rectangle-rectangle comparison
    sweep_sort_per_item: float = 2.5e-7  # one comparison in the plane
    # sweep's min-x sort — cheaper than mbr_test because it orders packed
    # floats from the flat-array node layout, not full rectangle pairs
    sweep_pair_emit: float = 2e-7  # emitting one interacting pair found
    # by the sweep (bookkeeping that the nested loop folds into its test)
    geom_fetch_per_vertex: float = 1.5e-6  # decode a fetched geometry
    geom_fetch_base: float = 2e-4  # cache-missing geometry fetch (page read)
    exact_test_per_vertex: float = 3e-6  # secondary filter, per vertex visited
    exact_test_base: float = 3e-5
    index_probe: float = 2.5e-3  # one operator invocation through the
    # extensible-indexing framework (SQL recursion + ODCIIndexStart/Fetch/
    # Close per probed row) — the fixed cost the nested-loop join pays per
    # outer row and the table-function join pays once
    statement_overhead: float = 0.5  # parse/plan/execute fixed cost of one
    # SQL statement; dominates both join strategies at tiny inputs, which
    # is why Table 2's 25-polygon row shows nested == index
    # index creation
    tessellate_per_tile: float = 1.6e-4  # clip/cover one quadtree tile
    tessellate_per_vertex: float = 2.0e-5
    mbr_load_per_vertex: float = 1.0e-6  # compute an MBR while loading
    cluster_per_entry: float = 3.0e-5  # R-tree packing, per entry per level
    sort_per_item: float = 6e-7  # one comparison-ish unit of sorting
    tile_insert: float = 1.0e-5  # insert one tile row into the index table
    # parallel machinery
    worker_startup: float = 0.02  # spawning one parallel worker (slave)
    partition_per_row: float = 2e-7  # routing one row to a partition
    result_row: float = 1e-6  # materialising one output row

    def unit_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(self))

    def cost_of(self, kind: str) -> float:
        try:
            return getattr(self, kind)
        except AttributeError:
            raise EngineError(f"unknown work-unit kind {kind!r}") from None

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly rescaled model (shape-preserving; used in tests)."""
        return CostModel(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )


DEFAULT_COST_MODEL = CostModel()


class WorkMeter:
    """Accumulates work-unit counts; converts to simulated seconds on demand."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, float] = {}

    def add(self, kind: str, n: float = 1.0) -> None:
        """Record ``n`` units of work of the given kind."""
        self.counts[kind] = self.counts.get(kind, 0.0) + n

    def merge(self, other: "WorkMeter") -> None:
        for kind, n in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0.0) + n

    def copy(self) -> "WorkMeter":
        meter = WorkMeter()
        meter.counts = dict(self.counts)
        return meter

    def seconds(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        """Simulated time for all recorded work under ``model``.

        Kinds are summed in sorted order so the float total is independent
        of the order charges first arrived in (two meters with equal counts
        always report bit-equal seconds).
        """
        total = 0.0
        for kind in sorted(self.counts):
            total += model.cost_of(kind) * self.counts[kind]
        return total

    def breakdown(
        self, model: CostModel = DEFAULT_COST_MODEL
    ) -> Iterator[Tuple[str, float, float]]:
        """Yield (kind, count, seconds) sorted by descending cost share."""
        rows = [
            (kind, n, model.cost_of(kind) * n) for kind, n in self.counts.items()
        ]
        rows.sort(key=lambda r: -r[2])
        yield from rows

    def __repr__(self) -> str:
        total = self.seconds()
        return f"WorkMeter({len(self.counts)} kinds, {total:.3f}s simulated)"
