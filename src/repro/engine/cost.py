"""The simulated cost model.

The paper's experiments ran on a 4-CPU Sun E450; this reproduction runs on
whatever it runs on — often a single core — so reported times come from a
deterministic cost model instead of the wall clock.  Operations record
*work units* (page reads, MBR tests, exact predicate evaluations per vertex,
tiles tessellated, ...) into a :class:`WorkMeter`; simulated time is the dot
product of those counts with the per-unit costs in :class:`CostModel`.

The default constants are calibrated so that the sequential counties
self-join (Table 1) lands in the paper's order of magnitude (~100 s) and
tessellation dominates quadtree creation the way the paper reports.  The
*shape* of every result (who wins, crossover points, speedup factors) is
insensitive to an overall rescaling of these constants; only the ratios
matter, and the ratios encode real machine facts (a physical read costs
~100x a buffer hit; an exact polygon test costs ~vertices x a constant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, Tuple

from repro.errors import EngineError

__all__ = [
    "CostModel",
    "WorkMeter",
    "DEFAULT_COST_MODEL",
    "pick_grid_shape",
    "pick_shard_count",
]


@dataclass(frozen=True)
class CostModel:
    """Per-unit costs in simulated seconds."""

    # storage
    buffer_get_hit: float = 2e-6  # logical page get satisfied by the cache
    physical_read: float = 2e-4  # page read that misses the cache
    page_write: float = 2e-4  # page write-back
    # index traversal
    btree_node_visit: float = 4e-6
    rtree_node_visit: float = 6e-6
    # filters
    mbr_test: float = 4e-7  # one rectangle-rectangle comparison
    sweep_sort_per_item: float = 2.5e-7  # one comparison in the plane
    # sweep's min-x sort — cheaper than mbr_test because it orders packed
    # floats from the flat-array node layout, not full rectangle pairs
    sweep_pair_emit: float = 2e-7  # emitting one interacting pair found
    # by the sweep (bookkeeping that the nested loop folds into its test)
    geom_fetch_per_vertex: float = 1.5e-6  # decode a fetched geometry
    geom_fetch_base: float = 2e-4  # cache-missing geometry fetch (page read)
    chunk_row_view: float = 4e-7  # aliasing one row's coordinates out of a
    # resident column chunk (pointer math, no per-row decode; the chunk
    # load itself is charged as physical_read per chunk page)
    zone_skip: float = 1e-7  # consulting one chunk's zone map and skipping
    # the whole chunk without reading any of its pages (a float compare
    # against the in-memory chunk directory)
    exact_test_per_vertex: float = 3e-6  # secondary filter, per vertex visited
    exact_test_base: float = 3e-5
    index_probe: float = 2.5e-3  # one operator invocation through the
    # extensible-indexing framework (SQL recursion + ODCIIndexStart/Fetch/
    # Close per probed row) — the fixed cost the nested-loop join pays per
    # outer row and the table-function join pays once
    statement_overhead: float = 0.5  # parse/plan/execute fixed cost of one
    # SQL statement; dominates both join strategies at tiny inputs, which
    # is why Table 2's 25-polygon row shows nested == index
    # index creation
    tessellate_per_tile: float = 1.6e-4  # clip/cover one quadtree tile
    tessellate_per_vertex: float = 2.0e-5
    mbr_load_per_vertex: float = 1.0e-6  # compute an MBR while loading
    cluster_per_entry: float = 3.0e-5  # R-tree packing, per entry per level
    sort_per_item: float = 6e-7  # one comparison-ish unit of sorting
    tile_insert: float = 1.0e-5  # insert one tile row into the index table
    # parallel machinery
    worker_startup: float = 0.02  # spawning one parallel worker (slave)
    partition_per_row: float = 2e-7  # routing one row to a partition
    grid_assign_per_entry: float = 3e-7  # binning one MBR into grid-tile
    # index ranges (one float-floor per side; cheaper than an mbr_test)
    grid_pair_skip: float = 1e-7  # discarding a geometrically interacting
    # pair whose two-layer class combination makes another tile canonical
    # (an integer comparison; also the duplicate-avoidance observability
    # counter — no dedup structure exists to count against)
    result_row: float = 1e-6  # materialising one output row

    def unit_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in fields(self))

    def cost_of(self, kind: str) -> float:
        try:
            return getattr(self, kind)
        except AttributeError:
            raise EngineError(f"unknown work-unit kind {kind!r}") from None

    def scaled(self, factor: float) -> "CostModel":
        """Uniformly rescaled model (shape-preserving; used in tests)."""
        return CostModel(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )


DEFAULT_COST_MODEL = CostModel()

# Grid-join tile-count heuristic knobs (see :func:`pick_grid_shape`).
GRID_TILES_PER_WORKER = 8  # steal granularity: tiles per parallel slave
GRID_TARGET_ENTRIES_PER_TILE = 32  # aim for sweeps near this size: on
# clustered data (stars) coarser grids leave one hot tile bounding the
# makespan — 32 entries/tile costs a few percent extra replication and
# buys near-linear balance at degree 16 (measured in bench_ablation_grid)
GRID_MAX_TILES = 16384  # assignment cost ceiling (and task-count ceiling)


def pick_grid_shape(
    n_a: int,
    n_b: int,
    degree: int = 1,
    tiles_per_worker: int = GRID_TILES_PER_WORKER,
    target_entries_per_tile: int = GRID_TARGET_ENTRIES_PER_TILE,
    max_tiles: int = GRID_MAX_TILES,
) -> Tuple[int, int]:
    """Choose a uniform grid shape ``(nx, ny)`` for a grid-partitioned join.

    Two pressures trade off: enough tiles that demand-driven stealing can
    balance skew (``degree * tiles_per_worker`` floor) and tiles small
    enough that a per-tile plane sweep stays in its efficient range
    (``(n_a + n_b) / target_entries_per_tile``), but not so many that
    per-entry assignment and per-tile bookkeeping dominate (``max_tiles``
    ceiling, and never more tiles than entries).  The shape is as close
    to square as the total allows — tiles inherit the data's aspect
    ratio from the joint MBR, which a square split distorts least.
    """
    if degree < 1:
        raise EngineError(f"degree must be >= 1, got {degree}")
    n_entries = max(0, n_a) + max(0, n_b)
    want = max(
        1,
        degree * max(1, tiles_per_worker),
        n_entries // max(1, target_entries_per_tile),
    )
    total = max(1, min(want, max_tiles, max(1, n_entries)))
    nx = max(1, int(math.isqrt(total)))
    ny = max(1, (total + nx - 1) // nx)
    return nx, ny


# Cluster shard-count heuristic knobs (see :func:`pick_shard_count`).
CLUSTER_TARGET_ENTRIES_PER_SHARD = 50_000  # a shard comfortably sweeps
# this many entries through its owned tiles before scatter latency (one
# wire round-trip per shard per page) stops paying for the extra process
CLUSTER_MAX_SHARDS = 8  # failure domains and follower processes per shard
# both scale linearly; past 8 the router's fan-out bookkeeping dominates


def pick_shard_count(
    n_entries: int,
    max_shards: int = CLUSTER_MAX_SHARDS,
    target_entries_per_shard: int = CLUSTER_TARGET_ENTRIES_PER_SHARD,
) -> int:
    """Choose how many shard processes a dataset of ``n_entries`` wants.

    The cluster analogue of :func:`pick_grid_shape`, one level up: tiles
    balance skew *within* a process, shards spread work *across*
    processes.  Small datasets stay on one shard (the router's fan-out
    and the follower's replication stream are pure overhead below the
    target), and the count is capped so each shard still owns a
    contiguous run of enough grid tiles for its local join to balance.
    """
    if max_shards < 1:
        raise EngineError(f"max_shards must be >= 1, got {max_shards}")
    want = math.ceil(max(0, n_entries) / max(1, target_entries_per_shard))
    return max(1, min(want, max_shards))


class WorkMeter:
    """Accumulates work-unit counts; converts to simulated seconds on demand."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, float] = {}

    def add(self, kind: str, n: float = 1.0) -> None:
        """Record ``n`` units of work of the given kind."""
        self.counts[kind] = self.counts.get(kind, 0.0) + n

    def merge(self, other: "WorkMeter") -> None:
        for kind, n in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0.0) + n

    def copy(self) -> "WorkMeter":
        meter = WorkMeter()
        meter.counts = dict(self.counts)
        return meter

    def seconds(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        """Simulated time for all recorded work under ``model``.

        Kinds are summed in sorted order so the float total is independent
        of the order charges first arrived in (two meters with equal counts
        always report bit-equal seconds).
        """
        total = 0.0
        for kind in sorted(self.counts):
            total += model.cost_of(kind) * self.counts[kind]
        return total

    def breakdown(
        self, model: CostModel = DEFAULT_COST_MODEL
    ) -> Iterator[Tuple[str, float, float]]:
        """Yield (kind, count, seconds) sorted by descending cost share."""
        rows = [
            (kind, n, model.cost_of(kind) * n) for kind, n in self.counts.items()
        ]
        rows.sort(key=lambda r: -r[2])
        yield from rows

    def __repr__(self) -> str:
        total = self.seconds()
        return f"WorkMeter({len(self.counts)} kinds, {total:.3f}s simulated)"
