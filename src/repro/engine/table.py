"""Tables: schema-aware views over heap files.

A :class:`Table` binds a catalog :class:`~repro.storage.catalog.TableMeta`
to a :class:`~repro.storage.heap.HeapFile` and handles row encoding, type
validation, and maintenance of any domain indexes registered on the table
(inserts/updates/deletes propagate to spatial indexes automatically, as
the extensible-indexing framework requires).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.engine.cursor import Cursor, GeneratorCursor
from repro.engine.types import Row, RowSchema
from repro.storage.catalog import ColumnMeta, TableMeta
from repro.storage.codec import decode_row, encode_row
from repro.storage.heap import HeapFile, RowId

__all__ = ["Table"]


class Table:
    """A heap table with a schema and index-maintenance hooks."""

    def __init__(self, meta: TableMeta, heap: HeapFile):
        self.meta = meta
        self.schema = RowSchema(meta.columns)
        self.heap = heap
        # index maintenance callbacks: (op, rowid, old_row, new_row)
        self._maintenance_hooks: List[
            Callable[[str, RowId, Optional[Row], Optional[Row]], None]
        ] = []

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def row_count(self) -> int:
        return self.heap.row_count

    def add_maintenance_hook(
        self, hook: Callable[[str, RowId, Optional[Row], Optional[Row]], None]
    ) -> None:
        """Register a callback fired after insert/update/delete.

        The spatial indextype registers here so DML on the base table keeps
        the domain index synchronised — the automatic index update the
        extensible-indexing framework provides.
        """
        self._maintenance_hooks.append(hook)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[Any]) -> RowId:
        row = tuple(values)
        self.schema.validate_row(row)
        rowid = self.heap.insert(encode_row(row))
        self._fire("INSERT", rowid, None, row)
        return rowid

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> List[RowId]:
        return [self.insert(row) for row in rows]

    def fetch(self, rowid: RowId) -> Row:
        return decode_row(self.heap.read(rowid))

    def update(self, rowid: RowId, values: Sequence[Any]) -> None:
        new_row = tuple(values)
        self.schema.validate_row(new_row)
        old_row = self.fetch(rowid)
        self.heap.update(rowid, encode_row(new_row))
        self._fire("UPDATE", rowid, old_row, new_row)

    def delete(self, rowid: RowId) -> None:
        old_row = self.fetch(rowid)
        self.heap.delete(rowid)
        self._fire("DELETE", rowid, old_row, None)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[RowId, Row]]:
        """Full scan in rowid (physical) order."""
        for rowid, data in self.heap.scan():
            yield rowid, decode_row(data)

    def scan_cursor(self, with_rowid: bool = False) -> Cursor:
        """Cursor over the table; optionally prefix each row with its rowid."""
        if with_rowid:
            return GeneratorCursor(
                (rowid,) + row for rowid, row in self.scan()
            )
        return GeneratorCursor(row for _rowid, row in self.scan())

    def column_values(self, column: str) -> Iterator[Tuple[RowId, Any]]:
        idx = self.schema.index_of(column)
        for rowid, row in self.scan():
            yield rowid, row[idx]

    def value(self, rowid: RowId, column: str) -> Any:
        return self.schema.value(self.fetch(rowid), column)

    # ------------------------------------------------------------------
    def _fire(
        self, op: str, rowid: RowId, old_row: Optional[Row], new_row: Optional[Row]
    ) -> None:
        for hook in self._maintenance_hooks:
            hook(op, rowid, old_row, new_row)
