"""Tables: schema-aware views over heap files.

A :class:`Table` binds a catalog :class:`~repro.storage.catalog.TableMeta`
to a :class:`~repro.storage.heap.HeapFile` and handles row encoding, type
validation, and maintenance of any domain indexes registered on the table
(inserts/updates/deletes propagate to spatial indexes automatically, as
the extensible-indexing framework requires).

A table may additionally carry a :class:`~repro.storage.columnar.
ColumnarSegment` (``table.columnar``) — a frozen columnar image of the
rows as of the last compaction.  The heap remains the store of record;
DML is journaled against the segment and reads merge the two, so scans
and geometry fetches are transparently served from whichever format
holds the current version of each row.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EngineError
from repro.engine.cursor import Cursor, GeneratorCursor
from repro.engine.types import Row, RowSchema
from repro.storage.catalog import ColumnMeta, TableMeta
from repro.storage.codec import decode_row, encode_row
from repro.storage.columnar import MISSING, ColumnarSegment
from repro.storage.heap import HeapFile, RowId

__all__ = ["Table"]


class Table:
    """A heap table with a schema and index-maintenance hooks."""

    def __init__(self, meta: TableMeta, heap: HeapFile):
        self.meta = meta
        self.schema = RowSchema(meta.columns)
        self.heap = heap
        self.columnar: Optional[ColumnarSegment] = None
        # index maintenance callbacks: (op, rowid, old_row, new_row)
        self._maintenance_hooks: List[
            Callable[[str, RowId, Optional[Row], Optional[Row]], None]
        ] = []

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def row_count(self) -> int:
        return self.heap.row_count

    def add_maintenance_hook(
        self, hook: Callable[[str, RowId, Optional[Row], Optional[Row]], None]
    ) -> None:
        """Register a callback fired after insert/update/delete.

        The spatial indextype registers here so DML on the base table keeps
        the domain index synchronised — the automatic index update the
        extensible-indexing framework provides.
        """
        self._maintenance_hooks.append(hook)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[Any]) -> RowId:
        row = tuple(values)
        self.schema.validate_row(row)
        rowid = self.heap.insert(encode_row(row))
        if self.columnar is not None:
            self.columnar.note_insert(rowid)
        self._fire("INSERT", rowid, None, row)
        return rowid

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> List[RowId]:
        return [self.insert(row) for row in rows]

    def fetch(self, rowid: RowId) -> Row:
        return decode_row(self.heap.read(rowid))

    def fetch_geometry(self, rowid: RowId, column_index: int, ctx=None):
        """The geometry at ``(rowid, column_index)``, charged per format.

        Columnar-resident rows are served from their chunk (amortised
        ``physical_read`` on chunk load + one ``chunk_row_view``); rows
        the segment cannot serve — journaled, or no segment at all — pay
        the heap fetch (``geom_fetch_base`` + per-vertex decode), exactly
        the charges the geometry caches applied before compaction
        existed.  The charge difference is the measured columnar win; the
        returned geometry is identical either way.
        """
        seg = self.columnar
        if seg is not None:
            geom = seg.geometry_at(rowid, ctx)
            if geom is not MISSING:
                return geom
        row = self.fetch(rowid)
        geom = row[column_index]
        if ctx is not None:
            ctx.charge("geom_fetch_base")
            if geom is not None:
                ctx.charge("geom_fetch_per_vertex", geom.num_vertices)
        return geom

    def update(self, rowid: RowId, values: Sequence[Any]) -> None:
        new_row = tuple(values)
        self.schema.validate_row(new_row)
        old_row = self.fetch(rowid)
        self.heap.update(rowid, encode_row(new_row))
        if self.columnar is not None:
            self.columnar.note_update(rowid)
        self._fire("UPDATE", rowid, old_row, new_row)

    def delete(self, rowid: RowId) -> None:
        old_row = self.fetch(rowid)
        self.heap.delete(rowid)
        if self.columnar is not None:
            self.columnar.note_delete(rowid)
        self._fire("DELETE", rowid, old_row, None)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[RowId, Row]]:
        """Full scan in rowid (physical) order.

        With a columnar segment attached the scan reads column chunks
        (far fewer pages than the heap) and merges journaled rows back in
        from the heap at their rowid positions — the yielded sequence is
        identical to a pure heap scan.
        """
        seg = self.columnar
        if seg is None:
            for rowid, data in self.heap.scan():
                yield rowid, decode_row(data)
            return
        journal = iter(sorted(seg.stale | seg.fresh))
        pending: Optional[RowId] = next(journal, None)
        for rowid, row in seg.chunk_rows():
            while pending is not None and pending < rowid:
                yield pending, self.fetch(pending)
                pending = next(journal, None)
            yield rowid, row
        while pending is not None:
            yield pending, self.fetch(pending)
            pending = next(journal, None)

    def scan_cursor(self, with_rowid: bool = False) -> Cursor:
        """Cursor over the table; optionally prefix each row with its rowid."""
        if with_rowid:
            return GeneratorCursor(
                (rowid,) + row for rowid, row in self.scan()
            )
        return GeneratorCursor(row for _rowid, row in self.scan())

    def column_values(self, column: str) -> Iterator[Tuple[RowId, Any]]:
        idx = self.schema.index_of(column)
        for rowid, row in self.scan():
            yield rowid, row[idx]

    def value(self, rowid: RowId, column: str) -> Any:
        return self.schema.value(self.fetch(rowid), column)

    # ------------------------------------------------------------------
    def _fire(
        self, op: str, rowid: RowId, old_row: Optional[Row], new_row: Optional[Row]
    ) -> None:
        for hook in self._maintenance_hooks:
            hook(op, rowid, old_row, new_row)
