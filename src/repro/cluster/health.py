"""Shard health: heartbeats, circuit breakers, and automatic failover.

Three cooperating pieces, each a small explicit state machine (drawn out
in DESIGN.md §12):

* :class:`CircuitBreaker` — per-shard, consulted by the router before
  every sub-session start.  CLOSED counts consecutive failures; at the
  threshold it trips OPEN and the router fails fast instead of burning
  its retry budget on a dead shard.  After a cooldown the breaker lets
  exactly **one** probe request through (HALF_OPEN); the probe's outcome
  decides between re-closing and re-opening.

* :class:`HealthMonitor` — a background thread that pings every shard on
  a fixed cadence with its own short-timeout clients (never the router's
  connections, so a wedged query can't mask a dead shard and a health
  probe can't head-of-line-block a query).  Misses move a shard
  UP → SUSPECT → DOWN; any successful ping snaps it back to UP.
  Transitions are timestamped into an event log (the failover trace CI
  uploads) and fanned out to subscribers.

* :class:`FailoverCoordinator` — subscribes to the monitor and, on a
  DOWN transition, runs that shard's recovery action exactly once on a
  worker thread (promote the WAL follower for the leader, restart from
  the durable path for others — the policy lives in
  :meth:`LocalCluster.start <repro.cluster.local.LocalCluster>`).  If
  the action returns a new address the monitor is retargeted so the next
  heartbeat confirms recovery.

Split-brain caveat: DOWN is *suspicion*, not truth — a partitioned-but-
alive leader looks identical to a dead one from here.  With a single
monitor (this module) promotion is still safe because the coordinator is
the only writer of cluster topology; the limitation and its production
remedies (quorum, fencing via WAL epoch) are documented in DESIGN.md §12.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.server.client import QueryClient

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "UP",
    "SUSPECT",
    "DOWN",
    "CircuitBreaker",
    "HealthMonitor",
    "FailoverCoordinator",
]

# Breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

# Health states
UP = "up"
SUSPECT = "suspect"
DOWN = "down"


class CircuitBreaker:
    """Per-shard failure gate: CLOSED → OPEN → HALF_OPEN → CLOSED.

    Thread-safe; the clock is injectable so tests drive the cooldown
    without sleeping.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self.state = CLOSED
        self.failures = 0  # consecutive, in CLOSED
        self.opened_at: Optional[float] = None
        self._probe_inflight = False
        self.transitions: List[Tuple[float, str, str]] = []
        self.opens = 0
        #: cumulative seconds this breaker has spent OPEN (closed
        #: intervals only; add the in-flight stretch for a live total)
        self.open_seconds_total = 0.0

    def _transition(self, new: str) -> None:
        if new != self.state:
            now = self._clock()
            self.transitions.append((now, self.state, new))
            if new == OPEN:
                self.opens += 1
            elif self.state == OPEN:
                self.open_seconds_total += now - (self.opened_at or now)
            self.state = new

    def allow(self) -> bool:
        """May a request be sent to this shard right now?

        In HALF_OPEN only a single probe is admitted; everything else
        fails fast until the probe reports back.
        """
        with self._lock:
            if self.state == CLOSED:
                return True
            if self.state == OPEN:
                if self._clock() - (self.opened_at or 0.0) >= self.cooldown:
                    self._transition(HALF_OPEN)
                    self._probe_inflight = True
                    return True
                return False
            # HALF_OPEN: one probe at a time
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self.failures = 0
            self._probe_inflight = False
            if self.state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_inflight = False
            if self.state == HALF_OPEN:
                self.opened_at = self._clock()
                self._transition(OPEN)
                return
            self.failures += 1
            if self.state == CLOSED and self.failures >= self.failure_threshold:
                self.opened_at = self._clock()
                self._transition(OPEN)

    def status(self) -> Dict[str, Any]:
        with self._lock:
            open_seconds = self.open_seconds_total
            if self.state == OPEN:
                # Include the stretch still in flight so a dashboard
                # polling mid-outage sees the duration growing.
                open_seconds += self._clock() - (self.opened_at or 0.0)
            return {
                "state": self.state,
                "failures": self.failures,
                "opens": self.opens,
                "open_seconds_total": open_seconds,
                "transitions": len(self.transitions),
                "cooldown": self.cooldown,
                "threshold": self.failure_threshold,
            }


class _ShardHealth:
    __slots__ = ("state", "misses", "last_ok", "last_error", "address")

    def __init__(self, address: Tuple[str, int]):
        self.state = UP
        self.misses = 0
        self.last_ok: Optional[float] = None
        self.last_error: Optional[str] = None
        self.address = address


class HealthMonitor:
    """Heartbeat every shard; escalate misses UP → SUSPECT → DOWN.

    Parameters
    ----------
    targets:
        ``{shard_id: (host, port)}`` — pinged with dedicated
        short-timeout :class:`QueryClient` instances (one per shard,
        recreated after any failure so a stale socket never counts as a
        miss twice).
    suspect_after / down_after:
        Consecutive missed heartbeats before entering SUSPECT / DOWN.
    probe:
        Test hook — ``probe(shard) -> bool`` replaces the wire ping.
    """

    def __init__(
        self,
        targets: Dict[int, Tuple[str, int]],
        interval: float = 0.1,
        timeout: float = 1.0,
        suspect_after: int = 1,
        down_after: int = 3,
        probe: Optional[Callable[[int], bool]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if down_after < suspect_after:
            raise ValueError("down_after must be >= suspect_after")
        self.interval = interval
        self.timeout = timeout
        self.suspect_after = suspect_after
        self.down_after = down_after
        self._probe = probe
        self._clock = clock
        self._health = {
            shard: _ShardHealth((host, int(port)))
            for shard, (host, port) in targets.items()
        }
        self._clients: Dict[int, QueryClient] = {}
        self._subscribers: List[Callable[[int, str, str], None]] = []
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def subscribe(self, fn: Callable[[int, str, str], None]) -> None:
        """``fn(shard, old_state, new_state)`` on every transition."""
        self._subscribers.append(fn)

    def retarget(self, shard: int, host: str, port: int) -> None:
        """Point the shard's heartbeat at a new address (post-recovery)."""
        with self._lock:
            self._health[shard].address = (host, int(port))
            client = self._clients.pop(shard, None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass
        self._event("retarget", shard, port=int(port))

    # ------------------------------------------------------------------
    def _event(self, kind: str, shard: int, **detail: Any) -> None:
        self.events.append(
            dict(
                kind=kind,
                shard=shard,
                t_wall=time.time(),
                t_mono=self._clock(),
                **detail,
            )
        )

    def _ping(self, shard: int) -> bool:
        if self._probe is not None:
            try:
                return bool(self._probe(shard))
            except Exception:
                return False
        with self._lock:
            client = self._clients.get(shard)
            address = self._health[shard].address
        try:
            if client is None:
                client = QueryClient(
                    host=address[0],
                    port=address[1],
                    timeout=self.timeout,
                    retries=1,
                )
                with self._lock:
                    self._clients[shard] = client
            client.ping()
            return True
        except Exception:
            with self._lock:
                stale = self._clients.pop(shard, None)
            if stale is not None:
                try:
                    stale.close()
                except Exception:
                    pass
            return False

    def poll_once(self) -> None:
        """One heartbeat round across all shards (tests call this directly)."""
        for shard in list(self._health):
            ok = self._ping(shard)
            self._note(shard, ok)

    def _note(self, shard: int, ok: bool) -> None:
        notify: Optional[Tuple[str, str]] = None
        with self._lock:
            health = self._health[shard]
            old = health.state
            if ok:
                health.misses = 0
                health.last_ok = self._clock()
                health.last_error = None
                new = UP
            else:
                health.misses += 1
                health.last_error = f"missed heartbeat x{health.misses}"
                if health.misses >= self.down_after:
                    new = DOWN
                elif health.misses >= self.suspect_after:
                    new = SUSPECT
                else:
                    new = old
            if new != old:
                health.state = new
                notify = (old, new)
        if notify is not None:
            self._event("transition", shard, old=notify[0], new=notify[1])
            for fn in list(self._subscribers):
                try:
                    fn(shard, notify[0], notify[1])
                except Exception:
                    pass  # a broken subscriber must not stop heartbeats

    # ------------------------------------------------------------------
    def start(self) -> "HealthMonitor":
        if self._thread is not None:
            raise RuntimeError("health monitor already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="health-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            self.poll_once()
            self._stop.wait(self.interval)

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        with self._lock:
            clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            try:
                client.close()
            except Exception:
                pass

    def state_of(self, shard: int) -> str:
        with self._lock:
            return self._health[shard].state

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                str(shard): {
                    "state": h.state,
                    "misses": h.misses,
                    "last_ok": h.last_ok,
                    "last_error": h.last_error,
                    "address": list(h.address),
                }
                for shard, h in self._health.items()
            }


class FailoverCoordinator:
    """Run each shard's recovery action exactly once per DOWN transition.

    ``actions[shard]`` is a callable invoked on a worker thread (never on
    the monitor thread — promotion takes real time and heartbeats must
    keep flowing for the *other* shards).  It may return a new
    ``(host, port)`` for the recovered shard, which is fed back to the
    monitor via :meth:`HealthMonitor.retarget`.  A shard with no action
    (in-memory, nothing to restart from) is left DOWN; the router's
    breaker and partial-results mode carry the cluster.
    """

    def __init__(
        self,
        monitor: HealthMonitor,
        actions: Dict[int, Callable[[int], Optional[Tuple[str, int]]]],
    ):
        self.monitor = monitor
        self.actions = dict(actions)
        self.events: List[Dict[str, Any]] = []
        self._inflight: set = set()
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        monitor.subscribe(self._on_transition)

    def _on_transition(self, shard: int, old: str, new: str) -> None:
        if new != DOWN:
            return
        action = self.actions.get(shard)
        if action is None:
            self._event("no_action", shard)
            return
        with self._lock:
            if shard in self._inflight:
                return  # recovery already running
            self._inflight.add(shard)
        thread = threading.Thread(
            target=self._recover,
            args=(shard, action),
            name=f"failover-shard{shard}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def _recover(self, shard: int, action) -> None:
        self._event("recovery_started", shard)
        try:
            address = action(shard)
        except Exception as exc:
            self._event("recovery_failed", shard, error=repr(exc))
        else:
            if address is not None:
                self.monitor.retarget(shard, address[0], address[1])
            self._event(
                "recovery_done",
                shard,
                address=list(address) if address else None,
            )
        finally:
            with self._lock:
                self._inflight.discard(shard)

    def _event(self, kind: str, shard: int, **detail: Any) -> None:
        self.events.append(
            dict(
                kind=kind,
                shard=shard,
                t_wall=time.time(),
                t_mono=time.monotonic(),
                **detail,
            )
        )

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no recovery is in flight (tests / clean shutdown)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._inflight:
                    return True
            time.sleep(0.02)
        return False
