"""The shard router: one server face over N shard processes.

:class:`RouterService` is a drop-in replacement for
:class:`~repro.server.service.QueryService` — same ``open(kind, params,
ctx)`` contract, so the ordinary :class:`~repro.server.app
.SpatialQueryServer` machinery (sessions, paging, deadlines, admission
control, metrics) serves cluster queries unchanged.  Instead of running
the engine, ``open`` **scatters**: it starts one sub-session per shard
(each shard is an ordinary single-node server reached through a
:class:`~repro.server.client.QueryClient`) and returns a stream that
**gathers** the shard rows:

* ``window`` — every shard filters locally with ``primary_only`` (a row
  streams only from the shard owning its primary tile), so concatenating
  the shard streams is exact with no router-side dedup.
* ``spatial_join`` — every shard runs its owned-tiles slice of the
  global grid join; the canonical-tile rule makes the concatenation an
  exact partition of the single-node result (zero duplicates, exact
  multiplicity).
* ``knn`` — shards return their local top-k *with exact distances*; the
  router k-way merges the sorted streams and dedups halo replicas by id.
* ``sql`` — broadcast (DDL/admin); rowcounts sum, rows come from the
  leader shard only.

**Resilience.**  Every sub-session start and fetch is wrapped in a
retry layer governed by a :class:`RetryPolicy`:

* *per-shard retry with exponential backoff* — transient failures
  (connection loss, ``OVERLOADED``, a shard draining) re-start the
  shard's sub-session; a **global retry budget** per router session
  bounds the total, and the session's ``deadline_ms`` (propagated from
  the server via ``ctx.deadline``) bounds retry scheduling so a retried
  query can never outlive its deadline.
* *mid-stream re-scatter* — a shard lost **between fetch pages** is
  resumed exactly: shard row order is deterministic (same index, same
  WAL-replayed state, same canonical-tile slice), so the replacement
  sub-session re-runs the shard's slice and skips the rows already
  delivered.  Tile ownership guarantees the rows of the failed shard
  come only from that shard, so the overall result is bit-identical to
  the fault-free run.
* *hedged reads* — for ``window``/``knn`` (idempotent, order-stable),
  when a fetch page exceeds the ``hedge_ms`` latency SLO the slow
  sub-session is abandoned and re-scattered on a **fresh connection**
  (the wedged wire call may hold the shard handle's lock), again with
  skip-resume.  Tail latency is cut without ever double-counting rows.
* *circuit breakers* — consulted before every sub-session start; a
  shard that keeps failing trips its breaker OPEN and later scatters
  fail fast instead of burning the retry budget (see
  :mod:`repro.cluster.health`).

**Partial failure** stays typed: a shard that fails beyond the retry
layer raises ``SHARD_FAILED`` to the client mid-stream, unless the
session opted in with ``partial: true`` — then the stream skips the
shard and reports it in the close summary's ``failed_shards``.

Writes go through the router-only ``put`` op: each row is placed on its
primary shard and halo-replicated (see
:mod:`repro.cluster.partition`), and — when the leader is replicated —
the router waits for the follower to ack the commit LSN before
acknowledging the client (semi-synchronous replication, the contract
the kill-the-leader failover test holds it to).  Writes retry only on
failures that provably precede any server-side effect (refused
connection, admission rejection): re-sending an INSERT after an
ambiguous mid-flight loss could double-apply it.

``RouterService.lock`` is ``None`` deliberately: the single-node service
serialises engine work behind one lock, but the router's whole point is
that shards work concurrently — each shard connection has its own lock
instead, and router sessions interleave freely on the fetch pool.
"""

from __future__ import annotations

import heapq
import random
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ProtocolError, ReproError, RetriableError, ServerError
from repro.geometry.wkt import from_wkt
from repro.obs import trace
from repro.server import protocol
from repro.server.app import SpatialQueryServer
from repro.server.client import QueryClient, RemoteError
from repro.server.metrics import aggregate_snapshots
from repro.server.service import BadRequest
from repro.server.session import SessionCancelled
from repro.cluster.health import OPEN, CircuitBreaker
from repro.cluster.partition import ClusterError, GridPartitioner

__all__ = [
    "ShardFailed",
    "ShardHandle",
    "RetryPolicy",
    "RouterService",
    "RouterServer",
]

#: sub-session page size the gather streams fetch with
GATHER_PAGE = 1024

#: page size used when skip-resuming an interrupted sub-session
RESUME_PAGE = 4096

#: remote error codes that are safe to retry with a fresh sub-session —
#: the old session is gone (or was never admitted), so re-running the
#: shard's deterministic slice and skipping delivered rows is exact
_RETRIABLE_REMOTE = frozenset(
    {
        protocol.ERR_OVERLOADED,
        protocol.ERR_SHUTTING_DOWN,
        protocol.ERR_UNKNOWN_SESSION,  # conn reset killed the session server-side
    }
)

#: codes that provably precede any server-side effect — the only ones a
#: *write* may retry on
_RETRIABLE_WRITE = frozenset(
    {protocol.ERR_OVERLOADED, protocol.ERR_SHUTTING_DOWN}
)


def _retriable(exc: BaseException) -> bool:
    if isinstance(exc, RemoteError):
        return exc.code in _RETRIABLE_REMOTE
    # ProtocolError is "the connection died mid-exchange" (e.g. a proxy or
    # peer closed on us): any session on that wire is already gone
    # server-side, so re-scattering the read is exact.  Writes must NOT
    # treat it as retriable — see ``_retriable_write``.
    return isinstance(exc, (RetriableError, ProtocolError, OSError))


def _retriable_write(exc: BaseException) -> bool:
    if isinstance(exc, RemoteError):
        return exc.code in _RETRIABLE_WRITE
    if isinstance(exc, RetriableError):
        return exc.code == "CONNECT_FAILED"  # refused: nothing reached the shard
    return isinstance(exc, ConnectionRefusedError)


#: scattered kinds whose shard-side *start* has side effects (the SQL
#: broadcast executes its statement on admission) — an ambiguous
#: mid-flight loss must not re-start their sub-sessions, or a CREATE or
#: INSERT that did land gets applied twice
_WRITE_KINDS = frozenset({"sql"})


class ShardFailed(ServerError):
    """A shard died (or answered with an error) mid-scatter."""

    wire_code = protocol.ERR_SHARD_FAILED

    def __init__(self, shard: int, cause: str):
        super().__init__(f"shard {shard} failed: {cause}")
        self.shard = shard
        self.cause = cause


class RetryPolicy:
    """Knobs for the router's retry/hedging layer.

    ``max_attempts`` bounds attempts per sub-session start; ``budget``
    bounds retries across one whole router session (a scatter touching N
    shards shares it); ``hedge_ms`` — when set — is the per-fetch latency
    SLO beyond which window/knn reads are hedged on a fresh connection.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        budget: int = 8,
        backoff: float = 0.05,
        backoff_cap: float = 1.0,
        jitter: float = 0.25,
        hedge_ms: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ):
        if max_attempts < 1:
            raise ClusterError("retry max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.budget = budget
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.hedge_ms = hedge_ms
        self.rng = rng if rng is not None else random.Random()

    def describe(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "budget": self.budget,
            "backoff": self.backoff,
            "backoff_cap": self.backoff_cap,
            "hedge_ms": self.hedge_ms,
        }


class _RetryState:
    """Per-router-session retry accounting: budget + deadline."""

    __slots__ = ("policy", "deadline", "budget_left", "retries", "hedges", "_lock")

    def __init__(self, policy: RetryPolicy, deadline: Optional[float]):
        self.policy = policy
        self.deadline = deadline  # absolute time.monotonic() bound, or None
        self.budget_left = policy.budget
        self.retries = 0
        self.hedges = 0
        self._lock = threading.Lock()

    def remaining(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def sub_deadline_ms(self, base_ms: Optional[int]) -> Optional[int]:
        """Deadline to hand a sub-session: min(per-shard, session remaining)."""
        remaining = self.remaining()
        if remaining is None:
            return base_ms
        remaining_ms = max(1, int(remaining * 1000))
        if base_ms is None:
            return remaining_ms
        return min(int(base_ms), remaining_ms)

    def consume(self) -> bool:
        """Spend one unit of the session's retry budget."""
        with self._lock:
            if self.budget_left <= 0:
                return False
            self.budget_left -= 1
            self.retries += 1
            return True

    def sleep_within_deadline(self, attempt: int) -> bool:
        """Back off before a retry; False if the deadline would pass first."""
        policy = self.policy
        delay = min(policy.backoff * (2.0 ** attempt), policy.backoff_cap)
        delay *= 1.0 + policy.jitter * policy.rng.random()
        remaining = self.remaining()
        if remaining is not None and delay >= remaining:
            return False
        time.sleep(delay)
        return True


class ShardHandle:
    """One shard connection plus the lock that serialises requests on it.

    Router sessions run on a thread pool; the JSON-lines client is one
    socket with strictly ordered request/response, so every wire call
    goes through :meth:`request`'s lock.  :meth:`replace` swaps in a new
    client after failover without disturbing concurrent callers.
    """

    def __init__(self, shard: int, client: QueryClient):
        self.shard = shard
        self.client = client
        self.lock = threading.Lock()

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        with self.lock:
            return self.client.request(op, **fields)

    def start(
        self,
        kind: str,
        params: Dict[str, Any],
        deadline_ms: Optional[int] = None,
        trace_ctx: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {"kind": kind, "params": params}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        if trace_ctx is not None:
            fields["trace_ctx"] = trace_ctx
        return self.request("start", **fields)

    def fetch(self, session_id: str, n: int) -> Tuple[List[Any], bool]:
        response = self.request("fetch", session=session_id, n=n)
        return response["rows"], bool(response["eof"])

    def close_session(self, session_id: str) -> None:
        try:
            self.request("close", session=session_id)
        except (ReproError, OSError):
            pass  # a dead shard has no sessions left to leak

    def address(self) -> Tuple[str, int, float]:
        """Current ``(host, port, timeout)`` — read lock-free on purpose:
        a hedge needs the address while the wedged call holds the lock."""
        client = self.client
        return client.host, client.port, client.timeout

    def replace(self, client: QueryClient) -> None:
        with self.lock:
            try:
                self.client.close()
            except OSError:
                pass
            self.client = client

    def interrupt(self) -> None:
        """Unblock any wire call stuck on this handle (shutdown path)."""
        self.client.interrupt()


class _SubSession:
    """Router-side record of one started shard sub-session."""

    __slots__ = ("handle", "session_id", "extra", "private", "done")

    def __init__(
        self,
        handle: ShardHandle,
        session_id: str,
        extra: Dict[str, Any],
        private: bool = False,
    ):
        self.handle = handle
        self.session_id = session_id
        self.extra = extra
        #: True when ``handle`` is a dedicated (hedge) connection the
        #: stream owns and must close, not the shared fleet handle
        self.private = private
        self.done = False


class _Resume(Exception):
    """Internal: this sub-session must be re-scattered with skip-resume."""

    def __init__(
        self,
        cause: BaseException,
        hedge: bool = False,
        abandoned_thread: Optional[threading.Thread] = None,
    ):
        super().__init__(str(cause))
        self.cause = cause
        self.hedge = hedge
        self.abandoned_thread = abandoned_thread


#: what the per-kind gather generators catch around ``drain``
_FETCH_ERRORS = (RemoteError, RetriableError, ProtocolError, OSError, ShardFailed)

#: what the sub-session start/fetch/scatter paths catch as shard trouble
_WIRE_ERRORS = (RemoteError, RetriableError, ProtocolError, OSError)


class _GatherStream:
    """Iterator over scattered sub-sessions with failure bookkeeping.

    Exposes the ``info`` dict :meth:`ServerSession.close_info` ships in
    the close summary (per-shard row counts, shards skipped under
    partial-results mode, retry/hedge counts).  ``rows_fn`` decides the
    gather order — concatenation for window/join/sql, k-way merge for
    knn.  The stream also carries everything a mid-query re-scatter
    needs to rebuild one shard's slice: the kind, the per-shard params
    function, and the retry state.
    """

    def __init__(
        self,
        service: "RouterService",
        rows_fn,
        kind: str,
        shard_params: Callable[[int], Dict[str, Any]],
        deadline_ms: Optional[int],
        state: _RetryState,
        allow_partial: bool,
        hedgeable: bool = False,
    ):
        self._service = service
        self._subs: List[_SubSession] = []
        self.kind = kind
        self.shard_params = shard_params
        self.deadline_ms = deadline_ms
        self.state = state
        self.allow_partial = allow_partial
        self.hedgeable = hedgeable
        # Captured while the router.scatter span is open on this thread:
        # the wire trace context every shard start (including later
        # re-scatters, which run on fetch threads with an empty span
        # stack) props under, and the span partial stitches are tagged on.
        self.trace_ctx = trace.wire_ctx()
        self.trace_root = trace.current_span()
        self.info: Dict[str, Any] = {
            "shards": len(service.handles),
            "rows_per_shard": {},
            "failed_shards": [],
        }
        self._gen = rows_fn(self)
        self._closed = False
        self._cancelled = False

    def __iter__(self):
        return self

    def __next__(self):
        return next(self._gen)

    # -- helpers the gather generators use -----------------------------
    def drain(self, sub: _SubSession, page: Optional[int] = None):
        """Yield one sub-session's rows, paging until eof.

        Transient failures between pages re-scatter the shard's slice
        and resume after the rows already yielded; fetches past the
        hedge SLO do the same on a fresh connection.  Either way the
        byte-for-byte row sequence is preserved (deterministic shard
        order + exact skip).
        """
        if page is None:
            page = self._service.gather_page
        count = 0
        eof = False
        try:
            while not eof:
                self._check_cancelled()
                try:
                    rows, eof = self._service._fetch_page(self, sub, page)
                except _Resume as sig:
                    sub = self._service._rescatter(self, sub, count, sig)
                    continue
                count += len(rows)
                for row in rows:
                    yield row
        finally:
            self.info["rows_per_shard"][str(sub.handle.shard)] = count
            if eof:
                self._retire(sub)

    def shard_failed(self, sub: _SubSession, exc: BaseException) -> None:
        """Record a failure; re-raise typed unless partial mode allows it."""
        self._service.note_failure(sub.handle)
        self.info["failed_shards"].append(
            {"shard": sub.handle.shard, "error": str(exc)}
        )
        sub.done = True  # its session is unreachable; don't close it again
        if not self.allow_partial:
            if isinstance(exc, ShardFailed):
                raise exc
            raise ShardFailed(sub.handle.shard, str(exc)) from exc

    def _check_cancelled(self) -> None:
        if self._cancelled:
            raise SessionCancelled(
                protocol.ERR_SHUTTING_DOWN,
                "scatter-gather cancelled: router shutting down",
            )

    def _retire(self, sub: _SubSession) -> None:
        """Close a finished sub-session (and its private wire, if any).

        Best-effort: the shard may have died (or dropped the session on a
        connection reset) after delivering its rows — that must not turn
        a completed stream into an error.
        """
        if sub.done:
            return
        sub.done = True
        try:
            sub.handle.close_session(sub.session_id)
        except _WIRE_ERRORS:
            pass
        if sub.private:
            try:
                sub.handle.client.close()
            except OSError:
                pass

    def _replace_sub(self, old: _SubSession, new: _SubSession) -> None:
        for i, sub in enumerate(self._subs):
            if sub is old:
                self._subs[i] = new
                return
        self._subs.append(new)

    def _abandon(self, sub: _SubSession, fetch_thread: Optional[threading.Thread]) -> None:
        """Detach a hedged-away sub-session; clean it up off the hot path.

        The wedged fetch may hold the handle lock for seconds — closing
        inline would forfeit the hedge's latency win, so a daemon thread
        waits it out and then closes the session best-effort.
        """
        sub.done = True  # stream-level close must not touch it again

        def _cleanup() -> None:
            if fetch_thread is not None:
                fetch_thread.join(timeout=60.0)
            try:
                sub.handle.close_session(sub.session_id)
            except _WIRE_ERRORS:
                pass
            if sub.private:
                try:
                    sub.handle.client.close()
                except OSError:
                    pass

        threading.Thread(
            target=_cleanup, name="router-hedge-cleanup", daemon=True
        ).start()

    def cancel(self) -> None:
        """Cancel cooperatively *and* unblock in-flight wire calls.

        Called by the server's graceful drain: the next ``drain`` step
        raises a typed ``SHUTTING_DOWN`` cancellation, and interrupting
        the shard sockets makes "next step" arrive now rather than at
        socket timeout.
        """
        self._cancelled = True
        for sub in list(self._subs):
            if not sub.done:
                try:
                    sub.handle.interrupt()
                except Exception:
                    pass

    def close(self) -> None:
        """Close surviving sub-sessions; stitch shard spans if tracing."""
        if self._closed:
            return
        self._closed = True
        try:
            self._gen.close()
        except ValueError:
            # A force-close (drain timeout) can land while a fetch worker
            # is still inside the generator; flag cancellation so it
            # exits at its next checkpoint instead of crashing the close.
            self._cancelled = True
        for sub in self._subs:
            self._retire(sub)
        self._service.stitch_traces(root=self.trace_root)


class RouterService:
    """Scatter-gather session factory over the shard fleet."""

    #: no global engine lock — concurrency across shards is the point
    lock = None

    def __init__(
        self,
        handles: List[ShardHandle],
        partitioner: GridPartitioner,
        leader: int = 0,
        follower=None,
        replicated: bool = False,
        allow_partial: bool = False,
        shard_deadline_ms: Optional[int] = None,
        commit_timeout: float = 5.0,
        id_column: str = "id",
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        health=None,
        gather_page: int = GATHER_PAGE,
        commit_shards: Optional[Iterable[int]] = None,
    ):
        if not handles:
            raise ClusterError("a router needs at least one shard")
        if partitioner.nshards != len(handles):
            raise ClusterError(
                f"partitioner built for {partitioner.nshards} shard(s) but "
                f"{len(handles)} handle(s) given"
            )
        self.handles = handles
        self.partitioner = partitioner
        self.leader = leader
        self.follower = follower
        self.replicated = replicated
        self.allow_partial = allow_partial
        self.shard_deadline_ms = shard_deadline_ms
        self.commit_timeout = commit_timeout
        self.id_column = id_column
        self.retry = retry if retry is not None else RetryPolicy()
        self.breakers: Dict[int, CircuitBreaker] = {
            handle.shard: CircuitBreaker(breaker_threshold, breaker_cooldown)
            for handle in handles
        }
        self.health = health  # optional HealthMonitor, surfaced in status
        self.gather_page = int(gather_page)
        #: shards whose ``put`` batches commit durably (restartable from
        #: WAL); ``None`` keeps the legacy rule — commit only the
        #: replicated leader
        self.commit_shards = (
            frozenset(commit_shards) if commit_shards is not None else None
        )
        self.metrics = None  # set by RouterServer; counters work without it
        self.failures: Dict[int, int] = {}
        self.resilience: Dict[str, int] = {}
        self.deadline_misses: Dict[int, int] = {}  # per-shard DEADLINE_EXCEEDED
        self.last_fanout = 0  # shards touched by the most recent scatter
        self._resilience_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Resilience bookkeeping
    # ------------------------------------------------------------------
    def _bump(self, event: str, n: int = 1) -> None:
        with self._resilience_lock:
            self.resilience[event] = self.resilience.get(event, 0) + n
        metrics = self.metrics
        if metrics is not None:
            metrics.bump_resilience(event, n)

    def _note_deadline_miss(self, shard: int, exc: BaseException) -> None:
        """Count shard responses that died on the per-shard deadline."""
        if getattr(exc, "code", None) == protocol.ERR_DEADLINE:
            self._bump("deadline_misses")
            with self._resilience_lock:
                self.deadline_misses[shard] = (
                    self.deadline_misses.get(shard, 0) + 1
                )

    def _breaker_failure(self, shard: int) -> None:
        breaker = self.breakers.get(shard)
        if breaker is None:
            return
        before = breaker.state
        breaker.record_failure()
        if breaker.state == OPEN and before != OPEN:
            self._bump("breaker_open")
            trace.instant("router.breaker_open", shard=shard)

    def _breaker_success(self, shard: int) -> None:
        breaker = self.breakers.get(shard)
        if breaker is not None:
            breaker.record_success()

    def reset_breaker(self, shard: int) -> None:
        """Forget a shard's failure history — called after failover or a
        restart replaced the endpoint; the old breaker state described a
        process that no longer exists."""
        self._breaker_success(shard)

    def resilience_status(self) -> Dict[str, Any]:
        """Breaker states, counters, retry knobs, optional health view."""
        out: Dict[str, Any] = {
            "retry": self.retry.describe(),
            "breakers": {
                str(shard): breaker.status()
                for shard, breaker in self.breakers.items()
            },
            "counters": dict(self.resilience),
            "failures": dict(self.failures),
            "deadline_misses": dict(self.deadline_misses),
            "last_fanout": self.last_fanout,
        }
        if self.health is not None:
            out["health"] = self.health.status()
        return out

    # ------------------------------------------------------------------
    # QueryService contract
    # ------------------------------------------------------------------
    def open(self, kind: str, params: Dict[str, Any], ctx) -> Tuple[Any, Dict[str, Any]]:
        opener = getattr(self, f"_open_{kind}", None)
        if opener is None:
            raise BadRequest(f"unknown query kind {kind!r}")
        with trace.span(
            "router.scatter",
            ctx,
            parent=getattr(ctx, "parent_span", None),
            kind=kind,
            shards=len(self.handles),
        ):
            return opener(dict(params), ctx)

    # -- sub-session lifecycle ------------------------------------------
    def _fresh_handle(self, shard: int) -> ShardHandle:
        """A dedicated connection to ``shard`` for a hedge replacement."""
        host, port, timeout = self.handles[shard].address()
        return ShardHandle(
            shard, QueryClient(host=host, port=port, timeout=timeout, retries=2)
        )

    def _skip_rows(self, sub: _SubSession, skip: int) -> None:
        """Advance a resumed sub-session past the rows already delivered."""
        remaining = skip
        while remaining > 0:
            rows, eof = sub.handle.fetch(
                sub.session_id, min(remaining, RESUME_PAGE)
            )
            remaining -= len(rows)
            if remaining > 0 and (eof or not rows):
                raise ShardFailed(
                    sub.handle.shard,
                    f"resume underrun: shard replayed {skip - remaining} of "
                    f"{skip} already-delivered rows",
                )

    def _start_sub(
        self,
        kind: str,
        shard_params: Callable[[int], Dict[str, Any]],
        handle: ShardHandle,
        deadline_ms: Optional[int],
        state: _RetryState,
        skip: int = 0,
        fresh: bool = False,
        trace_ctx: Optional[Dict[str, Any]] = None,
    ) -> _SubSession:
        """Start (or resume) one shard sub-session, retrying transients.

        The breaker is consulted before every attempt; retries spend the
        session's budget and respect its deadline.  ``fresh`` builds a
        dedicated connection (hedge path).  Non-retriable errors — a
        shard-side ``BAD_REQUEST``, an exhausted budget — propagate.
        Write kinds only retry failures that provably precede any
        shard-side effect (see ``_WRITE_KINDS``).
        """
        shard = handle.shard
        breaker = self.breakers.get(shard)
        retriable = _retriable_write if kind in _WRITE_KINDS else _retriable
        attempt = 0
        while True:
            if breaker is not None and not breaker.allow():
                raise ShardFailed(shard, "circuit breaker open")
            wire = self._fresh_handle(shard) if fresh else handle
            try:
                response = wire.start(
                    kind,
                    shard_params(shard),
                    state.sub_deadline_ms(deadline_ms),
                    trace_ctx=trace_ctx,
                )
                sub = _SubSession(
                    wire,
                    response["session"],
                    {
                        k: v
                        for k, v in response.items()
                        if k not in ("id", "ok", "session")
                    },
                    private=fresh,
                )
                if skip:
                    self._skip_rows(sub, skip)
                self._breaker_success(shard)
                return sub
            except _WIRE_ERRORS + (ShardFailed,) as exc:
                if fresh and wire is not handle:
                    try:
                        wire.client.close()
                    except OSError:
                        pass
                self.note_failure(handle)
                self._note_deadline_miss(shard, exc)
                self._breaker_failure(shard)
                attempt += 1
                if (
                    not retriable(exc)
                    or attempt >= self.retry.max_attempts
                    or not state.consume()
                ):
                    raise
                self._bump("retries")
                trace.instant(
                    "router.retry",
                    shard=shard,
                    attempt=attempt,
                    cause=type(exc).__name__,
                )
                if not state.sleep_within_deadline(attempt):
                    raise

    def _fetch_page(
        self, stream: _GatherStream, sub: _SubSession, page: int
    ) -> Tuple[List[Any], bool]:
        """Fetch one page; signal ``_Resume`` for retriable/SLO failures."""
        policy = self.retry
        hedge_s = (
            policy.hedge_ms / 1000.0
            if (stream.hedgeable and policy.hedge_ms)
            else None
        )
        if hedge_s is None:
            try:
                return sub.handle.fetch(sub.session_id, page)
            except _WIRE_ERRORS as exc:
                self._note_deadline_miss(sub.handle.shard, exc)
                # A write kind's statement already executed at start —
                # resuming would re-run it on a fresh sub-session.
                if stream.kind in _WRITE_KINDS or not _retriable(exc):
                    raise
                raise _Resume(exc) from exc
        # Hedged fetch: run on a worker so a slow shard can be abandoned.
        outcome: List[Tuple[str, Any]] = []

        def _work() -> None:
            try:
                outcome.append(("ok", sub.handle.fetch(sub.session_id, page)))
            except BaseException as exc:  # delivered to the caller below
                outcome.append(("err", exc))

        worker = threading.Thread(target=_work, name="router-fetch", daemon=True)
        worker.start()
        worker.join(hedge_s)
        if not outcome:
            raise _Resume(
                TimeoutError(
                    f"shard {sub.handle.shard} fetch exceeded the "
                    f"{policy.hedge_ms}ms hedge SLO"
                ),
                hedge=True,
                abandoned_thread=worker,
            )
        status, payload = outcome[0]
        if status == "ok":
            return payload
        if isinstance(payload, BaseException):
            self._note_deadline_miss(sub.handle.shard, payload)
        if isinstance(payload, _WIRE_ERRORS) and _retriable(
            payload
        ):
            raise _Resume(payload) from payload
        raise payload

    def _rescatter(
        self, stream: _GatherStream, sub: _SubSession, count: int, sig: _Resume
    ) -> _SubSession:
        """Replace one failed/slow sub-session, resuming after ``count`` rows.

        Only the failed shard's slice is re-run — tile ownership means no
        other shard can produce its rows, so the gather stays exact.
        """
        shard = sub.handle.shard
        state = stream.state
        if sig.hedge:
            self._bump("hedges")
            state.hedges += 1
            stream._abandon(sub, sig.abandoned_thread)
        else:
            self._bump("rescatters")
            self.note_failure(sub.handle)
            self._breaker_failure(shard)
            sub.done = True
            if sub.private:
                try:
                    sub.handle.client.close()
                except OSError:
                    pass
            elif (
                isinstance(sig.cause, RemoteError)
                and sig.cause.code != protocol.ERR_UNKNOWN_SESSION
            ):
                # The shard is alive (it answered); free the old session.
                # Best-effort: a reset between the answer and this close
                # must not escalate a handled failure into a stream error.
                try:
                    sub.handle.close_session(sub.session_id)
                except _WIRE_ERRORS:
                    pass
        if not state.consume():
            raise ShardFailed(
                shard, f"retry budget exhausted after: {sig.cause}"
            ) from sig.cause
        trace.instant(
            "router.rescatter", shard=shard, skip=count, hedge=sig.hedge
        )
        new = self._start_sub(
            stream.kind,
            stream.shard_params,
            self.handles[shard],
            stream.deadline_ms,
            state,
            skip=count,
            fresh=sig.hedge,
            trace_ctx=stream.trace_ctx,
        )
        stream._replace_sub(sub, new)
        return new

    # -- scatter/gather -------------------------------------------------
    def _scatter(
        self,
        stream: _GatherStream,
        handles: Optional[List[ShardHandle]] = None,
    ) -> List[Tuple[ShardHandle, BaseException]]:
        """Start one sub-session per shard into ``stream``; collect failures.

        ``handles`` restricts the fan-out (window pruning); the default
        is every shard.
        """
        failed: List[Tuple[ShardHandle, BaseException]] = []
        targets = list(self.handles if handles is None else handles)
        for handle in targets:
            try:
                sub = self._start_sub(
                    stream.kind,
                    stream.shard_params,
                    handle,
                    stream.deadline_ms,
                    stream.state,
                    trace_ctx=stream.trace_ctx,
                )
            except _WIRE_ERRORS + (ShardFailed,) as exc:
                failed.append((handle, exc))
                continue
            stream._subs.append(sub)
        # Fan-out gauges: how wide this scatter went (pruned window
        # queries touch fewer shards than the fleet holds).
        self._bump("scatters")
        self._bump("scatter_width_total", len(targets))
        self.last_fanout = len(targets)
        return failed

    def _gather(
        self,
        kind,
        shard_params,
        params,
        rows_fn,
        handles=None,
        ctx=None,
        hedgeable=False,
    ):
        """Scatter, then wrap the surviving sub-sessions in a stream."""
        deadline_ms = params.get("shard_deadline_ms")
        if deadline_ms is None:
            deadline_ms = self.shard_deadline_ms
        state = _RetryState(self.retry, getattr(ctx, "deadline", None))
        allow_partial = bool(params.get("partial", self.allow_partial))
        stream = _GatherStream(
            self,
            rows_fn,
            kind,
            shard_params,
            deadline_ms,
            state,
            allow_partial,
            hedgeable=hedgeable,
        )
        failed = self._scatter(stream, handles)
        for handle, exc in failed:
            self.note_failure(handle)
            stream.info["failed_shards"].append(
                {"shard": handle.shard, "error": str(exc)}
            )
            if not allow_partial:
                stream.close()
                if isinstance(exc, ShardFailed):
                    raise exc
                raise ShardFailed(handle.shard, str(exc)) from exc
        return stream

    # -- kinds ----------------------------------------------------------
    def _open_window(self, params, ctx):
        part = self.partitioner
        # Scatter pruning: the shard-side window_owner rule guarantees a
        # row's emitter owns a tile overlapping the search region, so
        # shards whose tiles miss the (distance-expanded) window would
        # stream nothing — skip them entirely.
        handles = self.handles
        wkt = params.get("wkt")
        if wkt is not None:
            try:
                window = from_wkt(str(wkt)).mbr
            except Exception:
                window = None  # shard-side validation raises the typed error
            if window is not None:
                expand = 0.0
                operator = str(params.get("operator", "SDO_RELATE")).upper()
                if operator == "SDO_WITHIN_DISTANCE":
                    expand = float(params.get("distance", 0.0))
                targets = part.shards_for_mbr(window, expand=expand)
                handles = [h for h in self.handles if h.shard in targets]

        def shard_params(shard: int) -> Dict[str, Any]:
            p = dict(params)
            p.pop("partial", None)
            p.pop("shard_deadline_ms", None)
            p.update(
                cluster=part.for_shard(shard).to_wire(),
                primary_only=True,
                emit_ids=True,
                id_column=params.get("id_column", self.id_column),
            )
            return p

        def rows(stream: _GatherStream):
            for sub in stream._subs:
                try:
                    yield from stream.drain(sub)
                except _FETCH_ERRORS as exc:
                    stream.shard_failed(sub, exc)

        return (
            self._gather(
                "window", shard_params, params, rows, handles, ctx, hedgeable=True
            ),
            {},
        )

    def _open_spatial_join(self, params, ctx):
        part = self.partitioner
        distance = float(params.get("distance", 0.0))
        if distance > part.halo:
            raise BadRequest(
                f"within-distance {distance} exceeds the cluster halo "
                f"{part.halo}; reload with a wider halo"
            )

        def shard_params(shard: int) -> Dict[str, Any]:
            p = dict(params)
            p.pop("partial", None)
            p.pop("shard_deadline_ms", None)
            p.update(
                cluster=part.for_shard(shard).to_wire(),
                id_column=params.get("id_column", self.id_column),
            )
            return p

        def rows(stream: _GatherStream):
            for sub in stream._subs:
                try:
                    yield from stream.drain(sub)
                except _FETCH_ERRORS as exc:
                    stream.shard_failed(sub, exc)

        extra = {"strategy": "GRID", "shards": len(self.handles)}
        return self._gather("spatial_join", shard_params, params, rows, None, ctx), extra

    def _open_knn(self, params, ctx):
        k = int(params.get("k", 1))

        def shard_params(shard: int) -> Dict[str, Any]:
            p = dict(params)
            p.pop("partial", None)
            p.pop("shard_deadline_ms", None)
            p.update(
                with_distance=True,
                id_column=params.get("id_column", self.id_column),
            )
            return p

        def rows(stream: _GatherStream):
            # Streaming k-way merge: each shard stream arrives sorted by
            # (distance, id); halo replicas of one row carry identical
            # keys on every shard, so an id-set dedup suffices.
            iterators = []
            for sub in stream._subs:
                try:
                    iterators.append(list(stream.drain(sub)))
                except _FETCH_ERRORS as exc:
                    stream.shard_failed(sub, exc)
            merged = heapq.merge(*iterators, key=lambda r: (r[1], r[0]))
            seen = set()
            emitted = 0
            for row in merged:
                if emitted >= k:
                    break
                rid = row[0]
                if rid in seen:
                    continue
                seen.add(rid)
                emitted += 1
                yield row

        return (
            self._gather("knn", shard_params, params, rows, None, ctx, hedgeable=True),
            {"k": k},
        )

    def _open_sql(self, params, ctx):
        def shard_params(shard: int) -> Dict[str, Any]:
            p = dict(params)
            p.pop("partial", None)
            p.pop("shard_deadline_ms", None)
            return p

        def rows(stream: _GatherStream):
            rowcount = 0
            for sub in stream._subs:
                try:
                    drained = list(stream.drain(sub))
                except _FETCH_ERRORS as exc:
                    stream.shard_failed(sub, exc)
                    continue
                rowcount += int(sub.extra.get("rowcount", 0))
                if sub.handle.shard == self.leader:
                    yield from drained
            stream.info["rowcount"] = rowcount

        stream = self._gather("sql", shard_params, params, rows, None, ctx)
        extra: Dict[str, Any] = {"broadcast": len(stream._subs)}
        if stream._subs:
            extra["columns"] = stream._subs[0].extra.get("columns", [])
            extra["message"] = stream._subs[0].extra.get("message")
        return stream, extra

    # ------------------------------------------------------------------
    # Writes (router-only op)
    # ------------------------------------------------------------------
    def put(self, table: str, rows: Iterable[Any]) -> Dict[str, Any]:
        """Place ``[id, wkt]`` rows: primary + halo replicas, semi-sync.

        Batches one INSERT list per target shard, commits the leader's
        batch durably, and — when replicated — blocks until the follower
        has acked the commit LSN.  Acknowledged rows therefore survive a
        leader kill -9 by construction.  Retries are limited to failures
        that provably precede any effect (refused connection, admission
        rejection) — an ambiguous mid-flight loss must surface, because
        re-sending the INSERT could double-apply it.
        """
        part = self.partitioner
        statements: Dict[int, List[str]] = {}
        placed = 0
        replicas = 0
        for row in rows:
            try:
                row_id, wkt = row
            except (TypeError, ValueError):
                raise BadRequest("put rows must be [id, wkt] pairs") from None
            try:
                geom = from_wkt(wkt)
            except ReproError as exc:
                raise BadRequest(f"bad geometry for id {row_id!r}: {exc}") from None
            targets = part.shards_for_mbr(geom.mbr)
            statement = (
                f"insert into {table} values "
                f"({_sql_literal(row_id)}, sdo_geometry('{wkt}'))"
            )
            for shard in sorted(targets):
                statements.setdefault(shard, []).append(statement)
            placed += 1
            replicas += len(targets) - 1
        lsn: Optional[int] = None
        for shard in sorted(statements):
            handle = self.handles[shard]
            if self.commit_shards is not None:
                commit = shard in self.commit_shards
            else:
                commit = self.replicated and shard == self.leader
            lsn_here = self._put_shard(handle, statements[shard], commit)
            if commit and shard == self.leader:
                lsn = lsn_here
        if lsn is not None and self.follower is not None:
            self.follower.wait_for(lsn, timeout=self.commit_timeout)
        return {
            "placed": placed,
            "replicas": replicas,
            "shards": sorted(statements),
            "lsn": lsn,
        }

    def _put_shard(
        self, handle: ShardHandle, statements: List[str], commit: bool
    ) -> Optional[int]:
        """Apply one shard's INSERT batch with effect-free-only retries."""
        shard = handle.shard
        breaker = self.breakers.get(shard)
        attempt = 0
        while True:
            if breaker is not None and not breaker.allow():
                raise ShardFailed(shard, "circuit breaker open")
            try:
                response = handle.start(
                    "sql", {"statements": statements, "commit": commit}
                )
                lsn = response.get("lsn") if commit else None
                handle.close_session(response["session"])
                self._breaker_success(shard)
                return lsn
            except _WIRE_ERRORS as exc:
                self.note_failure(handle)
                self._breaker_failure(shard)
                attempt += 1
                if not _retriable_write(exc) or attempt >= self.retry.max_attempts:
                    raise ShardFailed(shard, str(exc)) from exc
                self._bump("write_retries")
                time.sleep(
                    min(
                        self.retry.backoff * (2.0 ** attempt),
                        self.retry.backoff_cap,
                    )
                )

    # ------------------------------------------------------------------
    # Topology / failover
    # ------------------------------------------------------------------
    def topology(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "shards": len(self.handles),
            "leader": self.leader,
            "replicated": self.replicated,
            "partitioner": self.partitioner.to_wire(),
            "failures": dict(self.failures),
            "breakers": {
                str(shard): breaker.state
                for shard, breaker in self.breakers.items()
            },
        }
        if self.follower is not None:
            out["follower"] = self.follower.status()
        return out

    def note_failure(self, handle: ShardHandle) -> None:
        self.failures[handle.shard] = self.failures.get(handle.shard, 0) + 1

    def shard_stats(self, raw: bool = True) -> List[Dict[str, Any]]:
        """Per-shard stats snapshots (dead shards are skipped)."""
        snaps = []
        for handle in self.handles:
            try:
                snaps.append(handle.request("stats", raw=raw)["stats"])
            except (ReproError, OSError):
                self.note_failure(handle)
        return snaps

    def stitch_traces(self, root=None) -> int:
        """Adopt shards' finished spans into the router's tracer.

        Returns the number of shards whose drain failed.  Failures are
        never silent: they count into the ``trace_drain_failed``
        resilience metric, and when ``root`` (the scatter span) is given
        it gains a ``dropped_shards`` tag — so a partially-stitched
        trace is distinguishable from a complete one.
        """
        tracer = trace.get_tracer()
        if tracer is None:
            return 0
        dropped: List[int] = []
        for handle in self.handles:
            try:
                spans = handle.request("trace.drain")["spans"]
            except (ReproError, OSError):
                dropped.append(handle.shard)
                continue
            if spans:
                tracer.adopt(spans, parent=root, shard=handle.shard)
        if dropped:
            self._bump("trace_drain_failed", len(dropped))
            if root is not None:
                previous = root.tags.get("dropped_shards") or []
                root.set_tag(
                    "dropped_shards", sorted(set(previous) | set(dropped))
                )
        return len(dropped)


class RouterServer(SpatialQueryServer):
    """A :class:`SpatialQueryServer` whose service is a router.

    ``db`` is ``None`` — the router holds no engine, only shard clients —
    and the extra-ops table gains the router verbs (``put``,
    ``topology``, ``health``).  Stats and metrics aggregate the shard
    fleet: latency histograms merge bucket-exact through
    ``latency_raw``, counters sum, and per-shard storage/meter sections
    stay visible under ``shards``.
    """

    def __init__(self, db=None, *args: Any, router: RouterService, **kwargs: Any):
        super().__init__(db, *args, service=router, **kwargs)
        router.metrics = self.metrics  # resilience counters ride /metrics

    @property
    def router(self) -> RouterService:
        return self.service

    def _register_extra_ops(self) -> None:
        super()._register_extra_ops()
        self._extra_ops["put"] = self._op_put
        self._extra_ops["topology"] = self._op_topology
        self._extra_ops["health"] = self._op_health

    async def _op_put(self, request_id, message) -> Dict[str, Any]:
        table = message.get("table")
        rows = message.get("rows")
        if not table or not isinstance(rows, list):
            raise BadRequest("put needs a table name and a rows list")
        started = time.perf_counter()
        result = await self._run_blocking(self.router.put, table, rows)
        self.metrics.record_query(
            "put", time.perf_counter() - started, len(rows)
        )
        return protocol.ok_response(request_id, **result)

    async def _op_topology(self, request_id, message) -> Dict[str, Any]:
        return protocol.ok_response(
            request_id, **await self._run_blocking(self.router.topology)
        )

    async def _op_health(self, request_id, message) -> Dict[str, Any]:
        return protocol.ok_response(
            request_id, **await self._run_blocking(self.router.resilience_status)
        )

    def _stats_payload(self, raw: bool = False) -> Dict[str, Any]:
        snaps = self.router.shard_stats(raw=True)
        snaps.append(
            dict(self.metrics.snapshot(len(self._sessions), raw=True),
                 shard_id="router")
        )
        aggregate = aggregate_snapshots(snaps)
        aggregate["topology"] = self.router.topology()
        return aggregate


def _sql_literal(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
